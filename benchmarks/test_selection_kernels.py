"""Selection-kernel microbenchmark: vectorized cover vs the pre-PR kernel.

Times the uncached online selection path — the part of a query that
remains after index lookup and caching — across four variants over the
same corpus and queries:

* ``reference``: the pre-PR kernel (``repro.ris.reference``): add.at
  score build, per-sample Python decrement, per-iteration bound;
* ``eager``: the new default serving path (bincount build, batched
  decrement, ``compute_bound=False``);
* ``lazy``: the CELF variant of the same kernels;
* ``eager+bound``: the new kernels with the full per-iteration bound
  (what certification pays);
* ``eager+obs(off)``: the default path wrapped in the *disabled* tracer
  exactly the way ``QueryEngine._serve`` wraps it (``NULL_TRACER``
  spans + no-op ``record_stages``) — the observability layer's
  everybody-pays cost;
* ``eager+prof(off)``: ``eager+obs(off)`` plus this layer's serving-path
  additions with profiling *not running* — an instantiated-but-unstarted
  ``SamplingProfiler`` in scope and one ``SloTracker.record_query`` per
  query (the CLI serves with SLO tracking on by default).

On hosts where the optional numba extra resolves (see
:mod:`repro.kernels`), two more variants run — ``eager@numba`` and
``lazy@numba`` — with the same seed-parity gate against the reference
kernel, plus a compiled-vs-numpy bar: the combined
``score_build + selection`` stage median must be >= 3x faster compiled
(standard workload only; first-call JIT compilation happens in the
warm-up pass, outside the timed region).

Every run asserts **seed parity** against the reference kernel — this is
the parity half of the CI smoke step (``REPRO_BENCH_TINY=1`` shrinks the
workload and drops the speedup bar; parity always fails loudly).  On the
standard workload the default path must be >= 3x the reference, and the
disabled-tracer wrapper must stay within ``OBS_OVERHEAD_BAR`` (2%) of
the bare kernel (report-only under TINY, where per-query time is too
small to measure a ratio).  Results land in ``selection_kernels.txt``
and the ``selection_kernels`` section of ``BENCH_query_kernels.json``.
"""

from __future__ import annotations

import os
import statistics
import time

import numpy as np

from repro.bench.reporting import format_table
from repro.bench.workloads import random_queries
from repro.geo.weights import DistanceDecay
from repro.network.datasets import load_dataset
from repro.obs.profile import SamplingProfiler
from repro.obs.slo import SloTracker
from repro.obs.trace import NULL_TRACER
from repro.ris.corpus import RRCorpus
from repro.ris.coverage import weighted_greedy_cover
from repro.kernels import resolve_backend
from repro.ris.reference import reference_greedy_cover
from repro.ris.rrset import RRSampler

from .conftest import DEFAULT_ALPHA, emit, emit_json

TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")

#: Standard workload (calibrated so the reference kernel takes ~100 ms
#: for the whole query set); the tiny variant is the CI smoke shape.
SCALE = 0.1 if TINY else 0.5
N_SAMPLES = 2_000 if TINY else 30_000
K = 5 if TINY else 30
N_QUERIES = 2 if TINY else 4
REPS = 2 if TINY else 5

SPEEDUP_BAR = 3.0
OBS_OVERHEAD_BAR = 1.02
#: A profiler that is constructed but not started (plus per-query SLO
#: recording) must cost <= 2% over the bare kernel.
PROFILER_OFF_BAR = 1.02
#: Compiled kernels vs the numpy kernels, on the combined hot stages
#: (score_build + selection) — the ISSUE's acceptance bar.
NUMBA_STAGE_BAR = 3.0


def _eager_obs_off(corpus, w, k):
    """The default kernel under the disabled-tracer span pattern.

    Mirrors ``QueryEngine._serve`` with tracing off: one ``serve.query``
    span, one ``index.query`` child, attribute writes, and a no-op
    ``record_stages`` — all against :data:`NULL_TRACER`.
    """
    tracer = NULL_TRACER
    with tracer.span("serve.query", {"k": k}) as span:
        with tracer.span("index.query") as qspan:
            result = weighted_greedy_cover(
                corpus, w, k, compute_bound=False, method="eager"
            )
            tracer.record_stages(qspan, result.timings.as_dict())
        span.set_attribute("cached", False)
        span.set_attribute("fallback", False)
    return result


def _eager_prof_off(corpus, w, k, slo):
    """The obs(off) pattern plus the profiling layer, disabled.

    A ``SamplingProfiler`` exists but was never started (so the
    span-tracking registry stays off) and every query's outcome is
    recorded into a live ``SloTracker`` — the CLI's default serving
    shape with ``--profile-out`` absent.
    """
    t0 = time.perf_counter()
    result = _eager_obs_off(corpus, w, k)
    slo.record_query((time.perf_counter() - t0) * 1e3)
    return result


def _time_variant(fn, weights_per_query, reps):
    """Median seconds per full query set; returns (median, per-run results)."""
    times = []
    results = None
    for _ in range(reps):
        t0 = time.perf_counter()
        results = [fn(w) for w in weights_per_query]
        times.append(time.perf_counter() - t0)
    return statistics.median(times), results


def test_selection_kernel_speedup():
    network = load_dataset("brightkite", scale=SCALE)
    decay = DistanceDecay(c=1.0, alpha=DEFAULT_ALPHA)
    corpus = RRCorpus(RRSampler(network, seed=9))
    corpus.ensure(N_SAMPLES)
    root_coords = network.coords[corpus.roots]
    queries = random_queries(network, N_QUERIES, seed=23)
    weights = [decay.weights(root_coords, q) for q in queries]

    idle_profiler = SamplingProfiler()  # constructed, never started
    assert not idle_profiler.running
    slo = SloTracker()
    variants = {
        "reference": lambda w: reference_greedy_cover(corpus, w, K),
        "eager": lambda w: weighted_greedy_cover(
            corpus, w, K, compute_bound=False, method="eager"
        ),
        "lazy": lambda w: weighted_greedy_cover(
            corpus, w, K, compute_bound=False, method="lazy"
        ),
        "eager+bound": lambda w: weighted_greedy_cover(
            corpus, w, K, compute_bound=True, method="eager"
        ),
        "eager+obs(off)": lambda w: _eager_obs_off(corpus, w, K),
        "eager+prof(off)": lambda w: _eager_prof_off(corpus, w, K, slo),
    }
    numba_on = resolve_backend("auto") == "numba"
    if numba_on:
        variants["eager@numba"] = lambda w: weighted_greedy_cover(
            corpus, w, K, compute_bound=False, method="eager", backend="numba"
        )
        variants["lazy@numba"] = lambda w: weighted_greedy_cover(
            corpus, w, K, compute_bound=False, method="lazy", backend="numba"
        )

    # Warm shared lazy state (flat layout, inverted index) so no variant
    # pays the one-off corpus indexing cost inside its timed region; for
    # the compiled variants this is also where JIT compilation happens.
    for fn in variants.values():
        fn(weights[0])

    medians: dict[str, float] = {}
    results: dict[str, list] = {}
    for name, fn in variants.items():
        medians[name], results[name] = _time_variant(fn, weights, REPS)

    # Parity: every new variant must select the reference kernel's seeds
    # with matching gains, query by query.  This is the CI smoke gate.
    for name in (n for n in variants if n != "reference"):
        for qi, (new, ref) in enumerate(zip(results[name], results["reference"])):
            assert new.seeds == ref.seeds, (
                f"{name} diverged from reference on query {qi}: "
                f"{new.seeds} vs {ref.seeds}"
            )
            np.testing.assert_allclose(
                new.gains, ref.gains, rtol=1e-9, atol=1e-12,
                err_msg=f"{name} gains diverged on query {qi}",
            )

    # Per-stage medians (ms) of the default serving path, from the
    # kernel's own SelectionTimings.
    def _stage_medians(name):
        return {
            stage: statistics.median(
                r.timings.as_dict()[stage] for r in results[name]
            ) * 1e3
            for stage in ("score_build", "selection", "bound", "total")
        }

    stage_medians = _stage_medians("eager")
    numba_stage_medians = _stage_medians("eager@numba") if numba_on else None
    # Combined hot-stage bar: score_build + selection, numpy vs compiled.
    numba_stage_speedup = None
    if numba_on:
        numpy_hot = stage_medians["score_build"] + stage_medians["selection"]
        numba_hot = (
            numba_stage_medians["score_build"]
            + numba_stage_medians["selection"]
        )
        numba_stage_speedup = numpy_hot / numba_hot if numba_hot > 0 else None

    speedups = {
        name: medians["reference"] / medians[name]
        for name in variants if name != "reference"
    }
    obs_overhead = medians["eager+obs(off)"] / medians["eager"]
    profiler_off_overhead = medians["eager+prof(off)"] / medians["eager"]
    headers = ["variant", "median_ms", "speedup_vs_reference"]
    rows = [
        [name, f"{medians[name] * 1e3:.2f}",
         "1.00" if name == "reference" else f"{speedups[name]:.2f}"]
        for name in variants
    ]
    text = format_table(
        headers, rows,
        title=(
            f"selection kernels (brightkite scale={SCALE}, "
            f"{N_SAMPLES} samples, k={K}, {N_QUERIES} queries, "
            f"median of {REPS})"
        ),
    )
    emit("selection_kernels", text)
    emit_json("selection_kernels", {
        "workload": {
            "dataset": "brightkite", "scale": SCALE, "n_nodes": network.n,
            "n_samples": N_SAMPLES, "k": K, "n_queries": N_QUERIES,
            "reps": REPS, "tiny": TINY,
        },
        "median_ms": {n: m * 1e3 for n, m in medians.items()},
        "speedup_vs_reference": speedups,
        "eager_stage_median_ms": stage_medians,
        "kernel_backend": "numba" if numba_on else "numpy",
        "numba_stage_median_ms": numba_stage_medians,
        "numba_stage_speedup": numba_stage_speedup,
        "numba_stage_bar": NUMBA_STAGE_BAR,
        "numba_stage_bar_enforced": bool(numba_on and not TINY),
        "speedup_bar": SPEEDUP_BAR,
        "speedup_bar_enforced": not TINY,
        "obs_disabled_overhead": obs_overhead,
        "obs_overhead_bar": OBS_OVERHEAD_BAR,
        "obs_overhead_bar_enforced": not TINY,
        "profiler_off_overhead": profiler_off_overhead,
        "profiler_off_bar": PROFILER_OFF_BAR,
        "profiler_off_bar_enforced": not TINY,
    })

    if not TINY:
        assert speedups["eager"] >= SPEEDUP_BAR, (
            f"default kernel path only {speedups['eager']:.2f}x the "
            f"pre-PR kernel (bar: {SPEEDUP_BAR}x)"
        )
        assert obs_overhead <= OBS_OVERHEAD_BAR, (
            f"disabled-tracer serving wrapper is {obs_overhead:.3f}x the "
            f"bare kernel (bar: {OBS_OVERHEAD_BAR}x)"
        )
        assert profiler_off_overhead <= PROFILER_OFF_BAR, (
            f"profiler-off serving shape is {profiler_off_overhead:.3f}x "
            f"the bare kernel (bar: {PROFILER_OFF_BAR}x)"
        )
        if numba_on:
            assert numba_stage_speedup is not None
            assert numba_stage_speedup >= NUMBA_STAGE_BAR, (
                f"compiled kernels only {numba_stage_speedup:.2f}x the numpy "
                f"kernels on score_build+selection (bar: {NUMBA_STAGE_BAR}x)"
            )
