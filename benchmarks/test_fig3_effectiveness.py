"""Figure 3: effectiveness — influence spread vs k on all four datasets.

Paper's summary of results:
1. MIA-DA obtains slightly smaller influence spread compared with PMIA.
2. RIS-DA returns the largest influence spread among the three methods.
3. Spread increases with k on all datasets.

We regenerate the same series (three methods, k in {10..50}, per dataset)
with Monte-Carlo spread evaluation, and assert the qualitative shape.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import (
    DATASETS,
    K_RANGE,
    MC_ROUNDS,
    N_QUERIES,
    emit,
)
from repro.bench.reporting import format_series
from repro.bench.runner import evaluate_spread
from repro.bench.workloads import random_queries


def run_dataset(name, networks, pmia_baselines, mia_indexes, ris_indexes, decay):
    net = networks[name]
    queries = random_queries(net, N_QUERIES, seed=100)
    series = {"PMIA": [], "MIA-DA": [], "RIS-DA": []}
    for k in K_RANGE:
        spreads = {m: [] for m in series}
        for q in queries:
            w = decay.weights(net.coords, q)
            seeds_pmia, _ = pmia_baselines[name].select(w, k)
            seeds_mia = mia_indexes[name].query(q, k).seeds
            seeds_ris = ris_indexes[name].query(q, k).seeds
            for m, seeds in (
                ("PMIA", seeds_pmia),
                ("MIA-DA", seeds_mia),
                ("RIS-DA", seeds_ris),
            ):
                spreads[m].append(
                    evaluate_spread(net, seeds, decay, q, MC_ROUNDS, seed=7)
                )
        for m in series:
            series[m].append(round(float(np.mean(spreads[m])), 2))
    return series


@pytest.mark.parametrize("name", DATASETS)
def test_fig3_effectiveness(
    name, networks, pmia_baselines, mia_indexes, ris_indexes, decay, benchmark
):
    series = benchmark.pedantic(
        lambda: run_dataset(
            name, networks, pmia_baselines, mia_indexes, ris_indexes, decay
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        f"fig3_effectiveness_{name}",
        format_series(
            "k", list(K_RANGE), series,
            title=f"Figure 3 ({name}): influence spread vs k",
        ),
    )

    # Shape 1: spread increases with k for every method.
    for m, vals in series.items():
        assert vals[-1] > vals[0], (name, m, vals)
    # Shape 2: RIS-DA is competitive with the MIA family — at least ~90%
    # of the best method at every k (the paper reports it largest).
    for i in range(len(K_RANGE)):
        best = max(series[m][i] for m in series)
        assert series["RIS-DA"][i] >= 0.85 * best, (name, i, series)
    # Shape 3: MIA-DA tracks PMIA closely (same model, lossless pruning).
    for i in range(len(K_RANGE)):
        assert series["MIA-DA"][i] == pytest.approx(
            series["PMIA"][i], rel=0.25
        ), (name, i)
