"""Figure 7: effect of the average distance between users and the query.

Paper's claims: partitioning queries into quintiles by average user
distance (0-20 closest ... 80-100 farthest), the influence spread
decreases as the distance grows (user weights shrink), while the
processing time changes only slightly (the bounds depend on the distance
to the nearest sampled location, not to the users).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import (
    DEFAULT_K,
    MC_ROUNDS,
    PARAM_DATASETS,
    emit,
)
from repro.bench.reporting import format_series
from repro.bench.runner import evaluate_spread
from repro.bench.workloads import distance_partitioned_queries

BUCKET_LABELS = ("0-20", "20-40", "40-60", "60-80", "80-100")


def run_dataset(name, networks, mia_indexes, ris_indexes, decay):
    net = networks[name]
    buckets = distance_partitioned_queries(
        net, per_bucket=2, n_buckets=5, candidates=300, seed=500
    )
    series = {
        "MIA-DA_influence": [], "RIS-DA_influence": [],
        "MIA-DA_time_ms": [], "RIS-DA_time_ms": [],
    }
    for bucket in buckets:
        vals = {k: [] for k in series}
        for q in bucket:
            r_mia = mia_indexes[name].query(q, DEFAULT_K)
            r_ris = ris_indexes[name].query(q, DEFAULT_K)
            vals["MIA-DA_time_ms"].append(r_mia.elapsed * 1000)
            vals["RIS-DA_time_ms"].append(r_ris.elapsed * 1000)
            vals["MIA-DA_influence"].append(
                evaluate_spread(net, r_mia.seeds, decay, q, MC_ROUNDS, seed=9)
            )
            vals["RIS-DA_influence"].append(
                evaluate_spread(net, r_ris.seeds, decay, q, MC_ROUNDS, seed=9)
            )
        for k in series:
            series[k].append(round(float(np.mean(vals[k])), 2))
    return series


@pytest.mark.parametrize("name", PARAM_DATASETS)
def test_fig7_user_distance(
    name, networks, mia_indexes, ris_indexes, decay, benchmark
):
    series = benchmark.pedantic(
        lambda: run_dataset(name, networks, mia_indexes, ris_indexes, decay),
        rounds=1,
        iterations=1,
    )
    emit(
        f"fig7_distance_{name}",
        format_series(
            "bucket", list(BUCKET_LABELS), series,
            title=(
                f"Figure 7 ({name}): queries bucketed by average user "
                "distance (closest to farthest)"
            ),
        ),
    )

    # Shape: influence decreases from the closest to the farthest bucket.
    for m in ("MIA-DA_influence", "RIS-DA_influence"):
        assert series[m][0] > series[m][-1], (name, m, series[m])
