"""Ablation: RIS-DA's prefix-sample online answering.

DESIGN.md decision 2 (and paper Section 5.3): "we on the fly compute the
sample size needed for the given query instead of using all the samples,
since building the bipartite graph and computing each initial weighted
coverage takes the majority of computation cost."  This ablation compares
answering from the Lemma-7 prefix vs the full indexed pool: same-quality
seeds, much lower latency.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import DEFAULT_K, MC_ROUNDS, emit
from repro.bench.reporting import format_table
from repro.bench.runner import evaluate_spread
from repro.bench.workloads import random_queries
from repro.ris.coverage import weighted_greedy_cover


def run(networks, ris_indexes, decay):
    rows = []
    for name in ("gowalla", "twitter"):
        net = networks[name]
        index = ris_indexes[name]
        queries = random_queries(net, 3, seed=700)
        prefix_t, full_t = [], []
        prefix_spread, full_spread = [], []
        for q in queries:
            start = time.perf_counter()
            res = index.query(q, DEFAULT_K)
            prefix_t.append(time.perf_counter() - start)
            prefix_spread.append(
                evaluate_spread(net, res.seeds, decay, q, MC_ROUNDS, seed=11)
            )

            # Full-pool variant: same greedy, all indexed samples.
            start = time.perf_counter()
            roots = index.corpus.roots
            sw = index.decay.weights(net.coords[roots], q)
            cover = weighted_greedy_cover(index.corpus, sw, DEFAULT_K)
            full_t.append(time.perf_counter() - start)
            full_spread.append(
                evaluate_spread(net, cover.seeds, decay, q, MC_ROUNDS, seed=11)
            )
        rows.append(
            [
                name,
                round(float(np.mean(prefix_t)) * 1000, 2),
                round(float(np.mean(full_t)) * 1000, 2),
                round(float(np.mean(full_t)) / float(np.mean(prefix_t)), 2),
                round(float(np.mean(prefix_spread)), 2),
                round(float(np.mean(full_spread)), 2),
            ]
        )
    return rows


def test_ablation_prefix_answering(networks, ris_indexes, decay, benchmark):
    rows = benchmark.pedantic(
        lambda: run(networks, ris_indexes, decay), rounds=1, iterations=1
    )
    emit(
        "ablation_prefix",
        format_table(
            ["dataset", "prefix_ms", "full_pool_ms", "speedup",
             "prefix_influence", "full_influence"],
            rows,
            title="Ablation: Lemma-7 prefix vs full sample pool (k=30)",
        ),
    )
    for row in rows:
        # Full pool must not be faster, and quality must be comparable.
        assert row[2] >= row[1] * 0.8, row
        assert row[4] == pytest.approx(row[5], rel=0.3), row
