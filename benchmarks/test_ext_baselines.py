"""Extension benchmark: heuristic baselines vs the paper's methods.

Not a paper figure, but the standard IM-paper sanity table: how much
influence do cheap heuristics leave on the table relative to MIA-DA /
RIS-DA, and at what cost?  Expected shape: proximity-only (TopWeight)
clearly worst, degree-based heuristics in between, the index methods on
top — at millisecond-scale latencies for the heuristics.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import DEFAULT_K, MC_ROUNDS, N_QUERIES, emit
from repro.bench.reporting import format_table
from repro.bench.runner import evaluate_spread
from repro.bench.workloads import random_queries
from repro.core.heuristics import (
    degree_discount,
    top_degree,
    top_weight,
    top_weighted_degree,
)


def run(networks, mia_indexes, ris_indexes, decay):
    name = "gowalla"
    net = networks[name]
    queries = random_queries(net, N_QUERIES, seed=950)
    methods = {
        "TopWeight": lambda q, k: top_weight(net, q, k, decay),
        "TopDegree": lambda q, k: top_degree(net, k),
        "TopWeightedDegree": lambda q, k: top_weighted_degree(net, q, k, decay),
        "DegreeDiscount": lambda q, k: degree_discount(net, q, k, decay),
        "MIA-DA": lambda q, k: mia_indexes[name].query(q, k),
        "RIS-DA": lambda q, k: ris_indexes[name].query(q, k),
    }
    rows = []
    spread_by_method = {}
    for mname, fn in methods.items():
        spreads, times = [], []
        for q in queries:
            res = fn(q, DEFAULT_K)
            times.append(res.elapsed * 1000)
            spreads.append(
                evaluate_spread(net, res.seeds, decay, q, MC_ROUNDS, seed=12)
            )
        avg = float(np.mean(spreads))
        spread_by_method[mname] = avg
        rows.append([mname, round(avg, 2), round(float(np.mean(times)), 3)])
    return rows, spread_by_method


def test_ext_baseline_quality(
    networks, mia_indexes, ris_indexes, decay, benchmark
):
    rows, spreads = benchmark.pedantic(
        lambda: run(networks, mia_indexes, ris_indexes, decay),
        rounds=1,
        iterations=1,
    )
    emit(
        "ext_baselines",
        format_table(
            ["method", "influence", "time_ms"],
            rows,
            title=(
                "Extension: heuristic baselines vs index methods "
                "(Gowalla, k=30)"
            ),
        ),
    )
    # Shape: the exact methods dominate every heuristic; proximity-only
    # is the weakest informative baseline.
    best_exact = max(spreads["MIA-DA"], spreads["RIS-DA"])
    for h in ("TopWeight", "TopDegree", "TopWeightedDegree", "DegreeDiscount"):
        assert spreads[h] <= best_exact * 1.02, (h, spreads)
    assert spreads["TopWeight"] < best_exact, spreads
