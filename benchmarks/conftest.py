"""Shared fixtures and helpers for the figure-reproduction benchmarks.

Every benchmark writes its paper-shaped output (the same rows/series the
paper plots) to ``benchmarks/results/<name>.txt`` *and* prints it, so the
tables survive pytest's output capture.  Index construction is done once
per session and shared across figures.

Scaling: graphs are laptop-scaled stand-ins for the paper's datasets (see
DESIGN.md).  The ``REPRO_SCALE`` environment variable stretches them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict

import pytest

from repro.core.mia_da import MiaDaConfig, MiaDaIndex
from repro.core.ris_da import RisDaConfig, RisDaIndex
from repro.geo.weights import DistanceDecay
from repro.mia.pmia import MiaModel, PmiaDa
from repro.network.datasets import load_dataset
from repro.obs.env import runtime_info

RESULTS_DIR = Path(__file__).parent / "results"

#: Repo root; machine-readable bench files are mirrored here so CI
#: artifact globs and release tooling pick them up without digging into
#: benchmarks/results/.
REPO_ROOT = Path(__file__).parent.parent

#: The paper's four datasets, smallest to largest.
DATASETS = ("brightkite", "gowalla", "twitter", "foursquare")

#: The two datasets the paper uses for parameter studies (Figures 5-8).
PARAM_DATASETS = ("gowalla", "twitter")

#: Paper defaults (Section 5.1).
DEFAULT_ALPHA = 0.01
DEFAULT_K = 30
K_RANGE = (10, 20, 30, 40, 50)
THETA = 0.05

#: Laptop-scaled index parameters (paper: 300 anchors, 2000 pivots).
N_ANCHORS = 60
N_PIVOTS = 24
EPS_PIVOT = 0.35
MAX_SAMPLES = 80_000

#: Monte-Carlo rounds for spread evaluation (paper: 10000).
MC_ROUNDS = int(os.environ.get("REPRO_MC_ROUNDS", "200"))

#: Queries averaged per data point (paper averages over its query set).
N_QUERIES = int(os.environ.get("REPRO_N_QUERIES", "3"))


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n=== {name} ===\n{text}\n")


def emit_json(
    section: str, payload: dict, name: str = "BENCH_query_kernels"
) -> None:
    """Merge one section into ``benchmarks/results/<name>.json``.

    The kernel benchmarks (``test_selection_kernels``,
    ``test_query_throughput``) each contribute a section to one
    machine-readable file, so partial runs update their own section
    without clobbering the others.  An unreadable existing file is
    replaced rather than crashing the benchmark.  The merged file is
    mirrored to the repo root (same name) for artifact collection.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    data: dict = {}
    if path.exists():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(loaded, dict):
                data = loaded
        except ValueError:
            pass
    data[section] = payload
    # Stamp the machine context so results files are comparable across
    # hosts (python/numpy/BLAS/CPU are the variables that move numbers).
    data["environment"] = runtime_info()
    text = json.dumps(data, indent=2, sort_keys=True) + "\n"
    path.write_text(text, encoding="utf-8")
    (REPO_ROOT / f"{name}.json").write_text(text, encoding="utf-8")
    print(f"\n=== {name}.json [{section}] updated ===\n")


@pytest.fixture(scope="session")
def decay() -> DistanceDecay:
    return DistanceDecay(c=1.0, alpha=DEFAULT_ALPHA)


@pytest.fixture(scope="session")
def networks() -> Dict[str, object]:
    return {name: load_dataset(name) for name in DATASETS}


@pytest.fixture(scope="session")
def mia_models(networks) -> Dict[str, MiaModel]:
    return {
        name: MiaModel(net, theta=THETA) for name, net in networks.items()
    }


@pytest.fixture(scope="session")
def pmia_baselines(networks, mia_models) -> Dict[str, PmiaDa]:
    return {
        name: PmiaDa(networks[name], model=mia_models[name])
        for name in DATASETS
    }


@pytest.fixture(scope="session")
def mia_indexes(networks, mia_models, decay) -> Dict[str, MiaDaIndex]:
    cfg = MiaDaConfig(theta=THETA, n_anchors=N_ANCHORS, tau=200, seed=0)
    return {
        name: MiaDaIndex(networks[name], decay, cfg, model=mia_models[name])
        for name in DATASETS
    }


@pytest.fixture(scope="session")
def ris_indexes(networks, decay) -> Dict[str, RisDaIndex]:
    out = {}
    for name in DATASETS:
        cfg = RisDaConfig(
            k_max=max(K_RANGE),
            n_pivots=N_PIVOTS,
            epsilon_pivot=EPS_PIVOT,
            max_index_samples=MAX_SAMPLES,
            seed=1,
        )
        out[name] = RisDaIndex(networks[name], decay, cfg)
    return out
