"""Extension benchmark: RIS-DA under the linear threshold model.

Not a paper figure — the paper evaluates IC only — but the library
supports LT end to end (RR sampling, lower bound, index), so this bench
records the LT-vs-IC comparison on one dataset: same machinery, different
diffusion, sensible spreads under both.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import (
    DEFAULT_K,
    EPS_PIVOT,
    MAX_SAMPLES,
    N_PIVOTS,
    N_QUERIES,
    emit,
)
from repro.bench.reporting import format_table
from repro.bench.workloads import random_queries
from repro.core.ris_da import RisDaConfig, RisDaIndex
from repro.diffusion.lt import lt_spread
from repro.diffusion.spread import monte_carlo_weighted_spread


def run(networks, decay):
    net = networks["gowalla"]
    queries = random_queries(net, N_QUERIES, seed=900)
    rows = []
    for diffusion in ("ic", "lt"):
        cfg = RisDaConfig(
            k_max=DEFAULT_K, n_pivots=N_PIVOTS, epsilon_pivot=EPS_PIVOT,
            max_index_samples=MAX_SAMPLES, diffusion=diffusion, seed=10,
        )
        index = RisDaIndex(net, decay, cfg)
        spreads, times = [], []
        for q in queries:
            res = index.query(q, DEFAULT_K)
            times.append(res.elapsed * 1000)
            w = decay.weights(net.coords, q)
            if diffusion == "ic":
                spreads.append(
                    monte_carlo_weighted_spread(
                        net, res.seeds, node_weights=w, rounds=150, seed=11
                    ).value
                )
            else:
                spreads.append(
                    lt_spread(net, res.seeds, rounds=150, node_weights=w,
                              seed=11)
                )
        rows.append(
            [
                diffusion.upper(),
                round(float(np.mean(spreads)), 2),
                round(float(np.mean(times)), 2),
                round(index.corpus.average_size(), 2),
            ]
        )
    return rows


def test_ext_lt_ris_da(networks, decay, benchmark):
    rows = benchmark.pedantic(lambda: run(networks, decay), rounds=1,
                              iterations=1)
    emit(
        "ext_lt_ris_da",
        format_table(
            ["model", "influence", "time_ms", "avg_rr_size"],
            rows,
            title=(
                "Extension: RIS-DA under IC vs LT diffusion "
                "(Gowalla, k=30; spread evaluated under each model)"
            ),
        ),
    )
    for row in rows:
        assert row[1] > 0, row
