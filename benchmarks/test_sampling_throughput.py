"""Sampling throughput: serial vs parallel RR-set generation.

The offline phase of RIS-DA is dominated by RR-set sampling, which the
worker-pool engine (:mod:`repro.ris.parallel`) parallelises with
deterministic per-chunk RNG streams.  This benchmark records the
serial-vs-parallel speedup so the trajectory captures the win; the >= 2x
assertion at 4 workers only fires when the machine actually exposes >= 4
cores (a single-core container cannot speed anything up).

``test_coupled_backend_throughput`` times the counter-based coupled
sampler's reverse-BFS inner loop on the numpy backend vs the compiled
one (when the optional numba extra resolves): the two hash the same
coin domain, so the batches must be **bit-identical**, and on a
standard (non-tiny) run the compiled traversal must be >= 2x the
numpy one.  Without numba the test still runs the numpy timing and
publishes it report-only.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import emit, emit_json
from repro.bench.reporting import format_table
from repro.bench.workloads import sampling_throughput
from repro.kernels import resolve_backend
from repro.network.datasets import load_dataset
from repro.ris.coupled import CoupledRRSampler
from repro.ris.parallel import ParallelRRSampler

TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")

N_SAMPLES = int(os.environ.get("REPRO_THROUGHPUT_SAMPLES", "20000"))
WORKER_COUNTS = (1, 2, 4)

#: Coupled-sampler backend comparison workload and acceptance bar.
COUPLED_SAMPLES = 2_000 if TINY else 20_000
COUPLED_REPS = 2 if TINY else 3
COUPLED_BAR = 2.0


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_sampling_throughput():
    network = load_dataset("gowalla")
    rows = sampling_throughput(
        network, N_SAMPLES, workers=WORKER_COUNTS, seed=3
    )
    table = format_table(
        ["workers", "samples", "sec", "samples/s", "speedup"],
        [list(r.as_row().values()) for r in rows],
        title=f"RR-set sampling throughput ({network.n} nodes, "
        f"{_available_cores()} cores visible)",
    )
    emit("sampling_throughput", table)

    assert [r.workers for r in rows] == list(WORKER_COUNTS)
    assert all(r.samples == N_SAMPLES for r in rows)
    assert all(r.seconds > 0 for r in rows)
    # The speedup claim is only testable on hardware with enough cores.
    if _available_cores() >= 4:
        by_workers = {r.workers: r for r in rows}
        assert by_workers[4].speedup >= 2.0, (
            f"expected >= 2x speedup at 4 workers, got "
            f"{by_workers[4].speedup:.2f}x"
        )


def _time_coupled(network, backend: str) -> tuple[float, tuple]:
    """Median seconds for one COUPLED_SAMPLES batch on ``backend``.

    A fresh sampler per rep keeps the key range identical across
    backends (sample_batch advances draw_count), so the returned batch
    tuple is directly comparable bit-for-bit.
    """
    times = []
    batch = None
    for _ in range(COUPLED_REPS):
        sampler = CoupledRRSampler(network, seed=7, kernel_backend=backend)
        t0 = time.perf_counter()
        batch = sampler.sample_batch(COUPLED_SAMPLES)
        times.append(time.perf_counter() - t0)
    times.sort()
    return times[len(times) // 2], batch


def test_coupled_backend_throughput():
    network = load_dataset("brightkite", scale=0.2 if TINY else 1.0)
    numba_on = resolve_backend("auto") == "numba"

    if numba_on:
        # Warm-up: first compiled call pays JIT compilation; keep it out
        # of the timed region (compile caches make later runs cheap).
        CoupledRRSampler(network, seed=7, kernel_backend="numba").sample_batch(16)

    numpy_sec, numpy_batch = _time_coupled(network, "numpy")
    rows = [{
        "backend": "numpy",
        "samples": COUPLED_SAMPLES,
        "sec": round(numpy_sec, 4),
        "samples/s": int(COUPLED_SAMPLES / numpy_sec),
        "speedup": 1.0,
    }]
    speedup = None
    if numba_on:
        numba_sec, numba_batch = _time_coupled(network, "numba")
        speedup = numpy_sec / numba_sec
        rows.append({
            "backend": "numba",
            "samples": COUPLED_SAMPLES,
            "sec": round(numba_sec, 4),
            "samples/s": int(COUPLED_SAMPLES / numba_sec),
            "speedup": round(speedup, 2),
        })
        # The coupling contract: same (seed, keys, graph) -> identical
        # batches, backend-independent.
        for name, a, b in zip(
            ("keys", "roots", "flat", "offsets"), numpy_batch, numba_batch
        ):
            assert np.array_equal(a, b), (
                f"coupled sampler {name} diverged between backends"
            )

    text = format_table(
        list(rows[0]),
        [list(r.values()) for r in rows],
        title=(
            f"coupled reverse-BFS sampling ({network.n} nodes, "
            f"{COUPLED_SAMPLES} slots, median of {COUPLED_REPS})"
        ),
    )
    emit("coupled_backend_throughput", text)
    emit_json("coupled_sampling", {
        "workload": {
            "dataset": "brightkite", "n_nodes": network.n,
            "n_samples": COUPLED_SAMPLES, "reps": COUPLED_REPS, "tiny": TINY,
        },
        "rows": rows,
        "kernel_backend": "numba" if numba_on else "numpy",
        "numba_speedup": speedup,
        "speedup_bar": COUPLED_BAR,
        "speedup_bar_enforced": bool(numba_on and not TINY),
    })

    if numba_on and not TINY:
        assert speedup >= COUPLED_BAR, (
            f"compiled reverse-BFS only {speedup:.2f}x the numpy traversal "
            f"(bar: {COUPLED_BAR}x)"
        )


def test_parallel_corpus_reproducible():
    """The benchmark's determinism premise: same (seed, workers) -> same corpus."""
    network = load_dataset("brightkite")
    a = ParallelRRSampler(network, seed=11, n_workers=4)
    b = ParallelRRSampler(network, seed=11, n_workers=4)
    try:
        ra, fa, oa = a.sample_many_flat(4000)
        rb, fb, ob = b.sample_many_flat(4000)
    finally:
        a.close()
        b.close()
    assert np.array_equal(ra, rb)
    assert np.array_equal(fa, fb)
    assert np.array_equal(oa, ob)
