"""Sampling throughput: serial vs parallel RR-set generation.

The offline phase of RIS-DA is dominated by RR-set sampling, which the
worker-pool engine (:mod:`repro.ris.parallel`) parallelises with
deterministic per-chunk RNG streams.  This benchmark records the
serial-vs-parallel speedup so the trajectory captures the win; the >= 2x
assertion at 4 workers only fires when the machine actually exposes >= 4
cores (a single-core container cannot speed anything up).
"""

from __future__ import annotations

import os

import numpy as np

from benchmarks.conftest import emit
from repro.bench.reporting import format_table
from repro.bench.workloads import sampling_throughput
from repro.network.datasets import load_dataset
from repro.ris.parallel import ParallelRRSampler

N_SAMPLES = int(os.environ.get("REPRO_THROUGHPUT_SAMPLES", "20000"))
WORKER_COUNTS = (1, 2, 4)


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_sampling_throughput():
    network = load_dataset("gowalla")
    rows = sampling_throughput(
        network, N_SAMPLES, workers=WORKER_COUNTS, seed=3
    )
    table = format_table(
        ["workers", "samples", "sec", "samples/s", "speedup"],
        [list(r.as_row().values()) for r in rows],
        title=f"RR-set sampling throughput ({network.n} nodes, "
        f"{_available_cores()} cores visible)",
    )
    emit("sampling_throughput", table)

    assert [r.workers for r in rows] == list(WORKER_COUNTS)
    assert all(r.samples == N_SAMPLES for r in rows)
    assert all(r.seconds > 0 for r in rows)
    # The speedup claim is only testable on hardware with enough cores.
    if _available_cores() >= 4:
        by_workers = {r.workers: r for r in rows}
        assert by_workers[4].speedup >= 2.0, (
            f"expected >= 2x speedup at 4 workers, got "
            f"{by_workers[4].speedup:.2f}x"
        )


def test_parallel_corpus_reproducible():
    """The benchmark's determinism premise: same (seed, workers) -> same corpus."""
    network = load_dataset("brightkite")
    a = ParallelRRSampler(network, seed=11, n_workers=4)
    b = ParallelRRSampler(network, seed=11, n_workers=4)
    try:
        ra, fa, oa = a.sample_many_flat(4000)
        rb, fb, ob = b.sample_many_flat(4000)
    finally:
        a.close()
        b.close()
    assert np.array_equal(ra, rb)
    assert np.array_equal(fa, fb)
    assert np.array_equal(oa, ob)
