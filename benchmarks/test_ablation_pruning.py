"""Ablation: MIA-DA's pruning rules and priority search.

DESIGN.md decision 3: the priority-based search with anchor/region bounds
evaluates only a fraction of the candidates PMIA touches, at *zero* loss —
the seed sets are identical.  This ablation quantifies evaluations saved
and latency, and verifies the losslessness on every query.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import DEFAULT_K, emit
from repro.bench.reporting import format_table
from repro.bench.workloads import random_queries


def run(networks, pmia_baselines, mia_indexes, decay):
    rows = []
    for name in ("gowalla", "foursquare"):
        net = networks[name]
        queries = random_queries(net, 4, seed=800)
        evals, pm_t, da_t = [], [], []
        for q in queries:
            start = time.perf_counter()
            res = mia_indexes[name].query(q, DEFAULT_K)
            da_t.append(time.perf_counter() - start)
            evals.append(res.evaluations)

            w = decay.weights(net.coords, q)
            start = time.perf_counter()
            pm_seeds, _ = pmia_baselines[name].select(w, DEFAULT_K)
            pm_t.append(time.perf_counter() - start)

            assert res.seeds == pm_seeds, (name, q)
        rows.append(
            [
                name,
                net.n,
                int(np.mean(evals)),
                round(100.0 * float(np.mean(evals)) / net.n, 1),
                round(float(np.mean(da_t)) * 1000, 2),
                round(float(np.mean(pm_t)) * 1000, 2),
            ]
        )
    return rows


def test_ablation_pruning(
    networks, pmia_baselines, mia_indexes, decay, benchmark
):
    rows = benchmark.pedantic(
        lambda: run(networks, pmia_baselines, mia_indexes, decay),
        rounds=1,
        iterations=1,
    )
    emit(
        "ablation_pruning",
        format_table(
            ["dataset", "nodes", "evaluations", "evals_pct_of_n",
             "MIA-DA_ms", "PMIA_ms"],
            rows,
            title=(
                "Ablation: MIA-DA priority search vs full PMIA greedy "
                "(k=30; seed sets verified identical)"
            ),
        ),
    )
    for row in rows:
        # Pruning must skip the vast majority of candidates.
        assert row[3] < 60.0, row
