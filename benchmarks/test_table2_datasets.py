"""Table 2: dataset statistics (paper scale vs reproduction scale).

Regenerates the dataset table with both the paper's reported sizes and
the synthetic stand-ins actually used, asserting that the stand-ins
preserve the size ordering and edge density of Table 2.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import DATASETS, emit
from repro.bench.reporting import format_table
from repro.network.datasets import DATASET_RECIPES
from repro.network.stats import summarize


def build_table(networks) -> str:
    rows = []
    for name in DATASETS:
        recipe = DATASET_RECIPES[name]
        stats = summarize(networks[name])
        rows.append(
            [
                recipe.name,
                f"{recipe.paper_nodes:,}",
                f"{recipe.paper_edges:,}",
                stats.n_nodes,
                stats.n_edges,
                round(stats.avg_out_degree, 2),
            ]
        )
    return format_table(
        ["dataset", "paper_n", "paper_m", "ours_n", "ours_m", "ours_deg"],
        rows,
        title="Table 2: datasets (paper scale vs laptop-scaled stand-ins)",
    )


def test_table2_dataset_statistics(networks, benchmark):
    table = benchmark.pedantic(
        lambda: build_table(networks), rounds=1, iterations=1
    )
    emit("table2_datasets", table)

    # Shape assertions: ordering and density fidelity.
    sizes = [networks[name].n for name in DATASETS]
    assert sizes == sorted(sizes), "node-count ordering must match Table 2"
    for name in DATASETS:
        recipe = DATASET_RECIPES[name]
        net = networks[name]
        paper_density = recipe.paper_edges / recipe.paper_nodes
        ours_density = net.m / net.n
        assert ours_density == pytest.approx(paper_density, rel=0.25), name
