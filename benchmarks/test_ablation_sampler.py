"""Ablation: the weighted-cascade binomial fast path in RR sampling.

DESIGN.md decision 1: under the WC model every in-edge of a node shares
one probability, so the sampler draws a Binomial success count plus a
choice-without-replacement instead of flipping per-edge coins.  This
ablation measures the speedup (and double-checks distributional
equivalence at the aggregate level).
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import emit
from repro.bench.reporting import format_table
from repro.network.graph import GeoSocialNetwork
from repro.ris.rrset import RRSampler

N_SAMPLES = 3000


def _force_generic(net: GeoSocialNetwork) -> GeoSocialNetwork:
    """Perturb one probability so the uniformity check fails."""
    edges, probs = net.edge_array()
    probs = probs.copy()
    probs[0] = max(probs[0] * (1 - 1e-9), 0.0)
    return GeoSocialNetwork(net.n, edges, probs, net.coords.copy())


def run(networks):
    rows = []
    for name in ("gowalla", "foursquare"):
        net = networks[name]
        generic_net = _force_generic(net)

        fast = RRSampler(net, seed=0)
        assert fast._uniform_p is not None
        start = time.perf_counter()
        _, fast_members = fast.sample_many(N_SAMPLES)
        fast_t = time.perf_counter() - start

        slow = RRSampler(generic_net, seed=0)
        assert slow._uniform_p is None
        start = time.perf_counter()
        _, slow_members = slow.sample_many(N_SAMPLES)
        slow_t = time.perf_counter() - start

        fast_avg = float(np.mean([len(m) for m in fast_members]))
        slow_avg = float(np.mean([len(m) for m in slow_members]))
        rows.append(
            [
                name,
                round(fast_t * 1000, 1),
                round(slow_t * 1000, 1),
                round(slow_t / fast_t, 2),
                round(fast_avg, 2),
                round(slow_avg, 2),
            ]
        )
        # Distributional sanity: average RR-set size must agree closely.
        assert fast_avg == (
            __import__("pytest").approx(slow_avg, rel=0.15)
        ), name
    return rows


def test_ablation_wc_fast_path(networks, benchmark):
    rows = benchmark.pedantic(lambda: run(networks), rounds=1, iterations=1)
    emit(
        "ablation_sampler",
        format_table(
            ["dataset", "fast_ms", "generic_ms", "speedup",
             "fast_avg_size", "generic_avg_size"],
            rows,
            title=(
                f"Ablation: binomial fast path vs per-edge coins "
                f"({N_SAMPLES} RR sets)"
            ),
        ),
    )
