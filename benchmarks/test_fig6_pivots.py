"""Figure 6: effect of the number of pivots in RIS-DA (Gowalla, Twitter).

Paper's claims: increasing the pivot count from 1000 to 3000
(laptop-scaled here) decreases response time — the expected distance from
a query to its nearest pivot shrinks, the Lemma 8 bound tightens, and the
online sample prefix gets smaller — while the influence spread barely
changes (the error guarantee is the same).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import (
    DEFAULT_K,
    EPS_PIVOT,
    MAX_SAMPLES,
    MC_ROUNDS,
    N_QUERIES,
    PARAM_DATASETS,
    emit,
)
from repro.bench.reporting import format_series
from repro.bench.runner import evaluate_spread
from repro.bench.workloads import random_queries
from repro.core.ris_da import RisDaConfig, RisDaIndex

#: Laptop-scaled pivot sweep (paper: 1000, 1500, 2000, 2500, 3000).
PIVOT_COUNTS = (8, 16, 32, 64)


def run_dataset(name, networks, decay):
    net = networks[name]
    queries = random_queries(net, N_QUERIES, seed=400)
    spread_row, time_row, samples_row = [], [], []
    for n_pivots in PIVOT_COUNTS:
        cfg = RisDaConfig(
            k_max=DEFAULT_K, n_pivots=n_pivots, epsilon_pivot=EPS_PIVOT,
            max_index_samples=MAX_SAMPLES, seed=2,
        )
        index = RisDaIndex(net, decay, cfg)
        spreads, times, samples = [], [], []
        for q in queries:
            res = index.query(q, DEFAULT_K)
            times.append(res.elapsed * 1000.0)
            samples.append(res.samples_used)
            spreads.append(
                evaluate_spread(net, res.seeds, decay, q, MC_ROUNDS, seed=8)
            )
        spread_row.append(round(float(np.mean(spreads)), 2))
        time_row.append(round(float(np.mean(times)), 2))
        samples_row.append(int(np.mean(samples)))
    return spread_row, time_row, samples_row


@pytest.mark.parametrize("name", PARAM_DATASETS)
def test_fig6_pivot_count(name, networks, decay, benchmark):
    spread_row, time_row, samples_row = benchmark.pedantic(
        lambda: run_dataset(name, networks, decay), rounds=1, iterations=1
    )
    emit(
        f"fig6_pivots_{name}",
        format_series(
            "pivots", list(PIVOT_COUNTS),
            {
                "influence": spread_row,
                "time_ms": time_row,
                "samples_used": samples_row,
            },
            title=(
                f"Figure 6 ({name}): RIS-DA vs number of pivots "
                "(paper: 1000-3000, scaled)"
            ),
        ),
    )

    # Shape 1: spread barely changes with pivot count (same guarantee).
    assert max(spread_row) <= 1.35 * max(min(spread_row), 1e-9), (
        name, spread_row,
    )
    # Shape 2: more pivots -> fewer online samples needed (tighter bound),
    # the mechanism behind the paper's response-time drop.
    assert samples_row[-1] <= samples_row[0], (name, samples_row)
