"""Figure 8: impact of the decay parameter alpha (Gowalla, Twitter).

Paper's claims: as alpha grows from 0.001 to 0.01, the influence spread
decreases (every node's weight shrinks with faster decay), and the
processing time of both MIA-DA and RIS-DA increases (faster decay loosens
the anchor/pivot transfer bounds, so more nodes must be evaluated / more
samples used).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import (
    DEFAULT_K,
    EPS_PIVOT,
    MAX_SAMPLES,
    MC_ROUNDS,
    N_ANCHORS,
    N_PIVOTS,
    N_QUERIES,
    PARAM_DATASETS,
    THETA,
    emit,
)
from repro.bench.reporting import format_series
from repro.bench.runner import evaluate_spread
from repro.bench.workloads import random_queries
from repro.core.mia_da import MiaDaConfig, MiaDaIndex
from repro.core.ris_da import RisDaConfig, RisDaIndex

ALPHAS = (0.001, 0.0025, 0.005, 0.01)


def run_dataset(name, networks, mia_models, decay_base):
    net = networks[name]
    queries = random_queries(net, N_QUERIES, seed=600)
    series = {
        "MIA-DA_influence": [], "RIS-DA_influence": [],
        "MIA-DA_time_ms": [], "RIS-DA_time_ms": [],
    }
    for alpha in ALPHAS:
        decay = decay_base.with_alpha(alpha)
        mia = MiaDaIndex(
            net, decay,
            MiaDaConfig(theta=THETA, n_anchors=N_ANCHORS, tau=200, seed=3),
            model=mia_models[name],
        )
        ris = RisDaIndex(
            net, decay,
            RisDaConfig(
                k_max=DEFAULT_K, n_pivots=N_PIVOTS, epsilon_pivot=EPS_PIVOT,
                max_index_samples=MAX_SAMPLES, seed=4,
            ),
        )
        vals = {k: [] for k in series}
        for q in queries:
            r_mia = mia.query(q, DEFAULT_K)
            r_ris = ris.query(q, DEFAULT_K)
            vals["MIA-DA_time_ms"].append(r_mia.elapsed * 1000)
            vals["RIS-DA_time_ms"].append(r_ris.elapsed * 1000)
            vals["MIA-DA_influence"].append(
                evaluate_spread(net, r_mia.seeds, decay, q, MC_ROUNDS, seed=10)
            )
            vals["RIS-DA_influence"].append(
                evaluate_spread(net, r_ris.seeds, decay, q, MC_ROUNDS, seed=10)
            )
        for k in series:
            series[k].append(round(float(np.mean(vals[k])), 2))
    return series


@pytest.mark.parametrize("name", PARAM_DATASETS)
def test_fig8_alpha(name, networks, mia_models, decay, benchmark):
    series = benchmark.pedantic(
        lambda: run_dataset(name, networks, mia_models, decay),
        rounds=1,
        iterations=1,
    )
    emit(
        f"fig8_alpha_{name}",
        format_series(
            "alpha", list(ALPHAS), series,
            title=f"Figure 8 ({name}): impact of the decay parameter alpha",
        ),
    )

    # Shape: influence decreases as alpha increases, for both methods.
    for m in ("MIA-DA_influence", "RIS-DA_influence"):
        assert series[m][0] > series[m][-1], (name, m, series[m])
