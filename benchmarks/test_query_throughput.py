"""Online query-serving throughput: warm cache vs cold cache.

The serving engine's result cache keys on (index fingerprint, quantized
query cell, k), so replaying a workload — or serving a workload with hot
spots — should be answered from memory.  This benchmark builds a small
RIS-DA index, persists it, serves a 64-query batch through
:class:`repro.serve.QueryEngine` twice, and reports cold vs warm rows
plus the engine's metrics report (latency histogram, cache hit/miss).

The acceptance bar: warm-cache throughput at least 3x cold-cache.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.bench.workloads import random_queries, serve_throughput
from repro.core.persistence import save_ris_index
from repro.core.ris_da import RisDaConfig, RisDaIndex
from repro.geo.weights import DistanceDecay
from repro.network.datasets import load_dataset
from repro.serve.engine import QueryEngine, ServeConfig

from .conftest import DEFAULT_ALPHA, emit, emit_json

N_QUERIES = 64
K = 10


def test_query_throughput(tmp_path):
    network = load_dataset("brightkite", scale=0.5)
    decay = DistanceDecay(c=1.0, alpha=DEFAULT_ALPHA)
    cfg = RisDaConfig(
        k_max=K, n_pivots=8, epsilon_pivot=0.4, max_index_samples=30_000,
        seed=3,
    )
    index_path = tmp_path / "serve-bench-ris.npz"
    save_ris_index(RisDaIndex(network, decay, cfg), index_path)

    engine = QueryEngine.from_path(
        index_path, network,
        config=ServeConfig(n_threads=2, result_cache_size=512),
    )
    queries = random_queries(network, N_QUERIES, seed=17)
    rows = serve_throughput(engine, queries, k=K, rounds=3)

    row_dicts = [r.as_row() for r in rows]
    text = format_table(
        list(row_dicts[0]),
        [list(d.values()) for d in row_dicts],
        title="query serving throughput (64-query batch, RIS-DA index)",
    )
    report = engine.metrics.report()
    emit("query_throughput", text + "\n\n" + report)

    cold, warm = rows[0], rows[-1]
    # Machine-readable section: cold/warm latency plus the per-stage
    # medians the engine aggregated from QueryDiagnostics.timings.
    dump = engine.metrics.dump()
    stage_p50_ms = {
        name: engine.metrics.histogram(name).quantile(0.5)
        for name in dump["histograms"]
        if name.startswith("stage_")
    }
    emit_json("query_throughput", {
        "workload": {
            "dataset": "brightkite", "scale": 0.5, "n_queries": N_QUERIES,
            "k": K, "rounds": len(rows),
        },
        "cold": cold.as_row(),
        "warm": warm.as_row(),
        "warm_speedup": warm.queries_per_second / cold.queries_per_second,
        "stage_p50_ms": stage_p50_ms,
        "latency_p50_ms": engine.metrics.histogram("latency_ms").quantile(0.5),
    })
    assert cold.cache_hits == 0
    # The workload has 64 distinct locations but may share grid cells;
    # every warm-round query must hit the cache.
    assert warm.cache_hits == N_QUERIES
    assert warm.cache_misses == 0
    assert warm.queries_per_second >= 3 * cold.queries_per_second, (
        f"warm cache should be >= 3x cold: cold {cold.queries_per_second:.0f} "
        f"q/s vs warm {warm.queries_per_second:.0f} q/s"
    )
    # The report must make cache behaviour and latency visible.
    assert "result_cache.hits" in report
    assert "result_cache.misses" in report
    assert "latency_ms" in report
