"""Online query-serving throughput: warm vs cold cache, and process scaling.

The serving engine's result cache keys on (index fingerprint, quantized
query cell, k), so replaying a workload — or serving a workload with hot
spots — should be answered from memory.  This benchmark builds a small
RIS-DA index, persists it, serves a 64-query batch through
:class:`repro.serve.QueryEngine` twice, and reports cold vs warm rows
plus the engine's metrics report (latency histogram, cache hit/miss).

The multi-process section serves the same workload through a
:class:`repro.serve.ServePool` (pre-forked workers attached zero-copy to
the saved index) at 1 and 2 processes with result caching off, and
reports aggregate q/s plus tail latency (p50/p99 from the pool's
per-query latency histogram) into ``BENCH_query_kernels.json``.

Acceptance bars: warm-cache throughput at least 3x cold-cache; on a
machine with >= 2 cores (and a full-size run), 2 worker processes at
least 2x one.  ``REPRO_BENCH_TINY=1`` shrinks the workload for CI smoke
runs — scaling asserts are skipped there, numbers are report-only.
"""

from __future__ import annotations

import os

from repro.bench.reporting import format_table
from repro.bench.workloads import random_queries, serve_throughput
from repro.core.persistence import save_ris_index
from repro.core.ris_da import RisDaConfig, RisDaIndex
from repro.geo.weights import DistanceDecay
from repro.network.datasets import load_dataset
from repro.serve.engine import QueryEngine, ServeConfig
from repro.serve.pool import ServePool

from .conftest import DEFAULT_ALPHA, emit, emit_json

TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")

N_QUERIES = 32 if TINY else 64
K = 10


SCALE = 0.15 if TINY else 0.5
MAX_SAMPLES = 10_000 if TINY else 30_000


def _build_index(tmp_path):
    network = load_dataset("brightkite", scale=SCALE)
    decay = DistanceDecay(c=1.0, alpha=DEFAULT_ALPHA)
    cfg = RisDaConfig(
        k_max=K, n_pivots=8, epsilon_pivot=0.4, max_index_samples=MAX_SAMPLES,
        seed=3,
    )
    index_path = tmp_path / "serve-bench-ris.npz"
    save_ris_index(RisDaIndex(network, decay, cfg), index_path)
    return network, index_path


def test_query_throughput(tmp_path):
    network, index_path = _build_index(tmp_path)

    engine = QueryEngine.from_path(
        index_path, network,
        config=ServeConfig(n_threads=2, result_cache_size=512),
    )
    queries = random_queries(network, N_QUERIES, seed=17)
    rows = serve_throughput(engine, queries, k=K, rounds=3)

    row_dicts = [r.as_row() for r in rows]
    text = format_table(
        list(row_dicts[0]),
        [list(d.values()) for d in row_dicts],
        title="query serving throughput (64-query batch, RIS-DA index)",
    )
    report = engine.metrics.report()
    emit("query_throughput", text + "\n\n" + report)

    cold, warm = rows[0], rows[-1]
    # Machine-readable section: cold/warm latency plus the per-stage
    # medians the engine aggregated from QueryDiagnostics.timings.
    dump = engine.metrics.dump()
    stage_p50_ms = {
        name: engine.metrics.histogram(name).quantile(0.5)
        for name in dump["histograms"]
        if name.startswith("stage_")
    }
    emit_json("query_throughput", {
        "workload": {
            "dataset": "brightkite", "scale": SCALE, "n_queries": N_QUERIES,
            "k": K, "rounds": len(rows),
        },
        "cold": cold.as_row(),
        "warm": warm.as_row(),
        "warm_speedup": warm.queries_per_second / cold.queries_per_second,
        "stage_p50_ms": stage_p50_ms,
        "latency_p50_ms": engine.metrics.histogram("latency_ms").quantile(0.5),
    })
    assert cold.cache_hits == 0
    # The workload has 64 distinct locations but may share grid cells;
    # every warm-round query must hit the cache.
    assert warm.cache_hits == N_QUERIES
    assert warm.cache_misses == 0
    assert warm.queries_per_second >= 3 * cold.queries_per_second, (
        f"warm cache should be >= 3x cold: cold {cold.queries_per_second:.0f} "
        f"q/s vs warm {warm.queries_per_second:.0f} q/s"
    )
    # The report must make cache behaviour and latency visible.
    assert "result_cache.hits" in report
    assert "result_cache.misses" in report
    assert "latency_ms" in report


def test_multiprocess_throughput(tmp_path):
    """Aggregate q/s and tail latency: 1 vs 2 pre-forked worker processes.

    Result caching is off so every round measures real selection work;
    the single-process baseline uses the identical config (1 serving
    thread), so the comparison isolates process scaling.  Each setup
    serves a warmup round (JIT-free here, but it faults the shared pages
    in) and then a measured round.
    """
    import time

    network, index_path = _build_index(tmp_path)
    queries = random_queries(network, N_QUERIES, seed=19)
    config = ServeConfig(n_threads=1, result_cache_size=0)
    # On a single-core box the pool's workers and the parent's collector
    # time-slice one CPU: vs_single < 1 there reads like a regression but
    # is core starvation, so the ratio is published report-only.
    multi_core = (os.cpu_count() or 1) >= 2

    engine = QueryEngine.from_path(index_path, network, config=config)
    engine.serve_batch(queries, k=K)  # warmup
    t0 = time.perf_counter()
    base = engine.serve_batch(queries, k=K)
    single_seconds = time.perf_counter() - t0
    single_qps = N_QUERIES / single_seconds

    rows = []
    pool_results = {}
    for procs in (1, 2):
        with ServePool(
            index_path, network, n_workers=procs, config=config
        ) as pool:
            pool.serve_batch(queries, k=K)  # warmup
            t0 = time.perf_counter()
            pool_results[procs] = pool.serve_batch(queries, k=K)
            elapsed = time.perf_counter() - t0
            latency = pool.metrics.histogram("latency_ms")
            rows.append({
                "processes": procs,
                "queries": N_QUERIES,
                "sec": round(elapsed, 4),
                "q/s": int(N_QUERIES / elapsed),
                "p50_ms": round(latency.quantile(0.5), 3),
                "p99_ms": round(latency.quantile(0.99), 3),
                "vs_single": round(single_seconds / elapsed, 2),
            })

    # The pool must be a faithful distribution layer: same seeds as the
    # in-process engine for every query, at any worker count.
    for procs, served in pool_results.items():
        assert all(s.ok for s in served), f"errors with {procs} processes"
        assert (
            [s.result.seeds for s in served] == [s.result.seeds for s in base]
        ), f"seed mismatch with {procs} processes"

    text = format_table(
        list(rows[0]),
        [list(r.values()) for r in rows],
        title=(
            f"multi-process serving ({N_QUERIES}-query batch, caching off; "
            f"single-process baseline {single_qps:.0f} q/s)"
        ),
    )
    emit("serve_pool_throughput", text)
    emit_json("serve_pool", {
        "workload": {
            "dataset": "brightkite", "scale": SCALE, "n_queries": N_QUERIES,
            "k": K, "tiny": TINY,
        },
        "single_process": {
            "q/s": int(single_qps), "sec": round(single_seconds, 4),
        },
        "pool": rows,
        "cpu_count": os.cpu_count(),
        "vs_single_enforced": bool(not TINY and multi_core),
        "note": None if multi_core else (
            "single-core host: vs_single reflects core starvation "
            "(workers + collector share one CPU), not a pool regression; "
            "ratios are report-only"
        ),
    })

    two = rows[-1]
    assert two["processes"] == 2
    if not TINY and multi_core:
        one = rows[0]
        assert two["q/s"] >= 2 * one["q/s"], (
            f"2 workers should at least double 1-worker throughput on a "
            f">=2-core machine: {one['q/s']} -> {two['q/s']} q/s"
        )
