"""Figure 4: efficiency — online response time vs k on all four datasets.

Paper's summary of results: MIA-DA runs fastest among all the algorithms,
and RIS-DA outperforms PMIA in efficiency (PMIA must scan its whole index
per query because node weights are unknown offline; MIA-DA prunes with the
anchor/region bounds; RIS-DA answers from a sample prefix).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import DATASETS, K_RANGE, N_QUERIES, emit
from repro.bench.reporting import format_series
from repro.bench.workloads import random_queries


def run_dataset(name, networks, pmia_baselines, mia_indexes, ris_indexes, decay):
    net = networks[name]
    queries = random_queries(net, N_QUERIES, seed=200)
    series = {"PMIA": [], "MIA-DA": [], "RIS-DA": []}
    for k in K_RANGE:
        times = {m: [] for m in series}
        for q in queries:
            start = time.perf_counter()
            w = decay.weights(net.coords, q)
            pmia_baselines[name].select(w, k)
            times["PMIA"].append(time.perf_counter() - start)

            start = time.perf_counter()
            mia_indexes[name].query(q, k)
            times["MIA-DA"].append(time.perf_counter() - start)

            start = time.perf_counter()
            ris_indexes[name].query(q, k)
            times["RIS-DA"].append(time.perf_counter() - start)
        for m in series:
            series[m].append(round(float(np.mean(times[m])) * 1000.0, 2))
    return series


@pytest.mark.parametrize("name", DATASETS)
def test_fig4_efficiency(
    name, networks, pmia_baselines, mia_indexes, ris_indexes, decay, benchmark
):
    series = benchmark.pedantic(
        lambda: run_dataset(
            name, networks, pmia_baselines, mia_indexes, ris_indexes, decay
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        f"fig4_efficiency_{name}",
        format_series(
            "k", list(K_RANGE), series,
            title=f"Figure 4 ({name}): response time vs k (ms)",
        ),
    )

    # Shape: MIA-DA's pruned search beats the full PMIA scan on average
    # across the k range (per-k noise tolerated at this scale).
    avg = {m: float(np.mean(vals)) for m, vals in series.items()}
    assert avg["MIA-DA"] < avg["PMIA"], (name, avg)
