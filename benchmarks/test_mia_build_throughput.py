"""MIA build throughput: serial vs parallel MIIA construction.

The offline phase of MIA-DA is dominated by arborescence construction —
one theta-pruned Dijkstra per node — which the worker-pool builder
(:mod:`repro.mia.parallel`) parallelises with a deterministic chunk plan.
This benchmark records the serial-vs-parallel speedup so the trajectory
captures the win; the >= 2x assertion at 4 workers only fires when the
machine actually exposes >= 4 cores.
"""

from __future__ import annotations

import os

import numpy as np

from benchmarks.conftest import emit
from repro.bench.reporting import format_table
from repro.bench.workloads import mia_build_throughput
from repro.mia.parallel import ParallelMiaBuilder
from repro.network.datasets import load_dataset

THETA = float(os.environ.get("REPRO_MIA_BENCH_THETA", "0.03"))
WORKER_COUNTS = (1, 2, 4)


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_mia_build_throughput():
    network = load_dataset("gowalla")
    rows = mia_build_throughput(network, workers=WORKER_COUNTS, theta=THETA)
    table = format_table(
        ["workers", "trees", "entries", "sec", "trees/s", "speedup"],
        [list(r.as_row().values()) for r in rows],
        title=f"MIIA build throughput ({network.n} nodes, theta={THETA}, "
        f"{_available_cores()} cores visible)",
    )
    emit("mia_build_throughput", table)

    assert [r.workers for r in rows] == list(WORKER_COUNTS)
    assert all(r.trees == network.n for r in rows)
    assert all(r.seconds > 0 for r in rows)
    assert len({r.entries for r in rows}) == 1  # identical index every run
    # The speedup claim is only testable on hardware with enough cores.
    if _available_cores() >= 4:
        by_workers = {r.workers: r for r in rows}
        assert by_workers[4].speedup >= 1.5, (
            f"expected >= 1.5x speedup at 4 workers, got "
            f"{by_workers[4].speedup:.2f}x"
        )


def test_parallel_build_bit_identical():
    """The benchmark's determinism premise: any worker count, same index."""
    network = load_dataset("brightkite")
    serial = ParallelMiaBuilder(network, THETA, n_workers=1)
    pooled = ParallelMiaBuilder(network, THETA, n_workers=4)
    try:
        a = serial.build_flat()
        b = pooled.build_flat()
    finally:
        serial.close()
        pooled.close()
    for xa, xb in zip(a, b):
        assert np.array_equal(xa, xb)
