"""Streaming update vs full rebuild: the incremental-maintenance payoff.

An ``update()`` over a coupled (keyed) corpus regenerates only the RR
samples whose replay actually changes — the slots containing a changed
edge's head *and* whose hashed coin for that edge flips liveness (see
``repro.ris.coupled``) — so its cost scales with the delta, not the
corpus, and it skips the pivot phase entirely.  This benchmark measures
both paths over the same delta and asserts the update restores rebuild
parity at least ``SPEEDUP_BAR``x faster (report-only under
``REPRO_BENCH_TINY=1``, where builds are too small for a stable ratio;
the parity assertion always holds).  Results land in
``stream_update.txt`` and the ``stream_update`` section of
``BENCH_query_kernels.json``.
"""

from __future__ import annotations

import os
import statistics
import time

import numpy as np

from repro.bench.reporting import format_table
from repro.bench.workloads import random_queries
from repro.core.ris_da import RisDaConfig, RisDaIndex
from repro.geo.weights import DistanceDecay
from repro.network.datasets import load_dataset
from repro.stream.delta import GraphDelta, apply_delta

from .conftest import DEFAULT_ALPHA, emit, emit_json

TINY = os.environ.get("REPRO_BENCH_TINY", "") not in ("", "0")

SCALE = 0.1 if TINY else 0.4
N_PIVOTS = 4 if TINY else 16
MAX_SAMPLES = 3_000 if TINY else 40_000
K = 4 if TINY else 10
N_QUERIES = 2 if TINY else 4
REPS = 1 if TINY else 2

SPEEDUP_BAR = 5.0
PARITY_BAR = 0.3  # mean relative estimate gap, update vs rebuild


def _delta_for(network, rng) -> GraphDelta:
    """A realistic streaming batch: a few new edges + moved check-ins."""
    edges, seen = [], set()
    while len(edges) < 6:
        u, v = (int(z) for z in rng.integers(0, network.n, size=2))
        if u != v and (u, v) not in seen:
            seen.add((u, v))
            edges.append((u, v))
    probs = rng.uniform(0.02, 0.15, size=len(edges))
    moved = rng.choice(network.n, size=3, replace=False)
    checkins = [
        (int(m),
         float(network.coords[m, 0] + rng.normal(0, 2.0)),
         float(network.coords[m, 1] + rng.normal(0, 2.0)))
        for m in moved
    ]
    return GraphDelta.make(edges=edges, probabilities=probs,
                           checkins=checkins)


def test_stream_update_speedup():
    network = load_dataset("gowalla", scale=SCALE)
    decay = DistanceDecay(c=1.0, alpha=DEFAULT_ALPHA)
    cfg = RisDaConfig(
        k_max=K, n_pivots=N_PIVOTS, epsilon_pivot=0.4,
        max_index_samples=MAX_SAMPLES, seed=5,
    )
    rng = np.random.default_rng(77)
    delta = _delta_for(network, rng)
    final = apply_delta(network, delta).network

    update_times, updated = [], None
    stats = None
    for _ in range(REPS):
        base = RisDaIndex(network, decay, cfg)
        t0 = time.perf_counter()
        stats = base.update(delta=delta)
        update_times.append(time.perf_counter() - t0)
        updated = base

    rebuild_times, rebuilt = [], None
    for _ in range(REPS):
        t0 = time.perf_counter()
        rebuilt = RisDaIndex(final, decay, cfg)
        rebuild_times.append(time.perf_counter() - t0)

    t_update = statistics.median(update_times)
    t_rebuild = statistics.median(rebuild_times)
    speedup = t_rebuild / t_update if t_update > 0 else float("inf")

    # Parity: the updated index must answer like the rebuilt one.  Seeds
    # can differ under sampling noise, so compare the Eq. 9 estimates.
    queries = random_queries(final, N_QUERIES, seed=41)
    gaps = []
    for q in queries:
        a = updated.query(q, K)
        b = rebuilt.query(q, K)
        gaps.append(abs(a.estimate - b.estimate) / max(abs(b.estimate), 1e-9))
    parity_gap = float(np.mean(gaps))
    assert parity_gap < PARITY_BAR, (
        f"update diverged from rebuild: mean relative estimate gap "
        f"{parity_gap:.3f} over {len(queries)} queries"
    )

    rows = [
        ("rebuild", f"{t_rebuild * 1e3:.1f} ms", "1.0x"),
        ("update", f"{t_update * 1e3:.1f} ms", f"{speedup:.1f}x"),
    ]
    emit(
        "stream_update",
        format_table(
            ("path", "median time", "speedup"), rows,
        ) + (
            f"\nretired {stats.samples_retired} / added "
            f"{stats.samples_added} samples, dirty fraction "
            f"{stats.dirty_fraction:.3%}, parity gap {parity_gap:.3f}"
            + (" [tiny]" if TINY else "")
        ),
    )
    emit_json("stream_update", {
        "scale": SCALE,
        "n_pivots": N_PIVOTS,
        "max_samples": MAX_SAMPLES,
        "reps": REPS,
        "tiny": TINY,
        "update_seconds": t_update,
        "rebuild_seconds": t_rebuild,
        "speedup": speedup,
        "parity_gap": parity_gap,
        "samples_retired": stats.samples_retired,
        "samples_added": stats.samples_added,
        "dirty_fraction": stats.dirty_fraction,
        "generation": stats.generation,
    })

    if not TINY:
        assert speedup >= SPEEDUP_BAR, (
            f"streaming update is only {speedup:.1f}x faster than a full "
            f"rebuild (bar: {SPEEDUP_BAR}x)"
        )
