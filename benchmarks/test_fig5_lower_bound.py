"""Figure 5: tightness ratio of LB-EST vs TOPK-SUM (Gowalla, Twitter).

Paper's claim: LB-EST consistently provides a tighter lower bound than
TOPK-SUM (ratio > 1), and since the sample size is proportional to the
inverse of the bound, LB-EST greatly reduces the samples required.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import K_RANGE, PARAM_DATASETS, emit
from repro.bench.reporting import format_series
from repro.bench.workloads import random_queries
from repro.ris.lower_bound import lb_est, topk_sum
from repro.ris.sample_size import required_sample_size


def run_dataset(name, networks, decay, n_pivots=10):
    net = networks[name]
    pivots = random_queries(net, n_pivots, seed=300)
    ratios = []
    sample_reduction = []
    for k in K_RANGE:
        r_k, s_k = [], []
        for p in pivots:
            w = decay.weights(net.coords, p)
            est = lb_est(net, w, k, decay.w_max)
            naive = topk_sum(w, k)
            if naive <= 0:
                continue
            r_k.append(est / naive)
            l_est = required_sample_size(net.n, k, decay.w_max, 0.5,
                                         1.0 / net.n, est)
            l_naive = required_sample_size(net.n, k, decay.w_max, 0.5,
                                           1.0 / net.n, naive)
            s_k.append(l_naive / l_est)
        ratios.append(round(float(np.mean(r_k)), 3))
        sample_reduction.append(round(float(np.mean(s_k)), 3))
    return ratios, sample_reduction


@pytest.mark.parametrize("name", PARAM_DATASETS)
def test_fig5_lower_bound_tightness(name, networks, decay, benchmark):
    ratios, reduction = benchmark.pedantic(
        lambda: run_dataset(name, networks, decay), rounds=1, iterations=1
    )
    emit(
        f"fig5_lower_bound_{name}",
        format_series(
            "k", list(K_RANGE),
            {
                "TOPK-SUM": [1.0] * len(K_RANGE),
                "LB-EST": ratios,
                "sample_size_reduction": reduction,
            },
            title=(
                f"Figure 5 ({name}): tightness ratio of the OPT lower bound "
                "(higher = tighter) and implied sample-size reduction"
            ),
        ),
    )

    # Shape: LB-EST strictly tighter than TOPK-SUM at every k.
    assert all(r > 1.0 for r in ratios), (name, ratios)
    # Sample reduction mirrors the ratio (l ~ 1 / lower_bound).
    for r, s in zip(ratios, reduction):
        assert s == pytest.approx(r, rel=0.05)
