"""The immutable CSR geo-social network.

The whole library operates on one graph type: a directed graph in compressed
sparse row form with

* per-node 2-D coordinates (the user's location / representative check-in);
* per-edge independent activation probabilities (IC model);
* both forward (out-edges) and reverse (in-edges) adjacency, because forward
  Monte-Carlo simulation walks out-edges while RR-set sampling walks
  in-edges.

The CSR layout keeps the hot loops (frontier expansion, reverse BFS) inside
numpy slicing instead of Python dict lookups, which is what makes RIS
sampling feasible in pure Python at the scales used here.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.geo.point import BoundingBox


class GeoSocialNetwork:
    """A directed geo-social network ``G = (V, E)`` in CSR form.

    Nodes are the integers ``0 .. n-1``.  Construction validates and sorts
    the edge set; the object is immutable afterwards (all arrays are set
    read-only), so indexes built over a network can safely keep references.

    Parameters
    ----------
    n:
        Number of nodes.
    edges:
        ``(m, 2)`` int array of directed edges ``<u, v>``.
    probabilities:
        ``(m,)`` float array, ``probabilities[i]`` is ``Pr(edges[i])``.
        May be ``None``; assign later via :meth:`with_probabilities` or the
        helpers in :mod:`repro.network.probability`.
    coords:
        ``(n, 2)`` float array of node locations.
    """

    __slots__ = (
        "n",
        "m",
        "coords",
        "out_offsets",
        "out_targets",
        "out_probs",
        "in_offsets",
        "in_sources",
        "in_probs",
        "_box",
    )

    def __init__(
        self,
        n: int,
        edges: np.ndarray,
        probabilities: np.ndarray | None,
        coords: np.ndarray,
    ):
        if n <= 0:
            raise GraphError(f"network must have at least one node, got n={n}")
        edges = np.atleast_2d(np.asarray(edges, dtype=np.int64))
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        if edges.shape[1] != 2:
            raise GraphError(f"edges must have shape (m, 2), got {edges.shape}")
        m = len(edges)
        if m and (edges.min() < 0 or edges.max() >= n):
            raise GraphError(
                f"edge endpoints must be in [0, {n}), got range "
                f"[{edges.min()}, {edges.max()}]"
            )
        if m and np.any(edges[:, 0] == edges[:, 1]):
            raise GraphError("self-loops are not allowed")

        coords = np.asarray(coords, dtype=float)
        if coords.shape != (n, 2):
            raise GraphError(f"coords must have shape ({n}, 2), got {coords.shape}")
        if not np.all(np.isfinite(coords)):
            raise GraphError("coords must be finite")

        if probabilities is None:
            probs = np.zeros(m, dtype=float)
        else:
            probs = np.asarray(probabilities, dtype=float)
            if probs.shape != (m,):
                raise GraphError(
                    f"probabilities must have shape ({m},), got {probs.shape}"
                )
            if m and (probs.min() < 0.0 or probs.max() > 1.0):
                raise GraphError("edge probabilities must lie in [0, 1]")

        # Reject duplicate edges — they would double-count influence.
        if m:
            keys = edges[:, 0] * np.int64(n) + edges[:, 1]
            if len(np.unique(keys)) != m:
                raise GraphError("duplicate edges are not allowed")

        self.n = int(n)
        self.m = int(m)
        self.coords = coords

        # Forward CSR, sorted by source.
        order = np.lexsort((edges[:, 1], edges[:, 0])) if m else np.empty(0, np.int64)
        fe = edges[order]
        fp = probs[order]
        self.out_offsets = np.zeros(n + 1, dtype=np.int64)
        if m:
            np.add.at(self.out_offsets, fe[:, 0] + 1, 1)
        np.cumsum(self.out_offsets, out=self.out_offsets)
        self.out_targets = fe[:, 1].copy() if m else np.empty(0, np.int64)
        self.out_probs = fp.copy() if m else np.empty(0, float)

        # Reverse CSR, sorted by target.
        order_r = np.lexsort((edges[:, 0], edges[:, 1])) if m else np.empty(0, np.int64)
        re = edges[order_r]
        rp = probs[order_r]
        self.in_offsets = np.zeros(n + 1, dtype=np.int64)
        if m:
            np.add.at(self.in_offsets, re[:, 1] + 1, 1)
        np.cumsum(self.in_offsets, out=self.in_offsets)
        self.in_sources = re[:, 0].copy() if m else np.empty(0, np.int64)
        self.in_probs = rp.copy() if m else np.empty(0, float)

        self._box: BoundingBox | None = None
        for arr in (
            self.coords,
            self.out_offsets,
            self.out_targets,
            self.out_probs,
            self.in_offsets,
            self.in_sources,
            self.in_probs,
        ):
            arr.setflags(write=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]] | np.ndarray,
        coords: np.ndarray | Sequence[Tuple[float, float]],
        probabilities: np.ndarray | Sequence[float] | None = None,
        n: int | None = None,
    ) -> "GeoSocialNetwork":
        """Build from an edge iterable; ``n`` defaults to ``len(coords)``."""
        coords = np.asarray(coords, dtype=float)
        edge_arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                              dtype=np.int64)
        if edge_arr.size == 0:
            edge_arr = edge_arr.reshape(0, 2)
        if n is None:
            n = len(coords)
        probs = None if probabilities is None else np.asarray(probabilities, dtype=float)
        return cls(n, edge_arr, probs, coords)

    def with_probabilities(self, probabilities: np.ndarray) -> "GeoSocialNetwork":
        """A copy of this network with new edge probabilities.

        ``probabilities`` must be aligned with :meth:`edge_array` order.
        """
        edges, _ = self.edge_array()
        return GeoSocialNetwork(self.n, edges, probabilities, self.coords.copy())

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def out_neighbors(self, u: int) -> np.ndarray:
        """Targets of ``u``'s out-edges (read-only slice)."""
        return self.out_targets[self.out_offsets[u] : self.out_offsets[u + 1]]

    def out_probabilities(self, u: int) -> np.ndarray:
        """Probabilities aligned with :meth:`out_neighbors`."""
        return self.out_probs[self.out_offsets[u] : self.out_offsets[u + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sources of ``v``'s in-edges (read-only slice)."""
        return self.in_sources[self.in_offsets[v] : self.in_offsets[v + 1]]

    def in_probabilities(self, v: int) -> np.ndarray:
        """Probabilities aligned with :meth:`in_neighbors`."""
        return self.in_probs[self.in_offsets[v] : self.in_offsets[v + 1]]

    def out_degree(self, u: int | None = None) -> np.ndarray | int:
        """Out-degree of ``u``, or the full out-degree vector if ``u`` is None."""
        if u is None:
            return np.diff(self.out_offsets)
        return int(self.out_offsets[u + 1] - self.out_offsets[u])

    def in_degree(self, v: int | None = None) -> np.ndarray | int:
        """In-degree of ``v``, or the full in-degree vector if ``v`` is None."""
        if v is None:
            return np.diff(self.in_offsets)
        return int(self.in_offsets[v + 1] - self.in_offsets[v])

    def edge_array(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(edges, probabilities)`` in forward-CSR order."""
        src = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.out_offsets))
        return np.column_stack([src, self.out_targets]), self.out_probs.copy()

    def iter_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(u, v, Pr(u, v))`` for every edge."""
        for u in range(self.n):
            lo, hi = self.out_offsets[u], self.out_offsets[u + 1]
            for j in range(lo, hi):
                yield u, int(self.out_targets[j]), float(self.out_probs[j])

    def bounding_box(self, pad: float = 0.0) -> BoundingBox:
        """The bounding box of all node locations (cached when pad == 0)."""
        if pad == 0.0:
            if self._box is None:
                self._box = BoundingBox.of_points(self.coords)
            return self._box
        return BoundingBox.of_points(self.coords, pad=pad)

    def __repr__(self) -> str:
        return f"GeoSocialNetwork(n={self.n}, m={self.m})"
