"""Synthetic geo-social network generators.

The paper evaluates on Brightkite, Gowalla, Twitter and Foursquare — real
check-in datasets we cannot ship.  These generators reproduce the two
structural properties the DAIM algorithms are sensitive to:

1. **Social topology** — heavy-tailed in/out degree distributions with local
   clustering, produced by a directed preferential-attachment process with a
   random-rewiring fraction;
2. **Spatial distribution** — user locations clustered around a handful of
   population centres ("cities", a Gaussian mixture) over a uniform rural
   background, mimicking check-in geography; friends are biased to be
   spatially close (the well-documented distance effect in geo-social
   networks), controlled by ``geo_attachment``.

Everything is seeded and deterministic given the config.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.network.graph import GeoSocialNetwork
from repro.network.probability import assign_weighted_cascade
from repro.rng import RandomLike, as_generator


@dataclass(frozen=True)
class GeoSocialConfig:
    """Parameters of the synthetic geo-social generator.

    Parameters
    ----------
    n:
        Number of users.
    avg_out_degree:
        Target average out-degree (the paper's datasets range ~7–11).
    n_cities:
        Number of Gaussian population centres.
    city_std:
        Standard deviation of each city's Gaussian, in space units.
    background_fraction:
        Fraction of users placed uniformly over the whole space instead of
        in a city (rural users / missing check-ins randomised over space,
        exactly what the paper does for users without check-ins).
    geo_attachment:
        In [0, 1]; probability that an edge endpoint is chosen among
        spatially nearby users rather than by preferential attachment.
    extent:
        Width/height of the square space.  The default of 300 puts the
        paper's alpha range [0.001, 0.01] in the same *decay regime* as the
        original experiments (``alpha * diameter`` of roughly 0.4–4, i.e.
        weights spanning one to two orders of magnitude across the space —
        the paper's coordinates are in degrees, where 0.01/unit decays
        mildly over a continent-sized extent).
    """

    n: int = 2000
    avg_out_degree: float = 8.0
    n_cities: int = 5
    city_std: float = 15.0
    background_fraction: float = 0.15
    geo_attachment: float = 0.3
    extent: float = 300.0

    def __post_init__(self) -> None:
        if self.n < 2:
            raise GraphError(f"need at least 2 nodes, got {self.n}")
        if self.avg_out_degree <= 0:
            raise GraphError("avg_out_degree must be positive")
        if not 0 <= self.background_fraction <= 1:
            raise GraphError("background_fraction must be in [0, 1]")
        if not 0 <= self.geo_attachment <= 1:
            raise GraphError("geo_attachment must be in [0, 1]")
        if self.n_cities < 1:
            raise GraphError("need at least one city")
        if self.extent <= 0 or self.city_std <= 0:
            raise GraphError("extent and city_std must be positive")


def gaussian_cities(
    config: GeoSocialConfig, seed: RandomLike = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample user locations from the Gaussian-mixture city model.

    Returns ``(coords, city_centers)`` where ``coords`` is ``(n, 2)`` and
    ``city_centers`` is ``(n_cities, 2)``.  City sizes follow a Zipf-like
    split (the biggest city holds the most users), matching real check-in
    data where one metro area dominates.
    """
    rng = as_generator(seed)
    ext = config.extent
    # Keep city centres away from the border so their mass stays in-box.
    margin = min(3.0 * config.city_std, ext / 4.0)
    centers = np.column_stack(
        [
            rng.uniform(margin, ext - margin, size=config.n_cities),
            rng.uniform(margin, ext - margin, size=config.n_cities),
        ]
    )
    # Zipf-ish city weights: city i gets weight 1/(i+1).
    weights = 1.0 / np.arange(1, config.n_cities + 1, dtype=float)
    weights /= weights.sum()

    n_bg = int(round(config.n * config.background_fraction))
    n_city = config.n - n_bg
    assignment = rng.choice(config.n_cities, size=n_city, p=weights)
    city_pts = centers[assignment] + rng.normal(0.0, config.city_std, size=(n_city, 2))
    bg_pts = rng.uniform(0.0, ext, size=(n_bg, 2))
    coords = np.vstack([city_pts, bg_pts])
    np.clip(coords, 0.0, ext, out=coords)
    # Shuffle so node id carries no spatial information.
    rng.shuffle(coords)
    return coords, centers


def generate_geo_social_network(
    config: GeoSocialConfig, seed: RandomLike = None
) -> GeoSocialNetwork:
    """Generate a synthetic geo-social network with WC edge probabilities.

    Topology: each new node u (processed in a random arrival order) creates
    ``~avg_out_degree`` out-edges; each endpoint is chosen by spatial
    proximity with probability ``geo_attachment`` and by (in-degree)
    preferential attachment otherwise.  Reciprocal edges are added with
    probability 0.5, matching the high reciprocity of friendship networks.
    """
    rng = as_generator(seed)
    coords, _ = gaussian_cities(config, rng)
    n = config.n

    # Spatial candidate pool: for proximity choices we pre-sort each node's
    # k nearest spatial neighbours using a coarse grid bucketing.
    neighbors = _spatial_neighbor_lists(coords, k=25, extent=config.extent)

    target_m = int(round(config.avg_out_degree * n))
    indeg = np.ones(n, dtype=float)  # +1 smoothing so early nodes are reachable
    edge_set: set[Tuple[int, int]] = set()
    edges: List[Tuple[int, int]] = []

    arrival = rng.permutation(n)
    # Every node attempts the same expected number of out-edges.
    per_node = max(1, int(round(config.avg_out_degree / 1.5)))
    attempts = 0
    max_attempts = target_m * 20

    def try_add(u: int, v: int) -> None:
        if u == v:
            return
        if (u, v) in edge_set:
            return
        edge_set.add((u, v))
        edges.append((u, v))
        indeg[v] += 1.0

    # Preferential attachment over a growing prefix of the arrival order.
    for pos, u in enumerate(arrival):
        u = int(u)
        pool = arrival[: max(pos, 1)]
        for _ in range(per_node):
            if len(edges) >= target_m or attempts > max_attempts:
                break
            attempts += 1
            if rng.random() < config.geo_attachment:
                cands = neighbors[u]
                v = int(cands[rng.integers(0, len(cands))])
            else:
                # Degree-proportional choice within the already-arrived pool.
                pslice = indeg[pool]
                v = int(pool[_weighted_pick(pslice, rng)])
            try_add(u, v)
            if rng.random() < 0.5:
                try_add(v, u)

    # Top up with random geo/preferential edges if we undershot the target.
    while len(edges) < target_m and attempts <= max_attempts:
        attempts += 1
        u = int(rng.integers(0, n))
        if rng.random() < config.geo_attachment:
            cands = neighbors[u]
            v = int(cands[rng.integers(0, len(cands))])
        else:
            v = int(_weighted_pick(indeg, rng))
        try_add(u, v)

    if not edges:
        raise GraphError("generator produced no edges; check the configuration")
    network = GeoSocialNetwork.from_edges(np.asarray(edges, dtype=np.int64), coords)
    return assign_weighted_cascade(network)


def _weighted_pick(weights: np.ndarray, rng: np.random.Generator) -> int:
    """Index drawn proportionally to ``weights`` (need not be normalised)."""
    total = float(weights.sum())
    r = rng.random() * total
    return int(np.searchsorted(np.cumsum(weights), r, side="right").clip(0, len(weights) - 1))


def _spatial_neighbor_lists(
    coords: np.ndarray, k: int, extent: float
) -> List[np.ndarray]:
    """Approximate k-nearest spatial neighbours per node via grid buckets.

    Exact kNN is unnecessary: the generator only needs "some nearby users".
    Nodes are bucketed on a coarse grid; each node's candidate list is its
    bucket plus the 8 surrounding buckets, trimmed to the ``k`` closest.
    """
    n = len(coords)
    cells = max(1, int(np.sqrt(n / 8)))
    size = extent / cells
    bucket_of = (
        np.clip((coords[:, 1] // size).astype(np.int64), 0, cells - 1) * cells
        + np.clip((coords[:, 0] // size).astype(np.int64), 0, cells - 1)
    )
    buckets: dict[int, list[int]] = {}
    for i, b in enumerate(bucket_of):
        buckets.setdefault(int(b), []).append(i)

    out: List[np.ndarray] = []
    for i in range(n):
        b = int(bucket_of[i])
        row, col = divmod(b, cells)
        cand: list[int] = []
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                rr, cc = row + dr, col + dc
                if 0 <= rr < cells and 0 <= cc < cells:
                    cand.extend(buckets.get(rr * cells + cc, ()))
        cand = [c for c in cand if c != i]
        if not cand:
            cand = [(i + 1) % n]
        arr = np.asarray(cand, dtype=np.int64)
        if len(arr) > k:
            d = np.hypot(
                coords[arr, 0] - coords[i, 0], coords[arr, 1] - coords[i, 1]
            )
            arr = arr[np.argpartition(d, k)[:k]]
        out.append(arr)
    return out
