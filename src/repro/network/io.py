"""Text IO for geo-social networks.

Two file formats cover the paper's inputs:

* **edge list** — one ``u v [prob]`` triple per line (SNAP-compatible when
  the probability column is absent);
* **check-ins** — one ``node x y`` triple per line (for SNAP check-in dumps
  a caller can pre-reduce multiple check-ins to one location per user, which
  is exactly what the paper does: "for users who have multiple check-ins, we
  randomly select one").

``read_network`` combines both into a ready :class:`GeoSocialNetwork`; users
without a check-in line get a uniformly random location over the bounding
box of the known locations — again following the paper.
"""

from __future__ import annotations

from pathlib import Path
from typing import Tuple, Union

import numpy as np

from repro.exceptions import DataFormatError
from repro.geo.point import BoundingBox
from repro.network.graph import GeoSocialNetwork
from repro.network.probability import assign_weighted_cascade
from repro.rng import RandomLike, as_generator

PathLike = Union[str, Path]


def read_edge_list(path: PathLike) -> Tuple[np.ndarray, np.ndarray | None]:
    """Parse an edge-list file into ``(edges, probabilities-or-None)``.

    Lines starting with ``#`` and blank lines are ignored.  Either every
    line has a probability column or none does.
    """
    edges: list[tuple[int, int]] = []
    probs: list[float] = []
    has_probs: bool | None = None
    for lineno, line in enumerate(_iter_lines(path), start=1):
        parts = line.split()
        if len(parts) not in (2, 3):
            raise DataFormatError(
                f"{path}:{lineno}: expected 'u v' or 'u v prob', got {line!r}"
            )
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError:
            raise DataFormatError(
                f"{path}:{lineno}: non-integer node id in {line!r}"
            ) from None
        row_has_prob = len(parts) == 3
        if has_probs is None:
            has_probs = row_has_prob
        elif has_probs != row_has_prob:
            raise DataFormatError(
                f"{path}:{lineno}: inconsistent probability column"
            )
        edges.append((u, v))
        if row_has_prob:
            try:
                probs.append(float(parts[2]))
            except ValueError:
                raise DataFormatError(
                    f"{path}:{lineno}: non-numeric probability in {line!r}"
                ) from None
    edge_arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    return edge_arr, (np.asarray(probs, dtype=float) if has_probs else None)


def read_checkins(path: PathLike) -> dict[int, tuple[float, float]]:
    """Parse a check-in file into ``{node: (x, y)}``.

    When a node appears multiple times the *first* occurrence wins, matching
    a deterministic version of the paper's "randomly select one check-in".
    """
    locs: dict[int, tuple[float, float]] = {}
    for lineno, line in enumerate(_iter_lines(path), start=1):
        parts = line.split()
        if len(parts) != 3:
            raise DataFormatError(
                f"{path}:{lineno}: expected 'node x y', got {line!r}"
            )
        try:
            node = int(parts[0])
            x, y = float(parts[1]), float(parts[2])
        except ValueError:
            raise DataFormatError(f"{path}:{lineno}: cannot parse {line!r}") from None
        locs.setdefault(node, (x, y))
    return locs


def read_network(
    edges_path: PathLike,
    checkins_path: PathLike | None = None,
    weighted_cascade: bool = True,
    seed: RandomLike = 0,
) -> GeoSocialNetwork:
    """Load a complete geo-social network from text files.

    Node ids are compacted to ``0..n-1`` preserving order of first
    appearance.  Nodes without a check-in get a uniform random location over
    the bounding box of the known check-ins (paper Section 5.1).  When the
    edge file has no probability column and ``weighted_cascade`` is true,
    WC probabilities are assigned.
    """
    edges, probs = read_edge_list(edges_path)
    if edges.size == 0:
        raise DataFormatError(f"{edges_path}: no edges found")
    raw_ids = np.unique(edges)
    remap = {int(r): i for i, r in enumerate(raw_ids)}
    compact = np.vectorize(remap.__getitem__, otypes=[np.int64])(edges)
    n = len(raw_ids)

    rng = as_generator(seed)
    if checkins_path is not None:
        raw_locs = read_checkins(checkins_path)
        known = {
            remap[node]: xy for node, xy in raw_locs.items() if node in remap
        }
    else:
        known = {}
    if known:
        pts = np.asarray(list(known.values()), dtype=float)
        box = BoundingBox.of_points(pts)
    else:
        box = BoundingBox(0.0, 0.0, 1000.0, 1000.0)
    coords = np.column_stack(
        [
            rng.uniform(box.xmin, box.xmax, size=n),
            rng.uniform(box.ymin, box.ymax, size=n),
        ]
    )
    for node, (x, y) in known.items():
        coords[node] = (x, y)

    network = GeoSocialNetwork(n, compact, probs, coords)
    if probs is None and weighted_cascade:
        network = assign_weighted_cascade(network)
    return network


def write_edge_list(
    network: GeoSocialNetwork, path: PathLike, probabilities: bool = True
) -> None:
    """Write the network's edges (optionally with probabilities)."""
    edges, probs = network.edge_array()
    with open(path, "w", encoding="ascii") as f:
        f.write(f"# repro edge list: n={network.n} m={network.m}\n")
        for i in range(len(edges)):
            if probabilities:
                f.write(f"{edges[i, 0]} {edges[i, 1]} {probs[i]:.12g}\n")
            else:
                f.write(f"{edges[i, 0]} {edges[i, 1]}\n")


def write_checkins(network: GeoSocialNetwork, path: PathLike) -> None:
    """Write every node's location as a check-in line."""
    with open(path, "w", encoding="ascii") as f:
        f.write(f"# repro checkins: n={network.n}\n")
        for v in range(network.n):
            x, y = network.coords[v]
            f.write(f"{v} {x:.12g} {y:.12g}\n")


def write_network(network: GeoSocialNetwork, edges_path: PathLike, checkins_path: PathLike) -> None:
    """Persist a network to the two-file format readable by :func:`read_network`."""
    write_edge_list(network, edges_path, probabilities=True)
    write_checkins(network, checkins_path)


def _iter_lines(path: PathLike):
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            stripped = line.strip()
            if stripped and not stripped.startswith("#"):
                yield stripped
