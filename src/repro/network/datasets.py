"""Pre-parameterised dataset recipes mirroring the paper's Table 2.

The paper's four datasets (Table 2):

==========  ========  =========
Dataset     # nodes   # edges
==========  ========  =========
Brightkite  58 K      428 K
Gowalla     197 K     1.9 M
Twitter     554 K     4.29 M
Foursquare  4.9 M     53.7 M
==========  ========  =========

A pure-Python reproduction cannot run millions of nodes interactively, so
each recipe preserves the *relative* scale (node-count ordering and
edge/node density) at a configurable base size.  The default base gives
~1K–8K node graphs that keep every experiment under a few minutes; set the
``REPRO_SCALE`` environment variable (a float multiplier) or pass ``scale``
to stretch toward the paper's sizes on beefier machines.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Mapping

from repro.exceptions import GraphError
from repro.network.generators import GeoSocialConfig, generate_geo_social_network
from repro.network.graph import GeoSocialNetwork


@dataclass(frozen=True)
class DatasetRecipe:
    """A named synthetic stand-in for one of the paper's datasets."""

    name: str
    paper_nodes: int
    paper_edges: int
    base_nodes: int
    avg_out_degree: float
    n_cities: int
    seed: int

    def config(self, scale: float = 1.0) -> GeoSocialConfig:
        n = max(64, int(round(self.base_nodes * scale)))
        return GeoSocialConfig(
            n=n,
            avg_out_degree=self.avg_out_degree,
            n_cities=self.n_cities,
            city_std=15.0,
            background_fraction=0.15,
            geo_attachment=0.3,
            extent=300.0,
        )


#: Recipes keyed by lowercase dataset name.  Edge densities match Table 2:
#: Brightkite 7.4, Gowalla 9.6, Twitter 7.7, Foursquare 11.0 edges/node.
DATASET_RECIPES: Mapping[str, DatasetRecipe] = {
    "brightkite": DatasetRecipe(
        name="Brightkite",
        paper_nodes=58_000,
        paper_edges=428_000,
        base_nodes=1_000,
        avg_out_degree=7.4,
        n_cities=4,
        seed=58,
    ),
    "gowalla": DatasetRecipe(
        name="Gowalla",
        paper_nodes=197_000,
        paper_edges=1_900_000,
        base_nodes=2_000,
        avg_out_degree=9.6,
        n_cities=5,
        seed=197,
    ),
    "twitter": DatasetRecipe(
        name="Twitter",
        paper_nodes=554_000,
        paper_edges=4_290_000,
        base_nodes=4_000,
        avg_out_degree=7.7,
        n_cities=6,
        seed=554,
    ),
    "foursquare": DatasetRecipe(
        name="Foursquare",
        paper_nodes=4_900_000,
        paper_edges=53_700_000,
        base_nodes=8_000,
        avg_out_degree=11.0,
        n_cities=8,
        seed=4900,
    ),
}

_CACHE: Dict[tuple[str, float], GeoSocialNetwork] = {}


def default_scale() -> float:
    """The global size multiplier, from ``REPRO_SCALE`` (default 1.0)."""
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        scale = float(raw)
    except ValueError:
        raise GraphError(f"REPRO_SCALE must be a float, got {raw!r}") from None
    if scale <= 0:
        raise GraphError(f"REPRO_SCALE must be positive, got {scale}")
    return scale


def load_dataset(
    name: str, scale: float | None = None, cache: bool = True
) -> GeoSocialNetwork:
    """Generate (or fetch from cache) the synthetic stand-in for ``name``.

    ``name`` is case-insensitive and must be one of the recipes in
    :data:`DATASET_RECIPES`.  Results are memoised per (name, scale) because
    benchmarks reuse the same graphs many times.
    """
    key = name.strip().lower()
    if key not in DATASET_RECIPES:
        known = ", ".join(sorted(DATASET_RECIPES))
        raise GraphError(f"unknown dataset {name!r}; known datasets: {known}")
    if scale is None:
        scale = default_scale()
    cache_key = (key, float(scale))
    if cache and cache_key in _CACHE:
        return _CACHE[cache_key]
    recipe = DATASET_RECIPES[key]
    network = generate_geo_social_network(recipe.config(scale), seed=recipe.seed)
    if cache:
        _CACHE[cache_key] = network
    return network
