"""Geo-social network substrate.

* :mod:`repro.network.graph` — the immutable CSR :class:`GeoSocialNetwork`;
* :mod:`repro.network.probability` — edge-probability models (weighted
  cascade — the paper's choice — plus trivalency and constant);
* :mod:`repro.network.generators` — synthetic geo-social graph generators;
* :mod:`repro.network.datasets` — pre-parameterised dataset recipes that
  mimic the shape of the paper's four datasets at laptop scale;
* :mod:`repro.network.io` — text IO for edge lists and check-ins;
* :mod:`repro.network.stats` — summary statistics used by Table 2.
"""

from repro.network.datasets import DATASET_RECIPES, DatasetRecipe, load_dataset
from repro.network.generators import (
    GeoSocialConfig,
    generate_geo_social_network,
    gaussian_cities,
)
from repro.network.graph import GeoSocialNetwork
from repro.network.io import (
    read_checkins,
    read_edge_list,
    read_network,
    write_checkins,
    write_edge_list,
    write_network,
)
from repro.network.probability import (
    assign_constant,
    assign_trivalency,
    assign_weighted_cascade,
)
from repro.network.stats import NetworkStats, summarize
from repro.network.subgraph import (
    induced_subgraph,
    largest_weak_component,
    spatial_subgraph,
    weakly_connected_components,
)

__all__ = [
    "DATASET_RECIPES",
    "DatasetRecipe",
    "GeoSocialConfig",
    "GeoSocialNetwork",
    "NetworkStats",
    "assign_constant",
    "assign_trivalency",
    "assign_weighted_cascade",
    "gaussian_cities",
    "generate_geo_social_network",
    "induced_subgraph",
    "largest_weak_component",
    "load_dataset",
    "spatial_subgraph",
    "weakly_connected_components",
    "read_checkins",
    "read_edge_list",
    "read_network",
    "summarize",
    "write_checkins",
    "write_edge_list",
    "write_network",
]
