"""Subgraph extraction utilities.

Real check-in datasets arrive with isolated users, multiple weak
components, and regions of interest; these helpers carve a working graph
out of raw data while preserving the invariants the rest of the library
expects (compact ids, aligned coordinates and probabilities).
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.geo.point import BoundingBox
from repro.network.graph import GeoSocialNetwork


def induced_subgraph(
    network: GeoSocialNetwork, nodes: Iterable[int]
) -> Tuple[GeoSocialNetwork, np.ndarray]:
    """The subgraph induced by ``nodes``.

    Returns ``(subgraph, original_ids)`` where ``original_ids[i]`` is the
    id in ``network`` of the subgraph's node ``i`` (ids are compacted in
    ascending original order).  Edge probabilities carry over unchanged —
    note that weighted-cascade probabilities are *not* re-normalised to
    the new in-degrees; call ``assign_weighted_cascade`` afterwards if
    the subgraph should be WC in its own right.
    """
    keep = np.asarray(sorted(set(int(v) for v in nodes)), dtype=np.int64)
    if keep.size == 0:
        raise GraphError("cannot induce a subgraph on zero nodes")
    if keep.min() < 0 or keep.max() >= network.n:
        raise GraphError(
            f"node ids must be in [0, {network.n}), got range "
            f"[{keep.min()}, {keep.max()}]"
        )
    remap = np.full(network.n, -1, dtype=np.int64)
    remap[keep] = np.arange(keep.size)

    edges, probs = network.edge_array()
    if len(edges):
        mask = (remap[edges[:, 0]] >= 0) & (remap[edges[:, 1]] >= 0)
        sub_edges = np.column_stack(
            [remap[edges[mask, 0]], remap[edges[mask, 1]]]
        )
        sub_probs = probs[mask]
    else:
        sub_edges = np.empty((0, 2), dtype=np.int64)
        sub_probs = np.empty(0, dtype=float)
    sub = GeoSocialNetwork(
        keep.size, sub_edges, sub_probs, network.coords[keep].copy()
    )
    return sub, keep


def weakly_connected_components(network: GeoSocialNetwork) -> np.ndarray:
    """Component label per node (labels are 0-based, arbitrary order)."""
    labels = np.full(network.n, -1, dtype=np.int64)
    current = 0
    for start in range(network.n):
        if labels[start] != -1:
            continue
        stack = [start]
        labels[start] = current
        while stack:
            u = stack.pop()
            for v in network.out_neighbors(u):
                v = int(v)
                if labels[v] == -1:
                    labels[v] = current
                    stack.append(v)
            for v in network.in_neighbors(u):
                v = int(v)
                if labels[v] == -1:
                    labels[v] = current
                    stack.append(v)
        current += 1
    return labels


def largest_weak_component(
    network: GeoSocialNetwork,
) -> Tuple[GeoSocialNetwork, np.ndarray]:
    """The induced subgraph of the largest weakly connected component."""
    labels = weakly_connected_components(network)
    counts = np.bincount(labels)
    biggest = int(np.argmax(counts))
    return induced_subgraph(network, np.flatnonzero(labels == biggest))


def spatial_subgraph(
    network: GeoSocialNetwork, box: BoundingBox
) -> Tuple[GeoSocialNetwork, np.ndarray]:
    """The subgraph of users located inside ``box``."""
    inside = np.flatnonzero(
        (network.coords[:, 0] >= box.xmin)
        & (network.coords[:, 0] <= box.xmax)
        & (network.coords[:, 1] >= box.ymin)
        & (network.coords[:, 1] <= box.ymax)
    )
    if inside.size == 0:
        raise GraphError("no users inside the given bounding box")
    return induced_subgraph(network, inside)
