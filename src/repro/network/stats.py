"""Graph summary statistics (Table 2 and sanity reporting)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.graph import GeoSocialNetwork


@dataclass(frozen=True)
class NetworkStats:
    """Summary statistics of a geo-social network."""

    n_nodes: int
    n_edges: int
    avg_out_degree: float
    max_out_degree: int
    max_in_degree: int
    reciprocity: float
    mean_edge_probability: float
    spatial_extent: tuple[float, float]

    def as_row(self) -> dict[str, object]:
        """Flat dict for tabular reporting."""
        return {
            "nodes": self.n_nodes,
            "edges": self.n_edges,
            "avg_deg": round(self.avg_out_degree, 2),
            "max_out": self.max_out_degree,
            "max_in": self.max_in_degree,
            "recip": round(self.reciprocity, 3),
            "mean_p": round(self.mean_edge_probability, 4),
        }


def summarize(network: GeoSocialNetwork) -> NetworkStats:
    """Compute :class:`NetworkStats` for a network."""
    out_deg = np.asarray(network.out_degree())
    in_deg = np.asarray(network.in_degree())
    edges, probs = network.edge_array()
    if network.m:
        keys = set(map(tuple, edges.tolist()))
        recip_count = sum(1 for u, v in keys if (v, u) in keys)
        reciprocity = recip_count / network.m
        mean_p = float(probs.mean())
    else:
        reciprocity = 0.0
        mean_p = 0.0
    box = network.bounding_box()
    return NetworkStats(
        n_nodes=network.n,
        n_edges=network.m,
        avg_out_degree=float(out_deg.mean()) if network.n else 0.0,
        max_out_degree=int(out_deg.max()) if network.n else 0,
        max_in_degree=int(in_deg.max()) if network.n else 0,
        reciprocity=reciprocity,
        mean_edge_probability=mean_p,
        spatial_extent=(box.width, box.height),
    )


def degree_histogram(network: GeoSocialNetwork, direction: str = "out") -> np.ndarray:
    """Histogram ``h`` with ``h[d]`` = number of nodes of degree ``d``.

    ``direction`` is ``"out"`` or ``"in"``.  Used by tests asserting the
    generator's heavy-tailed degree distribution.
    """
    if direction == "out":
        deg = np.asarray(network.out_degree())
    elif direction == "in":
        deg = np.asarray(network.in_degree())
    else:
        raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")
    return np.bincount(deg)
