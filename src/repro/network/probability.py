"""Edge-probability assignment models for the IC diffusion process.

The paper's experiments use the *weighted cascade* (WC) model:
``Pr(u, v) = 1 / indeg(v)`` — every node is, in expectation, activated by
exactly one in-neighbour attempt.  Trivalency (random small probabilities)
and constant probability are the other two standard IC parameterisations and
are provided for completeness and ablation.

All functions take a network (possibly with placeholder probabilities) and
return a *new* network — :class:`~repro.network.graph.GeoSocialNetwork` is
immutable by design.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import GraphError
from repro.network.graph import GeoSocialNetwork
from repro.rng import RandomLike, as_generator

#: The classic trivalency probability levels (Chen et al., KDD'10).
TRIVALENCY_LEVELS = (0.1, 0.01, 0.001)


def assign_weighted_cascade(network: GeoSocialNetwork) -> GeoSocialNetwork:
    """Weighted-cascade probabilities: ``Pr(u, v) = 1 / indeg(v)``.

    This is the model used throughout the paper's evaluation (Section 5.1).
    """
    edges, _ = network.edge_array()
    indeg = np.asarray(network.in_degree(), dtype=float)
    # Every edge's target has indegree >= 1 by construction.
    probs = 1.0 / indeg[edges[:, 1]]
    return network.with_probabilities(probs)


def assign_trivalency(
    network: GeoSocialNetwork,
    levels: Sequence[float] = TRIVALENCY_LEVELS,
    seed: RandomLike = None,
) -> GeoSocialNetwork:
    """Trivalency probabilities: each edge gets a uniform choice of ``levels``."""
    if not levels:
        raise GraphError("trivalency needs at least one probability level")
    lv = np.asarray(levels, dtype=float)
    if lv.min() < 0.0 or lv.max() > 1.0:
        raise GraphError(f"trivalency levels must lie in [0, 1], got {levels}")
    rng = as_generator(seed)
    probs = rng.choice(lv, size=network.m)
    return network.with_probabilities(probs)


def assign_constant(network: GeoSocialNetwork, p: float) -> GeoSocialNetwork:
    """Constant probability ``p`` on every edge."""
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"constant probability must lie in [0, 1], got {p}")
    return network.with_probabilities(np.full(network.m, p, dtype=float))


def is_weighted_cascade(network: GeoSocialNetwork, tol: float = 1e-12) -> bool:
    """True when every edge satisfies ``Pr(u, v) == 1 / indeg(v)``.

    The RR-set sampler and the IC simulator use this to enable the binomial
    fast path (all in-edges of a node share one probability).
    """
    if network.m == 0:
        return True
    indeg = np.asarray(network.in_degree(), dtype=float)
    expected = np.zeros(network.m)
    # in-CSR order groups edges by target, so expected prob is constant per group
    targets = np.repeat(np.arange(network.n), np.diff(network.in_offsets))
    expected = 1.0 / indeg[targets]
    return bool(np.allclose(network.in_probs, expected, atol=tol, rtol=0.0))


def uniform_in_probability(network: GeoSocialNetwork) -> np.ndarray | None:
    """Per-node shared in-edge probability, or ``None`` when not uniform.

    Returns an ``(n,)`` array ``p`` with ``p[v]`` the common probability of
    all in-edges of ``v`` (0 for nodes with no in-edges) when every node's
    in-edges share one probability; this is the condition for the binomial
    sampling fast path (weighted cascade always satisfies it).
    """
    p = np.zeros(network.n, dtype=float)
    for v in range(network.n):
        probs = network.in_probabilities(v)
        if len(probs) == 0:
            continue
        first = probs[0]
        if not np.allclose(probs, first, atol=1e-12, rtol=0.0):
            return None
        p[v] = float(first)
    return p
