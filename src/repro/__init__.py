"""repro — Distance-Aware Influence Maximization in geo-social networks.

A complete implementation of the DAIM problem and the two index-based
solutions (MIA-DA and RIS-DA) from *"Distance-aware influence maximization
in geo-social network"* (ICDE 2016) and its journal extension, together
with every substrate they need: a CSR geo-social graph, IC/LT diffusion,
MIA arborescences, reverse influence sampling, computational geometry, and
synthetic geo-social datasets.

Quickstart::

    from repro import load_dataset, DistanceDecay, RisDaIndex

    network = load_dataset("gowalla")
    index = RisDaIndex(network, DistanceDecay(alpha=0.01))
    result = index.query((150.0, 150.0), k=30)
    print(result.seeds, result.estimate)

Public API: the names exported here.  Subpackages are also stable surface
for advanced use (``repro.geo``, ``repro.network``, ``repro.diffusion``,
``repro.mia``, ``repro.ris``, ``repro.core``, ``repro.bench``).
"""

from repro.core.greedy import naive_greedy
from repro.core.heuristics import (
    degree_discount,
    top_degree,
    top_weight,
    top_weighted_degree,
)
from repro.core.keyword import keyword_cover_query
from repro.core.mia_da import MiaDaConfig, MiaDaIndex
from repro.core.multi_location import multi_location_query, multi_location_weights
from repro.core.persistence import (
    load_index,
    load_mia_index,
    load_ris_index,
    peek_index_kind,
    save_mia_index,
    save_ris_index,
)
from repro.core.query import DaimQuery, SeedResult
from repro.core.ris_da import RisDaConfig, RisDaIndex
from repro.ris.adhoc import adhoc_ris_query
from repro.ris.certify import Certificate, certify_seed_set
from repro.diffusion.spread import (
    SpreadEstimate,
    monte_carlo_spread,
    monte_carlo_weighted_spread,
)
from repro.exceptions import (
    DataFormatError,
    GeometryError,
    GraphError,
    IndexNotReadyError,
    QueryError,
    ReproError,
    SamplingError,
    ServeError,
)
from repro.geo.weights import DistanceDecay
from repro.mia.pmia import MiaModel, PmiaDa
from repro.obs.env import runtime_info
from repro.obs.log import JsonLogger, use_logger
from repro.obs.prom import parse_prometheus, render_prometheus
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import NullTracer, Tracer, use_tracer
from repro.network.datasets import DATASET_RECIPES, load_dataset
from repro.network.generators import GeoSocialConfig, generate_geo_social_network
from repro.network.graph import GeoSocialNetwork
from repro.network.io import read_network, write_network
from repro.serve.cache import IndexCache, ResultCache
from repro.serve.engine import QueryEngine, ServeConfig, ServedResult
from repro.serve.metrics import MetricsRegistry

__version__ = "1.0.0"

__all__ = [
    "DATASET_RECIPES",
    "DaimQuery",
    "DataFormatError",
    "DistanceDecay",
    "GeoSocialConfig",
    "GeoSocialNetwork",
    "GeometryError",
    "GraphError",
    "IndexCache",
    "IndexNotReadyError",
    "JsonLogger",
    "MetricsRegistry",
    "MiaDaConfig",
    "MiaDaIndex",
    "MiaModel",
    "NullTracer",
    "ObsHttpServer",
    "PmiaDa",
    "QueryEngine",
    "QueryError",
    "ReproError",
    "ResultCache",
    "RisDaConfig",
    "RisDaIndex",
    "SamplingError",
    "SeedResult",
    "ServeConfig",
    "ServeError",
    "ServedResult",
    "SlowQueryLog",
    "SpreadEstimate",
    "Tracer",
    "Certificate",
    "__version__",
    "adhoc_ris_query",
    "certify_seed_set",
    "degree_discount",
    "generate_geo_social_network",
    "keyword_cover_query",
    "load_dataset",
    "load_index",
    "load_mia_index",
    "load_ris_index",
    "peek_index_kind",
    "save_mia_index",
    "save_ris_index",
    "top_degree",
    "top_weight",
    "top_weighted_degree",
    "monte_carlo_spread",
    "monte_carlo_weighted_spread",
    "multi_location_query",
    "multi_location_weights",
    "naive_greedy",
    "parse_prometheus",
    "read_network",
    "render_prometheus",
    "runtime_info",
    "use_logger",
    "use_tracer",
    "write_network",
]


def __getattr__(name):
    # Lazy: the HTTP sidecar pulls in http.server and the serve engine;
    # resolving it on demand keeps plain `import repro` lightweight.
    if name == "ObsHttpServer":
        from repro.obs.httpd import ObsHttpServer

        return ObsHttpServer
    raise AttributeError(name)
