"""Zero-copy index sharing for multi-process serving.

A saved index is one ``.npz`` of flat arrays plus a JSON meta dict (see
:mod:`repro.core.persistence`).  Deserialising it once *per worker
process* multiplies resident memory by the pool size — exactly what a
"millions of users" deployment cannot afford, since the corpus / tree
arrays dominate a serving process.  :class:`SharedIndexArrays` publishes
those arrays once and lets every worker attach without copying:

* ``backing="shm"`` (default) — the parent decompresses the ``.npz``
  once and copies each array into a :class:`multiprocessing.shared_memory`
  segment; workers map the segments by name.  One physical copy in RAM,
  any number of attached processes.
* ``backing="mmap"`` — the parent materialises each array as a raw
  ``.npy`` file in a spill directory; workers ``np.load(...,
  mmap_mode="r")`` them.  One physical copy in the page cache, and the
  kernel may drop cold pages under pressure — the right trade when the
  index outgrows RAM.

Either way the worker-side arrays are **read-only**: both index families
treat their stored arrays as immutable after assembly, and marking the
views non-writeable turns any future violation of that contract into an
immediate ``ValueError`` instead of silent cross-process corruption.

The handshake is picklable plain data: the parent ships a
:class:`SharedIndexManifest` (array specs + index meta + fingerprint) to
each worker, the worker calls :meth:`SharedIndexArrays.attach` and
assembles its index via :func:`repro.core.persistence.assemble_index`.
Ownership: the *creating* process unlinks the segments / spill files
(:meth:`SharedIndexArrays.unlink`); attached processes only ``close()``.
"""

from __future__ import annotations

import itertools
import json
import tempfile
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.persistence import PathLike, read_index_arrays
from repro.exceptions import ServeError

BACKINGS = ("shm", "mmap")

#: Distinguishes successive republished spill files of one array name.
_REPUBLISH_SEQ = itertools.count(1)


@dataclass(frozen=True)
class SharedArraySpec:
    """Where one named array lives: a shm segment or a spilled ``.npy``."""

    name: str
    shape: Tuple[int, ...]
    dtype: str
    shm_name: Optional[str] = None  # backing="shm"
    path: Optional[str] = None  # backing="mmap"


@dataclass(frozen=True)
class SharedIndexManifest:
    """The picklable handshake a worker needs to attach zero-copy.

    ``kind``/``meta`` mirror the ``.npz`` metadata; ``fingerprint`` is
    the source file's identity token so worker result-cache keys line up
    with the parent's.
    """

    kind: str
    meta: dict
    fingerprint: str
    backing: str
    specs: Tuple[SharedArraySpec, ...]


def _unregister_from_resource_tracker(shm: shared_memory.SharedMemory) -> None:
    """Detach a non-owning attach from the resource tracker.

    ``SharedMemory(name=...)`` registers the segment with the process's
    resource tracker, which would tear it down when *this* process exits
    — but the segment belongs to the pool parent.  CPython grows a
    ``track=False`` parameter only in 3.13; on earlier versions
    unregistering is the established idiom.  Only call this in processes
    with their *own* tracker (spawn-started children): fork children and
    same-process attaches share the creator's tracker, where the
    attach-side registration dedupes away and unregistering here would
    strip the creator's own entry.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class SharedIndexArrays:
    """One published set of index arrays plus this process's views.

    Create in the pool parent with :meth:`create` (reads the ``.npz``
    once), ship :attr:`manifest` to workers, attach there with
    :meth:`attach`.  :attr:`arrays` then maps member names to read-only
    ``np.ndarray`` views backed by the shared storage.
    """

    def __init__(
        self,
        manifest: SharedIndexManifest,
        arrays: Dict[str, np.ndarray],
        segments: Dict[str, shared_memory.SharedMemory],
        owner: bool,
        spill_dir: Optional[Path] = None,
    ):
        self.manifest = manifest
        self.arrays = arrays
        self._segments = segments
        self._owner = owner
        self._spill_dir = spill_dir
        self._closed = False

    # -- parent side ---------------------------------------------------

    @classmethod
    def create(
        cls,
        path: PathLike,
        backing: str = "shm",
        fingerprint: Optional[str] = None,
        spill_dir: Optional[PathLike] = None,
    ) -> "SharedIndexArrays":
        """Publish the index at ``path`` for zero-copy attachment.

        ``fingerprint`` defaults to ``IndexCache.fingerprint(path)``
        semantics (``<resolved>@<mtime_ns>``) computed here without the
        import cycle.  ``spill_dir`` (mmap backing) defaults to a fresh
        temporary directory owned — and deleted — by this object.
        """
        if backing not in BACKINGS:
            raise ServeError(
                f"backing must be one of {BACKINGS}, got {backing!r}"
            )
        kind, meta, raw = read_index_arrays(path)
        if fingerprint is None:
            resolved = Path(path).resolve()
            if resolved.suffix != ".npz":
                resolved = resolved.with_name(resolved.name + ".npz")
            fingerprint = f"{resolved}@{resolved.stat().st_mtime_ns}"

        specs = []
        arrays: Dict[str, np.ndarray] = {}
        segments: Dict[str, shared_memory.SharedMemory] = {}
        spill: Optional[Path] = None
        if backing == "mmap":
            spill = Path(
                spill_dir
                if spill_dir is not None
                else tempfile.mkdtemp(prefix="repro-index-")
            )
            spill.mkdir(parents=True, exist_ok=True)
        try:
            for name, arr in raw.items():
                arr = np.ascontiguousarray(arr)
                if backing == "shm":
                    seg = shared_memory.SharedMemory(
                        create=True, size=max(arr.nbytes, 1)
                    )
                    view = np.ndarray(
                        arr.shape, dtype=arr.dtype, buffer=seg.buf
                    )
                    view[...] = arr
                    view.flags.writeable = False
                    segments[name] = seg
                    arrays[name] = view
                    specs.append(SharedArraySpec(
                        name=name, shape=tuple(arr.shape),
                        dtype=arr.dtype.str, shm_name=seg.name,
                    ))
                else:
                    npy = spill / f"{name}.npy"
                    np.save(npy, arr)
                    arrays[name] = np.load(npy, mmap_mode="r")
                    specs.append(SharedArraySpec(
                        name=name, shape=tuple(arr.shape),
                        dtype=arr.dtype.str, path=str(npy),
                    ))
        except BaseException:
            for seg in segments.values():
                seg.close()
                seg.unlink()
            raise
        manifest = SharedIndexManifest(
            kind=kind,
            # A json round-trip guarantees the meta stays plain data and
            # cheap to pickle into every worker.
            meta=json.loads(json.dumps(meta)),
            fingerprint=fingerprint,
            backing=backing,
            specs=tuple(specs),
        )
        return cls(manifest, arrays, segments, owner=True, spill_dir=spill)

    def republish(
        self,
        kind: str,
        meta: dict,
        arrays: Dict[str, np.ndarray],
        fingerprint: str,
    ) -> Tuple["SharedIndexArrays", "SharedIndexArrays"]:
        """A successor publication that reuses every unchanged segment.

        For each array, the existing storage is kept when the new array
        is the published view itself (zero-copy pass-through, detected by
        ``np.shares_memory``) or byte-identical to it; only genuinely
        changed arrays get fresh segments / spill files.  This is what
        lets a streaming update republish an index while touching only
        the corpus or tree segments, leaving pivot/anchor storage — and
        the workers' mappings of it — alone.

        Returns ``(successor, retired)``.  ``successor`` owns all live
        storage (reused + new) and carries the new manifest; ``retired``
        owns only the *replaced* storage and must be kept until every
        worker attached to the old manifest has stopped, then
        ``retired.unlink()``.  ``self`` is consumed: its resources have
        been transferred and it is left closed and ownerless.
        """
        if not self._owner:
            raise ServeError("only the owning publication can republish")
        if self._closed:
            raise ServeError("cannot republish a closed publication")
        backing = self.manifest.backing
        old_specs = {s.name: s for s in self.manifest.specs}
        seq = next(_REPUBLISH_SEQ)
        new_specs = []
        new_arrays: Dict[str, np.ndarray] = {}
        new_segments: Dict[str, shared_memory.SharedMemory] = {}
        reused: set = set()
        try:
            for name, arr in arrays.items():
                arr = np.ascontiguousarray(arr)
                old_view = self.arrays.get(name)
                spec = old_specs.get(name)
                if (
                    spec is not None
                    and old_view is not None
                    and tuple(arr.shape) == tuple(spec.shape)
                    and arr.dtype.str == spec.dtype
                    and (
                        np.shares_memory(arr, old_view)
                        or np.array_equal(arr, old_view)
                    )
                ):
                    reused.add(name)
                    new_specs.append(spec)
                    new_arrays[name] = old_view
                    if backing == "shm":
                        new_segments[name] = self._segments[name]
                    continue
                if backing == "shm":
                    seg = shared_memory.SharedMemory(
                        create=True, size=max(arr.nbytes, 1)
                    )
                    view = np.ndarray(
                        arr.shape, dtype=arr.dtype, buffer=seg.buf
                    )
                    view[...] = arr
                    view.flags.writeable = False
                    new_segments[name] = seg
                    new_arrays[name] = view
                    new_specs.append(SharedArraySpec(
                        name=name, shape=tuple(arr.shape),
                        dtype=arr.dtype.str, shm_name=seg.name,
                    ))
                else:
                    assert self._spill_dir is not None
                    npy = self._spill_dir / f"{name}.r{seq}.npy"
                    np.save(npy, arr)
                    new_arrays[name] = np.load(npy, mmap_mode="r")
                    new_specs.append(SharedArraySpec(
                        name=name, shape=tuple(arr.shape),
                        dtype=arr.dtype.str, path=str(npy),
                    ))
        except BaseException:
            for name, seg in new_segments.items():
                if name not in reused:
                    seg.close()
                    seg.unlink()
            raise
        successor = SharedIndexArrays(
            SharedIndexManifest(
                kind=kind,
                meta=json.loads(json.dumps(meta)),
                fingerprint=fingerprint,
                backing=backing,
                specs=tuple(new_specs),
            ),
            new_arrays,
            new_segments,
            owner=True,
            spill_dir=self._spill_dir,
        )
        retired = SharedIndexArrays(
            SharedIndexManifest(
                kind=self.manifest.kind,
                meta=self.manifest.meta,
                fingerprint=self.manifest.fingerprint,
                backing=backing,
                specs=tuple(
                    s for n, s in old_specs.items() if n not in reused
                ),
            ),
            {},
            {
                n: seg for n, seg in self._segments.items()
                if n not in reused
            },
            owner=True,
            # Spec-listed spill files are deleted on unlink; the spill
            # directory itself now belongs to the successor (the rmdir
            # attempt on a non-empty dir is a tolerated no-op).
            spill_dir=self._spill_dir,
        )
        # self is consumed: everything it owned now lives in successor or
        # retired, and double-close/unlink must not touch either.
        self.arrays = {}
        self._segments = {}
        self._owner = False
        self._spill_dir = None
        self._closed = True
        return successor, retired

    # -- worker side ---------------------------------------------------

    @classmethod
    def attach(
        cls, manifest: SharedIndexManifest, untrack: bool = False
    ) -> "SharedIndexArrays":
        """Map a published manifest in this process (no copies).

        Pass ``untrack=True`` from spawn-started worker processes (their
        private resource tracker would otherwise destroy the segments
        when the worker exits); leave it ``False`` in fork children and
        in the creating process itself, which share the creator's
        tracker.
        """
        arrays: Dict[str, np.ndarray] = {}
        segments: Dict[str, shared_memory.SharedMemory] = {}
        try:
            for spec in manifest.specs:
                dtype = np.dtype(spec.dtype)
                if manifest.backing == "shm":
                    if spec.shm_name is None:
                        raise ServeError(
                            f"manifest entry {spec.name} has no shm segment"
                        )
                    seg = shared_memory.SharedMemory(name=spec.shm_name)
                    if untrack:
                        _unregister_from_resource_tracker(seg)
                    n_bytes = int(np.prod(spec.shape, dtype=np.int64)) * (
                        dtype.itemsize
                    )
                    view = np.ndarray(
                        spec.shape, dtype=dtype, buffer=seg.buf[:n_bytes]
                    )
                    view.flags.writeable = False
                    segments[spec.name] = seg
                    arrays[spec.name] = view
                else:
                    if spec.path is None:
                        raise ServeError(
                            f"manifest entry {spec.name} has no spill path"
                        )
                    arrays[spec.name] = np.load(spec.path, mmap_mode="r")
        except BaseException:
            for seg in segments.values():
                seg.close()
            raise
        return cls(manifest, arrays, segments, owner=False)

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Drop this process's mappings (the storage itself survives)."""
        if self._closed:
            return
        self._closed = True
        # The numpy views hold buffer references; release them before
        # closing the segments so mmap teardown doesn't raise.
        self.arrays = {}
        for seg in self._segments.values():
            try:
                seg.close()
            except (OSError, BufferError):  # pragma: no cover - best effort
                pass
        self._segments = {}

    def unlink(self) -> None:
        """Destroy the shared storage (owner only; implies close)."""
        if not self._owner:
            raise ServeError("only the creating process may unlink")
        segments = dict(self._segments)
        self.close()
        for seg in segments.values():
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        if self._spill_dir is not None:
            for spec in self.manifest.specs:
                if spec.path is not None:
                    Path(spec.path).unlink(missing_ok=True)
            try:
                self._spill_dir.rmdir()
            except OSError:  # pragma: no cover - foreign files present
                pass
            self._spill_dir = None

    @property
    def nbytes(self) -> int:
        """Total bytes published (one copy, however many attachments)."""
        return sum(
            int(np.prod(s.shape, dtype=np.int64)) * np.dtype(s.dtype).itemsize
            for s in self.manifest.specs
        )

    def __enter__(self) -> "SharedIndexArrays":
        return self

    def __exit__(self, *exc_info) -> bool:
        if self._owner:
            self.unlink()
        else:
            self.close()
        return False


def attach_index(manifest: SharedIndexManifest, network, untrack: bool = False):
    """Worker-side convenience: attach + assemble in one call.

    Returns ``(handle, index)``; the caller owns closing the handle when
    the index is no longer needed (the index keeps views into it).  See
    :meth:`SharedIndexArrays.attach` for ``untrack``.
    """
    from repro.core.persistence import assemble_index

    handle = SharedIndexArrays.attach(manifest, untrack=untrack)
    index = assemble_index(
        manifest.kind,
        network,
        manifest.meta,
        handle.arrays,
        source=f"shared index {manifest.fingerprint}",
    )
    return handle, index
