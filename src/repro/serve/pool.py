"""Sharded multi-process serving over a zero-copy shared index.

One Python process cannot scale index serving past a point: the
selection kernels release the GIL inside NumPy, but cache bookkeeping,
fallbacks, and per-query orchestration are interpreter-bound, and a
single process is a single failure domain.  :class:`ServePool` runs N
pre-forked worker processes, each holding a full
:class:`~repro.serve.engine.QueryEngine` over the *same* physical index
arrays (attached zero-copy via :mod:`repro.serve.shared`), and routes
each query to a worker by its spatial shard.

Sharding — :class:`ShardRouter` quantizes the query location to a
:class:`~repro.geo.grid.UniformGrid` cell and maps
``cell % n_shards -> worker``.  The assignment is a pure function of the
network bounding box and the shard count, so it is identical across
restarts and across processes; a given query neighbourhood always lands
on the same worker, which keeps that worker's result cache hot for its
own territory instead of every worker caching everything.

Fault tolerance — the router detects a dead worker (crash, OOM-kill)
while collecting, respawns it against the same shared arrays, and
resubmits that worker's outstanding sub-batches under fresh task ids;
late replies from a previous incarnation are dropped by task-id.  A
batch therefore completes (with at-least-once execution of the affected
sub-batches) as long as the parent survives.

Streaming — :meth:`ServePool.apply_update` applies a
:class:`~repro.stream.GraphDelta` to a parent-side copy of the index,
republishes only the shared segments the update touched, and rotates
workers one at a time onto the new generation; old workers drain their
queued tasks before stopping, so no request fails during a rotation.

Observability — the parent records routing metrics
(``shard<i>_queries_total``, per-kind ``serve_queries_total{kind=...}``
at routing time, ``worker_restarts_total``) and the end-to-end
``latency_ms`` of every served query; each worker's own
registry (cache hits, fallbacks, stage timings...) is merged into the
parent's under the ``worker.`` prefix on :meth:`ServePool.close`.  With
a tracer attached, each worker returns a ``pool.worker`` span dict per
sub-batch that the parent re-parents under its ``pool.serve_batch``
span via :meth:`~repro.obs.trace.Tracer.adopt`.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import threading
import time
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.persistence import assemble_index, index_arrays
from repro.core.querykind import (
    AnyQuery,
    kind_of,
    normalize_query,
    route_location,
)
from repro.exceptions import QueryError, ServeError
from repro.geo.grid import UniformGrid
from repro.geo.point import BoundingBox, PointLike
from repro.network.graph import GeoSocialNetwork
from repro.obs.log import get_logger
from repro.obs.profile import SamplingProfiler, merge_profile_dumps
from repro.obs.slo import SloConfig, SloTracker
from repro.obs.trace import (
    Tracer,
    get_tracer,
    span_context,
    wall_now,
    worker_span,
)
from repro.serve.engine import QueryEngine, ServeConfig, ServedResult
from repro.serve.metrics import MetricsRegistry, labelled, record_staleness
from repro.serve.shared import SharedIndexArrays, SharedIndexManifest, attach_index

#: How long the collector waits on the result queue before checking
#: worker liveness.  Small enough to notice a crash promptly, large
#: enough to not busy-poll.
_POLL_SECONDS = 0.1

#: How long close() waits for a worker to drain its stop message before
#: escalating to terminate().
_JOIN_SECONDS = 5.0

#: How often an idle worker wakes from its task-queue wait to check
#: whether its parent is still alive.  A worker whose parent was killed
#: (SIGKILL skips any parent-side cleanup) would otherwise block on the
#: queue forever, keeping the shared segments pinned.
_ORPHAN_POLL_SECONDS = 1.0


class ShardRouter:
    """Deterministic location -> shard assignment via grid cells.

    ``shard_of`` is a pure function of the bounding box, the cell
    budget, and ``n_shards`` — no randomness, no per-process state — so
    every process (and every restart) routes identically.  Using grid
    cells rather than raw coordinates means queries that would share a
    result-cache entry (same cell) always share a worker.
    """

    def __init__(self, box: BoundingBox, n_shards: int, cells: int = 1024):
        if n_shards < 1:
            raise ServeError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self.grid = UniformGrid.with_cell_budget(box, max(cells, n_shards))

    def shard_of(self, location: PointLike) -> int:
        return self.grid.cell_of(location) % self.n_shards


def _worker_main(
    worker_id: int,
    manifest: SharedIndexManifest,
    network: GeoSocialNetwork,
    config: ServeConfig,
    task_q: "mp.Queue",
    result_q: "mp.Queue",
    untrack_shm: bool,
    parent_pid: int,
    kernel_backend: Optional[str] = None,
    slo_config: Optional[SloConfig] = None,
    profile_hz: Optional[float] = None,
) -> None:
    """Worker loop: attach the shared index, serve sub-batches forever.

    Messages: ``("serve", task_id, [(idx, query), ...], span_ctx)`` —
    where ``query`` is any :data:`~repro.core.querykind.AnyQuery`
    (frozen dataclasses, so they pickle cleanly) — is answered with
    ``(worker_id, task_id, "ok", [(idx, ServedResult), ...],
    [span_dict...])``; ``("stats", task_id)`` with ``(worker_id,
    task_id, "stats", metrics_dump, None)``; ``("slo", task_id)`` with
    the worker's SLO-tracker dump (``None`` when SLO tracking is off);
    ``("profile", task_id)`` with the worker's profiler dump (``None``
    when profiling is off); ``("stop",)`` exits.  A failure inside a
    serve is reported as ``"err"`` with the traceback — the worker
    itself stays up.

    With ``slo_config`` set, the worker engine records every query
    outcome into its own :class:`SloTracker`; the parent merges the
    per-worker dumps at scrape time (absolute-second slots sum, like
    ``merge_dump``).  With ``profile_hz`` set, the worker runs a
    :class:`SamplingProfiler` for its whole life, alongside a real (but
    bounded) tracer so samples carry span attribution.

    The wait on the task queue is a timed poll: if the parent process
    disappears (its pid is re-parented away), the worker exits on its
    own rather than lingering as an orphan pinning the shm segments —
    once the last attachment closes, the shared resource tracker
    reclaims them.
    """
    # parent_pid comes from the parent itself: reading os.getppid() here
    # races with parent death — a worker first scheduled after the
    # parent is gone would record the re-parented pid (1) and never
    # detect the orphaning.
    if os.getppid() != parent_pid:  # orphaned before first running
        return
    handle, index = attach_index(manifest, network, untrack=untrack_shm)
    slo = SloTracker(slo_config) if slo_config is not None else None
    tracer = None
    profiler = None
    if profile_hz:
        # Profiling without spans yields anonymous stacks; give the
        # worker a real tracer (memory-bounded) purely for attribution.
        tracer = Tracer()
        profiler = SamplingProfiler(hz=profile_hz).start()
    # Each worker resolves the backend itself: numba compile caches are
    # per-process, and a fork/spawn child must not inherit a parent-side
    # resolution it cannot honour.
    engine = QueryEngine(
        index, config=config, fingerprint=manifest.fingerprint,
        kernel_backend=kernel_backend, slo=slo, tracer=tracer,
    )
    try:
        while True:
            try:
                msg = task_q.get(timeout=_ORPHAN_POLL_SECONDS)
            except queue_mod.Empty:
                if os.getppid() != parent_pid:  # orphaned
                    break
                continue
            except (EOFError, OSError):  # parent died; nothing to serve
                break
            if msg[0] == "stop":
                break
            if msg[0] == "stats":
                result_q.put(
                    (worker_id, msg[1], "stats", engine.metrics.dump(), None)
                )
                continue
            if msg[0] == "slo":
                result_q.put((
                    worker_id, msg[1], "slo",
                    slo.dump() if slo is not None else None, None,
                ))
                continue
            if msg[0] == "profile":
                result_q.put((
                    worker_id, msg[1], "profile",
                    profiler.dump() if profiler is not None else None, None,
                ))
                continue
            _, task_id, sub, ctx = msg
            # wall_now() anchors to one wall-clock reading taken at
            # import and advances by perf_counter, so a clock step while
            # a batch is in flight cannot skew the span against the
            # parent's monotonic deadlines.
            start_unix = wall_now()
            t0 = time.perf_counter()
            try:
                served = engine.serve_batch([q for _, q in sub])
                span = worker_span(
                    "pool.worker",
                    ctx,
                    start_unix,
                    (time.perf_counter() - t0) * 1e3,
                    {"worker_id": worker_id, "queries": len(sub)},
                )
                result_q.put((
                    worker_id, task_id, "ok",
                    [(idx, res) for (idx, _), res in zip(sub, served)],
                    [span] if span else None,
                ))
            except BaseException:
                result_q.put((
                    worker_id, task_id, "err",
                    traceback.format_exc(limit=8), None,
                ))
    finally:
        if profiler is not None:
            profiler.stop()
        handle.close()


class ServePool:
    """N pre-forked workers serving one shared index, sharded by space.

    Construct from a *saved* index path — the parent reads the ``.npz``
    once, publishes the arrays (``backing="shm"`` or ``"mmap"``), and
    forks workers that attach without copying.  The pool mirrors the
    single-process engine's surface where it matters: ``serve_batch``
    returns :class:`ServedResult` in input order, ``query`` serves one.
    Always :meth:`close` (or use as a context manager) — it is what
    releases the shared segments.
    """

    def __init__(
        self,
        path,
        network: GeoSocialNetwork,
        n_workers: int = 2,
        kind: Optional[str] = None,
        config: Optional[ServeConfig] = None,
        backing: str = "shm",
        shard_cells: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
        logger=None,
        kernel_backend: Optional[str] = None,
        slo_config: Optional[SloConfig] = None,
        profile_hz: Optional[float] = None,
    ):
        if n_workers < 1:
            raise ServeError(f"n_workers must be >= 1, got {n_workers}")
        if kernel_backend is not None and kernel_backend not in (
            "auto", "numpy", "numba"
        ):
            raise ServeError(
                "kernel_backend must be 'auto', 'numpy' or 'numba', "
                f"got {kernel_backend!r}"
            )
        #: Backend *request* forwarded to every worker engine (each
        #: worker resolves it in its own process); None keeps the
        #: index's persisted request.
        self.kernel_backend = kernel_backend
        #: SLO objectives forwarded to every worker engine; None turns
        #: rolling-window tracking off pool-wide.
        self.slo_config = slo_config
        #: Sampling rate forwarded to every worker (None = no profiling).
        self.profile_hz = profile_hz
        #: Merged pool-wide tracker, rebuilt from worker dumps by
        #: :meth:`refresh_slo` (never incrementally mutated, so repeated
        #: scrapes cannot double-count).
        self.slo: Optional[SloTracker] = None
        self.network = network
        self.config = config if config is not None else ServeConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.logger = logger if logger is not None else get_logger()
        # Workers inherit copy-on-write pages under fork, but the index
        # arrays specifically must be the *published* ones: fork keeps
        # pages shared only until anything in them is written, while the
        # shm/mmap backing is shared by construction and survives other
        # start methods.
        self._shared = SharedIndexArrays.create(path, backing=backing)
        if kind is not None and self._shared.manifest.kind != kind:
            self._shared.unlink()
            raise ServeError(
                f"{path} holds a {self._shared.manifest.kind.upper()}-DA "
                f"index but this pool serves {kind.upper()}-DA queries"
            )
        self.index_kind = self._shared.manifest.kind
        self.fingerprint = self._shared.manifest.fingerprint
        self.router = ShardRouter(
            network.bounding_box(), n_workers, cells=shard_cells
        )
        start_methods = mp.get_all_start_methods()
        self._ctx = mp.get_context(
            "fork" if "fork" in start_methods else "spawn"
        )
        self._result_q: "mp.Queue" = self._ctx.Queue()
        self._workers: List[Optional[mp.process.BaseProcess]] = [None] * n_workers
        self._task_qs: List[Optional["mp.Queue"]] = [None] * n_workers
        self._task_seq = 0
        self._closed = False
        self._metrics_merged = False
        # Guards worker-slot mutation (rotation, revival) against
        # concurrent submission.  Reentrant because _revive_dead
        # resubmits through _submit while already holding it.
        self._lock = threading.RLock()
        self._update_lock = threading.Lock()
        self._parent_index = None
        self.last_update = None
        self._base_fingerprint = self.fingerprint.split("#g", 1)[0]
        try:
            for wid in range(n_workers):
                self._spawn(wid)
        except BaseException:
            self.close()
            raise

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _spawn(self, worker_id: int) -> None:
        task_q: "mp.Queue" = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id, self._shared.manifest, self.network,
                self.config, task_q, self._result_q,
                # Spawn children own a private resource tracker that must
                # not adopt (and later destroy) the parent's segments;
                # fork children share the parent's tracker and must not
                # strip its registrations.
                self._ctx.get_start_method() != "fork",
                os.getpid(),
                self.kernel_backend,
                self.slo_config,
                self.profile_hz,
            ),
            name=f"repro-serve-{worker_id}",
            daemon=True,
        )
        proc.start()
        self._workers[worker_id] = proc
        self._task_qs[worker_id] = task_q

    def _next_task_id(self) -> int:
        self._task_seq += 1
        return self._task_seq

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def query(self, q, k: Optional[int] = None) -> ServedResult:
        """Serve one query through its shard's worker."""
        return self.serve_batch([q], k)[0]

    def serve_batch(
        self, queries: Sequence, k: Optional[int] = None
    ) -> List[ServedResult]:
        """Serve a batch across the pool, results in input order.

        Queries are grouped by shard, each group goes to its worker as
        one sub-batch (the worker applies the usual per-query deadlines
        and fallbacks), and replies are aggregated by original position.
        A worker that dies mid-batch is restarted and its sub-batches
        resubmitted, so the batch still completes.
        """
        if self._closed:
            raise ServeError("pool is closed")
        self._metrics_merged = False
        items = [self._unpack(q, k) for q in queries]
        if not items:
            return []
        log = self.logger
        if log.enabled:
            log.event(
                "pool_serve_start", queries=len(items),
                workers=self.n_workers,
            )
        by_worker: Dict[int, List[Tuple[int, AnyQuery]]] = {}
        for i, query in enumerate(items):
            # Trajectories route by their first waypoint's cell.
            shard = self.router.shard_of(route_location(query))
            self.metrics.inc(f"shard{shard}_queries_total")
            self.metrics.inc(
                labelled("serve_queries_total", kind=kind_of(query))
            )
            by_worker.setdefault(shard, []).append((i, query))

        out: List[Optional[ServedResult]] = [None] * len(items)
        with self.tracer.span(
            "pool.serve_batch",
            {"queries": len(items), "workers": self.n_workers},
        ) as span:
            ctx = span_context(span)
            pending: Dict[int, Tuple[int, list]] = {}
            for wid, sub in by_worker.items():
                self._submit(wid, sub, ctx, pending)
            while pending:
                try:
                    reply = self._result_q.get(timeout=_POLL_SECONDS)
                except queue_mod.Empty:
                    self._revive_dead(pending, ctx)
                    continue
                wid, task_id, status, payload, spans = reply
                if task_id not in pending:
                    # A resubmitted task's original reply arriving late
                    # (the first incarnation answered before dying).
                    continue
                _, sub = pending.pop(task_id)
                if spans:
                    self.tracer.adopt(spans)
                if status == "err":
                    self.metrics.inc("worker_errors_total")
                    for idx, _q in sub:
                        out[idx] = ServedResult(
                            result=None, elapsed=0.0,
                            error=f"worker {wid} failed: {payload}",
                        )
                    continue
                for idx, served in payload:
                    out[idx] = served
                    self.metrics.inc("queries_total")
                    self.metrics.observe("latency_ms", served.elapsed * 1e3)
        if log.enabled:
            log.event(
                "pool_serve_end", queries=len(items),
                errors=sum(1 for s in out if s is not None and not s.ok),
            )
        return out  # type: ignore[return-value]

    def _submit(self, worker_id: int, sub, ctx, pending) -> None:
        with self._lock:
            task_id = self._next_task_id()
            pending[task_id] = (worker_id, sub)
            task_q = self._task_qs[worker_id]
            assert task_q is not None
            task_q.put(("serve", task_id, sub, ctx))

    def _revive_dead(self, pending, ctx) -> None:
        """Restart crashed workers and resubmit their outstanding tasks."""
        with self._lock:
            dead = {
                wid for wid, proc in enumerate(self._workers)
                if proc is not None and not proc.is_alive()
            }
            if not dead:
                return
            stranded = [
                (task_id, wid, sub)
                for task_id, (wid, sub) in pending.items()
                if wid in dead
            ]
            for wid in dead:
                proc = self._workers[wid]
                if proc is not None:
                    proc.join(timeout=0)
                old_q = self._task_qs[wid]
                if old_q is not None:
                    old_q.close()
                self.metrics.inc("worker_restarts_total")
                if self.logger.enabled:
                    self.logger.event("worker_restart", worker=wid)
                self._spawn(wid)
            for task_id, wid, sub in stranded:
                del pending[task_id]
                self._submit(wid, sub, ctx, pending)

    def _unpack(self, q, k) -> AnyQuery:
        try:
            return normalize_query(q, k)
        except QueryError as exc:
            raise ServeError(str(exc)) from exc

    # ------------------------------------------------------------------
    # Streaming maintenance
    # ------------------------------------------------------------------

    def apply_update(self, delta):
        """Apply a :class:`~repro.stream.GraphDelta` and rotate workers.

        The parent keeps its own assembled index over the shared views
        (built lazily on the first update), runs the index family's
        ``update()`` on it, republishes only the arrays the update
        actually changed (:meth:`SharedIndexArrays.republish`) under a
        generation-suffixed fingerprint, and rotates workers one at a
        time.  Each replacement is spawned against the successor
        segments *before* its predecessor is told to stop, and a
        stopping worker drains every task already queued to it first —
        so a batch in flight during rotation completes with no failed
        requests and serving never pauses pool-wide.  The replaced
        segments are unlinked only after every old worker has exited.

        The engine-side counters of rotated-out workers are not merged
        (collecting them would race a concurrent batch on the shared
        reply queue); parent-side routing metrics are unaffected.  The
        shard router keeps the original bounding box — out-of-box query
        locations clamp to edge cells, so routing stays deterministic
        even when check-ins grow the network's extent.

        Returns the family's :class:`~repro.stream.UpdateStats`.
        """
        if self._closed:
            raise ServeError("pool is closed")
        with self._update_lock:
            if self._parent_index is None:
                manifest = self._shared.manifest
                self._parent_index = assemble_index(
                    manifest.kind, self.network, manifest.meta,
                    self._shared.arrays,
                    source=f"shared index {manifest.fingerprint}",
                )
            stats = self._parent_index.update(delta=delta)
            self.network = self._parent_index.network
            kind, meta, arrays = index_arrays(self._parent_index)
            fingerprint = f"{self._base_fingerprint}#g{stats.generation}"
            successor, retired = self._shared.republish(
                kind, meta, arrays, fingerprint
            )
            self._shared = successor
            self.fingerprint = fingerprint
            # Re-anchor the parent index onto the successor's views: the
            # update left it holding views into the replaced segments
            # (surviving RR members, unchanged trees), which must not
            # outlive retired.unlink() — and private update-grown arrays
            # would otherwise accumulate in the parent across updates.
            self._parent_index = assemble_index(
                kind, self.network, successor.manifest.meta,
                successor.arrays, source=f"shared index {fingerprint}",
            )
            rotated: List[Tuple[Optional[mp.process.BaseProcess],
                                Optional["mp.Queue"]]] = []
            for wid in range(self.n_workers):
                with self._lock:
                    old_proc = self._workers[wid]
                    old_q = self._task_qs[wid]
                    self._spawn(wid)  # attaches the successor manifest
                    if old_q is not None:
                        # Queued behind any in-flight tasks: the old
                        # worker answers them all before it sees this.
                        try:
                            old_q.put(("stop",))
                        except (OSError, ValueError):  # pragma: no cover
                            pass
                rotated.append((old_proc, old_q))
            for proc, _q in rotated:
                if proc is None:
                    continue
                proc.join(timeout=_JOIN_SECONDS)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join(timeout=1.0)
            for _proc, q in rotated:
                if q is not None:
                    q.close()
            retired.unlink()
            record_staleness(self.metrics, stats)
            self.last_update = stats
        return stats

    def refresh_staleness(self) -> None:
        """Re-record the staleness gauges from the last update so
        ``staleness_seconds_since_refresh`` ages between scrapes
        (mirrors :meth:`QueryEngine.refresh_staleness`)."""
        if self.last_update is not None:
            record_staleness(self.metrics, self.last_update)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def _collect_from_workers(
        self, msg_kind: str, timeout: float
    ) -> List[object]:
        """Ask every live worker for ``msg_kind`` and gather the replies.

        Shared request/collect loop behind metrics, SLO and profile
        collection.  Returns the payloads that arrived within
        ``timeout`` seconds total (a dead or slow worker just doesn't
        contribute); replies to other outstanding requests are not
        consumed — task ids disambiguate.
        """
        expect = {}
        with self._lock:
            for wid, proc in enumerate(self._workers):
                task_q = self._task_qs[wid]
                if proc is None or task_q is None or not proc.is_alive():
                    continue
                task_id = self._next_task_id()
                expect[task_id] = wid
                task_q.put((msg_kind, task_id))
        payloads: List[object] = []
        deadline = time.monotonic() + timeout
        while expect and time.monotonic() < deadline:
            try:
                reply = self._result_q.get(
                    timeout=max(0.01, deadline - time.monotonic())
                )
            except queue_mod.Empty:
                break
            _wid, task_id, status, payload, _ = reply
            if task_id in expect and status == msg_kind:
                del expect[task_id]
                payloads.append(payload)
        return payloads

    def collect_worker_metrics(self, timeout: float = _JOIN_SECONDS) -> int:
        """Merge each live worker's registry under ``worker.``; returns
        how many workers answered within ``timeout`` seconds total.

        Merging is cumulative — each call adds the workers' *lifetime*
        totals again — so call it once per reporting point.  ``close``
        collects automatically unless this was already called after the
        last batch.
        """
        self._metrics_merged = True
        merged = 0
        for payload in self._collect_from_workers("stats", timeout):
            self.metrics.merge_dump(payload, prefix="worker.")
            merged += 1
        return merged

    def refresh_slo(self, timeout: float = _JOIN_SECONDS) -> None:
        """Rebuild the pool-wide SLO view from worker dumps and publish.

        Queries are served *by workers*, so the parent's burn rates are
        the merge of every worker's windows: absolute-second slots sum
        (the analogue of ``merge_dump`` for ring windows).  The merged
        tracker is rebuilt from scratch each call — repeated scrapes of
        long-lived workers never double-count.  A no-op when the pool
        was built without ``slo_config``.
        """
        if self.slo_config is None:
            return
        dumps = self._collect_from_workers("slo", timeout)
        tracker = SloTracker.from_dumps(dumps, config=self.slo_config)
        if self.last_update is not None:
            tracker.note_staleness(
                max(0.0, time.time() - self.last_update.updated_unix)
            )
        self.slo = tracker
        tracker.publish(self.metrics)

    def should_shed(self) -> bool:
        """Pool-wide admission-control hook (see ``QueryEngine.should_shed``)."""
        self.refresh_slo()
        return self.slo.should_shed() if self.slo is not None else False

    def collect_worker_profiles(
        self, timeout: float = _JOIN_SECONDS
    ) -> Optional[Dict]:
        """One merged profiler dump across every live worker.

        ``None`` when the pool was built without ``profile_hz`` or no
        worker answered.  Stacks with identical frames (common: every
        worker runs the same kernels) sum their sample counts, so the
        merged flamegraph reads as "the pool's CPU time".
        """
        if not self.profile_hz:
            return None
        dumps = [
            d for d in self._collect_from_workers("profile", timeout) if d
        ]
        if not dumps:
            return None
        return merge_profile_dumps(dumps)

    def close(self) -> None:
        """Stop workers, merge their metrics, release the shared index."""
        if self._closed:
            return
        self._closed = True
        if not self._metrics_merged:
            self.collect_worker_metrics()
        for task_q in self._task_qs:
            if task_q is not None:
                try:
                    task_q.put(("stop",))
                except (OSError, ValueError):  # pragma: no cover
                    pass
        for wid, proc in enumerate(self._workers):
            if proc is None:
                continue
            proc.join(timeout=_JOIN_SECONDS)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
            self._workers[wid] = None
        for wid, task_q in enumerate(self._task_qs):
            if task_q is not None:
                task_q.close()
                self._task_qs[wid] = None
        self._result_q.close()
        self._shared.unlink()

    def __enter__(self) -> "ServePool":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False
