"""The online query-serving engine.

:class:`QueryEngine` wraps one loaded index (RIS-DA or MIA-DA — both
expose the same ``query(location, k) -> SeedResult`` online interface)
and turns it into a serving component:

* **result caching** — answers are cached by ``(index fingerprint,
  index generation, quantized query cell, kind, k-or-budget [, mask/cost
  fingerprint])`` (see :mod:`repro.serve.cache` and
  :func:`repro.core.querykind.cache_extra`), so hot query neighbourhoods
  are answered from memory and an in-memory ``index.update()`` — which
  bumps the generation — invalidates every stale entry at once;
* **query kinds** — point, trajectory, targeted, budgeted and heuristic
  queries (:mod:`repro.core.querykind`) all dispatch through
  :meth:`QueryEngine.query` / :meth:`QueryEngine.serve_batch`, with
  per-kind counters and latency histograms
  (``serve_queries_total{kind=...}``, ``latency_ms{kind=...}``);
* **concurrent batches** — :meth:`QueryEngine.serve_batch` fans a batch
  over a thread pool.  Both indexes are read-only after construction
  (corpus, inverted index, arborescences, k-d trees), so concurrent
  queries are safe; NumPy releases the GIL in the hot kernels;
* **per-query timeout with graceful fallback** — a query that misses its
  deadline is answered by the distance-aware degree-discount heuristic
  instead (milliseconds, no index needed), and the result is marked
  ``fallback_reason="timeout"`` so callers can tell;
* **metrics** — every serve updates a
  :class:`~repro.serve.metrics.MetricsRegistry` (query counters, cache
  hit/miss, a latency histogram, samples-used / evaluations
  distributions);
* **observability** — every served query carries a fresh trace id
  (``ServedResult.trace_id``) whether or not tracing is on.  With a real
  :class:`~repro.obs.trace.Tracer` attached, each query becomes a span
  tree (``serve.query`` -> ``index.query`` -> per-stage children from
  :class:`SelectionTimings`); with a structured logger attached,
  ``query_start`` / ``query_end`` / ``cache_hit`` / ``fallback`` events
  are emitted; with a :class:`~repro.obs.slowlog.SlowQueryLog` attached,
  queries over its threshold dump their span tree and diagnostics to a
  JSONL sink.  All three default to no-ops costing roughly one branch
  each on the hot path.  With a :class:`~repro.obs.slo.SloTracker`
  attached, every non-abandoned query outcome also feeds the
  rolling-window SLO burn rates (:meth:`QueryEngine.refresh_slo`
  publishes them as gauges; :meth:`QueryEngine.should_shed` is the
  admission-control hook).

Timeout semantics: every query's deadline is anchored at *submission*
(``deadline_i = submit_time + timeout``); the collector walks futures in
input order but only ever grants each one the time left until its own
deadline, so a slow early query cannot stretch a later query's budget.
The worker thread itself is not interrupted (Python threads cannot be
killed): an abandoned computation may still complete in the background,
where a per-query cancellation token stops it from touching the latency
histograms or the result cache — the run is counted under
``abandoned_queries_total`` instead, and its result is discarded.  The
fallback is computed synchronously by the collecting thread.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.heuristics import degree_discount, heuristic_ladder
from repro.core.mia_da import MiaDaIndex
from repro.core.query import DaimQuery, SeedResult
from repro.core.querykind import (
    AnyQuery,
    BudgetedQuery,
    HeuristicQuery,
    TargetedQuery,
    TrajectoryQuery,
    cache_extra,
    cost_array,
    fallback_k,
    fallback_location,
    kind_of,
    normalize_query,
    route_location,
    target_mask,
)
from repro.core.ris_da import RisDaIndex
from repro.exceptions import QueryError, ReproError, ServeError
from repro.geo.grid import UniformGrid
from repro.geo.point import PointLike, as_point
from repro.network.graph import GeoSocialNetwork
from repro.obs.log import get_logger
from repro.obs.slo import SloTracker
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import Tracer, get_tracer, new_trace_id
from repro.serve.cache import IndexCache, ResultCache
from repro.serve.metrics import MetricsRegistry, labelled, record_staleness

AnyIndex = Union[RisDaIndex, MiaDaIndex]
QueryLike = Union[AnyQuery, PointLike]


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of a :class:`QueryEngine`.

    ``n_threads`` sizes the batch thread pool; ``timeout`` (seconds,
    ``None`` = unlimited) is the per-query deadline after which the
    engine answers with the ``fallback`` method instead
    (``"degree-discount"``, ``"ladder"`` for the graded heuristic ladder
    of :func:`repro.core.heuristics.heuristic_ladder`, or ``"none"`` to
    surface a timeout error result).  ``fallback_budget`` (seconds,
    ``"ladder"`` only) is the wall-clock the ladder may spend on a
    fallback answer — the cheaper rungs engage as it shrinks; ``None``
    always takes the most accurate rung.  ``result_cache_size`` bounds
    the result LRU (0 disables result caching); ``cache_cells`` is the
    budget for the quantization grid — more cells mean finer-grained
    (more exact, less shared) cache keys.
    """

    n_threads: int = 4
    timeout: Optional[float] = None
    result_cache_size: int = 1024
    cache_cells: int = 4096
    fallback: str = "degree-discount"
    fallback_budget: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise ServeError(
                f"n_threads must be at least 1, got {self.n_threads}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ServeError(
                f"timeout must be positive (or None), got {self.timeout}"
            )
        if self.result_cache_size < 0:
            raise ServeError(
                f"result_cache_size must be >= 0, got {self.result_cache_size}"
            )
        if self.cache_cells <= 0:
            raise ServeError(
                f"cache_cells must be positive, got {self.cache_cells}"
            )
        if self.fallback not in ("degree-discount", "ladder", "none"):
            raise ServeError(
                f"fallback must be 'degree-discount', 'ladder' or 'none', "
                f"got {self.fallback!r}"
            )
        if self.fallback_budget is not None and self.fallback_budget < 0:
            raise ServeError(
                f"fallback_budget must be >= 0 (or None), "
                f"got {self.fallback_budget}"
            )


@dataclass(frozen=True)
class ServedResult:
    """One served query: the answer plus serving-layer context.

    ``result`` is ``None`` only when ``error`` is set (the query raised,
    or it timed out with fallback disabled).  ``elapsed`` is the
    end-to-end serving latency in seconds — cache lookup included, queue
    wait excluded — as opposed to ``result.elapsed`` which is the
    method's own selection time.  ``cached`` marks a result-cache hit;
    ``fallback_reason`` (e.g. ``"timeout"``) marks answers produced by
    the fallback heuristic rather than the index — a fallback's
    ``result.estimate`` is a heuristic score, *not* an Eq. 9 spread
    estimate.  ``abandoned`` marks a computation whose caller already
    timed out and was answered by the fallback; such results never reach
    callers (the batch slot holds the fallback) and are excluded from
    latency metrics and the result cache.  ``trace_id`` identifies the
    query in traces, logs, and the slow-query sink (always set, even
    with tracing disabled).

    For trajectory queries ``waypoint_results`` holds one
    :class:`SeedResult` per waypoint in order and ``result`` aliases the
    *last* waypoint's (the trajectory's current position); for every
    other kind it stays ``None``.  ``cached`` is then true only when
    every waypoint was a result-cache hit.
    """

    result: Optional[SeedResult]
    elapsed: float
    cached: bool = False
    fallback_reason: Optional[str] = None
    error: Optional[str] = None
    trace_id: Optional[str] = None
    abandoned: bool = False
    waypoint_results: Optional[Tuple[SeedResult, ...]] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def fallback(self) -> bool:
        return self.fallback_reason is not None


class QueryEngine:
    """Serve many online DAIM queries against one loaded index."""

    def __init__(
        self,
        index: AnyIndex,
        config: ServeConfig | None = None,
        metrics: MetricsRegistry | None = None,
        fingerprint: str | None = None,
        tracer=None,
        logger=None,
        slow_log: Optional[SlowQueryLog] = None,
        kernel_backend: Optional[str] = None,
        slo: Optional[SloTracker] = None,
    ):
        self.index = index
        self.network: GeoSocialNetwork = index.network
        self.decay = index.decay
        if kernel_backend is not None:
            setter = getattr(index, "set_kernel_backend", None)
            if setter is not None:
                setter(kernel_backend)
            elif kernel_backend not in ("auto", "numpy"):
                # MIA-DA has no native kernels; an explicit numba request
                # against it is a caller mistake, not a silent no-op.
                raise ServeError(
                    f"index of type {type(index).__name__} does not "
                    f"support kernel backend {kernel_backend!r}"
                )
        #: The index's resolved native-kernel backend; stamped onto stage
        #: histograms (``stage_*_ms{kernel_backend=...}``) and query spans.
        self.kernel_backend: str = getattr(index, "kernel_backend", "numpy")
        self._stage_labels = {"kernel_backend": self.kernel_backend}
        self.config = config if config is not None else ServeConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Tracer/logger are resolved once from the ambient context here
        # (contextvars do not propagate into pool threads, so per-query
        # code must read instance attributes, not the ambient context).
        self.tracer = tracer if tracer is not None else get_tracer()
        self.logger = logger if logger is not None else get_logger()
        self.slow_log = slow_log
        #: Optional rolling-window SLO tracker.  The engine feeds it every
        #: non-abandoned query outcome; ``refresh_slo`` publishes burn
        #: rates as gauges and feeds it index staleness at scrape time.
        self.slo = slo
        if slow_log is not None and not self.tracer.enabled:
            # A slow-query row without a span tree answers "that it was
            # slow" but not "why"; give the sink a real tracer.
            self.tracer = Tracer()
        # In-memory indexes get an identity-based fingerprint: distinct
        # engine instances over distinct indexes never share cache keys.
        self.fingerprint = (
            fingerprint if fingerprint is not None else f"mem:{id(index):x}"
        )
        if self.config.result_cache_size > 0:
            self._grid = UniformGrid.with_cell_budget(
                self.network.bounding_box(), self.config.cache_cells
            )
            self._results: Optional[ResultCache] = ResultCache(
                self.config.result_cache_size, metrics=self.metrics
            )
        else:
            self._grid = None
            self._results = None
        # RIS: make sure the corpus's inverted index is built before any
        # concurrent query triggers its (unsynchronised) lazy build.
        corpus = getattr(index, "corpus", None)
        if corpus is not None:
            corpus.inverted()
        #: The last :class:`repro.stream.UpdateStats` applied through
        #: :meth:`apply_update` (None until the first update).
        self.last_update = None

    # ------------------------------------------------------------------
    # Streaming maintenance
    # ------------------------------------------------------------------

    def apply_update(self, delta) -> "object":
        """Apply a :class:`repro.stream.GraphDelta` to the served index.

        Delegates to ``index.update()`` (both families implement it),
        refreshes the engine's network reference, and records the
        staleness gauges.  Result-cache entries need no explicit flush:
        the update bumps ``index.generation``, which is part of every
        cache key.  The quantization grid keeps the build-time bounding
        box — keys only need to be internally consistent, and reusing
        the grid keeps pre-update and post-update keys from colliding
        only through the generation, which is the point.
        """
        update = getattr(self.index, "update", None)
        if update is None:
            raise ServeError(
                f"index of type {type(self.index).__name__} does not "
                "support streaming updates"
            )
        stats = update(delta=delta)
        self.network = self.index.network
        self.last_update = stats
        record_staleness(self.metrics, stats)
        return stats

    def refresh_staleness(self) -> None:
        """Re-record the staleness gauges so the age gauge keeps ticking.

        Called by metrics exporters right before a scrape; a no-op until
        the first update.
        """
        if self.last_update is not None:
            record_staleness(self.metrics, self.last_update)

    def refresh_slo(self) -> None:
        """Feed staleness to the SLO tracker and publish ``slo_*`` gauges.

        Called at scrape time (``/metrics``, ``/slo``) and before
        :meth:`should_shed`; a no-op without a tracker attached.
        """
        if self.slo is None:
            return
        if self.last_update is not None:
            self.slo.note_staleness(
                max(0.0, time.time() - self.last_update.updated_unix)
            )
        self.slo.publish(self.metrics)

    def should_shed(self) -> bool:
        """True when the attached SLO tracker says to shed load *now*.

        The hook the admission controller (ROADMAP item 3) consumes;
        always False without a tracker.
        """
        if self.slo is None:
            return False
        if self.last_update is not None:
            self.slo.note_staleness(
                max(0.0, time.time() - self.last_update.updated_unix)
            )
        return self.slo.should_shed()

    @classmethod
    def from_path(
        cls,
        path,
        network: GeoSocialNetwork,
        kind: Optional[str] = None,
        config: ServeConfig | None = None,
        metrics: MetricsRegistry | None = None,
        cache: IndexCache | None = None,
        tracer=None,
        logger=None,
        slow_log: Optional[SlowQueryLog] = None,
        kernel_backend: Optional[str] = None,
        slo: Optional[SloTracker] = None,
    ) -> "QueryEngine":
        """An engine over the saved index at ``path``.

        ``kind`` (``"ris"`` / ``"mia"``) restricts what the engine will
        accept; ``None`` serves whatever the file holds.  Pass a shared
        :class:`IndexCache` so several engines (or repeated CLI batches
        in one process) load each file once.  ``kernel_backend``
        overrides the loaded index's native-kernel backend request.
        """
        metrics = metrics if metrics is not None else MetricsRegistry()
        cache = cache if cache is not None else IndexCache(metrics=metrics)
        _, index = cache.get(path, network, kind=kind)
        return cls(
            index,
            config=config,
            metrics=metrics,
            fingerprint=IndexCache.fingerprint(path),
            tracer=tracer,
            logger=logger,
            slow_log=slow_log,
            kernel_backend=kernel_backend,
            slo=slo,
        )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def query(self, q: QueryLike, k: int | None = None) -> ServedResult:
        """Serve one query synchronously (no pool, no timeout).

        ``q`` may be any query-kind object (:class:`DaimQuery`,
        :class:`TrajectoryQuery`, :class:`TargetedQuery`,
        :class:`BudgetedQuery`, :class:`HeuristicQuery`) or a bare
        location with ``k``.
        """
        return self._serve(self._unpack(q, k))

    def serve_batch(
        self, queries: Sequence[QueryLike], k: int | None = None
    ) -> List[ServedResult]:
        """Serve a batch concurrently, in input order.

        ``queries`` may be query-kind objects or bare locations (then
        ``k`` supplies the shared budget).  Results line up with the
        input; per-query failures become error results instead of
        aborting the batch.
        """
        items = [self._unpack(q, k) for q in queries]
        cfg = self.config
        if not items:
            return []
        log = self.logger
        if log.enabled:
            log.event(
                "serve_start", queries=len(items), threads=cfg.n_threads,
                timeout_s=cfg.timeout,
            )
        if cfg.n_threads == 1 and cfg.timeout is None:
            out_serial = [self._serve(query) for query in items]
            self._log_batch_end(out_serial)
            return out_serial

        out: List[Optional[ServedResult]] = [None] * len(items)
        pool = ThreadPoolExecutor(
            max_workers=cfg.n_threads, thread_name_prefix="repro-serve"
        )
        try:
            tokens = [threading.Event() for _ in items]
            futures = []
            deadlines: List[float] = []
            for query, token in zip(items, tokens):
                futures.append(pool.submit(self._serve, query, token))
                # The deadline is anchored at submission: collecting
                # earlier results must not stretch later queries' budgets.
                deadlines.append(time.monotonic() + (cfg.timeout or 0.0))
            for i, future in enumerate(futures):
                try:
                    if cfg.timeout is None:
                        out[i] = future.result()
                    else:
                        remaining = deadlines[i] - time.monotonic()
                        out[i] = future.result(timeout=max(0.0, remaining))
                except FutureTimeoutError:
                    # Tell the (possibly still running) worker its caller
                    # is gone, so it stays out of the metrics and cache.
                    tokens[i].set()
                    future.cancel()
                    out[i] = self._fallback(items[i], "timeout")
        finally:
            # Do not wait for abandoned (timed-out) computations; their
            # threads drain in the background.
            pool.shutdown(wait=False, cancel_futures=True)
        self._log_batch_end(out)  # type: ignore[arg-type]
        return out  # type: ignore[return-value]

    def _log_batch_end(self, served: Sequence[ServedResult]) -> None:
        if not self.logger.enabled:
            return
        self.logger.event(
            "serve_end",
            queries=len(served),
            cached=sum(1 for s in served if s.cached),
            fallbacks=sum(1 for s in served if s.fallback),
            errors=sum(1 for s in served if not s.ok),
        )

    # ------------------------------------------------------------------

    def _unpack(self, q: QueryLike, k: int | None) -> AnyQuery:
        # Bare locations normalise through as_point, so a DaimQuery and
        # the equivalent bare location quantize identically and share one
        # result-cache entry regardless of the caller's coordinate types.
        try:
            return normalize_query(q, k)
        except QueryError as exc:
            raise ServeError(str(exc))

    def _serve(
        self,
        query: AnyQuery,
        cancel: Optional[threading.Event] = None,
    ) -> ServedResult:
        start = time.perf_counter()
        trace_id = new_trace_id()
        log = self.logger
        kind = kind_of(query)
        location = route_location(query)
        k = getattr(query, "k", None)
        self.metrics.inc("queries_total")
        self.metrics.inc(labelled("serve_queries_total", kind=kind))
        if cancel is not None and cancel.is_set():
            # The collector gave up on this query before the pool even
            # started it; don't burn a core computing a discarded answer.
            self.metrics.inc("abandoned_queries_total")
            return ServedResult(
                result=None, elapsed=0.0, error="abandoned after timeout",
                trace_id=trace_id, abandoned=True,
            )
        if log.enabled:
            log.event(
                "query_start", trace_id=trace_id, kind=kind,
                x=location[0], y=location[1], k=k,
            )
        attrs = {"x": location[0], "y": location[1], "kind": kind,
                 "kernel_backend": self.kernel_backend}
        if k is not None:
            attrs["k"] = k
        with self.tracer.span(
            "serve.query", attrs, trace_id=trace_id,
        ) as span:
            if isinstance(query, HeuristicQuery):
                served, diag = self._serve_heuristic(
                    query, start, trace_id, span
                )
            elif isinstance(query, TrajectoryQuery):
                served, diag = self._serve_trajectory(
                    query, start, trace_id, span, cancel
                )
            else:
                served, diag = self._serve_in_span(
                    query, start, trace_id, span, cancel
                )
        if log.enabled:
            log.event(
                "query_end", trace_id=trace_id,
                elapsed_ms=round(served.elapsed * 1e3, 3),
                cached=served.cached, fallback=served.fallback,
                error=served.error, abandoned=served.abandoned,
            )
        if not served.abandoned:
            # The collector records the timed-out query against its
            # deadline; a second slow-log row here would double-count it.
            self._maybe_record_slow(
                location, self._slow_k(query), served, diag
            )
            if self.slo is not None:
                # "requested" marks an explicit heuristic answer — the
                # contract, not a degradation — so it does not burn the
                # availability budget the way a timeout fallback does.
                self.slo.record_query(
                    served.elapsed * 1e3,
                    fallback=(served.fallback_reason is not None
                              and served.fallback_reason != "requested"),
                    error=not served.ok,
                )
        return served

    @staticmethod
    def _slow_k(query: AnyQuery) -> int:
        k = getattr(query, "k", None)
        return int(k) if k is not None else 0

    def _observe_latency(self, kind: str, elapsed: float) -> None:
        self.metrics.observe("latency_ms", elapsed * 1e3)
        self.metrics.observe(labelled("latency_ms", kind=kind), elapsed * 1e3)

    def _cache_key(self, query: AnyQuery) -> Optional[tuple]:
        """The result-cache key of a query, or None when uncacheable.

        ``cache_extra`` carries the kind (and a mask/cost fingerprint
        for targeted/budgeted queries): two kinds quantizing to the same
        ``(fingerprint, generation, cell)`` can no longer collide.
        """
        if self._results is None:
            return None
        extra = cache_extra(query)
        if extra is None:
            return None
        # The index generation is part of the key: an in-memory
        # update() bumps it, so entries computed against the previous
        # graph die immediately (an mtime-based fingerprint alone
        # cannot see in-memory mutations).
        return (
            self.fingerprint,
            getattr(self.index, "generation", 0),
            self._grid.cell_of(query.location),
        ) + extra

    def _waypoint_key(self, location: Tuple[float, float], k: int) -> Optional[tuple]:
        """A trajectory waypoint's cache key — a ``point`` entry on purpose.

        A waypoint's answer *is* the point answer for that location, so
        trajectories warm the point cache and vice versa.
        """
        if self._results is None:
            return None
        return (
            self.fingerprint,
            getattr(self.index, "generation", 0),
            self._grid.cell_of(location),
            "point", k,
        )

    def _index_answer(self, query: AnyQuery) -> Tuple[SeedResult, object]:
        """Dispatch one point/targeted/budgeted query to the index."""
        if isinstance(query, TargetedQuery):
            mask = target_mask(query, self.network.n)
            return self.index.query_masked(
                query.location, query.k, mask, return_diagnostics=True
            )
        if isinstance(query, BudgetedQuery):
            costs = cost_array(query, self.network.n)
            return self.index.query_budgeted(
                query.location, query.budget, costs, return_diagnostics=True
            )
        return self.index.query(
            query.location, query.k, return_diagnostics=True
        )

    def _serve_in_span(
        self,
        query: AnyQuery,
        start: float,
        trace_id: str,
        span,
        cancel: Optional[threading.Event] = None,
    ) -> Tuple[ServedResult, object]:
        """The serve body for single-location kinds; runs inside the root span."""
        m = self.metrics
        tracer = self.tracer
        kind = kind_of(query)
        key = self._cache_key(query)
        if key is not None:
            hit = self._results.get(key)
            if hit is not None:
                elapsed = time.perf_counter() - start
                self._observe_latency(kind, elapsed)
                span.set_attribute("cached", True)
                if self.logger.enabled:
                    self.logger.event(
                        "cache_hit", trace_id=trace_id, cache="result"
                    )
                return ServedResult(
                    result=hit, elapsed=elapsed, cached=True,
                    trace_id=trace_id,
                ), None
        try:
            # Both index families accept return_diagnostics; the engine
            # always asks so per-stage timings reach the metrics.
            with tracer.span("index.query") as qspan:
                result, diag = self._index_answer(query)
        except ReproError as exc:
            if cancel is not None and cancel.is_set():
                # The caller already got the fallback; an abandoned run's
                # failure is not a serving error.
                m.inc("abandoned_queries_total")
                span.set_attribute("abandoned", True)
                return ServedResult(
                    result=None,
                    elapsed=time.perf_counter() - start,
                    error=str(exc),
                    trace_id=trace_id,
                    abandoned=True,
                ), None
            m.inc("errors")
            span.set_attribute("error", str(exc))
            if self.logger.enabled:
                self.logger.event(
                    "error", trace_id=trace_id, message=str(exc)
                )
            return ServedResult(
                result=None,
                elapsed=time.perf_counter() - start,
                error=str(exc),
                trace_id=trace_id,
            ), None
        if cancel is not None and cancel.is_set():
            # Timed out while computing: the collector has already
            # recorded the fallback for this logical query, so recording
            # latency/stages here (or caching a result the caller never
            # saw) would count it twice.  The check sits before every
            # metrics/cache write; a token set later races harmlessly.
            m.inc("abandoned_queries_total")
            span.set_attribute("abandoned", True)
            return ServedResult(
                result=result,
                elapsed=time.perf_counter() - start,
                trace_id=trace_id,
                abandoned=True,
            ), diag
        if result.samples_used is not None:
            m.observe("samples_used", result.samples_used)
        if result.evaluations is not None:
            m.observe("evaluations", result.evaluations)
        timings = getattr(diag, "timings", None)
        if timings is not None:
            # RIS-DA: weight-eval / score-build / selection / bound stages.
            m.observe_stage_seconds(timings.as_dict(),
                                    labels=self._stage_labels)
            if tracer.enabled:
                tracer.record_stages(qspan, timings.as_dict())
        setup = getattr(diag, "setup_seconds", None)
        if setup is not None:
            # MIA-DA reports its per-query bound setup separately.
            m.observe_stage_seconds({"bound_setup": setup})
            if tracer.enabled:
                tracer.record_stages(
                    qspan,
                    {"bound_setup": setup, "selection": result.elapsed},
                )
        if key is not None:
            self._results.put(key, result)
        elapsed = time.perf_counter() - start
        self._observe_latency(kind, elapsed)
        return ServedResult(
            result=result, elapsed=elapsed, cached=False, trace_id=trace_id
        ), diag

    def _serve_trajectory(
        self,
        query: TrajectoryQuery,
        start: float,
        trace_id: str,
        span,
        cancel: Optional[threading.Event] = None,
    ) -> Tuple[ServedResult, object]:
        """Serve a trajectory: per-waypoint cache, one shared index call.

        Each waypoint hits the result cache under its *point* key; the
        misses go to the index together (``query_trajectory`` shares the
        root-coordinate gather across them on the RIS backend) and are
        cached individually, so a trajectory warms the point cache cell
        by cell.
        """
        m = self.metrics
        tracer = self.tracer
        wps = query.waypoints
        k = query.k
        keys = [self._waypoint_key(wp, k) for wp in wps]
        results: List[Optional[SeedResult]] = [None] * len(wps)
        hits = 0
        for i, key in enumerate(keys):
            if key is not None:
                hit = self._results.get(key)
                if hit is not None:
                    results[i] = hit
                    hits += 1
        missing = [i for i in range(len(wps)) if results[i] is None]
        last_diag: object = None
        if missing:
            try:
                with tracer.span(
                    "index.query", {"waypoints": len(missing)}
                ) as qspan:
                    answered = self.index.query_trajectory(
                        [wps[i] for i in missing], k,
                        return_diagnostics=True,
                    )
            except ReproError as exc:
                if cancel is not None and cancel.is_set():
                    m.inc("abandoned_queries_total")
                    span.set_attribute("abandoned", True)
                    return ServedResult(
                        result=None,
                        elapsed=time.perf_counter() - start,
                        error=str(exc),
                        trace_id=trace_id,
                        abandoned=True,
                    ), None
                m.inc("errors")
                span.set_attribute("error", str(exc))
                if self.logger.enabled:
                    self.logger.event(
                        "error", trace_id=trace_id, message=str(exc)
                    )
                return ServedResult(
                    result=None,
                    elapsed=time.perf_counter() - start,
                    error=str(exc),
                    trace_id=trace_id,
                ), None
            if cancel is not None and cancel.is_set():
                # As in the point path: the caller already holds the
                # fallback, so stay out of the metrics and the cache.
                m.inc("abandoned_queries_total")
                span.set_attribute("abandoned", True)
                return ServedResult(
                    result=None,
                    elapsed=time.perf_counter() - start,
                    trace_id=trace_id,
                    abandoned=True,
                ), None
            for i, (result, diag) in zip(missing, answered):
                results[i] = result
                last_diag = diag
                if result.samples_used is not None:
                    m.observe("samples_used", result.samples_used)
                if result.evaluations is not None:
                    m.observe("evaluations", result.evaluations)
                timings = getattr(diag, "timings", None)
                if timings is not None:
                    m.observe_stage_seconds(timings.as_dict(),
                                            labels=self._stage_labels)
                    if tracer.enabled:
                        tracer.record_stages(qspan, timings.as_dict())
                setup = getattr(diag, "setup_seconds", None)
                if setup is not None:
                    m.observe_stage_seconds({"bound_setup": setup})
                if keys[i] is not None:
                    self._results.put(keys[i], result)
        m.inc("trajectory_waypoints_total", len(wps))
        span.set_attribute("waypoints", len(wps))
        span.set_attribute("waypoint_cache_hits", hits)
        elapsed = time.perf_counter() - start
        self._observe_latency("trajectory", elapsed)
        if self.logger.enabled and hits:
            self.logger.event(
                "cache_hit", trace_id=trace_id, cache="result",
                waypoints=hits,
            )
        return ServedResult(
            result=results[-1],
            elapsed=elapsed,
            cached=hits == len(wps),
            trace_id=trace_id,
            waypoint_results=tuple(results),  # type: ignore[arg-type]
        ), last_diag

    def _serve_heuristic(
        self,
        query: HeuristicQuery,
        start: float,
        trace_id: str,
        span,
    ) -> Tuple[ServedResult, object]:
        """Serve an explicit heuristic-ladder request (never the index).

        The answer is tagged ``fallback_reason="requested"`` and never
        cached: like an overload fallback, its score is the heuristic's
        own objective, not an Eq. 9 estimate, and must not shadow a real
        index answer in the cache.
        """
        m = self.metrics
        budget_s = (
            query.budget_ms / 1e3 if query.budget_ms is not None else None
        )
        try:
            result, rung = heuristic_ladder(
                self.network, query.location, query.k, self.decay,
                budget_s=budget_s, level=query.level,
            )
        except ReproError as exc:
            m.inc("errors")
            span.set_attribute("error", str(exc))
            return ServedResult(
                result=None,
                elapsed=time.perf_counter() - start,
                error=str(exc),
                trace_id=trace_id,
            ), None
        m.inc(labelled("heuristic_rung_total", rung=rung))
        span.set_attribute("rung", rung)
        elapsed = time.perf_counter() - start
        self._observe_latency("heuristic", elapsed)
        if self.logger.enabled:
            self.logger.event(
                "heuristic", trace_id=trace_id, rung=rung,
                method=result.method, elapsed_ms=round(elapsed * 1e3, 3),
            )
        return ServedResult(
            result=result, elapsed=elapsed, fallback_reason="requested",
            trace_id=trace_id,
        ), None

    def _maybe_record_slow(
        self,
        location: Tuple[float, float],
        k: int,
        served: ServedResult,
        diag: object,
        elapsed_override: Optional[float] = None,
    ) -> None:
        sl = self.slow_log
        if sl is None:
            return
        elapsed = (
            elapsed_override if elapsed_override is not None
            else served.elapsed
        )
        if not sl.should_record(elapsed):
            return
        self.metrics.inc("slow_queries_total")
        spans = self.tracer.spans_for_trace(served.trace_id or "")
        sl.record(
            trace_id=served.trace_id or "",
            location=location,
            k=k,
            elapsed_s=elapsed,
            cached=served.cached,
            fallback_reason=served.fallback_reason,
            error=served.error,
            diagnostics=diag,
            spans=spans or None,
        )
        if self.logger.enabled:
            self.logger.event(
                "slow_query", trace_id=served.trace_id,
                elapsed_ms=round(elapsed * 1e3, 3),
                threshold_ms=sl.threshold_ms, sink=sl.path,
            )

    def _fallback(self, query: AnyQuery, reason: str) -> ServedResult:
        start = time.perf_counter()
        m = self.metrics
        trace_id = new_trace_id()
        kind = kind_of(query)
        m.inc("timeouts" if reason == "timeout" else "fallback_triggers")
        if self.config.fallback == "none":
            if self.slo is not None:
                self.slo.record_query(
                    (self.config.timeout or 0.0) * 1e3, error=True,
                )
            return ServedResult(
                result=None,
                elapsed=time.perf_counter() - start,
                error=f"query timed out after {self.config.timeout}s "
                      f"(fallback disabled)",
                trace_id=trace_id,
            )
        m.inc("fallbacks")
        m.inc("serve_fallback_total")
        # A trajectory falls back at its *last* waypoint — the one whose
        # answer ServedResult.result carries; a budgeted query converts
        # its budget into the seed count it could at most afford.
        location = fallback_location(query)
        k = fallback_k(query, self.network.n)
        with self.tracer.span(
            "serve.fallback",
            {"x": location[0], "y": location[1], "k": k, "kind": kind,
             "reason": reason},
            trace_id=trace_id,
        ) as fspan:
            try:
                if self.config.fallback == "ladder":
                    result, rung = heuristic_ladder(
                        self.network, location, k, self.decay,
                        budget_s=self.config.fallback_budget,
                    )
                    m.inc(labelled("heuristic_rung_total", rung=rung))
                    fspan.set_attribute("rung", rung)
                else:
                    result = degree_discount(
                        self.network, location, k, self.decay
                    )
            except ReproError as exc:
                m.inc("errors")
                if self.slo is not None:
                    self.slo.record_query(
                        (self.config.timeout or 0.0) * 1e3,
                        fallback=True, error=True,
                    )
                return ServedResult(
                    result=None,
                    elapsed=time.perf_counter() - start,
                    error=f"timeout, then fallback failed: {exc}",
                    trace_id=trace_id,
                )
        elapsed = time.perf_counter() - start
        m.observe("fallback_latency_ms", elapsed * 1e3)
        if self.logger.enabled:
            self.logger.event(
                "fallback", trace_id=trace_id, reason=reason,
                method=result.method, elapsed_ms=round(elapsed * 1e3, 3),
            )
        # Fallback answers are never cached: a later, slower query in the
        # same cell deserves the real index answer, not a frozen heuristic.
        served = ServedResult(
            result=result, elapsed=elapsed, fallback_reason=reason,
            trace_id=trace_id,
        )
        # A timed-out query *is* a slow query: record it against the
        # deadline it blew (its true latency is unknown — the abandoned
        # thread is still running), not the fallback's own latency.
        if reason == "timeout" and self.config.timeout is not None:
            self._maybe_record_slow(
                location, k, served, None,
                elapsed_override=self.config.timeout,
            )
        if self.slo is not None:
            # Same convention as the slow log: the query's latency is at
            # least the deadline it blew, so burn against that.
            self.slo.record_query(
                (self.config.timeout or elapsed) * 1e3, fallback=True,
                error=not served.ok,
            )
        return served
