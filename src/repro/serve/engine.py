"""The online query-serving engine.

:class:`QueryEngine` wraps one loaded index (RIS-DA or MIA-DA — both
expose the same ``query(location, k) -> SeedResult`` online interface)
and turns it into a serving component:

* **result caching** — answers are cached by
  ``(index fingerprint, quantized query cell, k)`` (see
  :mod:`repro.serve.cache`), so hot query neighbourhoods are answered
  from memory;
* **concurrent batches** — :meth:`QueryEngine.serve_batch` fans a batch
  over a thread pool.  Both indexes are read-only after construction
  (corpus, inverted index, arborescences, k-d trees), so concurrent
  queries are safe; NumPy releases the GIL in the hot kernels;
* **per-query timeout with graceful fallback** — a query that misses its
  deadline is answered by the distance-aware degree-discount heuristic
  instead (milliseconds, no index needed), and the result is marked
  ``fallback_reason="timeout"`` so callers can tell;
* **metrics** — every serve updates a
  :class:`~repro.serve.metrics.MetricsRegistry` (query counters, cache
  hit/miss, a latency histogram, samples-used / evaluations
  distributions).

Timeout semantics: the deadline is enforced at *collection* — the worker
thread itself is not interrupted (Python threads cannot be killed), so an
abandoned computation may still complete in the background; its result is
discarded and its pool slot frees up when it finishes.  The fallback is
computed synchronously by the collecting thread.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.heuristics import degree_discount
from repro.core.mia_da import MiaDaIndex
from repro.core.query import DaimQuery, SeedResult
from repro.core.ris_da import RisDaIndex
from repro.exceptions import ReproError, ServeError
from repro.geo.grid import UniformGrid
from repro.geo.point import PointLike, as_point
from repro.network.graph import GeoSocialNetwork
from repro.serve.cache import IndexCache, ResultCache
from repro.serve.metrics import MetricsRegistry

AnyIndex = Union[RisDaIndex, MiaDaIndex]
QueryLike = Union[DaimQuery, PointLike]


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of a :class:`QueryEngine`.

    ``n_threads`` sizes the batch thread pool; ``timeout`` (seconds,
    ``None`` = unlimited) is the per-query deadline after which the
    engine answers with the ``fallback`` method instead
    (``"degree-discount"``, or ``"none"`` to surface a timeout error
    result).  ``result_cache_size`` bounds the result LRU (0 disables
    result caching); ``cache_cells`` is the budget for the quantization
    grid — more cells mean finer-grained (more exact, less shared) cache
    keys.
    """

    n_threads: int = 4
    timeout: Optional[float] = None
    result_cache_size: int = 1024
    cache_cells: int = 4096
    fallback: str = "degree-discount"

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise ServeError(
                f"n_threads must be at least 1, got {self.n_threads}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ServeError(
                f"timeout must be positive (or None), got {self.timeout}"
            )
        if self.result_cache_size < 0:
            raise ServeError(
                f"result_cache_size must be >= 0, got {self.result_cache_size}"
            )
        if self.cache_cells <= 0:
            raise ServeError(
                f"cache_cells must be positive, got {self.cache_cells}"
            )
        if self.fallback not in ("degree-discount", "none"):
            raise ServeError(
                f"fallback must be 'degree-discount' or 'none', "
                f"got {self.fallback!r}"
            )


@dataclass(frozen=True)
class ServedResult:
    """One served query: the answer plus serving-layer context.

    ``result`` is ``None`` only when ``error`` is set (the query raised,
    or it timed out with fallback disabled).  ``elapsed`` is the
    end-to-end serving latency in seconds — cache lookup included, queue
    wait excluded — as opposed to ``result.elapsed`` which is the
    method's own selection time.  ``cached`` marks a result-cache hit;
    ``fallback_reason`` (e.g. ``"timeout"``) marks answers produced by
    the fallback heuristic rather than the index.
    """

    result: Optional[SeedResult]
    elapsed: float
    cached: bool = False
    fallback_reason: Optional[str] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def fallback(self) -> bool:
        return self.fallback_reason is not None


class QueryEngine:
    """Serve many online DAIM queries against one loaded index."""

    def __init__(
        self,
        index: AnyIndex,
        config: ServeConfig | None = None,
        metrics: MetricsRegistry | None = None,
        fingerprint: str | None = None,
    ):
        self.index = index
        self.network: GeoSocialNetwork = index.network
        self.decay = index.decay
        self.config = config if config is not None else ServeConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # In-memory indexes get an identity-based fingerprint: distinct
        # engine instances over distinct indexes never share cache keys.
        self.fingerprint = (
            fingerprint if fingerprint is not None else f"mem:{id(index):x}"
        )
        if self.config.result_cache_size > 0:
            self._grid = UniformGrid.with_cell_budget(
                self.network.bounding_box(), self.config.cache_cells
            )
            self._results: Optional[ResultCache] = ResultCache(
                self.config.result_cache_size, metrics=self.metrics
            )
        else:
            self._grid = None
            self._results = None
        # RIS: make sure the corpus's inverted index is built before any
        # concurrent query triggers its (unsynchronised) lazy build.
        corpus = getattr(index, "corpus", None)
        if corpus is not None:
            corpus.inverted()

    @classmethod
    def from_path(
        cls,
        path,
        network: GeoSocialNetwork,
        kind: Optional[str] = None,
        config: ServeConfig | None = None,
        metrics: MetricsRegistry | None = None,
        cache: IndexCache | None = None,
    ) -> "QueryEngine":
        """An engine over the saved index at ``path``.

        ``kind`` (``"ris"`` / ``"mia"``) restricts what the engine will
        accept; ``None`` serves whatever the file holds.  Pass a shared
        :class:`IndexCache` so several engines (or repeated CLI batches
        in one process) load each file once.
        """
        metrics = metrics if metrics is not None else MetricsRegistry()
        cache = cache if cache is not None else IndexCache(metrics=metrics)
        _, index = cache.get(path, network, kind=kind)
        return cls(
            index,
            config=config,
            metrics=metrics,
            fingerprint=IndexCache.fingerprint(path),
        )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def query(self, q: QueryLike, k: int | None = None) -> ServedResult:
        """Serve one query synchronously (no pool, no timeout)."""
        location, k = self._unpack(q, k)
        return self._serve(location, k)

    def serve_batch(
        self, queries: Sequence[QueryLike], k: int | None = None
    ) -> List[ServedResult]:
        """Serve a batch concurrently, in input order.

        ``queries`` may be :class:`DaimQuery` objects or bare locations
        (then ``k`` supplies the shared budget).  Results line up with
        the input; per-query failures become error results instead of
        aborting the batch.
        """
        items = [self._unpack(q, k) for q in queries]
        cfg = self.config
        if not items:
            return []
        if cfg.n_threads == 1 and cfg.timeout is None:
            return [self._serve(loc, kk) for loc, kk in items]

        out: List[Optional[ServedResult]] = [None] * len(items)
        pool = ThreadPoolExecutor(
            max_workers=cfg.n_threads, thread_name_prefix="repro-serve"
        )
        try:
            futures = [pool.submit(self._serve, loc, kk) for loc, kk in items]
            for i, future in enumerate(futures):
                try:
                    out[i] = future.result(timeout=cfg.timeout)
                except FutureTimeoutError:
                    future.cancel()
                    loc, kk = items[i]
                    out[i] = self._fallback(loc, kk, "timeout")
        finally:
            # Do not wait for abandoned (timed-out) computations; their
            # threads drain in the background.
            pool.shutdown(wait=False, cancel_futures=True)
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------

    def _unpack(
        self, q: QueryLike, k: int | None
    ) -> Tuple[Tuple[float, float], int]:
        if isinstance(q, DaimQuery):
            return q.location, q.k
        if k is None:
            raise ServeError("k is required when passing a bare location")
        return as_point(q), int(k)

    def _serve(self, location: Tuple[float, float], k: int) -> ServedResult:
        start = time.perf_counter()
        m = self.metrics
        m.inc("queries_total")
        key = None
        if self._results is not None:
            key = (self.fingerprint, self._grid.cell_of(location), k)
            hit = self._results.get(key)
            if hit is not None:
                elapsed = time.perf_counter() - start
                m.observe("latency_ms", elapsed * 1e3)
                return ServedResult(result=hit, elapsed=elapsed, cached=True)
        try:
            # Both index families accept return_diagnostics; the engine
            # always asks so per-stage timings reach the metrics.
            result, diag = self.index.query(
                location, k, return_diagnostics=True
            )
        except ReproError as exc:
            m.inc("errors")
            return ServedResult(
                result=None,
                elapsed=time.perf_counter() - start,
                error=str(exc),
            )
        if result.samples_used is not None:
            m.observe("samples_used", result.samples_used)
        if result.evaluations is not None:
            m.observe("evaluations", result.evaluations)
        timings = getattr(diag, "timings", None)
        if timings is not None:
            # RIS-DA: weight-eval / score-build / selection / bound stages.
            m.observe_stage_seconds(timings.as_dict())
        setup = getattr(diag, "setup_seconds", None)
        if setup is not None:
            # MIA-DA reports its per-query bound setup separately.
            m.observe_stage_seconds({"bound_setup": setup})
        if key is not None:
            self._results.put(key, result)
        elapsed = time.perf_counter() - start
        m.observe("latency_ms", elapsed * 1e3)
        return ServedResult(result=result, elapsed=elapsed, cached=False)

    def _fallback(
        self, location: Tuple[float, float], k: int, reason: str
    ) -> ServedResult:
        start = time.perf_counter()
        m = self.metrics
        m.inc("timeouts" if reason == "timeout" else "fallback_triggers")
        if self.config.fallback == "none":
            return ServedResult(
                result=None,
                elapsed=time.perf_counter() - start,
                error=f"query timed out after {self.config.timeout}s "
                      f"(fallback disabled)",
            )
        m.inc("fallbacks")
        try:
            result = degree_discount(self.network, location, k, self.decay)
        except ReproError as exc:
            m.inc("errors")
            return ServedResult(
                result=None,
                elapsed=time.perf_counter() - start,
                error=f"timeout, then fallback failed: {exc}",
            )
        elapsed = time.perf_counter() - start
        m.observe("fallback_latency_ms", elapsed * 1e3)
        # Fallback answers are never cached: a later, slower query in the
        # same cell deserves the real index answer, not a frozen heuristic.
        return ServedResult(
            result=result, elapsed=elapsed, fallback_reason=reason
        )
