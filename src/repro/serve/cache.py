"""Caches for the online serving layer.

Two caches with different lifetimes and keys:

* :class:`IndexCache` — an LRU of *loaded* offline indexes, keyed by
  ``(path, mtime_ns)``.  Loading an index file costs a corpus/tree
  deserialisation plus the inverted-index or k-d-tree rebuild, so a
  serving process must pay it once per file, not once per query batch.
  The mtime in the key makes rebuilt index files invalidate naturally:
  a new build at the same path gets a new key and the stale entry is
  dropped.  Entries are tagged with the file's ``kind`` (``"ris"`` /
  ``"mia"``), and a caller that requires one kind gets a clear
  :class:`~repro.exceptions.ServeError` when pointed at the other.
  Cold loads run *outside* the cache lock behind a per-key future
  (double-checked locking): concurrent misses on the same key coalesce
  into one load, and a slow load never blocks hits or misses on other
  keys.

* :class:`ResultCache` — an LRU of query *results*, keyed by
  ``(index fingerprint, index generation, quantized query cell, kind,
  k-or-budget[, mask/cost fingerprint])`` — see
  :func:`repro.core.querykind.cache_extra` for the kind-discriminating
  tail.  Nearby queries produce the same seed set because node weights
  vary smoothly in the query location (the same locality the paper's
  pivot/anchor structures exploit); quantizing the location to a grid
  cell turns that locality into exact key equality.  The cell size
  bounds the approximation: two queries in one cell differ in
  distance-to-any-node by at most the cell diagonal.  The kind tail
  keeps distinct query semantics at one cell from colliding: a targeted
  query carries a digest of its target set, a budgeted query its budget
  and cost structure; heuristic answers are never cached at all.
  Trajectory waypoints share the ``point`` keyspace deliberately — a
  waypoint's answer *is* the point answer for that location.  The
  engine owns the grid; this class is a plain keyed LRU.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from pathlib import Path
from typing import Dict, Hashable, Optional, Tuple, Union

from repro.core.mia_da import MiaDaIndex
from repro.core.persistence import PathLike, load_index
from repro.core.query import SeedResult
from repro.core.ris_da import RisDaIndex
from repro.exceptions import ServeError
from repro.network.graph import GeoSocialNetwork
from repro.serve.metrics import MetricsRegistry

AnyIndex = Union[RisDaIndex, MiaDaIndex]


class IndexCache:
    """An LRU cache of loaded on-disk indexes, keyed by path + mtime.

    ``capacity`` bounds how many deserialised indexes stay resident (they
    dominate a serving process's memory).  ``metrics`` (optional) records
    ``index_cache.hits`` / ``.misses`` / ``.evictions``.
    """

    def __init__(
        self,
        capacity: int = 4,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if capacity <= 0:
            raise ServeError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.metrics = metrics
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, int], Tuple[str, AnyIndex]]" = (
            OrderedDict()
        )
        # One in-flight load per key; the lock only guards the maps, the
        # deserialisation itself runs lock-free behind the future.
        self._loads: Dict[Tuple[str, int], "Future[Tuple[str, AnyIndex]]"] = {}

    @staticmethod
    def _key(path: PathLike) -> Tuple[str, int]:
        resolved = Path(path).resolve()
        if resolved.suffix != ".npz":  # mirror persistence's normalisation
            resolved = resolved.with_name(resolved.name + ".npz")
        try:
            mtime_ns = resolved.stat().st_mtime_ns
        except OSError as exc:
            raise ServeError(f"cannot stat index file {resolved}: {exc}")
        return str(resolved), mtime_ns

    @staticmethod
    def fingerprint(path: PathLike) -> str:
        """A stable identity token for the file's *current* content.

        Used as the index component of result-cache keys, so results
        cached against an old build never survive a rebuild of the file.
        """
        resolved, mtime_ns = IndexCache._key(path)
        return f"{resolved}@{mtime_ns}"

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self,
        path: PathLike,
        network: GeoSocialNetwork,
        kind: Optional[str] = None,
    ) -> Tuple[str, AnyIndex]:
        """The loaded index at ``path``; ``(kind, index)``.

        ``kind`` (``"ris"`` or ``"mia"``), when given, asserts what the
        caller can serve: a mismatching file raises :class:`ServeError`
        instead of handing a MIA index to a RIS engine (or vice versa).
        A file modified since it was cached is reloaded (the mtime is
        part of the key) and the stale entry is dropped.

        A miss deserialises *outside* the lock: the first thread to miss
        a key becomes its loader and publishes through a per-key future;
        concurrent misses on the same key wait on that future (counted
        as ``index_cache.coalesced``) instead of loading again, and
        threads after other keys — cached or not — proceed unblocked.
        """
        if kind is not None and kind not in ("ris", "mia"):
            raise ServeError(f"kind must be 'ris' or 'mia', got {kind!r}")
        key = self._key(path)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                if self.metrics is not None:
                    self.metrics.inc("index_cache.hits")
                self._check_kind(path, entry[0], kind)
                return entry
            pending = self._loads.get(key)
            if pending is None:
                pending = self._loads[key] = Future()
                loader = True
                if self.metrics is not None:
                    self.metrics.inc("index_cache.misses")
            else:
                loader = False
                if self.metrics is not None:
                    self.metrics.inc("index_cache.coalesced")

        if not loader:
            loaded_kind, index = pending.result()
            self._check_kind(path, loaded_kind, kind)
            return loaded_kind, index

        try:
            loaded_kind, index = load_index(path, network)
        except BaseException as exc:
            with self._lock:
                self._loads.pop(key, None)  # a later get may retry
            pending.set_exception(exc)
            raise
        with self._lock:
            self._loads.pop(key, None)
            # Drop stale versions of the same file before inserting the
            # fresh one; capacity then evicts true LRU entries only.
            for stale in [k for k in self._entries if k[0] == key[0]]:
                del self._entries[stale]
            self._entries[key] = (loaded_kind, index)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                if self.metrics is not None:
                    self.metrics.inc("index_cache.evictions")
        pending.set_result((loaded_kind, index))
        self._check_kind(path, loaded_kind, kind)
        return loaded_kind, index

    @staticmethod
    def _check_kind(path: PathLike, actual: str, expected: Optional[str]) -> None:
        if expected is not None and actual != expected:
            raise ServeError(
                f"{path} holds a {actual.upper()}-DA index but this engine "
                f"serves {expected.upper()}-DA queries; point it at a "
                f"matching index (or build one with "
                f"'repro build-{expected}')"
            )


class ResultCache:
    """A thread-safe LRU of :class:`SeedResult` keyed by the caller.

    The engine keys entries by ``(index fingerprint, grid cell, k)``; the
    cache itself only requires keys to be hashable.  ``metrics``
    (optional) records ``result_cache.hits`` / ``.misses``.
    """

    def __init__(
        self,
        capacity: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if capacity <= 0:
            raise ServeError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.metrics = metrics
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, SeedResult]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[SeedResult]:
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                if self.metrics is not None:
                    self.metrics.inc("result_cache.misses")
                return None
            self._entries.move_to_end(key)
        if self.metrics is not None:
            self.metrics.inc("result_cache.hits")
        return result

    def put(self, key: Hashable, result: SeedResult) -> None:
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
