"""Online query serving: engine, caches, metrics.

The offline phases build indexes; this package answers *many* online
queries against them — the "heavy traffic" side of the system.  See
:mod:`repro.serve.engine` for the serving semantics (caching, timeouts,
fallback) and :mod:`repro.serve.metrics` for the observability layer.
"""

from repro.serve.cache import IndexCache, ResultCache
from repro.serve.engine import QueryEngine, ServeConfig, ServedResult
from repro.serve.metrics import Counter, Histogram, MetricsRegistry

__all__ = [
    "Counter",
    "Histogram",
    "IndexCache",
    "MetricsRegistry",
    "QueryEngine",
    "ResultCache",
    "ServeConfig",
    "ServedResult",
]
