"""Online query serving: engine, caches, metrics, worker pool.

The offline phases build indexes; this package answers *many* online
queries against them — the "heavy traffic" side of the system.  See
:mod:`repro.serve.engine` for the serving semantics (caching, timeouts,
fallback), :mod:`repro.serve.pool` for sharded multi-process serving
over a zero-copy shared index, and :mod:`repro.serve.metrics` for the
observability layer.
"""

from repro.serve.cache import IndexCache, ResultCache
from repro.serve.engine import QueryEngine, ServeConfig, ServedResult
from repro.serve.metrics import Counter, Histogram, MetricsRegistry, labelled
from repro.serve.pool import ServePool, ShardRouter
from repro.serve.shared import (
    SharedIndexArrays,
    SharedIndexManifest,
    attach_index,
)

__all__ = [
    "Counter",
    "Histogram",
    "IndexCache",
    "MetricsRegistry",
    "QueryEngine",
    "ResultCache",
    "ServeConfig",
    "ServePool",
    "ServedResult",
    "ShardRouter",
    "SharedIndexArrays",
    "SharedIndexManifest",
    "attach_index",
    "labelled",
]
