"""Lightweight serving metrics: counters, gauges and fixed-bucket histograms.

The online engine needs visibility into where latency goes — cache hit
rates, the latency distribution, how many samples/evaluations each query
actually consumed — without dragging in a metrics dependency.  This module
is the minimal registry that covers those needs: named :class:`Counter`,
:class:`Gauge` and :class:`Histogram` instruments created on first use, a
structured :meth:`MetricsRegistry.dump` for programmatic consumers, and a
:meth:`MetricsRegistry.report` text format for humans (printed by the
``serve-batch`` CLI and persisted by the throughput benchmark).

Gauges carry point-in-time levels rather than event counts — the streaming
update path uses them for index *staleness* (dirty-node fraction, retired
samples, seconds since the last refresh), where a counter's monotonicity
would be wrong.

All instruments are thread-safe: the engine serves batches from a thread
pool, so counters and histograms take a registry-wide lock per update
(updates are tiny; contention is negligible next to a query).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Mapping, Optional, Sequence, Tuple

#: Default latency buckets, in milliseconds (upper bounds; +inf implicit).
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)

#: Default buckets for count-valued distributions (samples used,
#: marginal evaluations): powers of four cover 1 .. ~1e6 in 10 buckets.
COUNT_BUCKETS: Tuple[float, ...] = tuple(float(4 ** i) for i in range(11))


def labelled(name: str, **labels: str) -> str:
    """Build a labelled instrument name, Prometheus-style.

    The registry itself is label-blind — every instrument is keyed by a
    plain string — so per-kind breakdowns are encoded *into* the name:
    ``labelled("serve_queries_total", kind="point")`` yields
    ``serve_queries_total{kind="point"}``.  Labels are sorted so the same
    label set always maps to the same instrument, and
    :func:`repro.obs.prom.render_prometheus` splits the suffix back out
    into real Prometheus labels at exposition time.  Values are escaped
    per the exposition format (``\\``, ``"``, newline), so an odd or
    hostile value cannot corrupt the rendered text;
    :func:`repro.obs.prom.parse_prometheus` round-trips the escapes.
    """
    if not labels:
        return name
    from repro.obs.prom import escape_label_value

    inner = ",".join(
        f'{k}="{escape_label_value(v)}"' for k, v in sorted(labels.items())
    )
    return f"{name}{{{inner}}}"


def record_staleness(metrics: "MetricsRegistry", stats,
                     now: Optional[float] = None) -> None:
    """Set the ``staleness_*`` gauges from one update's
    :class:`repro.stream.UpdateStats`.

    Called right after an ``update()`` and again at scrape time (so
    ``staleness_seconds_since_refresh`` ages between updates).
    """
    now = time.time() if now is None else now
    metrics.set_gauge("staleness_dirty_fraction", stats.dirty_fraction)
    metrics.set_gauge("staleness_samples_retired",
                      float(stats.samples_retired))
    metrics.set_gauge("staleness_samples_added", float(stats.samples_added))
    metrics.set_gauge("staleness_trees_rebuilt", float(stats.trees_rebuilt))
    metrics.set_gauge("staleness_generation", float(stats.generation))
    metrics.set_gauge("staleness_seconds_since_refresh",
                      max(0.0, now - stats.updated_unix))


class Counter:
    """A monotone named counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._value = 0
        self._lock = lock

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A named value that can go up and down (a level, not a count)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A fixed-bucket histogram with mean/min/max and quantile estimates.

    ``buckets`` are ascending finite upper bounds; an implicit +inf bucket
    catches the tail.  Quantiles are estimated by linear interpolation
    inside the containing bucket — coarse, but honest enough for latency
    reporting, and O(#buckets) memory regardless of observation count.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total",
                 "min", "max", "_lock")

    def __init__(self, name: str, buckets: Sequence[float],
                 lock: threading.Lock):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"buckets must be ascending, got {buckets!r}")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # trailing +inf bucket
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        i = 0
        while i < len(self.buckets) and value > self.buckets[i]:
            i += 1
        with self._lock:
            self.counts[i] += 1
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (``0 <= q <= 1``) from the buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            if seen + c >= rank and c > 0:
                lo = self.buckets[i - 1] if i > 0 else min(self.min, self.buckets[0])
                hi = self.buckets[i] if i < len(self.buckets) else self.max
                lo = max(lo, self.min)
                hi = min(hi, self.max) if hi != float("inf") else self.max
                frac = (rank - seen) / c
                return lo + (hi - lo) * max(0.0, min(frac, 1.0))
            seen += c
        return self.max


class MetricsRegistry:
    """A named collection of counters and histograms.

    Instruments are created on first use, so call sites never need to
    pre-register anything::

        metrics.inc("queries_total")
        metrics.observe("latency_ms", 1.7)
        print(metrics.report())
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name, self._lock)
        return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name, self._lock)
        return g

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                # Default buckets key off the *base* name: a labelled
                # instrument like latency_ms{kind="point"} must share the
                # latency bucket family with its unlabelled sibling.
                base = name.partition("{")[0]
                chosen = buckets if buckets is not None else (
                    LATENCY_BUCKETS_MS if base.endswith("_ms")
                    else COUNT_BUCKETS
                )
                h = self._histograms[name] = Histogram(
                    name, chosen, self._lock
                )
        return h

    # Convenience shortcuts -------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float,
                buckets: Optional[Sequence[float]] = None) -> None:
        self.histogram(name, buckets).observe(value)

    def observe_stage_seconds(
        self,
        stages: Mapping[str, float],
        prefix: str = "stage_",
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Record a per-stage seconds breakdown as ``<prefix><name>_ms``.

        The serving engine feeds query-stage timings (weight eval, score
        build, selection, bound) through this, so each stage gets its own
        latency histogram without call sites hand-rolling the unit
        conversion.  With ``labels`` (e.g. ``kernel_backend``) each stage
        is observed twice — once unlabelled (the stable dashboard name)
        and once under the labelled sibling, so backend A/B comparisons
        don't break existing panels.
        """
        for stage, seconds in stages.items():
            ms = float(seconds) * 1e3
            self.observe(f"{prefix}{stage}_ms", ms)
            if labels:
                self.observe(labelled(f"{prefix}{stage}_ms", **labels), ms)

    def merge_dump(self, dump: Mapping, prefix: str = "") -> None:
        """Fold another registry's :meth:`dump` into this one.

        The multi-process serving pool collects each worker's registry as
        a plain dump (registries hold locks and cannot cross process
        boundaries) and merges them here, optionally under a ``prefix``
        (e.g. ``"worker."``) so pooled totals stay distinguishable from
        the parent's own instruments.  Counters add; histograms merge
        bucket-by-bucket, which requires both sides to use the same
        bounds — guaranteed when the name maps to the same default bucket
        family on both sides, and checked otherwise.
        """
        for name, value in dump.get("counters", {}).items():
            self.inc(prefix + name, int(value))
        # Gauges are levels, not counts: the merged-in snapshot replaces
        # whatever this registry held under the prefixed name.
        for name, value in dump.get("gauges", {}).items():
            self.set_gauge(prefix + name, float(value))
        for name, h in dump.get("histograms", {}).items():
            bounds = [
                float(b["le"]) for b in h["buckets"]
                if b["le"] != float("inf")
            ]
            target = self.histogram(prefix + name, buckets=bounds or None)
            if list(target.buckets) != bounds:
                raise ValueError(
                    f"cannot merge histogram {name!r}: bucket bounds "
                    f"{bounds} != existing {list(target.buckets)}"
                )
            counts = [int(b["count"]) for b in h["buckets"]]
            with target._lock:
                for i, c in enumerate(counts):
                    target.counts[i] += c
                target.count += int(h["count"])
                target.total += float(h["sum"])
                if h.get("min") is not None:
                    target.min = min(target.min, float(h["min"]))
                if h.get("max") is not None:
                    target.max = max(target.max, float(h["max"]))

    # Output ----------------------------------------------------------------

    def dump(self) -> dict:
        """Structured snapshot: counters, gauges and histograms by name."""
        with self._lock:
            counters = {n: c._value for n, c in sorted(self._counters.items())}
            gauges = {n: g._value for n, g in sorted(self._gauges.items())}
            histograms = {
                n: {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min if h.count else None,
                    "max": h.max if h.count else None,
                    "mean": h.mean,
                    "buckets": [
                        {"le": le, "count": c}
                        for le, c in zip(h.buckets + (float("inf"),), h.counts)
                    ],
                }
                for n, h in sorted(self._histograms.items())
            }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def report(self) -> str:
        """Human-readable text report of every instrument."""
        lines = ["== metrics =="]
        if self._counters:
            lines.append("counters:")
            width = max(len(n) for n in self._counters)
            for name in sorted(self._counters):
                c = self._counters[name]
                lines.append(f"  {name:<{width}}  {c.value}")
        if self._gauges:
            lines.append("gauges:")
            width = max(len(n) for n in self._gauges)
            for name in sorted(self._gauges):
                g = self._gauges[name]
                lines.append(f"  {name:<{width}}  {g.value:g}")
        if self._histograms:
            lines.append("histograms:")
            for name in sorted(self._histograms):
                h = self._histograms[name]
                if h.count == 0:
                    lines.append(f"  {name}: count=0")
                    continue
                lines.append(
                    f"  {name}: count={h.count} mean={h.mean:.3g} "
                    f"min={h.min:.3g} p50={h.quantile(0.5):.3g} "
                    f"p95={h.quantile(0.95):.3g} max={h.max:.3g}"
                )
                peak = max(h.counts)
                bounds = h.buckets + (float("inf"),)
                for le, c in zip(bounds, h.counts):
                    if c == 0:
                        continue
                    bar = "#" * max(1, round(24 * c / peak))
                    label = "+inf" if le == float("inf") else f"{le:g}"
                    lines.append(f"    <= {label:>8}  {c:>7}  {bar}")
        return "\n".join(lines)
