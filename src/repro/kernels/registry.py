"""Backend registry for the native selection/sampling kernels.

The registry maps a *requested* backend name to a *resolved* one:

* ``"numpy"`` — the vectorized kernels in :mod:`repro.ris.coverage` and
  :mod:`repro.ris.coupled`; always available, the default and the
  parity oracle.
* ``"numba"`` — the loops in :mod:`repro.kernels.loops` compiled with
  ``numba.njit(cache=True)``.  Resolving it imports numba (never at
  module import time — numba is an optional extra), compiles the
  kernels, and runs a warm-up self-check: every compiled kernel is
  executed on tiny synthetic inputs and compared against its own
  interpreted body.  A host without numba, a compile failure, or a
  warm-up mismatch all raise :class:`~repro.exceptions.KernelError`.
* ``"auto"`` — ``numba`` if it resolves (importable *and* warm), else
  ``numpy``.  The failure is cached so a numba-less host pays the probe
  once per process.

Resolution happens once per index (at build or load); everything
downstream — query kernels, serve engine metrics labels, spans,
``repro info``, benchmark environment blocks — carries the resolved
concrete name, never ``"auto"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.exceptions import KernelError

#: Accepted backend names, as validated by config/CLI.
BACKENDS = ("auto", "numpy", "numba")


@dataclass(frozen=True)
class KernelSet:
    """The compiled kernel entry points of one native backend."""

    name: str
    score_build: Callable
    greedy_select: Callable
    lazy_select: Callable
    budgeted_eager_select: Callable
    budgeted_lazy_select: Callable
    coupled_batch: Callable


#: Cached numba load outcome: unset / KernelSet / the failure message.
_numba_state: dict = {"loaded": False, "kernels": None, "error": None}


def numba_version() -> Optional[str]:
    """Installed numba version, or ``None`` (an import probe, no compile)."""
    try:
        import numba  # noqa: F401 — optional extra, probed at runtime
    except Exception:
        return None
    return getattr(numba, "__version__", "unknown")


def _warmup(ks: KernelSet, interpreted) -> None:
    """Run every compiled kernel on tiny inputs vs its interpreted body.

    The interpreted body is the exact source numba compiled, so any
    divergence is a miscompile (or an unsupported-host quirk) — in
    either case the backend must not serve queries.  Raises
    :class:`KernelError` on mismatch.
    """
    # A 6-node, 8-sample toy corpus in flat CSR form, with one weight-0
    # sample and one repeated-root sample to exercise the edge cases.
    flat = np.array(
        [0, 1, 2, 1, 3, 2, 4, 0, 5, 3, 4, 5, 1, 2, 5, 0], dtype=np.int64
    )
    offsets = np.array([0, 3, 5, 7, 9, 12, 15, 15, 16], dtype=np.int64)
    l = 8
    n = 6
    weights = np.array(
        [0.9, 0.4, 0.0, 0.7, 0.3, 0.55, 0.2, 0.8], dtype=np.float64
    )
    # Inverted index (node -> ascending sample ids) built the corpus way.
    sample_of_entry = np.repeat(
        np.arange(l, dtype=np.int64), np.diff(offsets)
    )
    inv_order = np.argsort(flat, kind="stable")
    inv_samples = sample_of_entry[inv_order]
    inv_offsets = np.zeros(n + 1, dtype=np.int64)
    np.add.at(inv_offsets, flat + 1, 1)
    np.cumsum(inv_offsets, out=inv_offsets)
    costs = np.array([1.0, 2.0, 0.5, 1.5, 1.0, 3.0], dtype=np.float64)

    def check(label, compiled_out, interp_out):
        comp = compiled_out if isinstance(compiled_out, tuple) else (compiled_out,)
        ref = interp_out if isinstance(interp_out, tuple) else (interp_out,)
        for a, b in zip(comp, ref):
            if not np.array_equal(np.asarray(a), np.asarray(b)):
                raise KernelError(
                    f"numba kernel {label!r} failed its warm-up parity "
                    f"self-check: {a!r} != {b!r}"
                )

    score_ref = interpreted.score_build(flat, offsets, weights, l, n)
    check("score_build", ks.score_build(flat, offsets, weights, l, n), score_ref)
    for label, comp_fn, ref_fn in (
        ("greedy_select", ks.greedy_select, interpreted.greedy_select),
        ("lazy_select", ks.lazy_select, interpreted.lazy_select),
    ):
        check(
            label,
            comp_fn(flat, offsets, inv_samples, inv_offsets, weights,
                    score_ref.copy(), l, 3, 1e-12),
            ref_fn(flat, offsets, inv_samples, inv_offsets, weights,
                   score_ref.copy(), l, 3, 1e-12),
        )
    for label, comp_fn, ref_fn in (
        ("budgeted_eager_select", ks.budgeted_eager_select,
         interpreted.budgeted_eager_select),
        ("budgeted_lazy_select", ks.budgeted_lazy_select,
         interpreted.budgeted_lazy_select),
    ):
        check(
            label,
            comp_fn(flat, offsets, inv_samples, inv_offsets, weights,
                    score_ref.copy(), costs, 3.5, l, 1e-12),
            ref_fn(flat, offsets, inv_samples, inv_offsets, weights,
                   score_ref.copy(), costs, 3.5, l, 1e-12),
        )
    # Tiny 5-node ring for the coupled traversal (every edge p=0.6).
    in_offsets = np.array([0, 1, 2, 3, 4, 5], dtype=np.int64)
    in_sources = np.array([4, 0, 1, 2, 3], dtype=np.int64)
    keys = np.arange(6, dtype=np.int64)
    with np.errstate(over="ignore"):
        from repro.kernels import loops

        seed64 = loops.mix64(np.uint64(1234))
        targets = np.arange(5, dtype=np.uint64)
        edge_mix = loops.mix64(
            in_sources.astype(np.uint64) * np.uint64(5) + targets
        )
        thresholds = np.full(5, np.uint64(int(0.6 * (1 << 53))))
        check(
            "coupled_batch",
            ks.coupled_batch(seed64, keys, in_offsets, in_sources,
                             edge_mix, thresholds, 5),
            interpreted.coupled_batch(seed64, keys, in_offsets, in_sources,
                                      edge_mix, thresholds, 5),
        )


class _Interpreted:
    """The loops module's plain-Python bodies, errstate-wrapped."""

    def __getattr__(self, name):
        from repro.kernels import loops

        fn = getattr(loops, name)
        # After compilation the module attribute is a dispatcher; its
        # original body lives on ``py_func``.
        fn = getattr(fn, "py_func", fn)

        def call(*args):
            with np.errstate(over="ignore"):
                return fn(*args)

        return call


def _load_numba() -> KernelSet:
    """Compile (or return the cached) numba kernel set; may raise."""
    if _numba_state["loaded"]:
        if _numba_state["kernels"] is not None:
            return _numba_state["kernels"]
        raise KernelError(_numba_state["error"])
    _numba_state["loaded"] = True
    try:
        import numba

        from repro.kernels import loops

        compiled = {}
        for name in loops.KERNEL_NAMES:
            fn = getattr(loops, name)
            if hasattr(fn, "py_func"):  # already compiled (re-entry)
                compiled[name] = fn
            else:
                compiled[name] = numba.njit(cache=True)(fn)
        # jit_module-style rebinding: intra-kernel calls resolve through
        # the module globals, which must hold dispatchers before the
        # (lazy) first compilation of any caller.
        for name, disp in compiled.items():
            setattr(loops, name, disp)
        ks = KernelSet(
            name="numba",
            score_build=compiled["score_build"],
            greedy_select=compiled["greedy_select"],
            lazy_select=compiled["lazy_select"],
            budgeted_eager_select=compiled["budgeted_eager_select"],
            budgeted_lazy_select=compiled["budgeted_lazy_select"],
            coupled_batch=compiled["coupled_batch"],
        )
        _warmup(ks, _Interpreted())
    except KernelError as exc:
        _numba_state["error"] = str(exc)
        raise
    except Exception as exc:  # import error, compile error, typing error
        _numba_state["error"] = (
            f"numba backend unavailable: {type(exc).__name__}: {exc}"
        )
        raise KernelError(_numba_state["error"]) from exc
    _numba_state["kernels"] = ks
    return ks


def kernels(backend: str) -> KernelSet:
    """The compiled :class:`KernelSet` of a resolved backend.

    Only ``"numba"`` has one — the numpy backend *is* the vectorized
    code in :mod:`repro.ris`, not a kernel table.
    """
    if backend != "numba":
        raise KernelError(
            f"no compiled kernel set for backend {backend!r} "
            "(the numpy backend is the vectorized code itself)"
        )
    return _load_numba()


def resolve_backend(name: str = "auto") -> str:
    """Resolve a requested backend name to a concrete one.

    ``"numpy"`` is returned as-is; ``"numba"`` compiles and warm-checks
    the native kernels (raising :class:`KernelError` with the real cause
    on any failure); ``"auto"`` tries numba and quietly falls back to
    numpy.  Unknown names raise.
    """
    if name == "numpy":
        return "numpy"
    if name == "numba":
        _load_numba()
        return "numba"
    if name == "auto":
        try:
            _load_numba()
        except KernelError:
            return "numpy"
        return "numba"
    raise KernelError(
        f"unknown kernel backend {name!r}; expected one of {BACKENDS}"
    )


def available_backends() -> tuple:
    """Concrete backends usable on this host (probes the numba load)."""
    if resolve_backend("auto") == "numba":
        return ("numpy", "numba")
    return ("numpy",)
