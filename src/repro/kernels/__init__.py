"""Native-speed selection and sampling kernels (optional numba backend).

See DESIGN.md, "Native kernels".  Public surface:

* :func:`resolve_backend` — ``"auto"``/``"numpy"``/``"numba"`` to a
  concrete backend name (``"auto"`` falls back to numpy when numba is
  missing or fails its warm-up self-check).
* :func:`available_backends` / :func:`numba_version` — host probes,
  stamped into ``repro info`` and benchmark environment blocks.
* :func:`kernels` — the compiled :class:`KernelSet` of the numba
  backend (the numpy backend is the vectorized code in
  :mod:`repro.ris` itself).

Importing this package never imports numba.
"""

from repro.kernels.registry import (
    BACKENDS,
    KernelSet,
    available_backends,
    kernels,
    numba_version,
    resolve_backend,
)

__all__ = [
    "BACKENDS",
    "KernelSet",
    "available_backends",
    "kernels",
    "numba_version",
    "resolve_backend",
]
