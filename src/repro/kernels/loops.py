"""Nopython-compatible kernel bodies for the native backend.

Every function here is written in the numba ``nopython`` subset — plain
loops over preallocated arrays, no Python objects, no closures — but the
module itself never imports numba.  The registry
(:mod:`repro.kernels.registry`) compiles these functions with
``numba.njit`` at load time; until then (and forever on hosts without
numba) they are ordinary Python functions, which is what makes them
testable in any environment: interpreting a function here executes the
exact code the JIT compiles, so the parity suite can pin the kernel
logic against the vectorized numpy kernels without numba installed.

Parity contracts (pinned by ``tests/kernels``):

* :func:`score_build` accumulates per-node scores in flat-entry order —
  the same order ``np.bincount(flat, weights=...)`` uses — so the built
  score array is bit-identical to the numpy build.
* The selection loops reproduce the *batched* decrement float semantics
  of :func:`repro.ris.coverage.weighted_greedy_cover`: each newly
  covered sample's member weights are first summed per node (in entry
  order, like the decrement ``bincount``) and subtracted from the score
  once.  Argmax ties break toward the lowest node id (first maximum),
  exactly like ``np.argmax``.
* The heap loops only need to be *correct* binary heaps, not replicas of
  ``heapq``'s sift order: heap entries are distinct ``(gain, node)``
  pairs (each node appears at most once), so the pop sequence — and
  therefore the CELF selection — is identical for any valid heap.
* :func:`coupled_batch` replays the SplitMix64 coin domain of
  :class:`repro.ris.coupled.CoupledRRSampler` bit-for-bit: every coin is
  a pure integer hash of ``(seed, key, edge endpoints)``, independent of
  traversal order, so the visited set is backend-invariant by
  construction.

Caution for interpreted execution: the uint64 hashing relies on wrapping
multiplication.  Numba wraps silently; numpy scalars wrap too but may
emit ``RuntimeWarning`` — interpreted callers should run under
``np.errstate(over="ignore")`` (the registry's warm-up and the parity
tests do).
"""

from __future__ import annotations

import numpy as np

_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_ROOT_SALT = np.uint64(0xD1B54A32D192ED03)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)
_S11 = np.uint64(11)

#: Names the registry compiles, dependency order (helpers first so the
#: jit_module-style rebinding leaves no plain-Python callee behind).
KERNEL_NAMES = (
    "mix64",
    "heap_less",
    "sift_down",
    "cover_decrement",
    "score_build",
    "greedy_select",
    "lazy_select",
    "budgeted_eager_select",
    "budgeted_lazy_select",
    "coupled_batch",
)


def mix64(z):
    """SplitMix64 finalizer over a uint64 scalar (wrapping multiply)."""
    z = (z ^ (z >> _S30)) * _M1
    z = (z ^ (z >> _S27)) * _M2
    return z ^ (z >> _S31)


def heap_less(g1, n1, g2, n2):
    """Lexicographic ``(neg_gain, node)`` order — ``heapq`` tuple order."""
    if g1 < g2:
        return True
    if g1 > g2:
        return False
    return n1 < n2


def sift_down(hg, hn, pos, size):
    """Restore the min-heap property below ``pos`` (textbook sift)."""
    g = hg[pos]
    u = hn[pos]
    while True:
        child = 2 * pos + 1
        if child >= size:
            break
        right = child + 1
        if right < size and heap_less(hg[right], hn[right], hg[child], hn[child]):
            child = right
        if heap_less(hg[child], hn[child], g, u):
            hg[pos] = hg[child]
            hn[pos] = hn[child]
            pos = child
        else:
            break
    hg[pos] = g
    hn[pos] = u


def score_build(flat, offsets, weights, l, n):
    """Per-node covered-weight scores over the first ``l`` samples.

    Accumulates in flat-entry order — bit-identical to the numpy
    ``np.bincount(flat_prefix, weights=entry_weight, minlength=n)``.
    """
    score = np.zeros(n, dtype=np.float64)
    for i in range(l):
        w = weights[i]
        for e in range(offsets[i], offsets[i + 1]):
            score[flat[e]] += w
    return score


def cover_decrement(
    flat, offsets, inv_samples, inv_offsets, weights, score, covered,
    seen, dec, touched, u, l,
):
    """Mark every sample of ``u`` in the prefix covered and decrement.

    Reproduces the batched numpy decrement bit-for-bit: per-node deltas
    are accumulated in entry order into ``dec`` (the ``bincount``) and
    subtracted once per touched node.  ``seen``/``dec``/``touched`` are
    caller-provided scratch (zeroed on entry, re-zeroed on exit) so the
    selection loop allocates nothing per iteration.
    """
    n_touched = 0
    for ii in range(inv_offsets[u], inv_offsets[u + 1]):
        s = inv_samples[ii]
        if s >= l:
            break  # ascending sample ids: the prefix cut
        if covered[s]:
            continue
        covered[s] = True
        w = weights[s]
        for e in range(offsets[s], offsets[s + 1]):
            node = flat[e]
            if not seen[node]:
                seen[node] = True
                touched[n_touched] = node
                n_touched += 1
            dec[node] += w
    for t in range(n_touched):
        node = touched[t]
        score[node] -= dec[node]
        dec[node] = 0.0
        seen[node] = False


def greedy_select(
    flat, offsets, inv_samples, inv_offsets, weights, score, l, k, drift_rtol
):
    """Eager greedy cover: argmax scan + batched decrement per pick.

    Mutates ``score`` in place (like the numpy kernel) and returns
    ``(seeds, gains, n_selected, covered_weight)`` with ``gains`` of
    length ``k`` (trailing zeros past an early stop).
    """
    n = score.shape[0]
    covered = np.zeros(l, dtype=np.bool_)
    seen = np.zeros(n, dtype=np.bool_)
    dec = np.zeros(n, dtype=np.float64)
    touched = np.empty(n, dtype=np.int64)
    seeds = np.empty(k, dtype=np.int64)
    gains = np.zeros(k, dtype=np.float64)
    covered_weight = 0.0
    n_sel = 0
    for it in range(k):
        u = 0
        best = score[0]
        for v in range(1, n):
            if score[v] > best:
                best = score[v]
                u = v
        gain = score[u]
        if gain <= drift_rtol * covered_weight:
            break
        seeds[n_sel] = u
        gains[n_sel] = gain
        n_sel += 1
        covered_weight += gain
        cover_decrement(
            flat, offsets, inv_samples, inv_offsets, weights, score,
            covered, seen, dec, touched, u, l,
        )
        score[u] = -np.inf
    return seeds, gains, n_sel, covered_weight


def lazy_select(
    flat, offsets, inv_samples, inv_offsets, weights, score, l, k, drift_rtol
):
    """CELF lazy greedy: max-heap of stale gains, re-evaluated on pop.

    Same return contract as :func:`greedy_select`; selects the identical
    seed set (scores only decrease, ties break toward the lowest node).
    """
    n = score.shape[0]
    hg = np.empty(n, dtype=np.float64)
    hn = np.empty(n, dtype=np.int64)
    hsize = 0
    for v in range(n):
        if score[v] > 0.0:
            hg[hsize] = -score[v]
            hn[hsize] = v
            hsize += 1
    for i in range(hsize // 2 - 1, -1, -1):
        sift_down(hg, hn, i, hsize)

    covered = np.zeros(l, dtype=np.bool_)
    seen = np.zeros(n, dtype=np.bool_)
    dec = np.zeros(n, dtype=np.float64)
    touched = np.empty(n, dtype=np.int64)
    seeds = np.empty(k, dtype=np.int64)
    gains = np.zeros(k, dtype=np.float64)
    covered_weight = 0.0
    n_sel = 0
    for it in range(k):
        # Refresh the top: pop entries whose stored gain went stale and
        # re-push them at their current value; a fresh top is the true
        # maximum (scores only decrease).
        while hsize > 0:
            u = hn[0]
            current = score[u]
            if -hg[0] <= current:
                break
            if current <= 0.0:
                hsize -= 1
                if hsize > 0:
                    hg[0] = hg[hsize]
                    hn[0] = hn[hsize]
                    sift_down(hg, hn, 0, hsize)
            else:
                hg[0] = -current
                sift_down(hg, hn, 0, hsize)
        if hsize == 0:
            break
        u = hn[0]
        gain = -hg[0]
        hsize -= 1
        if hsize > 0:
            hg[0] = hg[hsize]
            hn[0] = hn[hsize]
            sift_down(hg, hn, 0, hsize)
        if gain <= drift_rtol * covered_weight:
            break
        seeds[n_sel] = u
        gains[n_sel] = gain
        n_sel += 1
        covered_weight += gain
        cover_decrement(
            flat, offsets, inv_samples, inv_offsets, weights, score,
            covered, seen, dec, touched, u, l,
        )
        score[u] = -np.inf
    return seeds, gains, n_sel, covered_weight


def budgeted_eager_select(
    flat, offsets, inv_samples, inv_offsets, weights, score, costs,
    budget, l, drift_rtol,
):
    """Cost-aware ratio greedy, eager scan (mirrors the numpy kernel).

    Picks the affordable node with the largest ``gain / cost`` ratio
    each round until the budget admits nothing useful.  Returns
    ``(seeds, gains, n_selected, covered_weight, cost_spent)`` with
    ``seeds``/``gains`` sized ``n`` (only the first ``n_selected``
    entries are meaningful).
    """
    n = score.shape[0]
    covered = np.zeros(l, dtype=np.bool_)
    seen = np.zeros(n, dtype=np.bool_)
    dec = np.zeros(n, dtype=np.float64)
    touched = np.empty(n, dtype=np.int64)
    seeds = np.empty(n, dtype=np.int64)
    gains = np.zeros(n, dtype=np.float64)
    covered_weight = 0.0
    remaining = budget
    cost_spent = 0.0
    n_sel = 0
    while True:
        u = -1
        best = -np.inf
        first = True
        for v in range(n):
            if costs[v] <= remaining:
                r = score[v] / costs[v]
                if first or r > best:
                    best = r
                    u = v
                    first = False
        if u < 0:
            break  # nothing affordable
        gain = score[u]
        if not np.isfinite(best):
            break
        if gain <= drift_rtol * covered_weight:
            break
        seeds[n_sel] = u
        gains[n_sel] = gain
        n_sel += 1
        covered_weight += gain
        cost_spent += costs[u]
        remaining -= costs[u]
        cover_decrement(
            flat, offsets, inv_samples, inv_offsets, weights, score,
            covered, seen, dec, touched, u, l,
        )
        score[u] = -np.inf
    return seeds, gains, n_sel, covered_weight, cost_spent


def budgeted_lazy_select(
    flat, offsets, inv_samples, inv_offsets, weights, score, costs,
    budget, l, drift_rtol,
):
    """Cost-aware ratio greedy, CELF heap (mirrors the numpy kernel).

    Stored ratios only go stale downward (scores decrease, costs fixed);
    unaffordable nodes are dropped permanently — the remaining budget
    never grows back.  Same return contract as
    :func:`budgeted_eager_select`.
    """
    n = score.shape[0]
    hg = np.empty(n, dtype=np.float64)
    hn = np.empty(n, dtype=np.int64)
    hsize = 0
    for v in range(n):
        if score[v] > 0.0:
            hg[hsize] = -score[v] / costs[v]
            hn[hsize] = v
            hsize += 1
    for i in range(hsize // 2 - 1, -1, -1):
        sift_down(hg, hn, i, hsize)

    covered = np.zeros(l, dtype=np.bool_)
    seen = np.zeros(n, dtype=np.bool_)
    dec = np.zeros(n, dtype=np.float64)
    touched = np.empty(n, dtype=np.int64)
    seeds = np.empty(n, dtype=np.int64)
    gains = np.zeros(n, dtype=np.float64)
    covered_weight = 0.0
    remaining = budget
    cost_spent = 0.0
    n_sel = 0
    while True:
        u = -1
        while hsize > 0:
            u0 = hn[0]
            if costs[u0] > remaining:
                hsize -= 1
                if hsize > 0:
                    hg[0] = hg[hsize]
                    hn[0] = hn[hsize]
                    sift_down(hg, hn, 0, hsize)
                u = -1
                continue
            current = score[u0] / costs[u0]
            if -hg[0] <= current:
                u = u0
                break
            if current <= 0.0:
                hsize -= 1
                if hsize > 0:
                    hg[0] = hg[hsize]
                    hn[0] = hn[hsize]
                    sift_down(hg, hn, 0, hsize)
                u = -1
            else:
                hg[0] = -current
                sift_down(hg, hn, 0, hsize)
                u = u0
        if hsize == 0 or u < 0:
            break
        hsize -= 1
        if hsize > 0:
            hg[0] = hg[hsize]
            hn[0] = hn[hsize]
            sift_down(hg, hn, 0, hsize)
        gain = score[u]
        if gain <= drift_rtol * covered_weight:
            break
        seeds[n_sel] = u
        gains[n_sel] = gain
        n_sel += 1
        covered_weight += gain
        cost_spent += costs[u]
        remaining -= costs[u]
        cover_decrement(
            flat, offsets, inv_samples, inv_offsets, weights, score,
            covered, seen, dec, touched, u, l,
        )
        score[u] = -np.inf
    return seeds, gains, n_sel, covered_weight, cost_spent


def coupled_batch(seed64, keys, in_offsets, in_sources, edge_mix, thresholds, n):
    """Counter-based coupled RR sampling over a batch of slot keys.

    For each key: derive the slot hash and root exactly as
    :meth:`repro.ris.coupled.CoupledRRSampler.regenerate` does, run the
    reverse traversal with per-edge SplitMix64 coins, and append the
    sorted member set to one growing flat buffer.  Coins are pure
    integer hashes of ``(slot, edge endpoints)`` — order-independent —
    so the visited sets are bit-identical to the numpy traversal.

    Returns ``(roots, flat_members, offsets)`` in the
    :meth:`RRCorpus.flat` layout.
    """
    count = keys.shape[0]
    roots = np.empty(count, dtype=np.int64)
    offsets = np.zeros(count + 1, dtype=np.int64)
    visited = np.zeros(n, dtype=np.bool_)
    stack = np.empty(n, dtype=np.int64)
    order = np.empty(n, dtype=np.int64)
    buf = np.empty(max(1024, 4 * count), dtype=np.int64)
    total = 0
    n_u64 = np.uint64(n)
    for i in range(count):
        slot = mix64(seed64 ^ (np.uint64(keys[i]) * _GOLDEN))
        root = np.int64(mix64(slot ^ _ROOT_SALT) % n_u64)
        roots[i] = root
        visited[root] = True
        order[0] = root
        n_vis = 1
        stack[0] = root
        sp = 1
        while sp > 0:
            sp -= 1
            x = stack[sp]
            for e in range(in_offsets[x], in_offsets[x + 1]):
                coin = mix64(slot ^ edge_mix[e]) >> _S11
                if coin < thresholds[e]:
                    u = in_sources[e]
                    if not visited[u]:
                        visited[u] = True
                        order[n_vis] = u
                        n_vis += 1
                        stack[sp] = u
                        sp += 1
        members = np.sort(order[:n_vis])
        for t in range(n_vis):
            visited[order[t]] = False
        if total + n_vis > buf.shape[0]:
            grown = np.empty(
                max(2 * buf.shape[0], total + n_vis), dtype=np.int64
            )
            grown[:total] = buf[:total]
            buf = grown
        buf[total : total + n_vis] = members
        total += n_vis
        offsets[i + 1] = total
    return roots, buf[:total].copy(), offsets
