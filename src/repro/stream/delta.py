"""Graph deltas: validated change batches and their application.

A :class:`GraphDelta` carries three kinds of change against a
:class:`~repro.network.graph.GeoSocialNetwork`:

* **edge upserts** — ``(u, v, p)`` rows that insert the edge if absent
  or replace its activation probability if present;
* **edge removals** — ``(u, v)`` rows deleting an existing edge;
* **check-ins** — ``(node, x, y)`` rows moving a user's representative
  location.

:func:`apply_delta` folds a delta into a *new* network (the network type
is immutable by design — indexes hold references to its arrays) and
reports the **dirty nodes**: every endpoint of an inserted, re-weighted,
or removed edge.  The dirty set is what makes incremental index
maintenance sound:

* an RR sample is invalidated only if its reverse-reach set contains a
  dirty node — any sample avoiding all dirty nodes would have traversed
  exactly the same in-edge coin flips on the new graph;
* a MIIA arborescence rooted at ``v`` is invalidated only if a dirty
  node appears in it — maximum-influence paths avoiding all changed
  edges' endpoints are unchanged (subpaths of MIPs are MIPs).

Check-in moves deliberately do **not** dirty nodes: topology and edge
probabilities are untouched, so RR samples and arborescences stay valid;
only the distance-decay weighting (applied at query time for RIS, and
recomputed in the anchor/region bounds for MIA) sees new coordinates.
Moved nodes are reported separately so update paths can refresh
geometry-dependent structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import DataFormatError, GraphError
from repro.network.graph import GeoSocialNetwork


def _as_edge_array(edges, what: str) -> np.ndarray:
    arr = np.asarray(edges if edges is not None else [], dtype=np.int64)
    if arr.size == 0:
        return arr.reshape(0, 2)
    arr = np.atleast_2d(arr)
    if arr.shape[1] != 2:
        raise GraphError(f"{what} must have shape (k, 2), got {arr.shape}")
    return arr


@dataclass(frozen=True)
class GraphDelta:
    """One validated batch of graph changes.

    Within a batch, later rows win: an edge upserted twice takes the last
    probability, and an edge both upserted and removed ends up in
    whichever state its **last** event requests.  ``from_events`` builds a
    delta from JSONL-style dicts (the ``update`` CLI's wire format).
    """

    edges: np.ndarray           #: (k, 2) int64 — upserted edges
    probabilities: np.ndarray   #: (k,) float — probability per upsert
    removed: np.ndarray         #: (r, 2) int64 — removed edges
    checkin_nodes: np.ndarray   #: (c,) int64 — moved users
    checkin_coords: np.ndarray  #: (c, 2) float — their new locations

    @classmethod
    def make(
        cls,
        edges=None,
        probabilities=None,
        removed=None,
        checkins: Optional[Iterable[Tuple[int, float, float]]] = None,
    ) -> "GraphDelta":
        """Build and validate a delta from loose inputs.

        ``checkins`` is an iterable of ``(node, x, y)``; duplicate moves
        of one node keep the last.
        """
        edge_arr = _as_edge_array(edges, "delta edges")
        if probabilities is None:
            probs = np.zeros(len(edge_arr), dtype=float)
            if len(edge_arr):
                raise GraphError("edge upserts require probabilities")
        else:
            probs = np.asarray(probabilities, dtype=float).reshape(-1)
        if probs.shape != (len(edge_arr),):
            raise GraphError(
                f"probabilities must have shape ({len(edge_arr)},), "
                f"got {probs.shape}"
            )
        if len(probs) and (probs.min() < 0.0 or probs.max() > 1.0):
            raise GraphError("edge probabilities must lie in [0, 1]")
        if len(edge_arr) and np.any(edge_arr[:, 0] == edge_arr[:, 1]):
            raise GraphError("self-loops are not allowed")
        removed_arr = _as_edge_array(removed, "removed edges")
        rows = list(checkins or [])
        nodes = np.asarray([r[0] for r in rows], dtype=np.int64)
        coords = np.asarray(
            [(r[1], r[2]) for r in rows], dtype=float
        ).reshape(len(rows), 2)
        if len(coords) and not np.all(np.isfinite(coords)):
            raise GraphError("check-in coordinates must be finite")
        return cls(edge_arr, probs, removed_arr, nodes, coords)

    @classmethod
    def from_events(cls, events: Iterable[Mapping]) -> "GraphDelta":
        """Parse JSONL-style event dicts into one delta.

        Supported events (the ``update`` CLI's wire format)::

            {"op": "edge", "u": 3, "v": 7, "p": 0.2}
            {"op": "drop_edge", "u": 3, "v": 7}
            {"op": "checkin", "node": 5, "x": 12.5, "y": -3.0}
        """
        edges, probs, removed, checkins = [], [], [], []
        for i, ev in enumerate(events):
            op = ev.get("op")
            try:
                if op == "edge":
                    edges.append((int(ev["u"]), int(ev["v"])))
                    probs.append(float(ev["p"]))
                elif op == "drop_edge":
                    removed.append((int(ev["u"]), int(ev["v"])))
                elif op == "checkin":
                    checkins.append(
                        (int(ev["node"]), float(ev["x"]), float(ev["y"]))
                    )
                else:
                    raise DataFormatError(
                        f"event {i}: unknown op {op!r} "
                        "(expected edge | drop_edge | checkin)"
                    )
            except (KeyError, TypeError, ValueError) as exc:
                raise DataFormatError(f"event {i}: malformed {ev!r}") from exc
        return cls.make(
            edges=edges, probabilities=probs, removed=removed,
            checkins=checkins,
        )

    @property
    def is_empty(self) -> bool:
        return (
            len(self.edges) == 0
            and len(self.removed) == 0
            and len(self.checkin_nodes) == 0
        )

    def __repr__(self) -> str:
        return (
            f"GraphDelta(upserts={len(self.edges)}, "
            f"removed={len(self.removed)}, moves={len(self.checkin_nodes)})"
        )


@dataclass(frozen=True)
class UpdateStats:
    """What one ``index.update()`` call did (staleness accounting).

    Serving layers feed these into the staleness gauges; the CLI prints
    them.  ``samples_retired`` / ``samples_added`` are RIS-specific and
    ``trees_rebuilt`` is MIA-specific — the other family reports zero.
    """

    generation: int       #: index generation after the update
    dirty_nodes: int      #: endpoints of changed edges
    dirty_fraction: float  #: dirty_nodes / n
    moved_nodes: int      #: users whose coordinates moved
    samples_retired: int  #: RR samples dropped (RIS)
    samples_added: int    #: RR samples drawn to restore guarantees (RIS)
    trees_rebuilt: int    #: arborescences rebuilt (MIA)
    seconds: float        #: wall-clock cost of the update
    updated_unix: float   #: wall-clock time the update finished

    def as_dict(self) -> dict:
        return {
            "generation": self.generation,
            "dirty_nodes": self.dirty_nodes,
            "dirty_fraction": self.dirty_fraction,
            "moved_nodes": self.moved_nodes,
            "samples_retired": self.samples_retired,
            "samples_added": self.samples_added,
            "trees_rebuilt": self.trees_rebuilt,
            "seconds": self.seconds,
            "updated_unix": self.updated_unix,
        }


@dataclass(frozen=True)
class DeltaResult:
    """The outcome of :func:`apply_delta`."""

    network: GeoSocialNetwork  #: the new (immutable) network
    dirty_nodes: np.ndarray    #: sorted unique endpoints of changed edges
    moved_nodes: np.ndarray    #: sorted unique nodes whose coords moved


def apply_delta(
    network: GeoSocialNetwork, delta: GraphDelta
) -> DeltaResult:
    """Apply ``delta`` to ``network``, returning the new network + dirty set.

    Edge changes are resolved last-wins within the batch (see
    :class:`GraphDelta`); removing an edge that does not exist raises
    :class:`~repro.exceptions.GraphError` (silently ignoring it would
    mask an out-of-sync stream).  Node ids must already exist — streaming
    node *arrival* is out of scope (it would resize every per-node array
    in both index families).
    """
    n = network.n
    for arr, what in (
        (delta.edges, "edge upsert"),
        (delta.removed, "edge removal"),
    ):
        if len(arr) and (arr.min() < 0 or arr.max() >= n):
            raise GraphError(
                f"{what} endpoints must be in [0, {n}), got range "
                f"[{arr.min()}, {arr.max()}]"
            )
    if len(delta.checkin_nodes) and (
        delta.checkin_nodes.min() < 0 or delta.checkin_nodes.max() >= n
    ):
        raise GraphError(
            f"check-in nodes must be in [0, {n}), got range "
            f"[{delta.checkin_nodes.min()}, {delta.checkin_nodes.max()}]"
        )

    old_edges, old_probs = network.edge_array()
    old_keys = old_edges[:, 0] * np.int64(n) + old_edges[:, 1]

    # Last-wins resolution across upserts and removals: walk the batch
    # in order, keyed by (u, v).  Batches are human-scale (a stream
    # window), so a dict is simpler and fast enough.
    final: dict = {}  # key -> prob (float) for upsert, None for removal
    for (u, v), p in zip(delta.edges, delta.probabilities):
        final[int(u) * n + int(v)] = float(p)
    for u, v in delta.removed:
        key = int(u) * n + int(v)
        final[key] = None

    touched_keys = np.fromiter(final.keys(), dtype=np.int64,
                               count=len(final))
    existing = set(map(int, old_keys))
    for key, prob in final.items():
        if prob is None and key not in existing:
            raise GraphError(
                f"cannot remove non-existent edge "
                f"<{key // n}, {key % n}>"
            )

    if len(final):
        keep = ~np.isin(old_keys, touched_keys)
        kept_edges = old_edges[keep]
        kept_probs = old_probs[keep]
        upsert_keys = [k for k, p in final.items() if p is not None]
        add_edges = np.array(
            [(k // n, k % n) for k in upsert_keys], dtype=np.int64
        ).reshape(len(upsert_keys), 2)
        add_probs = np.array(
            [final[k] for k in upsert_keys], dtype=float
        )
        new_edges = np.concatenate([kept_edges, add_edges])
        new_probs = np.concatenate([kept_probs, add_probs])
        dirty = np.unique(
            np.concatenate([touched_keys // n, touched_keys % n])
        )
    else:
        new_edges, new_probs = old_edges, old_probs
        dirty = np.empty(0, dtype=np.int64)

    if len(delta.checkin_nodes):
        coords = network.coords.copy()
        coords[delta.checkin_nodes] = delta.checkin_coords
        moved = np.unique(delta.checkin_nodes)
    else:
        coords = network.coords.copy()
        moved = np.empty(0, dtype=np.int64)

    new_network = GeoSocialNetwork(n, new_edges, new_probs, coords)
    return DeltaResult(network=new_network, dirty_nodes=dirty,
                       moved_nodes=moved)
