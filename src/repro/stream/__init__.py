"""Streaming graph maintenance for evolving geo-social networks.

Check-in workloads evolve continuously — new friendships, re-weighted
edges, users moving — and a rebuild-only index turns every change into a
stop-the-world event.  This package is the delta layer underneath the
``update()`` methods on both index families:

* :class:`~repro.stream.delta.GraphDelta` — a validated batch of edge
  upserts, edge removals, and check-in moves (parsed from JSONL events
  by :meth:`GraphDelta.from_events`);
* :func:`~repro.stream.delta.apply_delta` — applies a delta to an
  immutable :class:`~repro.network.graph.GeoSocialNetwork`, producing a
  *new* network plus the dirty-node set that tells the index update
  paths which samples / arborescences the change can possibly touch.
"""

from repro.stream.delta import (
    DeltaResult,
    GraphDelta,
    UpdateStats,
    apply_delta,
)

__all__ = ["DeltaResult", "GraphDelta", "UpdateStats", "apply_delta"]
