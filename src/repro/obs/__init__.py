"""Observability: tracing, structured logging, metrics exposition.

The ``repro.obs`` package is the cross-cutting runtime layer the serving
and build paths report through:

* :mod:`repro.obs.trace` — a dependency-free span tracer with worker-pool
  context propagation (``Tracer`` / ``Span`` / ``NULL_TRACER``);
* :mod:`repro.obs.log` — structured JSON logging with a stable event
  schema (``JsonLogger`` / ``NULL_LOGGER``);
* :mod:`repro.obs.prom` — Prometheus text-format exposition of
  :class:`~repro.serve.metrics.MetricsRegistry` plus a minimal parser;
* :mod:`repro.obs.httpd` — a stdlib HTTP sidecar serving ``/metrics``,
  ``/healthz`` and ``/query``;
* :mod:`repro.obs.slowlog` — the size-capped slow-query JSONL sink;
* :mod:`repro.obs.progress` — build-telemetry heartbeats;
* :mod:`repro.obs.env` — the runtime-environment snapshot embedded in
  traces and benchmark results;
* :mod:`repro.obs.profile` — the in-process sampling profiler
  (span-attributed collapsed stacks) and tracemalloc snapshots;
* :mod:`repro.obs.slo` — rolling-window SLO burn rates and the
  ``should_shed()`` admission-control hook;
* :mod:`repro.obs.diag` — the one-command ``repro diag`` tar.gz bundle.

Everything defaults to off: the ambient tracer and logger are no-op
singletons until :class:`use_tracer` / :class:`use_logger` activate real
ones, so library users pay near-zero cost for the instrumentation.
"""

from repro.obs.diag import bundle_report, read_bundle, write_bundle
from repro.obs.env import runtime_info
from repro.obs.log import (
    EVENTS,
    NULL_LOGGER,
    JsonLogger,
    NullLogger,
    get_logger,
    use_logger,
)
from repro.obs.profile import (
    AllocationReport,
    SamplingProfiler,
    allocation_snapshot,
    collapsed_text,
    merge_profile_dumps,
    profile_report,
)
from repro.obs.progress import Heartbeat
from repro.obs.prom import (
    escape_label_value,
    parse_prometheus,
    render_prometheus,
    unescape_label_value,
)
from repro.obs.slo import SloConfig, SloTracker, slo_report
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    new_trace_id,
    span_context,
    span_tree,
    use_tracer,
    worker_span,
)

def __getattr__(name):
    # Lazy: httpd imports repro.serve.engine, which imports repro.obs —
    # resolving it eagerly here would make that a circular import.
    if name == "ObsHttpServer":
        from repro.obs.httpd import ObsHttpServer

        return ObsHttpServer
    raise AttributeError(name)


__all__ = [
    "AllocationReport",
    "EVENTS",
    "Heartbeat",
    "JsonLogger",
    "NULL_LOGGER",
    "NULL_TRACER",
    "NullLogger",
    "NullTracer",
    "ObsHttpServer",
    "SamplingProfiler",
    "SloConfig",
    "SloTracker",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "allocation_snapshot",
    "bundle_report",
    "collapsed_text",
    "escape_label_value",
    "get_logger",
    "get_tracer",
    "merge_profile_dumps",
    "new_trace_id",
    "parse_prometheus",
    "profile_report",
    "read_bundle",
    "render_prometheus",
    "runtime_info",
    "slo_report",
    "span_context",
    "span_tree",
    "unescape_label_value",
    "use_logger",
    "use_tracer",
    "worker_span",
    "write_bundle",
]
