"""A stdlib HTTP server exposing ``/metrics``, ``/healthz`` and ``/query``.

No web framework: :class:`http.server.ThreadingHTTPServer` plus a small
handler is all a scrape endpoint needs.  Endpoints:

``GET /metrics``
    The engine's :class:`~repro.serve.metrics.MetricsRegistry` rendered
    by :func:`repro.obs.prom.render_prometheus` (text format 0.0.4).
``GET /healthz``
    ``{"status": "ok", "uptime_s": ..., "index_kind": ..., ...}`` — 200
    while the process can answer; a scrape target for liveness probes.
``GET /query?x=..&y=..&k=..``
    One DAIM query through the :class:`~repro.serve.QueryEngine` (result
    cache, metrics, tracing all apply); JSON answer with the trace id.
    ``kind=`` selects a query kind (default ``point``): ``targeted``
    adds ``targets=1,2,3``; ``budgeted`` adds ``budget=`` plus optional
    ``cost=`` / ``costs=node:cost,...``; ``trajectory`` replaces ``x``/
    ``y`` with ``waypoints=x:y;x:y``; ``heuristic`` takes optional
    ``level=`` / ``budget_ms=``.
``GET /slo``
    The engine's rolling-window SLO state — burn-rate gauges per
    objective and window — as its own small Prometheus exposition, so an
    admission controller (or a human) can read just the SLO view without
    scraping the full registry.  404 when no SLO tracker is attached.
``GET /debug/profile?seconds=N&hz=H``
    Run the in-process sampling profiler for N seconds (default 5,
    capped at 30) and return the collapsed-stack text — point a browser
    (or ``flamegraph.pl``) at a live server and see where time goes.
    One profile at a time; concurrent requests get 409.
``POST /admin/update``
    Apply a streaming graph delta — JSONL events in the request body,
    the same format the ``update`` CLI reads — through the engine's
    ``apply_update`` surface (in-process engine or serving pool alike);
    answers with the resulting update stats.  404 when the attached
    engine has no streaming surface.

Query serving is read-only (GET); the single mutating route is the
admin update above.  The server binds loopback by default; it is an
operational sidecar, not a public API gateway.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional
from urllib.parse import parse_qs, urlsplit

from repro.core.querykind import kind_of, query_from_json, query_to_row
from repro.exceptions import ReproError, ServeError
from repro.obs.log import get_logger
from repro.obs.prom import render_prometheus
from repro.serve.engine import QueryEngine
from repro.serve.metrics import MetricsRegistry

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ObsHttpServer:
    """Serves observability endpoints for one engine (or bare registry).

    Pass an ``engine`` to expose ``/query`` as well; with only a
    ``metrics`` registry the server is a pure exposition sidecar.
    ``engine`` may be a :class:`QueryEngine` or anything with the same
    ``query``/``metrics`` surface — notably a
    :class:`~repro.serve.pool.ServePool`, which fans ``/query`` requests
    to its sharded workers.  ``port=0`` binds an ephemeral port (see
    :attr:`port` after :meth:`start`).
    """

    def __init__(
        self,
        engine: Optional["QueryEngine"] = None,
        metrics: Optional[MetricsRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        default_k: int = 30,
        namespace: str = "repro",
        health_extra: Optional[Dict[str, Any]] = None,
    ):
        if engine is None and metrics is None:
            raise ServeError("need an engine or a metrics registry to serve")
        self.engine = engine
        self.metrics = metrics if metrics is not None else engine.metrics
        self.default_k = int(default_k)
        self.namespace = namespace
        self.health_extra = dict(health_extra or {})
        self.started_at = time.time()
        self.logger = get_logger()
        # /debug/profile runs one ad-hoc profiler at a time: a second
        # concurrent request is refused (409) rather than queued, so a
        # scrape storm cannot stack samplers.
        self._profile_lock = threading.Lock()
        outer = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def _respond(self, status, body, content_type, t0) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                if outer.logger.enabled:
                    outer.logger.event(
                        "http_request",
                        path=self.path,
                        status=status,
                        elapsed_ms=round(
                            (time.perf_counter() - t0) * 1e3, 3
                        ),
                    )

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                t0 = time.perf_counter()
                self._respond(*outer._route(self.path), t0)

            def do_POST(self) -> None:  # noqa: N802 (http.server API)
                t0 = time.perf_counter()
                length = int(self.headers.get("Content-Length") or 0)
                raw = self.rfile.read(length) if length else b""
                self._respond(*outer._route_post(self.path, raw), t0)

            def log_message(self, format, *args):  # noqa: A002
                pass  # request logging goes through the structured logger

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # -- routing -------------------------------------------------------

    def _route(self, path: str) -> tuple:
        split = urlsplit(path)
        route = split.path.rstrip("/") or "/"
        try:
            if route == "/metrics":
                # Age staleness_seconds_since_refresh at scrape time so
                # the gauge keeps moving between updates; refresh the
                # SLO gauges the same way (burn rates are windows over
                # *now*, not over the last recorded query).
                refresh = getattr(self.engine, "refresh_staleness", None)
                if refresh is not None:
                    refresh()
                refresh_slo = getattr(self.engine, "refresh_slo", None)
                if refresh_slo is not None:
                    refresh_slo()
                text = render_prometheus(self.metrics, self.namespace)
                return 200, text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE
            if route == "/healthz":
                return self._json(200, self._health())
            if route == "/query":
                return self._query(parse_qs(split.query))
            if route == "/slo":
                return self._slo()
            if route == "/debug/profile":
                return self._debug_profile(parse_qs(split.query))
            return self._json(
                404,
                {"error": f"no route {route}",
                 "routes": ["/metrics", "/healthz", "/query", "/slo",
                            "/debug/profile"]},
            )
        except Exception as exc:  # never kill the scrape loop
            return self._json(500, {"error": str(exc)})

    def _route_post(self, path: str, raw: bytes) -> tuple:
        route = urlsplit(path).path.rstrip("/") or "/"
        try:
            if route == "/admin/update":
                return self._admin_update(raw)
            return self._json(
                404,
                {"error": f"no POST route {route}",
                 "routes": ["/admin/update"]},
            )
        except Exception as exc:  # never kill the serve loop
            return self._json(500, {"error": str(exc)})

    def _admin_update(self, raw: bytes) -> tuple:
        apply_update = getattr(self.engine, "apply_update", None)
        if apply_update is None:
            return self._json(
                404,
                {"error": "attached engine has no streaming update surface"},
            )
        from repro.stream.delta import GraphDelta

        try:
            events = [
                json.loads(line)
                for line in raw.decode("utf-8").splitlines()
                if line.strip()
            ]
            delta = GraphDelta.from_events(events)
        except (ValueError, ReproError) as exc:
            return self._json(400, {"error": f"bad delta body: {exc}"})
        try:
            stats = apply_update(delta)
        except ReproError as exc:
            return self._json(400, {"error": str(exc)})
        return self._json(200, dict(stats.as_dict(), status="ok"))

    def _slo(self) -> tuple:
        """The SLO view alone, as its own Prometheus exposition.

        Renders a throwaway registry holding just the freshly published
        ``slo_*`` gauges, so the consumer never has to filter the full
        scrape — and the text still parses with ``parse_prometheus``.
        """
        refresh_slo = getattr(self.engine, "refresh_slo", None)
        if refresh_slo is not None:
            refresh_slo()
        tracker = getattr(self.engine, "slo", None)
        if tracker is None:
            return self._json(
                404, {"error": "no SLO tracker attached to this engine"}
            )
        registry = MetricsRegistry()
        tracker.publish(registry)
        text = render_prometheus(registry, self.namespace)
        return 200, text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE

    def _debug_profile(self, params: Dict[str, list]) -> tuple:
        """Profile this process for N seconds, return collapsed stacks.

        Samples the *parent* process (for a pooled server the workers'
        continuous profiles travel through ``repro diag`` instead); the
        request blocks for the profiling window, which is why ``seconds``
        is clamped to 30.
        """
        from repro.obs.profile import DEFAULT_HZ, SamplingProfiler

        try:
            seconds = float(params.get("seconds", ["5"])[0])
            hz = float(params.get("hz", [str(DEFAULT_HZ)])[0])
        except ValueError:
            return self._json(
                400, {"error": "seconds and hz must be numbers"}
            )
        if seconds <= 0 or hz <= 0:
            return self._json(
                400, {"error": "seconds and hz must be positive"}
            )
        seconds = min(seconds, 30.0)
        if not self._profile_lock.acquire(blocking=False):
            return self._json(
                409, {"error": "a profile is already running; retry later"}
            )
        try:
            profiler = SamplingProfiler(hz=hz)
            profiler.start()
            time.sleep(seconds)
            profiler.stop()
            text = profiler.collapsed()
        finally:
            self._profile_lock.release()
        return 200, text.encode("utf-8"), "text/plain; charset=utf-8"

    @staticmethod
    def _json(status: int, payload: Dict[str, Any]) -> tuple:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        return status, body, "application/json; charset=utf-8"

    def _health(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "status": "ok",
            "uptime_s": round(time.time() - self.started_at, 3),
        }
        if self.engine is not None:
            # An in-process engine exposes the index object; a ServePool
            # only knows the kind tag (its indexes live in the workers).
            index = getattr(self.engine, "index", None)
            payload["index_kind"] = (
                type(index).__name__ if index is not None
                else str(getattr(self.engine, "index_kind", "unknown"))
            )
            n_workers = getattr(self.engine, "n_workers", None)
            if n_workers is not None:
                payload["workers"] = int(n_workers)
            payload["queries_total"] = (
                self.metrics.counter("queries_total").value
            )
        payload.update(self.health_extra)
        return payload

    def _parse_query(self, params: Dict[str, list]):
        """Build a query object from HTTP parameters.

        Scalar fields pass straight through to
        :func:`~repro.core.querykind.query_from_json` (which coerces the
        strings); the compound ones use flat encodings —
        ``targets=1,2,3``, ``waypoints=x:y;x:y``, ``costs=node:cost,...``
        — since query strings have no nesting.
        """
        obj: Dict[str, Any] = {
            key: vals[0] for key, vals in params.items() if vals
        }
        if "targets" in obj:
            obj["targets"] = [t for t in str(obj["targets"]).split(",") if t]
        if "waypoints" in obj:
            pts = []
            for part in str(obj["waypoints"]).split(";"):
                part = part.strip()
                if not part:
                    continue
                xy = part.split(":")
                if len(xy) != 2:
                    raise ValueError(
                        f"waypoints must be x:y pairs separated by ';', "
                        f"got {part!r}"
                    )
                pts.append([xy[0], xy[1]])
            obj["waypoints"] = pts
        if "costs" in obj:
            pairs = []
            for part in str(obj["costs"]).split(","):
                part = part.strip()
                if not part:
                    continue
                nc = part.split(":")
                if len(nc) != 2:
                    raise ValueError(
                        f"costs must be node:cost pairs separated by ',', "
                        f"got {part!r}"
                    )
                pairs.append([nc[0], nc[1]])
            obj["costs"] = pairs
        return query_from_json(obj, self.default_k)

    def _query(self, params: Dict[str, list]) -> tuple:
        if self.engine is None:
            return self._json(
                404, {"error": "no engine attached; /query is disabled"}
            )
        try:
            query = self._parse_query(params)
        except (ReproError, ValueError, TypeError) as exc:
            return self._json(400, {"error": str(exc)})
        try:
            served = self.engine.query(query)
        except ReproError as exc:
            return self._json(400, {"error": str(exc)})
        payload: Dict[str, Any] = dict(query_to_row(query))
        payload.update(
            trace_id=served.trace_id,
            elapsed_ms=round(served.elapsed * 1e3, 3),
            cached=served.cached,
            fallback=served.fallback,
            error=served.error,
        )
        if served.result is not None:
            payload["seeds"] = [int(s) for s in served.result.seeds]
            payload["method"] = served.result.method
            if served.fallback or kind_of(query) == "heuristic":
                payload["heuristic_score"] = served.result.estimate
            else:
                payload["estimate"] = served.result.estimate
        waypoint_results = getattr(served, "waypoint_results", None)
        if waypoint_results:
            payload["waypoint_seeds"] = [
                [int(s) for s in r.seeds] for r in waypoint_results
            ]
            payload["waypoint_estimates"] = [
                r.estimate for r in waypoint_results
            ]
        return self._json(200 if served.ok else 500, payload)

    # -- lifecycle -----------------------------------------------------

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def start(self) -> "ObsHttpServer":
        """Serve on a daemon thread (for tests and embedding)."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-obs-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI ``serve-http`` mode)."""
        self._server.serve_forever()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
