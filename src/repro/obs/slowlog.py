"""The slow-query log: full context for queries over a latency threshold.

Aggregated histograms answer "how slow are we?"; the slow-query log
answers "why was *this* query slow?".  Queries whose end-to-end serving
latency exceeds ``threshold_ms`` are appended to a JSONL sink with
everything the engine knows about them: the query itself, the served
outcome, the index diagnostics (``QueryDiagnostics`` /
``MiaQueryDiagnostics``, dataclasses serialised field-by-field), and the
query's span tree when tracing is enabled.

The sink is size-capped: when the file passes ``max_bytes`` it is rolled
to ``<path>.1`` (replacing any previous ``.1``), so a long serve-http
run under sustained slowness keeps at most two generations on disk
instead of filling the volume.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from typing import Any, Dict, Mapping, Optional, Sequence

from repro.exceptions import ServeError
from repro.obs.trace import span_tree


def _jsonable(value: Any) -> Any:
    """Diagnostics fields as plain JSON types (best effort, never raises)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    try:
        return float(value)  # numpy scalars
    except (TypeError, ValueError):
        return repr(value)


#: Default rotation threshold: 16 MiB per generation, two generations.
DEFAULT_MAX_BYTES = 16 * 1024 * 1024


class SlowQueryLog:
    """An append-only JSONL sink for queries over the latency threshold.

    The threshold lives on the sink (not the engine) so one engine can be
    re-pointed at a stricter sink without reconstruction.  Appends are
    serialised by a lock — the engine may record from pool threads.
    When the file reaches ``max_bytes`` it rolls to ``<path>.1`` (one
    rotated generation is kept); ``max_bytes=0`` disables rotation.
    """

    def __init__(self, path, threshold_ms: float,
                 max_bytes: int = DEFAULT_MAX_BYTES):
        if threshold_ms < 0:
            raise ServeError(
                f"threshold_ms must be >= 0, got {threshold_ms}"
            )
        if max_bytes < 0:
            raise ServeError(f"max_bytes must be >= 0, got {max_bytes}")
        self.path = str(path)
        self.threshold_ms = float(threshold_ms)
        self.max_bytes = int(max_bytes)
        self.recorded = 0
        self.rotations = 0
        self._lock = threading.Lock()

    def should_record(self, elapsed_s: float) -> bool:
        return elapsed_s * 1e3 >= self.threshold_ms

    def record(
        self,
        trace_id: str,
        location,
        k: int,
        elapsed_s: float,
        cached: bool,
        fallback_reason: Optional[str],
        error: Optional[str],
        diagnostics: Any = None,
        spans: Optional[Sequence[Mapping[str, Any]]] = None,
    ) -> Dict[str, Any]:
        """Append one slow-query row; returns the row written."""
        row = {
            "ts": round(time.time(), 6),
            "trace_id": trace_id,
            "x": float(location[0]),
            "y": float(location[1]),
            "k": int(k),
            "elapsed_ms": round(elapsed_s * 1e3, 3),
            "threshold_ms": self.threshold_ms,
            "cached": bool(cached),
            "fallback": fallback_reason is not None,
            "fallback_reason": fallback_reason,
            "error": error,
            "diagnostics": _jsonable(diagnostics),
            "span_tree": span_tree(spans) if spans else None,
        }
        line = json.dumps(row, default=repr)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
                size = fh.tell()
            self.recorded += 1
            if self.max_bytes and size >= self.max_bytes:
                os.replace(self.path, self.path + ".1")
                self.rotations += 1
        return row
