"""The slow-query log: full context for queries over a latency threshold.

Aggregated histograms answer "how slow are we?"; the slow-query log
answers "why was *this* query slow?".  Queries whose end-to-end serving
latency exceeds ``threshold_ms`` are appended to a JSONL sink with
everything the engine knows about them: the query itself, the served
outcome, the index diagnostics (``QueryDiagnostics`` /
``MiaQueryDiagnostics``, dataclasses serialised field-by-field), and the
query's span tree when tracing is enabled.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from typing import Any, Dict, Mapping, Optional, Sequence

from repro.exceptions import ServeError
from repro.obs.trace import span_tree


def _jsonable(value: Any) -> Any:
    """Diagnostics fields as plain JSON types (best effort, never raises)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    try:
        return float(value)  # numpy scalars
    except (TypeError, ValueError):
        return repr(value)


class SlowQueryLog:
    """An append-only JSONL sink for queries over the latency threshold.

    The threshold lives on the sink (not the engine) so one engine can be
    re-pointed at a stricter sink without reconstruction.  Appends are
    serialised by a lock — the engine may record from pool threads.
    """

    def __init__(self, path, threshold_ms: float):
        if threshold_ms < 0:
            raise ServeError(
                f"threshold_ms must be >= 0, got {threshold_ms}"
            )
        self.path = str(path)
        self.threshold_ms = float(threshold_ms)
        self.recorded = 0
        self._lock = threading.Lock()

    def should_record(self, elapsed_s: float) -> bool:
        return elapsed_s * 1e3 >= self.threshold_ms

    def record(
        self,
        trace_id: str,
        location,
        k: int,
        elapsed_s: float,
        cached: bool,
        fallback_reason: Optional[str],
        error: Optional[str],
        diagnostics: Any = None,
        spans: Optional[Sequence[Mapping[str, Any]]] = None,
    ) -> Dict[str, Any]:
        """Append one slow-query row; returns the row written."""
        row = {
            "ts": round(time.time(), 6),
            "trace_id": trace_id,
            "x": float(location[0]),
            "y": float(location[1]),
            "k": int(k),
            "elapsed_ms": round(elapsed_s * 1e3, 3),
            "threshold_ms": self.threshold_ms,
            "cached": bool(cached),
            "fallback": fallback_reason is not None,
            "fallback_reason": fallback_reason,
            "error": error,
            "diagnostics": _jsonable(diagnostics),
            "span_tree": span_tree(spans) if spans else None,
        }
        line = json.dumps(row, default=repr)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
            self.recorded += 1
        return row
