"""Structured JSON logging with a stable event schema.

One event per line, one JSON object per event — greppable, ingestible,
and diffable.  Every event carries ``ts`` (unix seconds), ``event`` (a
name from :data:`EVENTS`), and event-specific fields; unknown event
names are rejected in tests but tolerated at runtime (forward
compatibility beats a crashed server).

Event schema (``event`` -> fields; all optional unless noted):

``query_start``
    ``trace_id``, ``x``, ``y``, ``k``
``query_end``
    ``trace_id``, ``elapsed_ms``, ``cached``, ``fallback``, ``error``,
    ``method``, ``estimate``
``cache_hit``
    ``trace_id``, ``cache`` (``"result"`` / ``"index"``)
``fallback``
    ``trace_id``, ``reason``, ``method``
``slow_query``
    ``trace_id``, ``elapsed_ms``, ``threshold_ms``, ``sink``
``build_start`` / ``build_end``
    ``phase``, ``trace_id``; ``build_end`` adds ``seconds``
``build_progress``
    ``phase``, ``done``, ``total``, ``unit``, ``rate_per_s``, ``eta_s``
``index_update``
    ``kind``, ``generation``, ``dirty_nodes``, ``samples_retired``,
    ``samples_added``, ``trees_rebuilt``, ``seconds``
``serve_start`` / ``serve_end``
    server/batch lifecycle (``endpoint``/counts)
``http_request``
    ``path``, ``status``, ``elapsed_ms``
``error``
    ``message``, plus whatever context the call site has

The default logger is the no-op :data:`NULL_LOGGER`; the CLI activates a
:class:`JsonLogger` on stderr when ``--log-json`` is passed (stdout stays
reserved for command output).
"""

from __future__ import annotations

import contextvars
import json
import sys
import threading
import time
from typing import IO, Optional

#: The stable event vocabulary (see module docstring for fields).
EVENTS = frozenset({
    "query_start", "query_end", "cache_hit", "fallback", "slow_query",
    "build_start", "build_progress", "build_end", "index_update",
    "serve_start", "serve_end", "http_request", "error",
})

_current_logger: contextvars.ContextVar[Optional["JsonLogger"]] = (
    contextvars.ContextVar("repro_current_logger", default=None)
)


class JsonLogger:
    """Writes one JSON object per event line to a text stream.

    Thread-safe (one lock per logger); non-serialisable field values are
    degraded to ``repr`` rather than raising mid-request.
    """

    enabled = True

    def __init__(self, stream: Optional[IO[str]] = None):
        self._stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()

    def event(self, event: str, **fields) -> None:
        record = {"ts": round(time.time(), 6), "event": event}
        record.update(fields)
        try:
            line = json.dumps(record, sort_keys=False, default=repr)
        except (TypeError, ValueError):
            line = json.dumps({"ts": record["ts"], "event": event,
                               "error": "unserialisable log record"})
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()


class NullLogger:
    """The disabled logger: ``event`` is a no-op."""

    enabled = False

    def event(self, event: str, **fields) -> None:
        pass


NULL_LOGGER = NullLogger()


def get_logger() -> "JsonLogger | NullLogger":
    """The ambient structured logger (:data:`NULL_LOGGER` by default)."""
    lg = _current_logger.get()
    return lg if lg is not None else NULL_LOGGER


class use_logger:
    """``with use_logger(logger): ...`` — activate an ambient logger."""

    def __init__(self, logger: "JsonLogger | NullLogger"):
        self._logger = logger
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> "JsonLogger | NullLogger":
        self._token = _current_logger.set(
            self._logger if self._logger.enabled else None  # type: ignore[arg-type]
        )
        return self._logger

    def __exit__(self, *exc_info) -> bool:
        if self._token is not None:
            _current_logger.reset(self._token)
        return False
