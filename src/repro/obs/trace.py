"""A dependency-free span tracer for builds and queries.

The serving and build layers answer "where did the time go?" with
*spans*: named, timed intervals carrying a trace id, a parent link, and
free-form attributes.  A :class:`Tracer` collects finished spans; its
:meth:`Tracer.export` emits a JSON document (see
``docs/example-trace.json``) that groups one build or one query per
trace.

Design constraints, in order:

* **near-zero disabled cost** — the default tracer is the module
  singleton :data:`NULL_TRACER`, whose :meth:`NullTracer.span` returns a
  pre-allocated no-op context manager: the hot serving path pays one
  attribute load and one method call per query when tracing is off
  (measured in ``benchmarks/test_selection_kernels.py``);
* **worker-pool propagation** — spans cannot cross process boundaries as
  objects, so a parent serialises a :func:`span_context` (trace id +
  span id), ships it with the task, and the worker returns a plain span
  *dict* built by :func:`worker_span` that the parent re-parents with
  :meth:`Tracer.adopt`.  Span timestamps come from :func:`wall_now` — a
  wall-clock anchor taken once at import plus a monotonic
  (``perf_counter``) offset — so an NTP step mid-batch cannot skew span
  durations or scramble the ordering of adopted worker spans against the
  parent's timeline;
* **thread-safe collection** — the serving engine traces from pool
  threads; the finished-span list takes a lock per append;
* **bounded retention** — finished spans live in a ring buffer capped at
  ``max_finished`` (default :data:`DEFAULT_MAX_FINISHED`): a long
  ``serve-http`` run keeps the most recent spans instead of growing
  without limit, and :attr:`Tracer.spans_dropped` counts what the cap
  evicted (exported as the ``spans_dropped_total`` gauge at scrape
  time).

Nesting uses a :class:`contextvars.ContextVar`, so spans opened in
``async`` code or in the thread that opened the parent nest correctly;
threads start with no current span and therefore open new roots, which
is exactly what per-query serving wants.

The sampling profiler (:mod:`repro.obs.profile`) cannot read another
thread's contextvars, so while a profiler is running the span
context managers additionally maintain a thread-id -> open-span-name
stack (:func:`thread_span_names`); the registry costs one global int
check per span when no profiler is active.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.env import runtime_info

#: Schema version stamped on every export.
TRACE_SCHEMA_VERSION = 1

#: Default finished-span retention cap (ring buffer; oldest evicted).
DEFAULT_MAX_FINISHED = 20_000

SpanContext = Tuple[str, str]  # (trace_id, span_id)

_current_span: contextvars.ContextVar[Optional["Span"]] = (
    contextvars.ContextVar("repro_current_span", default=None)
)
_current_tracer: contextvars.ContextVar[Optional["Tracer"]] = (
    contextvars.ContextVar("repro_current_tracer", default=None)
)


# Wall-clock anchor taken once at import; timestamps derive from it via
# monotonic perf_counter offsets so a clock step (NTP, manual set) after
# import cannot skew durations or reorder spans recorded in one process.
_ANCHOR_UNIX = time.time()
_ANCHOR_PERF = time.perf_counter()


# ---------------------------------------------------------------------
# Thread -> open-span registry (profiler span attribution)
# ---------------------------------------------------------------------
#
# contextvars are invisible from other threads, so the sampling profiler
# (repro.obs.profile) attributes stack samples through this registry
# instead: while at least one profiler is running, the span context
# managers push/pop the span name onto a per-thread stack.  List
# append/pop are atomic under the GIL, so the sampler thread reading
# stack[-1] needs no lock; when no profiler is active the registry costs
# a single falsy int check per span.

_THREAD_SPAN_STACKS: Dict[int, List[str]] = {}
_span_tracking = 0  # count of profilers currently asking for attribution


def enable_span_tracking() -> None:
    """Start maintaining the thread -> span-name stacks (refcounted)."""
    global _span_tracking
    _span_tracking += 1


def disable_span_tracking() -> None:
    """Stop maintaining the stacks once no profiler needs them."""
    global _span_tracking
    _span_tracking = max(0, _span_tracking - 1)
    if _span_tracking == 0:
        _THREAD_SPAN_STACKS.clear()


def thread_span_names() -> Dict[int, str]:
    """Snapshot of ``{thread_ident: innermost open span name}``.

    Only meaningful while span tracking is enabled; threads with no open
    span are absent.
    """
    out: Dict[int, str] = {}
    for tid, stack in list(_THREAD_SPAN_STACKS.items()):
        try:
            out[tid] = stack[-1]
        except IndexError:
            continue
    return out


def wall_now() -> float:
    """Monotonic-derived wall-clock seconds (anchor + perf_counter offset).

    Use this instead of ``time.time()`` for span timestamps: successive
    calls never go backwards, and durations computed from two calls are
    exactly ``perf_counter`` differences.
    """
    return _ANCHOR_UNIX + (time.perf_counter() - _ANCHOR_PERF)


def new_id(n_bytes: int = 8) -> str:
    """A random lowercase-hex id (``2 * n_bytes`` chars)."""
    return os.urandom(n_bytes).hex()


def new_trace_id() -> str:
    """A fresh 16-byte trace id, usable with any tracer (or none)."""
    return new_id(16)


class Span:
    """One named, timed interval of a trace.

    Spans are created by :meth:`Tracer.span` (as context managers) or
    :meth:`Tracer.start_span` (ended explicitly); attributes may be added
    while the span is open via :meth:`set_attribute`.
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "attributes",
        "start_unix", "duration_ms", "_t0", "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        attributes: Optional[Mapping[str, Any]] = None,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_id()
        self.parent_id = parent_id
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.start_unix = wall_now()
        self.duration_ms: Optional[float] = None
        self._t0 = time.perf_counter()
        self._tracer = tracer

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def end(self) -> None:
        if self.duration_ms is None:
            self.duration_ms = (time.perf_counter() - self._t0) * 1e3
            self._tracer._finish(self)

    @property
    def context(self) -> SpanContext:
        return (self.trace_id, self.span_id)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_unix,
            "duration_ms": self.duration_ms,
            "attributes": self.attributes,
        }


class _SpanHandle:
    """Context manager that opens a span and maintains the nesting stack."""

    __slots__ = ("_span", "_token", "_tracked")

    def __init__(self, span: Span):
        self._span = span
        self._token: Optional[contextvars.Token] = None
        self._tracked = False

    def __enter__(self) -> Span:
        self._token = _current_span.set(self._span)
        if _span_tracking:
            _THREAD_SPAN_STACKS.setdefault(
                threading.get_ident(), []
            ).append(self._span.name)
            self._tracked = True
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.set_attribute("error", f"{exc_type.__name__}: {exc}")
        self._span.end()
        if self._tracked:
            # A profiler stopping mid-span may have cleared the registry;
            # pop defensively rather than assume our frame survived.
            tid = threading.get_ident()
            stack = _THREAD_SPAN_STACKS.get(tid)
            if stack:
                stack.pop()
                if not stack:
                    _THREAD_SPAN_STACKS.pop(tid, None)
        if self._token is not None:
            _current_span.reset(self._token)
        return False


class _NullSpan:
    """The shared do-nothing span the disabled path hands out."""

    __slots__ = ()
    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""
    attributes: Dict[str, Any] = {}
    duration_ms = None

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def end(self) -> None:
        pass

    @property
    def context(self) -> None:  # no context to propagate when disabled
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans for one process; export as a JSON trace document.

    ``max_finished`` caps the finished-span ring buffer: beyond the cap
    the oldest spans are evicted and :attr:`spans_dropped` counts them,
    so an always-on tracer (a ``serve-http`` sidecar, a profiling worker)
    holds bounded memory no matter how long it runs.
    """

    enabled = True

    def __init__(
        self, service: str = "repro",
        max_finished: int = DEFAULT_MAX_FINISHED,
    ):
        if max_finished < 1:
            raise ValueError(
                f"max_finished must be >= 1, got {max_finished}"
            )
        self.service = service
        self.max_finished = int(max_finished)
        self.spans_dropped = 0
        self._lock = threading.Lock()
        self._finished: Deque[Dict[str, Any]] = deque(maxlen=self.max_finished)

    def _extend(self, rows: List[Dict[str, Any]]) -> None:
        """Append finished-span dicts, accounting for ring eviction.

        Caller must hold ``self._lock``.  The deque's ``maxlen`` does the
        actual eviction; this only counts what fell off the left edge.
        """
        overflow = len(self._finished) + len(rows) - self.max_finished
        if overflow > 0:
            self.spans_dropped += overflow
        self._finished.extend(rows)

    # -- span creation -------------------------------------------------

    def span(
        self,
        name: str,
        attributes: Optional[Mapping[str, Any]] = None,
        trace_id: Optional[str] = None,
    ) -> _SpanHandle:
        """A context manager opening a child of the current span.

        With no current span (or an explicit ``trace_id``) a new root is
        opened; ``trace_id`` pins the id so callers can stamp results
        before the span closes.
        """
        return _SpanHandle(self.start_span(name, attributes, trace_id))

    def start_span(
        self,
        name: str,
        attributes: Optional[Mapping[str, Any]] = None,
        trace_id: Optional[str] = None,
    ) -> Span:
        """Open a span without entering it (caller must ``end()`` it).

        Does not touch the nesting stack — children opened while this
        span is live still parent under the *context-manager* stack.
        """
        parent = _current_span.get()
        if trace_id is not None:
            tid, pid = trace_id, (
                parent.span_id
                if parent is not None and parent.trace_id == trace_id
                else None
            )
        elif parent is not None:
            tid, pid = parent.trace_id, parent.span_id
        else:
            tid, pid = new_trace_id(), None
        return Span(self, name, tid, pid, attributes)

    def _finish(self, span: Span) -> None:
        with self._lock:
            self._extend([span.to_dict()])

    # -- worker-span adoption ------------------------------------------

    def adopt(self, spans: Sequence[Optional[Mapping[str, Any]]]) -> None:
        """Accept finished span dicts produced in worker processes.

        Workers build spans with :func:`worker_span` against a
        :func:`span_context` the parent shipped with the task; the dicts
        already carry the right trace id and parent id, so adoption is
        just collection (``None`` entries — untraced chunks — are
        skipped).
        """
        cleaned = [dict(s) for s in spans if s]
        if not cleaned:
            return
        with self._lock:
            self._extend(cleaned)

    def record_stages(
        self,
        parent: Span,
        stages: Mapping[str, float],
        skip: Tuple[str, ...] = ("total",),
    ) -> None:
        """Retrospective child spans from a per-stage seconds breakdown.

        The selection kernels report :class:`SelectionTimings`-style
        ``{stage: seconds}`` dicts after the fact; this lays the stages
        out sequentially from the parent's start so the exported tree
        shows them as children.  Stage spans are marked
        ``synthetic: true`` — their start offsets are reconstructed, only
        their durations are measured.
        """
        offset = 0.0
        rows = []
        for stage, seconds in stages.items():
            if stage in skip:
                continue
            ms = float(seconds) * 1e3
            rows.append({
                "name": f"stage.{stage}",
                "trace_id": parent.trace_id,
                "span_id": new_id(),
                "parent_id": parent.span_id,
                "start_unix": parent.start_unix + offset / 1e3,
                "duration_ms": ms,
                "attributes": {"synthetic": True},
            })
            offset += ms
        with self._lock:
            self._extend(rows)

    # -- output --------------------------------------------------------

    @property
    def finished_spans(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._finished)

    def spans_for_trace(self, trace_id: str) -> List[Dict[str, Any]]:
        with self._lock:
            return [s for s in self._finished if s["trace_id"] == trace_id]

    def export(self) -> Dict[str, Any]:
        """The full trace document: environment + every finished span."""
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "service": self.service,
            "environment": runtime_info(),
            "spans_dropped": self.spans_dropped,
            "spans": self.finished_spans,
        }

    def export_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.export(), fh, indent=2, sort_keys=False)
            fh.write("\n")


class NullTracer:
    """The disabled tracer: every operation is a cheap no-op."""

    enabled = False
    service = "repro"
    spans_dropped = 0
    max_finished = 0

    def span(self, name, attributes=None, trace_id=None) -> _NullSpan:
        return NULL_SPAN

    def start_span(self, name, attributes=None, trace_id=None) -> _NullSpan:
        return NULL_SPAN

    def adopt(self, spans) -> None:
        pass

    def record_stages(self, parent, stages, skip=("total",)) -> None:
        pass

    @property
    def finished_spans(self) -> List[Dict[str, Any]]:
        return []

    def spans_for_trace(self, trace_id: str) -> List[Dict[str, Any]]:
        return []


NULL_TRACER = NullTracer()


# ---------------------------------------------------------------------
# Ambient tracer
# ---------------------------------------------------------------------

def get_tracer() -> "Tracer | NullTracer":
    """The ambient tracer (:data:`NULL_TRACER` unless one is activated).

    Build code (``RisDaIndex._build``, ``MiaDaIndex``) reads the ambient
    tracer instead of threading a parameter through every constructor;
    the CLI activates a real tracer around a build when ``--trace-out``
    is passed.
    """
    t = _current_tracer.get()
    return t if t is not None else NULL_TRACER


class use_tracer:
    """``with use_tracer(tracer): ...`` — activate an ambient tracer."""

    def __init__(self, tracer: "Tracer | NullTracer"):
        self._tracer = tracer
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> "Tracer | NullTracer":
        self._token = _current_tracer.set(
            self._tracer if self._tracer.enabled else None  # type: ignore[arg-type]
        )
        return self._tracer

    def __exit__(self, *exc_info) -> bool:
        if self._token is not None:
            _current_tracer.reset(self._token)
        return False


# ---------------------------------------------------------------------
# Worker-side helpers (picklable plain data only)
# ---------------------------------------------------------------------

def span_context(span: "Span | _NullSpan") -> Optional[SpanContext]:
    """The picklable ``(trace_id, span_id)`` pair to ship to a worker.

    ``None`` when tracing is disabled — workers then skip span bookkeeping
    entirely.
    """
    return span.context


def worker_span(
    name: str,
    ctx: Optional[SpanContext],
    start_unix: float,
    duration_ms: float,
    attributes: Optional[Mapping[str, Any]] = None,
) -> Optional[Dict[str, Any]]:
    """A finished span *dict* created inside a worker process.

    Returns ``None`` when ``ctx`` is ``None`` (untraced), so call sites
    can pass the result straight back for :meth:`Tracer.adopt`.
    """
    if ctx is None:
        return None
    attrs = dict(attributes or {})
    attrs.setdefault("pid", os.getpid())
    attrs.setdefault("worker", True)
    return {
        "name": name,
        "trace_id": ctx[0],
        "span_id": new_id(),
        "parent_id": ctx[1],
        "start_unix": start_unix,
        "duration_ms": duration_ms,
        "attributes": attrs,
    }


def span_tree(spans: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Nest a flat span list into ``children`` trees (roots returned).

    Orphans (parent id not in the list — e.g. a filtered export) are
    promoted to roots rather than dropped, so partial traces still render.
    """
    nodes: Dict[str, Dict[str, Any]] = {}
    for s in spans:
        node = dict(s)
        node["children"] = []
        nodes[node["span_id"]] = node
    roots: List[Dict[str, Any]] = []
    for node in nodes.values():
        parent = nodes.get(node.get("parent_id") or "")
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda c: c["start_unix"])
    roots.sort(key=lambda c: c["start_unix"])
    return roots
