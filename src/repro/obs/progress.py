"""Build-telemetry heartbeats for long offline phases.

RR-corpus growth and MIIA construction can run for minutes; a
:class:`Heartbeat` turns their inner loops into periodic
``build_progress`` events (units done, rate, ETA) on the ambient
structured logger without the loops knowing anything about logging.
When the ambient logger is the null logger the heartbeat short-circuits
to two attribute loads per :meth:`advance` call.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.obs.log import JsonLogger, NullLogger, get_logger

#: Seconds between build_progress events (first event after one interval).
DEFAULT_INTERVAL_S = 1.0


class Heartbeat:
    """Emits rate/ETA ``build_progress`` events for one build phase.

    ``total`` may be ``None`` for open-ended phases (no ETA is emitted
    then).  ``advance(n)`` is the only hot call; everything else happens
    at most once per ``interval_s``.
    """

    def __init__(
        self,
        phase: str,
        total: Optional[int],
        unit: str = "items",
        interval_s: float = DEFAULT_INTERVAL_S,
        logger: "JsonLogger | NullLogger | None" = None,
    ):
        self.logger = logger if logger is not None else get_logger()
        self.enabled = self.logger.enabled
        self.phase = phase
        self.total = total
        self.unit = unit
        self.interval_s = interval_s
        self.done = 0
        self._start = time.perf_counter()
        self._last_emit = self._start

    def advance(self, n: int = 1) -> None:
        self.done += n
        if not self.enabled:
            return
        now = time.perf_counter()
        if now - self._last_emit >= self.interval_s:
            self._last_emit = now
            self._emit(now)

    def finish(self) -> None:
        """Emit the final progress event (always, when enabled)."""
        if self.enabled:
            self._emit(time.perf_counter())

    def _emit(self, now: float) -> None:
        elapsed = max(now - self._start, 1e-9)
        rate = self.done / elapsed
        fields = {
            "phase": self.phase,
            "done": self.done,
            "unit": self.unit,
            "rate_per_s": round(rate, 3),
            "elapsed_s": round(elapsed, 3),
        }
        if self.total is not None:
            fields["total"] = self.total
            remaining = max(self.total - self.done, 0)
            fields["eta_s"] = (
                round(remaining / rate, 3) if rate > 0 else None
            )
        self.logger.event("build_progress", **fields)
