"""An in-process statistical profiler with span attribution.

Stopwatch instrumentation (``SelectionTimings``, stage histograms) tells
us how long each *stage* takes; after the kernel work those stages are
small enough that the next question is "where *inside* a stage does the
time go?" — answered here without any dependency: a background daemon
thread samples every thread's Python stack via
:func:`sys._current_frames` at a configurable rate and counts collapsed
stacks, the text format flamegraph tooling consumes directly
(``frame;frame;frame count`` per line).

Span attribution — the sampler cannot read another thread's
contextvars, so :mod:`repro.obs.trace` maintains a thread-id ->
open-span-name stack while a profiler is running (see
:func:`repro.obs.trace.thread_span_names`); each sample of a thread
with an open span is prefixed with ``span:<name>``, which is how a
flamegraph separates ``serve.query`` time from ``ris.build`` time even
when they run the same numpy kernels.  The registry costs one global
int check per span when no profiler runs, and the profiler itself is
**observation-only**: turning it on cannot change any selection output
(pinned by ``tests/obs/test_profile.py``).

Profiles are plain data (:meth:`SamplingProfiler.dump`), so worker
processes can ship theirs to a parent for merging
(:func:`merge_profile_dumps`) the same way worker metrics merge through
``MetricsRegistry.merge_dump``.

:func:`allocation_snapshot` is the opt-in memory-side sibling: a
``tracemalloc`` diff around an index build, reporting the top
allocation sites — too slow for serving paths, invaluable for "why does
this build need 9 GB".
"""

from __future__ import annotations

import sys
import threading
import time
import tracemalloc
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.trace import (
    disable_span_tracking,
    enable_span_tracking,
    thread_span_names,
)

#: Default sampling rate.  A prime, so the sampler cannot phase-lock
#: with periodic work that happens to run at a round frequency.
DEFAULT_HZ = 101

#: Deepest stack recorded per sample; frames above the cap are dropped
#: from the *root* end (the leaf is what self-time attribution needs).
DEFAULT_MAX_STACK = 64


def _frame_label(frame) -> str:
    """``module:qualname`` for one frame (filename when module unknown)."""
    code = frame.f_code
    module = frame.f_globals.get("__name__")
    if not module:
        module = code.co_filename.rsplit("/", 1)[-1]
    func = getattr(code, "co_qualname", None) or code.co_name
    return f"{module}:{func}"


class SamplingProfiler:
    """Samples every thread's stack from a background thread.

    ``hz`` is the target sampling rate; the actual rate is whatever the
    host delivers (wall-clock duration and sample count are both
    tracked, so seconds estimates use the *measured* rate).  The
    profiler's own sampling thread is excluded from samples.  ``start``
    / ``stop`` are idempotent; a stopped profiler keeps its counts, and
    ``start`` after ``stop`` resumes accumulating into them.
    """

    def __init__(self, hz: float = DEFAULT_HZ,
                 max_stack: int = DEFAULT_MAX_STACK):
        if hz <= 0:
            raise ValueError(f"hz must be positive, got {hz}")
        if max_stack < 1:
            raise ValueError(f"max_stack must be >= 1, got {max_stack}")
        self.hz = float(hz)
        self.max_stack = int(max_stack)
        #: ``collapsed-stack-line -> count`` (no trailing count in key).
        self._counts: Dict[str, int] = {}
        #: ``span-name -> samples`` (one per sampled thread per tick).
        self._span_samples: Dict[str, int] = {}
        self.sample_count = 0  # sampling ticks taken
        self.thread_samples = 0  # (tick, thread) pairs recorded
        self._active_seconds = 0.0  # wall seconds spent running
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self.running:
            return self
        enable_span_tracking()
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop_event.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        disable_span_tracking()
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> bool:
        self.stop()
        return False

    # -- sampling ------------------------------------------------------

    def _run(self) -> None:
        own = threading.get_ident()
        interval = 1.0 / self.hz
        t0 = time.perf_counter()
        try:
            while not self._stop_event.wait(interval):
                self._sample(own)
        finally:
            self._active_seconds += time.perf_counter() - t0

    def _sample(self, skip_ident: int) -> None:
        frames = sys._current_frames()
        spans = thread_span_names()
        rows: List[Tuple[str, Optional[str]]] = []
        for tid, frame in frames.items():
            if tid == skip_ident:
                continue
            stack: List[str] = []
            f = frame
            while f is not None and len(stack) < self.max_stack:
                stack.append(_frame_label(f))
                f = f.f_back
            if not stack:
                continue
            stack.reverse()  # root first, collapsed-stack order
            span = spans.get(tid)
            prefix = [f"span:{span}"] if span else []
            rows.append((";".join(prefix + stack), span))
        del frames  # drop frame references promptly
        with self._lock:
            self.sample_count += 1
            for key, span in rows:
                self.thread_samples += 1
                self._counts[key] = self._counts.get(key, 0) + 1
                if span:
                    self._span_samples[span] = (
                        self._span_samples.get(span, 0) + 1
                    )

    # -- output --------------------------------------------------------

    @property
    def duration_s(self) -> float:
        """Wall seconds of completed sampling runs."""
        return self._active_seconds

    def seconds_per_sample(self) -> float:
        """Measured seconds represented by one sampling tick."""
        if self.sample_count == 0:
            return 1.0 / self.hz
        return self._active_seconds / self.sample_count or (1.0 / self.hz)

    def dump(self) -> Dict[str, Any]:
        """Plain-data snapshot, mergeable across processes."""
        with self._lock:
            return {
                "hz": self.hz,
                "sample_count": self.sample_count,
                "thread_samples": self.thread_samples,
                "duration_s": self._active_seconds,
                "counts": dict(self._counts),
                "span_samples": dict(self._span_samples),
            }

    def merge(self, dump: Mapping[str, Any]) -> None:
        """Fold another profiler's :meth:`dump` into this one's counts.

        Used by the CLI to combine the parent profile with merged worker
        profiles before export.  Stop the profiler first — merging while
        sampling would race the sampler's own updates.
        """
        if self.running:
            raise RuntimeError("stop the profiler before merging dumps")
        with self._lock:
            self.sample_count += int(dump.get("sample_count", 0))
            self.thread_samples += int(dump.get("thread_samples", 0))
            self._active_seconds = max(
                self._active_seconds, float(dump.get("duration_s", 0.0))
            )
            for key, count in dump.get("counts", {}).items():
                self._counts[key] = self._counts.get(key, 0) + int(count)
            for span, count in dump.get("span_samples", {}).items():
                self._span_samples[span] = (
                    self._span_samples.get(span, 0) + int(count)
                )

    def collapsed(self) -> str:
        """The profile as collapsed-stack text (flamegraph-ready)."""
        return collapsed_text(self.dump())

    def span_table(self) -> List[Dict[str, Any]]:
        """Per-span sample counts and estimated seconds, hottest first."""
        return span_table(self.dump())

    def report(self) -> str:
        """Human-readable self-time table (spans, then leaf functions)."""
        return profile_report(self.dump())


# ---------------------------------------------------------------------
# Plain-data profile operations (work on dumps, so they also serve
# merged multi-process profiles)
# ---------------------------------------------------------------------

def merge_profile_dumps(
    dumps: Iterable[Optional[Mapping[str, Any]]],
) -> Dict[str, Any]:
    """Sum several profiler dumps (``None`` entries skipped).

    Worker processes profile independently; the parent merges their
    dumps with its own for one bundle-wide flamegraph.  ``hz`` is taken
    from the first dump (workers share the parent's configuration).
    """
    merged: Dict[str, Any] = {
        "hz": None, "sample_count": 0, "thread_samples": 0,
        "duration_s": 0.0, "counts": {}, "span_samples": {},
    }
    for dump in dumps:
        if not dump:
            continue
        if merged["hz"] is None:
            merged["hz"] = dump.get("hz")
        merged["sample_count"] += int(dump.get("sample_count", 0))
        merged["thread_samples"] += int(dump.get("thread_samples", 0))
        merged["duration_s"] = max(
            merged["duration_s"], float(dump.get("duration_s", 0.0))
        )
        for key, count in dump.get("counts", {}).items():
            merged["counts"][key] = merged["counts"].get(key, 0) + int(count)
        for span, count in dump.get("span_samples", {}).items():
            merged["span_samples"][span] = (
                merged["span_samples"].get(span, 0) + int(count)
            )
    if merged["hz"] is None:
        merged["hz"] = DEFAULT_HZ
    return merged


def collapsed_text(dump: Mapping[str, Any]) -> str:
    """Collapsed-stack lines (``stack count``), heaviest stack first."""
    counts = dump.get("counts", {})
    lines = [
        f"{key} {count}"
        for key, count in sorted(
            counts.items(), key=lambda kv: (-kv[1], kv[0])
        )
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def _seconds_per_sample(dump: Mapping[str, Any]) -> float:
    ticks = int(dump.get("sample_count", 0))
    duration = float(dump.get("duration_s", 0.0))
    if ticks > 0 and duration > 0:
        return duration / ticks
    hz = float(dump.get("hz") or DEFAULT_HZ)
    return 1.0 / hz


def span_table(dump: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Per-span self-time rows from a dump, hottest first."""
    per = _seconds_per_sample(dump)
    total = int(dump.get("thread_samples", 0))
    rows = []
    for span, count in sorted(
        dump.get("span_samples", {}).items(), key=lambda kv: (-kv[1], kv[0])
    ):
        rows.append({
            "span": span,
            "samples": int(count),
            "seconds": count * per,
            "share": count / total if total else 0.0,
        })
    return rows


def _leaf_table(dump: Mapping[str, Any]) -> List[Tuple[str, int]]:
    """Self-time by leaf frame (the frame actually on-CPU per sample)."""
    leaves: Dict[str, int] = {}
    for key, count in dump.get("counts", {}).items():
        leaf = key.rsplit(";", 1)[-1]
        leaves[leaf] = leaves.get(leaf, 0) + int(count)
    return sorted(leaves.items(), key=lambda kv: (-kv[1], kv[0]))


def profile_report(dump: Mapping[str, Any], top: int = 20) -> str:
    """Text report: sampling stats, per-span table, leaf self-time."""
    per = _seconds_per_sample(dump)
    lines = [
        "== profile ==",
        f"ticks={dump.get('sample_count', 0)} "
        f"thread_samples={dump.get('thread_samples', 0)} "
        f"duration_s={float(dump.get('duration_s', 0.0)):.2f} "
        f"hz={dump.get('hz')}",
    ]
    spans = span_table(dump)
    if spans:
        lines.append("spans (self time attributed to innermost span):")
        width = max(len(r["span"]) for r in spans)
        for r in spans:
            lines.append(
                f"  {r['span']:<{width}}  {r['samples']:>7} samples  "
                f"~{r['seconds']:.3f}s  {r['share']:6.1%}"
            )
    leaves = _leaf_table(dump)[:top]
    if leaves:
        lines.append(f"hottest frames (leaf self time, top {len(leaves)}):")
        width = max(len(name) for name, _ in leaves)
        for name, count in leaves:
            lines.append(
                f"  {name:<{width}}  {count:>7} samples  ~{count * per:.3f}s"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------
# tracemalloc allocation snapshots (opt-in, build paths only)
# ---------------------------------------------------------------------

class AllocationReport:
    """Filled in by :func:`allocation_snapshot` when its block exits."""

    def __init__(self) -> None:
        self.top_stats: List[Any] = []
        self.current_bytes = 0
        self.peak_bytes = 0

    def rows(self) -> List[Dict[str, Any]]:
        out = []
        for stat in self.top_stats:
            frame = stat.traceback[0] if len(stat.traceback) else None
            out.append({
                "site": f"{frame.filename}:{frame.lineno}" if frame else "?",
                "size_kb": stat.size / 1024.0,
                "size_diff_kb": stat.size_diff / 1024.0,
                "count": stat.count,
            })
        return out

    def report(self) -> str:
        lines = [
            "== allocations ==",
            f"current={self.current_bytes / 1e6:.1f}MB "
            f"peak={self.peak_bytes / 1e6:.1f}MB",
        ]
        for row in self.rows():
            lines.append(
                f"  {row['site']}  +{row['size_diff_kb']:.0f}KB "
                f"(total {row['size_kb']:.0f}KB, {row['count']} blocks)"
            )
        return "\n".join(lines)


@contextmanager
def allocation_snapshot(top: int = 20, group_by: str = "lineno"):
    """``tracemalloc`` diff around a block — opt-in, build paths only.

    Yields an :class:`AllocationReport` that is populated when the block
    exits: the ``top`` allocation sites by size delta, plus the traced
    current/peak byte counts.  Tracing is started only if not already
    running (and stopped again only in that case), so nesting and
    pre-enabled tracing both behave.
    """
    started_here = not tracemalloc.is_tracing()
    if started_here:
        tracemalloc.start()
    before = tracemalloc.take_snapshot()
    holder = AllocationReport()
    try:
        yield holder
    finally:
        after = tracemalloc.take_snapshot()
        holder.current_bytes, holder.peak_bytes = (
            tracemalloc.get_traced_memory()
        )
        holder.top_stats = after.compare_to(before, group_by)[:top]
        if started_here:
            tracemalloc.stop()
