"""Rolling-window SLO tracking: burn rates over 1m/5m/30m windows.

The cumulative histograms in :mod:`repro.serve.metrics` answer "what has
latency looked like since the process started" — useless for admission
control, which needs "what does latency look like *right now*".  This
module adds the recency-aware layer: a :class:`SloTracker` records every
query outcome into per-second aggregate buckets arranged in a ring, and
computes, over sliding windows, the **burn rate** of each objective —

    ``burn = observed_bad_fraction / error_budget``

where ``error_budget = 1 - target``.  Burn 1.0 means the objective is
being consumed exactly as fast as it allows; burn 10 on a 99.9% target
means 1% of queries are bad.  Multi-window burn (the standard SRE
pattern) makes the signal robust: :meth:`SloTracker.should_shed` fires
only when both a short window (fast reaction) *and* a longer window
(flap suppression) exceed the configured threshold — this is the hook
the ROADMAP's admission controller will consume.

Design notes:

- Buckets are keyed by *absolute epoch second* (slot index is
  ``second % horizon``, and each slot remembers which second it holds,
  so stale slots are detected and reset lazily — no sweeper thread).
  Recording is O(1); reading a window is O(window seconds).
- Because buckets are keyed by absolute seconds, trackers **merge** by
  summing matching-second slots — exactly how worker metric registries
  merge through ``merge_dump``.  The serving pool rebuilds a merged
  tracker from worker dumps at scrape time, so repeated scrapes never
  double-count.
- Clock regressions (ntp step, frozen test clocks) cannot corrupt the
  ring: a slot holding a *future* second relative to ``now`` is simply
  skipped by reads and overwritten by the next write that lands on it.
- Staleness (seconds since the index last refreshed) is a level, not an
  event, so it is tracked as a last-noted value rather than bucketed.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: The standard multi-window ladder, in seconds.
DEFAULT_WINDOWS: Tuple[int, ...] = (60, 300, 1800)

_WINDOW_LABELS = {60: "1m", 300: "5m", 1800: "30m"}


def _window_label(seconds: int) -> str:
    return _WINDOW_LABELS.get(seconds, f"{seconds}s")


@dataclass(frozen=True)
class SloConfig:
    """Objectives the tracker burns against.

    ``latency_threshold_ms`` defines "slow"; ``latency_target`` is the
    fraction of queries that must be faster than it.  ``availability_target``
    is the fraction that must complete without error or (non-requested)
    fallback.  ``staleness_limit_s`` bounds index age.  ``shed_burn`` is
    the burn rate at which :meth:`SloTracker.should_shed` trips (on both
    the short and long window).
    """

    latency_threshold_ms: float = 100.0
    latency_target: float = 0.99
    availability_target: float = 0.999
    staleness_limit_s: float = 300.0
    shed_burn: float = 10.0
    windows: Tuple[int, ...] = DEFAULT_WINDOWS

    def __post_init__(self) -> None:
        for name in ("latency_target", "availability_target"):
            v = getattr(self, name)
            if not 0.0 < v < 1.0:
                raise ValueError(f"{name} must be in (0, 1), got {v}")
        if self.latency_threshold_ms <= 0:
            raise ValueError("latency_threshold_ms must be positive")
        if self.shed_burn <= 0:
            raise ValueError("shed_burn must be positive")
        if not self.windows or any(w < 1 for w in self.windows):
            raise ValueError(f"windows must be >= 1s, got {self.windows}")
        object.__setattr__(
            self, "windows", tuple(sorted(int(w) for w in self.windows))
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SloConfig":
        known = {
            "latency_threshold_ms", "latency_target", "availability_target",
            "staleness_limit_s", "shed_burn", "windows",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SLO config keys: {sorted(unknown)}")
        kwargs = dict(data)
        if "windows" in kwargs:
            kwargs["windows"] = tuple(int(w) for w in kwargs["windows"])
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: str) -> "SloConfig":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def as_dict(self) -> Dict[str, Any]:
        return {
            "latency_threshold_ms": self.latency_threshold_ms,
            "latency_target": self.latency_target,
            "availability_target": self.availability_target,
            "staleness_limit_s": self.staleness_limit_s,
            "shed_burn": self.shed_burn,
            "windows": list(self.windows),
        }


@dataclass
class WindowStats:
    """Aggregate outcome counts over one sliding window."""

    seconds: int
    queries: int = 0
    slow: int = 0
    fallback: int = 0
    error: int = 0
    latency_sum_ms: float = 0.0

    @property
    def bad_availability(self) -> int:
        return self.fallback + self.error

    @property
    def mean_latency_ms(self) -> float:
        return self.latency_sum_ms / self.queries if self.queries else 0.0


class _Slot:
    """One second's aggregates (reset lazily when its second expires)."""

    __slots__ = ("second", "queries", "slow", "fallback", "error",
                 "latency_sum_ms")

    def __init__(self) -> None:
        self.second = -1
        self.queries = 0
        self.slow = 0
        self.fallback = 0
        self.error = 0
        self.latency_sum_ms = 0.0

    def reset(self, second: int) -> None:
        self.second = second
        self.queries = 0
        self.slow = 0
        self.fallback = 0
        self.error = 0
        self.latency_sum_ms = 0.0


class SloTracker:
    """Records query outcomes; answers burn-rate questions.

    Thread-safe by construction for the serving engine's use: slot
    updates are a handful of int adds under the GIL, and the engine
    already serialises metric updates per query.  ``now`` parameters
    exist throughout so tests (and merges) can drive a logical clock.
    """

    def __init__(self, config: Optional[SloConfig] = None):
        self.config = config or SloConfig()
        self.horizon = max(self.config.windows) + 2  # +slack for edge slots
        self._slots = [_Slot() for _ in range(self.horizon)]
        self._staleness_s = 0.0
        self._staleness_noted_at = 0.0
        self.total_queries = 0

    # -- recording -----------------------------------------------------

    def _slot(self, now: float) -> _Slot:
        second = int(now)
        slot = self._slots[second % self.horizon]
        if slot.second != second:
            slot.reset(second)
        return slot

    def record_query(self, latency_ms: float, *, fallback: bool = False,
                     error: bool = False,
                     now: Optional[float] = None) -> None:
        """Record one finished query's outcome."""
        slot = self._slot(time.time() if now is None else now)
        slot.queries += 1
        slot.latency_sum_ms += float(latency_ms)
        if latency_ms > self.config.latency_threshold_ms:
            slot.slow += 1
        if fallback:
            slot.fallback += 1
        if error:
            slot.error += 1
        self.total_queries += 1

    def note_staleness(self, age_seconds: float,
                       now: Optional[float] = None) -> None:
        """Record the index's current age (a level, not an event)."""
        self._staleness_s = max(0.0, float(age_seconds))
        self._staleness_noted_at = time.time() if now is None else now

    def staleness_s(self, now: Optional[float] = None) -> float:
        """Current index age: last noted value, aged by elapsed time."""
        if self._staleness_noted_at <= 0:
            return 0.0
        now = time.time() if now is None else now
        return self._staleness_s + max(0.0, now - self._staleness_noted_at)

    # -- reading -------------------------------------------------------

    def window(self, seconds: int,
               now: Optional[float] = None) -> WindowStats:
        """Aggregate the trailing ``seconds`` ending at ``now``.

        The window covers ``(now_second - seconds, now_second]``.  Slots
        holding seconds outside that range — expired, or *ahead* of a
        regressed clock — are skipped, never summed.
        """
        now_s = int(time.time() if now is None else now)
        lo = now_s - int(seconds)
        out = WindowStats(seconds=int(seconds))
        for slot in self._slots:
            if lo < slot.second <= now_s:
                out.queries += slot.queries
                out.slow += slot.slow
                out.fallback += slot.fallback
                out.error += slot.error
                out.latency_sum_ms += slot.latency_sum_ms
        return out

    def burn_rates(
        self, now: Optional[float] = None
    ) -> Dict[str, Dict[str, float]]:
        """``{window_label: {objective: burn}}`` for every window.

        An empty window burns 0 (no traffic consumes no budget).
        Staleness burn is ``age / limit`` — same ">1 means violating"
        scale as the ratio objectives.
        """
        now = time.time() if now is None else now
        lat_budget = 1.0 - self.config.latency_target
        avail_budget = 1.0 - self.config.availability_target
        stale_burn = self.staleness_s(now) / self.config.staleness_limit_s
        out: Dict[str, Dict[str, float]] = {}
        for seconds in self.config.windows:
            w = self.window(seconds, now)
            if w.queries:
                lat = (w.slow / w.queries) / lat_budget
                avail = (w.bad_availability / w.queries) / avail_budget
            else:
                lat = avail = 0.0
            out[_window_label(seconds)] = {
                "latency": lat,
                "availability": avail,
                "staleness": stale_burn,
            }
        return out

    def should_shed(self, now: Optional[float] = None) -> bool:
        """True when load shedding is warranted *right now*.

        Standard multi-window gate: the shortest window (fast signal)
        AND the next-longer window (flap suppression) must both burn
        past ``shed_burn`` on the same objective.  With a single
        configured window, that window alone decides.
        """
        now = time.time() if now is None else now
        rates = self.burn_rates(now)
        windows = [_window_label(s) for s in self.config.windows]
        short = rates[windows[0]]
        longer = rates[windows[1]] if len(windows) > 1 else short
        bar = self.config.shed_burn
        for objective in ("latency", "availability"):
            if short[objective] >= bar and longer[objective] >= bar:
                return True
        return False

    # -- merge / export ------------------------------------------------

    def dump(self) -> Dict[str, Any]:
        """Plain-data snapshot: live slots plus staleness state."""
        slots = [
            {
                "second": s.second,
                "queries": s.queries,
                "slow": s.slow,
                "fallback": s.fallback,
                "error": s.error,
                "latency_sum_ms": s.latency_sum_ms,
            }
            for s in self._slots if s.second >= 0 and s.queries
        ]
        return {
            "config": self.config.as_dict(),
            "slots": slots,
            "staleness_s": self._staleness_s,
            "staleness_noted_at": self._staleness_noted_at,
            "total_queries": self.total_queries,
        }

    def merge_dump(self, dump: Mapping[str, Any]) -> None:
        """Fold another tracker's :meth:`dump` into this one.

        Matching-second slots sum; the freshest staleness note wins.
        Build a *fresh* tracker per scrape before merging (the pool
        does) so repeated merges of the same worker never double-count.
        """
        for row in dump.get("slots", []):
            second = int(row["second"])
            slot = self._slots[second % self.horizon]
            if slot.second != second:
                # Never clobber a newer resident with an older dump row.
                if slot.second > second:
                    continue
                slot.reset(second)
            slot.queries += int(row["queries"])
            slot.slow += int(row["slow"])
            slot.fallback += int(row["fallback"])
            slot.error += int(row["error"])
            slot.latency_sum_ms += float(row["latency_sum_ms"])
        self.total_queries += int(dump.get("total_queries", 0))
        noted = float(dump.get("staleness_noted_at", 0.0))
        if noted > self._staleness_noted_at:
            self._staleness_noted_at = noted
            self._staleness_s = float(dump.get("staleness_s", 0.0))

    @classmethod
    def from_dumps(
        cls,
        dumps: Iterable[Optional[Mapping[str, Any]]],
        config: Optional[SloConfig] = None,
    ) -> "SloTracker":
        """Build one merged tracker from several workers' dumps."""
        dumps = [d for d in dumps if d]
        if config is None and dumps:
            config = SloConfig.from_dict(dumps[0]["config"])
        tracker = cls(config)
        for d in dumps:
            tracker.merge_dump(d)
        return tracker

    # -- gauges --------------------------------------------------------

    def publish(self, metrics, now: Optional[float] = None) -> None:
        """Set ``slo_*`` gauges on a ``MetricsRegistry``.

        Gauges (not counters), because burn rates are levels; published
        under name-encoded labels so ``render_prometheus`` exposes them
        as real labelled series.
        """
        from repro.serve.metrics import labelled  # avoid import cycle

        now = time.time() if now is None else now
        for window, rates in self.burn_rates(now).items():
            for objective, burn in rates.items():
                if not math.isfinite(burn):
                    burn = 0.0
                metrics.set_gauge(
                    labelled("slo_burn_rate",
                             objective=objective, window=window),
                    burn,
                )
        for seconds in self.config.windows:
            w = self.window(seconds, now)
            label = _window_label(seconds)
            metrics.set_gauge(
                labelled("slo_window_queries", window=label), w.queries
            )
            metrics.set_gauge(
                labelled("slo_window_mean_latency_ms", window=label),
                w.mean_latency_ms,
            )
        metrics.set_gauge("slo_staleness_age_seconds", self.staleness_s(now))
        metrics.set_gauge("slo_should_shed",
                          1.0 if self.should_shed(now) else 0.0)


def slo_report(tracker: SloTracker, now: Optional[float] = None) -> str:
    """Human-readable burn-rate table (used by ``repro diag``)."""
    now = time.time() if now is None else now
    lines = ["== slo =="]
    cfg = tracker.config
    lines.append(
        f"objectives: latency p{cfg.latency_target:.0%}<"
        f"{cfg.latency_threshold_ms:g}ms  "
        f"availability {cfg.availability_target:.1%}  "
        f"staleness<{cfg.staleness_limit_s:g}s  "
        f"shed at burn>={cfg.shed_burn:g}"
    )
    for window, rates in tracker.burn_rates(now).items():
        w = tracker.window(
            next(s for s in cfg.windows if _window_label(s) == window), now
        )
        lines.append(
            f"  {window:>4}: queries={w.queries} "
            f"burn latency={rates['latency']:.2f} "
            f"availability={rates['availability']:.2f} "
            f"staleness={rates['staleness']:.2f}"
        )
    lines.append(f"should_shed={tracker.should_shed(now)}")
    return "\n".join(lines)
