"""Runtime-environment snapshot for attributing performance numbers.

A latency or throughput figure is meaningless without the hardware and
library versions behind it, so the same snapshot is embedded everywhere
numbers leave the process: trace exports (:meth:`repro.obs.Tracer.export`),
the machine-readable benchmark files (``benchmarks/results/BENCH_*.json``),
and the ``repro info`` CLI subcommand.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Any, Dict, Optional


def _blas_info() -> Optional[str]:
    """Best-effort name of the BLAS numpy was built against."""
    import numpy as np

    try:
        # numpy >= 1.25: structured config access.
        cfg = np.show_config(mode="dicts")  # type: ignore[call-arg]
        blas = cfg.get("Build Dependencies", {}).get("blas", {})
        name = blas.get("name")
        version = blas.get("version")
        if name:
            return f"{name} {version}" if version else str(name)
    except TypeError:
        # Older numpy: the legacy site.cfg-style info dicts.
        try:
            info = np.__config__.get_info("blas_opt_info")  # type: ignore[attr-defined]
            libs = info.get("libraries")
            if libs:
                return ",".join(str(x) for x in libs)
        except Exception:
            pass
    except Exception:
        pass
    return None


def runtime_info() -> Dict[str, Any]:
    """The environment snapshot: interpreter, platform, cpu, numpy/BLAS.

    Values are plain JSON types; anything that cannot be determined in
    this environment is ``None`` rather than an exception — the snapshot
    must never break the export it rides along with.
    """
    import numpy as np

    # Imported lazily: repro.__init__ imports repro.obs, so a module-level
    # import here would be circular.
    try:
        from repro import __version__ as repro_version
    except Exception:
        repro_version = None
    try:
        from repro.kernels import numba_version, resolve_backend

        numba = numba_version()
        # What "auto" resolves to on this host: requires numba to be not
        # just importable but compiled and warm-check clean.
        kernel_backend = resolve_backend("auto")
    except Exception:
        numba = None
        kernel_backend = "numpy"
    return {
        "repro_version": repro_version,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
        "numba": numba,
        "kernel_backend": kernel_backend,
        "blas": _blas_info(),
        "argv0": os.path.basename(sys.argv[0]) if sys.argv else None,
    }
