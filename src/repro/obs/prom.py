"""Prometheus text-format exposition of a :class:`MetricsRegistry`.

:func:`render_prometheus` turns the registry's counters and histograms
into the Prometheus text exposition format (version 0.0.4):

* counters -> ``<ns>_<name>`` with ``# TYPE ... counter``;
* gauges -> ``<ns>_<name>`` with ``# TYPE ... gauge`` (used by the
  streaming-update staleness levels);
* histograms -> the conventional triplet ``_bucket{le="..."}`` /
  ``_sum`` / ``_count`` with **cumulative** bucket counts (the registry
  stores per-bucket counts; the renderer accumulates), plus gauges
  ``_min`` / ``_max`` and a ``_quantile{q="..."}`` gauge family carrying
  the registry's interpolated stage quantiles.

The registry itself is label-blind; per-kind breakdowns are encoded in
the instrument name by :func:`repro.serve.metrics.labelled` as
``name{kind="point"}``.  The renderer splits that suffix back out into
real Prometheus labels, sanitizing only the base name and emitting one
``# TYPE`` line per family (so ``latency_ms`` and
``latency_ms{kind="point"}`` share a family).

:func:`parse_prometheus` is the minimal inverse used by tests and the CI
smoke step: enough of the format to read back every sample this module
writes (and to reject malformed output), not a general scrape client.
"""

from __future__ import annotations

import math
import re
from typing import TYPE_CHECKING, Dict, Mapping, Tuple

from repro.exceptions import DataFormatError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serve -> obs)
    from repro.serve.metrics import MetricsRegistry

#: Quantiles exported per histogram (matches the human report).
QUANTILES = (0.5, 0.9, 0.99)

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"$')

LabelSet = Tuple[Tuple[str, str], ...]
Samples = Dict[Tuple[str, LabelSet], float]


def sanitize_metric_name(name: str) -> str:
    """A valid Prometheus metric name from a registry instrument name."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _split_instrument(name: str) -> Tuple[str, str]:
    """Split a :func:`repro.serve.metrics.labelled` name into
    ``(base, label_text)``; plain names return ``(name, "")``."""
    if name.endswith("}") and "{" in name:
        base, _, rest = name.partition("{")
        return base, rest[:-1]
    return name, ""


def _suffix(label_text: str, extra: str = "") -> str:
    """Render a label suffix, merging instrument labels with sample-level
    ones (``le=...``, ``q=...``); empty when there are no labels."""
    inner = ",".join(filter(None, (label_text, extra)))
    return f"{{{inner}}}" if inner else ""


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    return repr(float(value)) if value != int(value) else str(int(value))


def render_prometheus(
    registry: MetricsRegistry, namespace: str = "repro"
) -> str:
    """The registry as Prometheus text exposition format (0.0.4)."""
    dump = registry.dump()
    lines = []

    def scalar_family(items, type_name: str) -> None:
        # Group labelled variants under their base so each family gets
        # exactly one TYPE line and contiguous samples.
        groups: Dict[str, list] = {}
        for name, value in items:
            base, label_text = _split_instrument(name)
            groups.setdefault(base, []).append((label_text, value))
        for base, entries in groups.items():
            full = f"{namespace}_{sanitize_metric_name(base)}"
            lines.append(f"# TYPE {full} {type_name}")
            for label_text, value in entries:
                lines.append(
                    f"{full}{_suffix(label_text)} {_fmt(float(value))}"
                )

    scalar_family(dump["counters"].items(), "counter")
    scalar_family(dump.get("gauges", {}).items(), "gauge")

    hist_groups: Dict[str, list] = {}
    for name, h in dump["histograms"].items():
        base, label_text = _split_instrument(name)
        hist_groups.setdefault(base, []).append((name, label_text, h))
    for base, entries in hist_groups.items():
        full = f"{namespace}_{sanitize_metric_name(base)}"
        lines.append(f"# TYPE {full} histogram")
        for _, label_text, h in entries:
            cumulative = 0
            for bucket in h["buckets"]:
                cumulative += bucket["count"]
                le = f'le="{_fmt(bucket["le"])}"'
                lines.append(
                    f"{full}_bucket{_suffix(label_text, le)} {cumulative}"
                )
            lines.append(f"{full}_sum{_suffix(label_text)} {_fmt(h['sum'])}")
            lines.append(f"{full}_count{_suffix(label_text)} {h['count']}")
        populated = [e for e in entries if e[2]["count"]]
        if populated:
            for stat in ("min", "max"):
                lines.append(f"# TYPE {full}_{stat} gauge")
                for _, label_text, h in populated:
                    lines.append(
                        f"{full}_{stat}{_suffix(label_text)} {_fmt(h[stat])}"
                    )
            lines.append(f"# TYPE {full}_quantile gauge")
            for name, label_text, _ in populated:
                hist = registry.histogram(name)
                for q in QUANTILES:
                    qlabel = f'q="{q:g}"'
                    lines.append(
                        f"{full}_quantile{_suffix(label_text, qlabel)}"
                        f" {_fmt(hist.quantile(q))}"
                    )
    return "\n".join(lines) + "\n"


class ParsedMetrics:
    """Samples and types read back from exposition text."""

    def __init__(self, samples: Samples, types: Mapping[str, str]):
        self.samples = samples
        self.types = dict(types)

    def value(self, name: str, **labels: str) -> float:
        key = (name, tuple(sorted(labels.items())))
        if key not in self.samples:
            raise KeyError(f"no sample {name}{labels or ''}")
        return self.samples[key]

    def names(self) -> set:
        return {name for name, _ in self.samples}


def _parse_value(text: str) -> float:
    lowered = text.lower()
    if lowered in ("+inf", "inf"):
        return math.inf
    if lowered == "-inf":
        return -math.inf
    if lowered == "nan":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise DataFormatError(f"bad sample value {text!r}")


def parse_prometheus(text: str) -> ParsedMetrics:
    """Parse exposition text; raises :class:`DataFormatError` on bad lines.

    Handles the subset :func:`render_prometheus` emits — ``# TYPE`` /
    ``# HELP`` comments, plain and labelled samples — which also covers
    typical client_python output for the validation the CI smoke does.
    """
    samples: Samples = {}
    types: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] not in ("TYPE", "HELP", "EOF"):
                raise DataFormatError(
                    f"line {lineno}: unknown comment {parts[1]!r}"
                )
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        m = _SAMPLE_LINE.match(line)
        if m is None:
            raise DataFormatError(f"line {lineno}: malformed sample {raw!r}")
        labels: Dict[str, str] = {}
        label_text = m.group("labels")
        if label_text:
            for part in filter(None, label_text.split(",")):
                lm = _LABEL.match(part.strip())
                if lm is None:
                    raise DataFormatError(
                        f"line {lineno}: malformed label {part!r}"
                    )
                labels[lm.group("key")] = lm.group("value")
        key = (m.group("name"), tuple(sorted(labels.items())))
        samples[key] = _parse_value(m.group("value"))
    if not samples:
        raise DataFormatError("no samples in exposition text")
    return ParsedMetrics(samples, types)
