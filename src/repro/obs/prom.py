"""Prometheus text-format exposition of a :class:`MetricsRegistry`.

:func:`render_prometheus` turns the registry's counters and histograms
into the Prometheus text exposition format (version 0.0.4):

* counters -> ``<ns>_<name>`` with ``# TYPE ... counter``;
* gauges -> ``<ns>_<name>`` with ``# TYPE ... gauge`` (used by the
  streaming-update staleness levels);
* histograms -> the conventional triplet ``_bucket{le="..."}`` /
  ``_sum`` / ``_count`` with **cumulative** bucket counts (the registry
  stores per-bucket counts; the renderer accumulates), plus gauges
  ``_min`` / ``_max`` and a ``_quantile{q="..."}`` gauge family carrying
  the registry's interpolated stage quantiles.

The registry itself is label-blind; per-kind breakdowns are encoded in
the instrument name by :func:`repro.serve.metrics.labelled` as
``name{kind="point"}``.  The renderer splits that suffix back out into
real Prometheus labels, sanitizing only the base name and emitting one
``# TYPE`` line per family (so ``latency_ms`` and
``latency_ms{kind="point"}`` share a family).

:func:`parse_prometheus` is the minimal inverse used by tests and the CI
smoke step: enough of the format to read back every sample this module
writes (and to reject malformed output), not a general scrape client.
"""

from __future__ import annotations

import math
import re
from typing import TYPE_CHECKING, Dict, Mapping, Tuple

from repro.exceptions import DataFormatError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serve -> obs)
    from repro.serve.metrics import MetricsRegistry

#: Quantiles exported per histogram (matches the human report).
QUANTILES = (0.5, 0.9, 0.99)

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_KEY_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")

LabelSet = Tuple[Tuple[str, str], ...]
Samples = Dict[Tuple[str, LabelSet], float]


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format (``\\``, ``"``,
    newline).  Applied by :func:`repro.serve.metrics.labelled` when the
    value is embedded into an instrument name, so a hostile or odd value
    cannot break out of its quotes or inject extra sample lines."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def unescape_label_value(value: str) -> str:
    """Inverse of :func:`escape_label_value` (unknown escapes pass the
    escaped character through, matching Prometheus's parser)."""
    out = []
    i = 0
    n = len(value)
    while i < n:
        c = value[i]
        if c == "\\" and i + 1 < n:
            nxt = value[i + 1]
            out.append("\n" if nxt == "n" else nxt)
            i += 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def sanitize_metric_name(name: str) -> str:
    """A valid Prometheus metric name from a registry instrument name."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _split_instrument(name: str) -> Tuple[str, str]:
    """Split a :func:`repro.serve.metrics.labelled` name into
    ``(base, label_text)``; plain names return ``(name, "")``."""
    if name.endswith("}") and "{" in name:
        base, _, rest = name.partition("{")
        return base, rest[:-1]
    return name, ""


def _suffix(label_text: str, extra: str = "") -> str:
    """Render a label suffix, merging instrument labels with sample-level
    ones (``le=...``, ``q=...``); empty when there are no labels."""
    inner = ",".join(filter(None, (label_text, extra)))
    return f"{{{inner}}}" if inner else ""


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    return repr(float(value)) if value != int(value) else str(int(value))


def render_prometheus(
    registry: MetricsRegistry, namespace: str = "repro"
) -> str:
    """The registry as Prometheus text exposition format (0.0.4)."""
    dump = registry.dump()
    lines = []

    def scalar_family(items, type_name: str) -> None:
        # Group labelled variants under their base so each family gets
        # exactly one TYPE line and contiguous samples.
        groups: Dict[str, list] = {}
        for name, value in items:
            base, label_text = _split_instrument(name)
            groups.setdefault(base, []).append((label_text, value))
        for base, entries in groups.items():
            full = f"{namespace}_{sanitize_metric_name(base)}"
            lines.append(f"# TYPE {full} {type_name}")
            for label_text, value in entries:
                lines.append(
                    f"{full}{_suffix(label_text)} {_fmt(float(value))}"
                )

    scalar_family(dump["counters"].items(), "counter")
    scalar_family(dump.get("gauges", {}).items(), "gauge")

    hist_groups: Dict[str, list] = {}
    for name, h in dump["histograms"].items():
        base, label_text = _split_instrument(name)
        hist_groups.setdefault(base, []).append((name, label_text, h))
    for base, entries in hist_groups.items():
        full = f"{namespace}_{sanitize_metric_name(base)}"
        lines.append(f"# TYPE {full} histogram")
        for _, label_text, h in entries:
            cumulative = 0
            for bucket in h["buckets"]:
                cumulative += bucket["count"]
                le = f'le="{_fmt(bucket["le"])}"'
                lines.append(
                    f"{full}_bucket{_suffix(label_text, le)} {cumulative}"
                )
            lines.append(f"{full}_sum{_suffix(label_text)} {_fmt(h['sum'])}")
            lines.append(f"{full}_count{_suffix(label_text)} {h['count']}")
        populated = [e for e in entries if e[2]["count"]]
        if populated:
            for stat in ("min", "max"):
                lines.append(f"# TYPE {full}_{stat} gauge")
                for _, label_text, h in populated:
                    lines.append(
                        f"{full}_{stat}{_suffix(label_text)} {_fmt(h[stat])}"
                    )
            lines.append(f"# TYPE {full}_quantile gauge")
            for name, label_text, _ in populated:
                hist = registry.histogram(name)
                for q in QUANTILES:
                    qlabel = f'q="{q:g}"'
                    lines.append(
                        f"{full}_quantile{_suffix(label_text, qlabel)}"
                        f" {_fmt(hist.quantile(q))}"
                    )
    return "\n".join(lines) + "\n"


class ParsedMetrics:
    """Samples and types read back from exposition text."""

    def __init__(self, samples: Samples, types: Mapping[str, str]):
        self.samples = samples
        self.types = dict(types)

    def value(self, name: str, **labels: str) -> float:
        key = (name, tuple(sorted(labels.items())))
        if key not in self.samples:
            raise KeyError(f"no sample {name}{labels or ''}")
        return self.samples[key]

    def names(self) -> set:
        return {name for name, _ in self.samples}


def _parse_sample_line(line: str, lineno: int) -> Tuple[str, Dict[str, str], str]:
    """Scan one sample line into ``(name, labels, value_text)``.

    A character scanner rather than a regex: label values are quoted
    strings with backslash escapes, so they may legally contain ``,``,
    ``}`` and escaped ``"`` — none of which a split-on-comma parser can
    survive."""
    m = _NAME_RE.match(line)
    if m is None:
        raise DataFormatError(f"line {lineno}: malformed sample {line!r}")
    name = m.group(0)
    i = m.end()
    labels: Dict[str, str] = {}
    if i < len(line) and line[i] == "{":
        i += 1
        while i < len(line) and line[i] != "}":
            km = _LABEL_KEY_RE.match(line, i)
            if km is None:
                raise DataFormatError(
                    f"line {lineno}: malformed label in {line!r}"
                )
            key = km.group(0)
            i = km.end()
            if line[i:i + 2] != '="':
                raise DataFormatError(
                    f"line {lineno}: malformed label {key!r} in {line!r}"
                )
            i += 2
            buf = []
            while i < len(line) and line[i] != '"':
                if line[i] == "\\" and i + 1 < len(line):
                    nxt = line[i + 1]
                    buf.append("\n" if nxt == "n" else nxt)
                    i += 2
                else:
                    buf.append(line[i])
                    i += 1
            if i >= len(line):
                raise DataFormatError(
                    f"line {lineno}: unterminated label value in {line!r}"
                )
            i += 1  # closing quote
            labels[key] = "".join(buf)
            if i < len(line) and line[i] == ",":
                i += 1
        if i >= len(line) or line[i] != "}":
            raise DataFormatError(
                f"line {lineno}: unterminated label set in {line!r}"
            )
        i += 1
    rest = line[i:]
    if not rest or not rest[0].isspace():
        raise DataFormatError(f"line {lineno}: malformed sample {line!r}")
    tokens = rest.split()
    if len(tokens) != 1:
        raise DataFormatError(f"line {lineno}: malformed sample {line!r}")
    return name, labels, tokens[0]


def _parse_value(text: str) -> float:
    lowered = text.lower()
    if lowered in ("+inf", "inf"):
        return math.inf
    if lowered == "-inf":
        return -math.inf
    if lowered == "nan":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise DataFormatError(f"bad sample value {text!r}")


def parse_prometheus(text: str) -> ParsedMetrics:
    """Parse exposition text; raises :class:`DataFormatError` on bad lines.

    Handles the subset :func:`render_prometheus` emits — ``# TYPE`` /
    ``# HELP`` comments, plain and labelled samples — which also covers
    typical client_python output for the validation the CI smoke does.
    """
    samples: Samples = {}
    types: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] not in ("TYPE", "HELP", "EOF"):
                raise DataFormatError(
                    f"line {lineno}: unknown comment {parts[1]!r}"
                )
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        name, labels, value_text = _parse_sample_line(line, lineno)
        key = (name, tuple(sorted(labels.items())))
        samples[key] = _parse_value(value_text)
    if not samples:
        raise DataFormatError("no samples in exposition text")
    return ParsedMetrics(samples, types)
