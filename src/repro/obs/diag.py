"""One-command diagnostics: everything an incident needs, in one tar.gz.

"Send me the metrics, a profile, the slow queries and your library
versions" is four commands and three formats; :func:`write_bundle`
captures all of it as a single archive a human can attach to a ticket:

========================  ==============================================
member                    contents
========================  ==============================================
``MANIFEST.json``         what's in the bundle, when, from which host
``runtime.json``          :func:`repro.obs.env.runtime_info`
``metrics.json``          structured :meth:`MetricsRegistry.dump`
``metrics.prom``          Prometheus text exposition of the same registry
``slo.json`` / ``slo.prom`` / ``slo.txt``
                          SLO tracker dump, burn-rate gauges, human table
``traces.json``           the tracer's recent finished spans
``profile.collapsed``     flamegraph-ready collapsed stacks
``profile.txt``           per-span / per-frame self-time tables
``profile.json``          the raw (mergeable) profiler dump
``slowlog.tail.jsonl``    last N slow-query rows
``allocations.txt``       tracemalloc top sites (builds, opt-in)
========================  ==============================================

Only the members whose source was provided appear — a bundle from a
server without profiling simply has no ``profile.*`` — and the manifest
always lists what made it in, so "it's missing" and "it was off" are
distinguishable.  The ``repro diag`` CLI drives this either against a
live server (fetching ``/metrics``, ``/slo``, ``/debug/profile`` over
HTTP) or offline (loading the index and profiling a self-driven
workload).
"""

from __future__ import annotations

import io
import json
import os
import platform
import tarfile
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs.env import runtime_info
from repro.obs.profile import collapsed_text, profile_report
from repro.obs.slo import SloTracker, slo_report

#: Slow-query rows kept in the bundle (the newest ones; the full log
#: stays on the host).
DEFAULT_SLOWLOG_TAIL = 200


def slowlog_tail(path: str, limit: int = DEFAULT_SLOWLOG_TAIL) -> List[str]:
    """The last ``limit`` lines of a slow-query JSONL file (with its
    rotated ``.1`` predecessor chained in front when the live file is
    short).  Missing files yield an empty list — diagnostics never fail
    because a sink was never written."""
    lines: List[str] = []
    for candidate in (path + ".1", path):
        try:
            with open(candidate, "r", encoding="utf-8") as fh:
                lines.extend(
                    line.rstrip("\n") for line in fh if line.strip()
                )
        except OSError:
            continue
    return lines[-limit:]


def _json_bytes(payload: Any) -> bytes:
    return (json.dumps(payload, indent=2, default=repr) + "\n").encode(
        "utf-8"
    )


def write_bundle(
    path: str,
    *,
    metrics=None,
    prometheus_text: Optional[str] = None,
    slo: Optional[SloTracker] = None,
    slo_prom_text: Optional[str] = None,
    traces: Optional[Mapping[str, Any]] = None,
    profile_dump: Optional[Mapping[str, Any]] = None,
    profile_collapsed: Optional[str] = None,
    slow_rows: Optional[Sequence[str]] = None,
    allocations_text: Optional[str] = None,
    extra_files: Optional[Mapping[str, bytes]] = None,
    source: str = "offline",
) -> Dict[str, Any]:
    """Write the diagnostics archive at ``path``; returns the manifest.

    ``metrics`` is a live ``MetricsRegistry`` (dumped and rendered here)
    — pass ``prometheus_text`` instead/as well when the text came from a
    remote ``/metrics``.  ``slo`` is a live tracker; ``slo_prom_text``
    the remote ``/slo`` body.  ``traces`` is a tracer ``export()``
    document.  ``profile_dump`` is a (possibly merged) profiler dump;
    ``profile_collapsed`` a remote ``/debug/profile`` body.  ``slow_rows``
    are pre-read slow-log lines (see :func:`slowlog_tail`).
    """
    members: Dict[str, bytes] = {}
    members["runtime.json"] = _json_bytes(runtime_info())
    if metrics is not None:
        members["metrics.json"] = _json_bytes(metrics.dump())
        if prometheus_text is None:
            from repro.obs.prom import render_prometheus

            prometheus_text = render_prometheus(metrics)
    if prometheus_text is not None:
        members["metrics.prom"] = prometheus_text.encode("utf-8")
    if slo is not None:
        members["slo.json"] = _json_bytes(slo.dump())
        members["slo.txt"] = (slo_report(slo) + "\n").encode("utf-8")
        if slo_prom_text is None:
            from repro.obs.prom import render_prometheus
            from repro.serve.metrics import MetricsRegistry

            registry = MetricsRegistry()
            slo.publish(registry)
            slo_prom_text = render_prometheus(registry)
    if slo_prom_text is not None:
        members["slo.prom"] = slo_prom_text.encode("utf-8")
    if traces is not None:
        members["traces.json"] = _json_bytes(traces)
    if profile_dump is not None:
        members["profile.json"] = _json_bytes(dict(profile_dump))
        members["profile.collapsed"] = collapsed_text(profile_dump).encode(
            "utf-8"
        )
        members["profile.txt"] = (
            profile_report(profile_dump) + "\n"
        ).encode("utf-8")
    elif profile_collapsed is not None:
        members["profile.collapsed"] = profile_collapsed.encode("utf-8")
    if slow_rows:
        members["slowlog.tail.jsonl"] = (
            "\n".join(slow_rows) + "\n"
        ).encode("utf-8")
    if allocations_text is not None:
        members["allocations.txt"] = (
            allocations_text.rstrip("\n") + "\n"
        ).encode("utf-8")
    for name, blob in (extra_files or {}).items():
        members[name] = blob

    manifest = {
        "schema_version": 1,
        "created_unix": round(time.time(), 3),
        "source": source,
        "hostname": platform.node(),
        "members": sorted(members),
    }
    members["MANIFEST.json"] = _json_bytes(manifest)

    now = int(time.time())
    with tarfile.open(path, "w:gz") as tar:
        for name in sorted(members):
            blob = members[name]
            info = tarfile.TarInfo(name=name)
            info.size = len(blob)
            info.mtime = now
            tar.addfile(info, io.BytesIO(blob))
    return manifest


def read_bundle(path: str) -> Dict[str, bytes]:
    """All members of a bundle as ``{name: bytes}`` (tests, tooling)."""
    out: Dict[str, bytes] = {}
    with tarfile.open(path, "r:gz") as tar:
        for member in tar.getmembers():
            if not member.isfile():
                continue
            fh = tar.extractfile(member)
            if fh is not None:
                out[member.name] = fh.read()
    return out


def bundle_report(path: str) -> str:
    """A one-screen summary of a bundle (printed by ``repro diag``)."""
    members = read_bundle(path)
    manifest = json.loads(members.get("MANIFEST.json", b"{}"))
    lines = [
        f"diagnostics bundle: {path} "
        f"({os.path.getsize(path) / 1024:.0f} KiB)",
        f"  source={manifest.get('source')} "
        f"host={manifest.get('hostname')} "
        f"members={len(manifest.get('members', []))}",
    ]
    for name in sorted(members):
        if name != "MANIFEST.json":
            lines.append(f"  {name} ({len(members[name])} bytes)")
    return "\n".join(lines)
