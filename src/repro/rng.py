"""Seeded random-number-generation helpers.

All stochastic components of the library (graph generators, Monte Carlo
diffusion, RR-set sampling, pivot placement) accept either an integer seed,
an existing :class:`numpy.random.Generator`, or ``None``.  This module
centralises the coercion so every component behaves identically.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RandomLike = Union[int, np.random.Generator, None]


def as_generator(seed: RandomLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (shared state), an
    int creates a fresh deterministic generator, and ``None`` creates an
    OS-entropy-seeded generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def as_seed_sequence(seed: RandomLike) -> np.random.SeedSequence:
    """Coerce ``seed`` into a root :class:`numpy.random.SeedSequence`.

    An int maps to the canonical sequence for that seed and ``None`` draws
    OS entropy.  A generator contributes one 64-bit draw — deterministic
    given the generator's state — so parallel components seeded from a
    shared generator inherit its reproducibility without entangling their
    streams with the parent's future output.
    """
    if isinstance(seed, np.random.Generator):
        return np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    return np.random.SeedSequence(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Children are statistically independent of each other and of the parent's
    future output, which makes parallel or per-pivot sampling reproducible.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
