"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch one type at an API boundary::

    try:
        index.query(q, k=30)
    except repro.ReproError as exc:
        ...
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for malformed graph inputs (bad edges, shapes, ids)."""


class GeometryError(ReproError):
    """Raised for invalid geometric inputs (degenerate polygons, bounds)."""


class QueryError(ReproError):
    """Raised for invalid DAIM queries (bad k, location outside support)."""


class IndexError_(ReproError):
    """Raised when an index is used before it is built, or is inconsistent.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``IndexNotReadyError`` alias below.
    """


IndexNotReadyError = IndexError_


class SamplingError(ReproError):
    """Raised when RIS sampling parameters are infeasible (e.g. lb <= 0)."""


class DataFormatError(ReproError):
    """Raised when an input file cannot be parsed."""


class ServeError(ReproError):
    """Raised by the online serving layer (bad engine config, kind
    mismatches between an engine and the index file it is pointed at)."""


class KernelError(ReproError):
    """Raised by the native-kernel registry (:mod:`repro.kernels`): an
    unknown backend name, an explicit ``numba`` request on a host without
    numba, or a compiled kernel failing its warm-up parity self-check."""
