"""Reverse influence sampling (RIS) substrate.

* :mod:`repro.ris.rrset` — random reverse-reachable set sampling, with a
  binomial fast path for uniform per-node in-edge probabilities (weighted
  cascade);
* :mod:`repro.ris.coupled` — counter-based RR sampling with per-slot,
  edge-keyed coins, enabling exact in-place slot regeneration for
  streaming graph updates;
* :mod:`repro.ris.parallel` — the same sampling fanned out over a
  multiprocessing worker pool with deterministic per-chunk RNG streams;
* :mod:`repro.ris.corpus` — a growable RR-set corpus with flat storage and
  an inverted (node -> samples) index;
* :mod:`repro.ris.coverage` — the weighted greedy max-coverage of
  Algorithm 2 and the unbiased spread estimator of Eq. 9;
* :mod:`repro.ris.sample_size` — the Chernoff-based sample-size formulas of
  Lemmas 4–7 and Eq. 12;
* :mod:`repro.ris.lower_bound` — Algorithm 3 (LB-EST, the two-hop lower
  bound for ``OPT_q^k``) and the TOPK-SUM baseline.
"""

from repro.ris.adhoc import adhoc_ris_query
from repro.ris.certify import Certificate, certify_seed_set
from repro.ris.corpus import RRCorpus
from repro.ris.coupled import CoupledRRSampler, quantize_probability
from repro.ris.coverage import (
    CoverageResult,
    SelectionTimings,
    covered_sample_mask,
    estimate_spread,
    weighted_greedy_cover,
)
from repro.ris.lower_bound import lb_est, lb_est_lt, topk_sum
from repro.ris.parallel import ParallelRRSampler
from repro.ris.rrset import RRSampler
from repro.ris.sample_size import (
    epsilon_one,
    log_binomial,
    required_sample_size,
)

__all__ = [
    "Certificate",
    "CoupledRRSampler",
    "CoverageResult",
    "SelectionTimings",
    "certify_seed_set",
    "covered_sample_mask",
    "estimate_spread",
    "ParallelRRSampler",
    "RRCorpus",
    "RRSampler",
    "adhoc_ris_query",
    "epsilon_one",
    "quantize_probability",
    "lb_est",
    "lb_est_lt",
    "log_binomial",
    "required_sample_size",
    "topk_sum",
    "weighted_greedy_cover",
]
