"""Weighted greedy maximum coverage over RR samples (Algorithm 2).

Given a sample prefix and per-sample weights ``omega_i = w(v_i, q)`` (the
weight of sample i's root under the query), the greedy repeatedly selects
the node covering the largest uncovered weight.  The covered weight yields
the unbiased DAIM spread estimate (Eq. 9)::

    I_hat_q(S) = n * (sum of omega_i over samples covered by S) / l

The loop is linear in the total member entries of the prefix: each sample's
members are visited once at initialisation (score build) and once when the
sample first becomes covered (score decrement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import QueryError, SamplingError
from repro.ris.corpus import RRCorpus


@dataclass(frozen=True)
class CoverageResult:
    """Output of the weighted greedy cover.

    ``seeds`` in selection order; ``gains[i]`` the covered-weight increment
    of ``seeds[i]``; ``estimate`` the unbiased spread estimate of Eq. 9 for
    the full seed set; ``samples_used`` the prefix length.  When the sample
    prefix is exhausted before ``k`` seeds — every positive-weight sample
    already covered — selection stops early: ``seeds`` is then shorter than
    ``k`` and the trailing ``gains`` stay 0 (a larger seed set could not
    cover more of this prefix).
    ``optimal_coverage_upper`` a deterministic upper bound on the covered
    weight of the *best possible* k-set over the same sample prefix (the
    standard submodular bound ``min_i covered(S_i) + top-k residual
    scores``), used by a-posteriori certification.
    """

    seeds: List[int]
    gains: np.ndarray
    estimate: float
    samples_used: int
    optimal_coverage_upper: float = float("inf")

    def estimate_for_prefix(self, j: int, n_nodes: int) -> float:
        """Spread estimate for the first ``j`` seeds (greedy is nested).

        ``j`` may exceed ``len(seeds)`` up to the requested ``k``: past an
        early stop the extra gains are exactly 0, so the curve is flat
        (and non-decreasing in ``j`` overall).
        """
        if not 0 <= j <= len(self.gains):
            raise QueryError(f"prefix {j} out of range [0, {len(self.gains)}]")
        covered = float(self.gains[:j].sum())
        return n_nodes * covered / self.samples_used


def weighted_greedy_cover(
    corpus: RRCorpus,
    sample_weights: np.ndarray,
    k: int,
    prefix: int | None = None,
) -> CoverageResult:
    """Algorithm 2: greedy seed selection over a weighted sample prefix.

    Parameters
    ----------
    corpus:
        The RR-sample corpus.
    sample_weights:
        ``(len(corpus),)`` (or at least ``(prefix,)``) array of per-sample
        root weights ``w(v_i, q)``.
    k:
        Number of seeds.
    prefix:
        Use only the first ``prefix`` samples (default: all).  This is how
        RIS-DA answers online queries with fewer samples than indexed.
    """
    l = len(corpus) if prefix is None else int(prefix)
    if l <= 0:
        raise SamplingError("cannot run coverage over zero samples")
    if l > len(corpus):
        raise SamplingError(
            f"prefix {l} exceeds corpus size {len(corpus)}"
        )
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    n = corpus.n_nodes
    if k > n:
        raise QueryError(f"k={k} exceeds node count {n}")
    weights = np.asarray(sample_weights, dtype=float)
    if len(weights) < l:
        raise SamplingError(
            f"need at least {l} sample weights, got {len(weights)}"
        )

    flat, offsets = corpus.flat()
    end = int(offsets[l])
    flat_prefix = flat[:end]
    # Per-entry weight: each member entry of sample i carries omega_i.
    entry_weight = np.repeat(weights[:l], np.diff(offsets[: l + 1]))

    score = np.zeros(n, dtype=float)
    np.add.at(score, flat_prefix, entry_weight)

    # Inverted index (node -> ascending sample ids) is cached corpus-wide;
    # per-node prefix restriction is one binary search for the cutoff.
    inv_samples, inv_offsets = corpus.inverted()

    covered = np.zeros(l, dtype=bool)
    seeds: List[int] = []
    gains = np.zeros(k, dtype=float)
    covered_weight = 0.0
    opt_upper = float("inf")
    for it in range(k):
        # Submodular upper bound at this state: any k-set covers at most
        # the current coverage plus the k largest residual scores.
        if k < n:
            part = np.partition(score, n - k)[n - k:]
            topk = float(part[part > 0].sum())
        else:
            topk = float(score[score > 0].sum())
        opt_upper = min(opt_upper, covered_weight + topk)
        u = int(np.argmax(score))
        gain = float(score[u])
        if gain <= 0.0:
            # Prefix exhausted: every positive-weight sample is covered.
            # Residual scores are 0 up to float drift (decrements can
            # leave them at ~-1e-17), so selecting further would record
            # negative gains and make the estimate non-monotone in k.
            break
        seeds.append(u)
        gains[it] = gain
        covered_weight += gain
        # Mark all samples newly covered by u and decrement member scores.
        u_samples = inv_samples[inv_offsets[u] : inv_offsets[u + 1]]
        cut = int(np.searchsorted(u_samples, l))
        for i in u_samples[:cut]:
            i = int(i)
            if covered[i]:
                continue
            covered[i] = True
            members = flat[offsets[i] : offsets[i + 1]]
            score[members] -= weights[i]
        # Guard against float drift leaving the seed positive.
        score[u] = -np.inf
    estimate = n * covered_weight / l
    # The final state also bounds the optimum (and coverage can only
    # have grown, so only the residual term matters there).
    if k < n:
        part = np.partition(score, n - k)[n - k:]
        topk = float(part[part > 0].sum())
    else:
        topk = float(score[score > 0].sum())
    opt_upper = min(opt_upper, covered_weight + topk)
    return CoverageResult(
        seeds=seeds,
        gains=gains,
        estimate=estimate,
        samples_used=l,
        optimal_coverage_upper=opt_upper,
    )


def estimate_spread(
    corpus: RRCorpus,
    seeds: np.ndarray | List[int],
    sample_weights: np.ndarray,
    prefix: int | None = None,
) -> float:
    """Eq. 9 for a *given* seed set (no selection).

    Used by tests to validate unbiasedness and by ablations to score seed
    sets chosen by other methods on an independent sample pool.
    """
    l = len(corpus) if prefix is None else int(prefix)
    if l <= 0 or l > len(corpus):
        raise SamplingError(f"invalid prefix {l} for corpus of {len(corpus)}")
    weights = np.asarray(sample_weights, dtype=float)
    if len(weights) < l:
        raise SamplingError(f"need at least {l} sample weights, got {len(weights)}")
    seed_mask = np.zeros(corpus.n_nodes, dtype=bool)
    seed_mask[np.asarray(list(seeds), dtype=np.int64)] = True
    flat, offsets = corpus.flat()
    covered_weight = 0.0
    for i in range(l):
        members = flat[offsets[i] : offsets[i + 1]]
        if bool(seed_mask[members].any()):
            covered_weight += float(weights[i])
    return corpus.n_nodes * covered_weight / l
