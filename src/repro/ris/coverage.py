"""Weighted greedy maximum coverage over RR samples (Algorithm 2).

Given a sample prefix and per-sample weights ``omega_i = w(v_i, q)`` (the
weight of sample i's root under the query), the greedy repeatedly selects
the node covering the largest uncovered weight.  The covered weight yields
the unbiased DAIM spread estimate (Eq. 9)::

    I_hat_q(S) = n * (sum of omega_i over samples covered by S) / l

The selection path is built from flat numpy kernels (this is the hot
online path — see DESIGN.md, "Selection kernels"):

* the initial score array is one weighted ``np.bincount`` over the flat
  member prefix (not ``np.add.at``, which takes a slow generalized
  ufunc path);
* when a seed is chosen, all samples it newly covers are decremented in
  a single batch: their member slices are gathered through the CSR
  offsets and subtracted with one weighted ``bincount``;
* the per-iteration submodular certification bound (a ``np.partition``
  over all ``n`` scores) is **opt-in** via ``compute_bound`` — the
  default serving path runs without it, certification requests it;
* a CELF-style lazy greedy (``method="lazy"``) trades the per-iteration
  ``argmax`` scan for a max-heap of stale gains.

Float caveat: the batched decrement subtracts each node's pre-summed
total where the old per-sample loop subtracted one weight at a time, so
residual scores may differ from the historical kernel by ~1 ulp per
covered sample — including drifting slightly *positive* where the
sequential order happened to land at or below zero.  Selection therefore
stops once the best gain falls to ``<= 1e-12`` of the covered weight
(``_DRIFT_RTOL``): drift seeds are never selected, and a genuine gain
that small changes the estimate by less than 1e-12 relative anyway.
Seed sets agree with the historical kernel on every pinned corpus (see
``tests/ris/test_kernel_parity.py``); an exact-tie flip on an unpinned
corpus would still yield an equally valid greedy solution.

The loop stays linear in the total member entries of the prefix: each
sample's members are visited once at initialisation (score build) and
once when the sample first becomes covered (batched decrement).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import List, Union

import numpy as np

from repro.exceptions import QueryError, SamplingError
from repro.ris.corpus import RRCorpus

#: Accepted values of ``weighted_greedy_cover``'s ``compute_bound``.
BoundMode = Union[bool, str]

#: Stop selecting once the best residual gain is below this fraction of
#: the covered weight: batched float decrements can leave exhausted
#: residuals ~1 ulp above zero, and a real gain this small is estimator
#: noise (it moves the Eq. 9 estimate by < 1e-12 relative).
_DRIFT_RTOL = 1e-12


@dataclass(frozen=True)
class SelectionTimings:
    """Per-stage wall-clock seconds of one greedy-cover run.

    ``score_build`` covers the flat-prefix gather, the weighted
    ``bincount`` and (on a cold corpus) the lazy inverted-index build;
    ``selection`` is the pick/decrement loop excluding bound work;
    ``bound`` is the submodular upper-bound computation (0 when
    ``compute_bound=False``); ``total`` the whole call.
    """

    score_build: float
    selection: float
    bound: float
    total: float

    def as_dict(self) -> dict:
        return {
            "score_build": self.score_build,
            "selection": self.selection,
            "bound": self.bound,
            "total": self.total,
        }


@dataclass(frozen=True)
class CoverageResult:
    """Output of the weighted greedy cover.

    ``seeds`` in selection order; ``gains[i]`` the covered-weight increment
    of ``seeds[i]``; ``estimate`` the unbiased spread estimate of Eq. 9 for
    the full seed set; ``samples_used`` the prefix length.  When the sample
    prefix is exhausted before ``k`` seeds — every positive-weight sample
    already covered — selection stops early: ``seeds`` is then shorter than
    ``k`` and the trailing ``gains`` stay 0 (a larger seed set could not
    cover more of this prefix).
    ``optimal_coverage_upper`` a deterministic upper bound on the covered
    weight of the *best possible* k-set over the same sample prefix (the
    standard submodular bound ``min_i covered(S_i) + top-k residual
    scores``), used by a-posteriori certification.  It is only computed
    when the caller asks for it (``compute_bound``); otherwise it stays
    ``inf`` (a trivially valid bound).
    ``timings`` the per-stage wall-clock breakdown of the run.
    """

    seeds: List[int]
    gains: np.ndarray
    estimate: float
    samples_used: int
    optimal_coverage_upper: float = float("inf")
    timings: SelectionTimings | None = None

    def estimate_for_prefix(self, j: int, n_nodes: int) -> float:
        """Spread estimate for the first ``j`` seeds (greedy is nested).

        ``j`` may exceed ``len(seeds)`` up to the requested ``k``: past an
        early stop the extra gains are exactly 0, so the curve is flat
        (and non-decreasing in ``j`` overall).
        """
        if not 0 <= j <= len(self.gains):
            raise QueryError(f"prefix {j} out of range [0, {len(self.gains)}]")
        covered = float(self.gains[:j].sum())
        return n_nodes * covered / self.samples_used


def _topk_residual(score: np.ndarray, n: int, k: int) -> float:
    """Sum of the k largest positive residual scores."""
    if k < n:
        part = np.partition(score, n - k)[n - k:]
        return float(part[part > 0].sum())
    return float(score[score > 0].sum())


def _gather_slices(
    flat: np.ndarray, offsets: np.ndarray, ids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenated ``flat`` slices of the samples in ``ids``.

    Returns ``(entries, counts)`` where ``entries`` is the concatenation
    of ``flat[offsets[i]:offsets[i+1]]`` for each ``i`` in ``ids`` and
    ``counts[j] = len(slice j)`` — the ragged gather done entirely with
    array ops (no per-sample Python loop).
    """
    starts = offsets[ids]
    counts = offsets[ids + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=flat.dtype), counts
    # Within block j the flat position runs starts[j] .. starts[j]+counts[j)-1:
    # a global arange shifted back to each block's start.
    cum = np.cumsum(counts)
    idx = np.arange(total, dtype=np.int64) + np.repeat(starts - (cum - counts), counts)
    return flat[idx], counts


def weighted_greedy_cover(
    corpus: RRCorpus,
    sample_weights: np.ndarray,
    k: int,
    prefix: int | None = None,
    *,
    compute_bound: BoundMode = True,
    method: str = "eager",
    backend: str = "numpy",
) -> CoverageResult:
    """Algorithm 2: greedy seed selection over a weighted sample prefix.

    Parameters
    ----------
    corpus:
        The RR-sample corpus.
    sample_weights:
        ``(len(corpus),)`` (or at least ``(prefix,)``) array of per-sample
        root weights ``w(v_i, q)``.
    k:
        Number of seeds.
    prefix:
        Use only the first ``prefix`` samples (default: all).  This is how
        RIS-DA answers online queries with fewer samples than indexed.
    compute_bound:
        ``True`` (default): track the submodular upper bound on the best
        k-set's coverage at every iteration (tightest; k partitions).
        ``"final"``: compute it once from the final residual state (one
        partition; looser but still valid).  ``False``: skip it entirely
        — ``optimal_coverage_upper`` stays ``inf``.  Selection is
        identical in all three modes; only the bound (and its cost)
        changes.  The RIS-DA serving path passes ``False``;
        :mod:`repro.ris.certify` keeps the default.
    method:
        ``"eager"`` (default): argmax over the maintained score array
        each iteration.  ``"lazy"``: CELF-style max-heap of stale gains,
        re-evaluated on pop.  Both maintain scores with the same batched
        kernels and break exact ties toward the lowest node id, so they
        select identical seed sets.
    backend:
        ``"numpy"`` (default) runs the vectorized kernels in this
        module; ``"numba"`` runs the JIT-compiled loops from
        :mod:`repro.kernels` (a *resolved* backend name — resolve
        ``"auto"`` through :func:`repro.kernels.resolve_backend`
        first).  The compiled path is seed-for-seed and bit-for-bit
        gain-identical to numpy (pinned by ``tests/kernels``) and only
        engages when ``compute_bound=False`` — the serving hot path;
        bound-requesting (certification) calls always run numpy.
    """
    t_start = time.perf_counter()
    l = len(corpus) if prefix is None else int(prefix)
    if l <= 0:
        raise SamplingError("cannot run coverage over zero samples")
    if l > len(corpus):
        raise SamplingError(
            f"prefix {l} exceeds corpus size {len(corpus)}"
        )
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    n = corpus.n_nodes
    if k > n:
        raise QueryError(f"k={k} exceeds node count {n}")
    if compute_bound not in (True, False, "final"):
        raise QueryError(
            f"compute_bound must be True, False or 'final', got {compute_bound!r}"
        )
    if method not in ("eager", "lazy"):
        raise QueryError(f"method must be 'eager' or 'lazy', got {method!r}")
    if backend not in ("numpy", "numba"):
        raise QueryError(
            f"backend must be a resolved kernel backend ('numpy' or "
            f"'numba'), got {backend!r}"
        )
    weights = np.asarray(sample_weights, dtype=float)
    if len(weights) < l:
        raise SamplingError(
            f"need at least {l} sample weights, got {len(weights)}"
        )

    if backend == "numba" and compute_bound is False:
        return _greedy_cover_compiled(
            corpus, weights, k, l, n, method, t_start
        )

    flat, offsets = corpus.flat()
    end = int(offsets[l])
    flat_prefix = flat[:end]
    # Per-entry weight: each member entry of sample i carries omega_i.
    entry_weight = np.repeat(weights[:l], np.diff(offsets[: l + 1]))
    score = np.bincount(flat_prefix, weights=entry_weight, minlength=n)

    # Inverted index (node -> ascending sample ids) is cached corpus-wide;
    # per-node prefix restriction is one binary search for the cutoff.
    inv_samples, inv_offsets = corpus.inverted()
    t_built = time.perf_counter()

    heap: List[tuple[float, int]] | None = None
    if method == "lazy":
        positive = np.flatnonzero(score > 0)
        heap = [(-float(score[u]), int(u)) for u in positive]
        heapq.heapify(heap)

    covered = np.zeros(l, dtype=bool)
    seeds: List[int] = []
    gains = np.zeros(k, dtype=float)
    covered_weight = 0.0
    opt_upper = float("inf")
    bound_seconds = 0.0
    for it in range(k):
        if compute_bound is True:
            # Submodular upper bound at this state: any k-set covers at
            # most the current coverage plus the k largest residuals.
            tb = time.perf_counter()
            opt_upper = min(
                opt_upper, covered_weight + _topk_residual(score, n, k)
            )
            bound_seconds += time.perf_counter() - tb
        if heap is None:
            u = int(np.argmax(score))
            gain = float(score[u])
        else:
            # CELF: pop entries whose stored gain went stale (scores only
            # decrease) and re-push them at their current value; a fresh
            # top is the true maximum.  Ties on (gain, node id) order
            # exactly as argmax does.
            while heap:
                neg_stale, u = heap[0]
                current = float(score[u])
                if -neg_stale <= current:
                    break
                if current <= 0.0:
                    heapq.heappop(heap)
                else:
                    heapq.heapreplace(heap, (-current, u))
            if not heap:
                break
            neg_gain, u = heapq.heappop(heap)
            gain = -neg_gain
        if gain <= _DRIFT_RTOL * covered_weight:
            # Prefix exhausted: every positive-weight sample is covered.
            # Residual scores are 0 only up to float drift (batched
            # decrements can leave them ~1 ulp either side of zero), so
            # selecting further would record drift-noise gains and make
            # the estimate non-monotone in k.
            break
        seeds.append(u)
        gains[it] = gain
        covered_weight += gain
        # Batch-decrement every sample newly covered by u: gather their
        # member slices through the CSR offsets and subtract one weighted
        # bincount — no per-sample Python loop.
        u_samples = inv_samples[inv_offsets[u] : inv_offsets[u + 1]]
        cut = int(np.searchsorted(u_samples, l))
        candidates = u_samples[:cut]
        newly = candidates[~covered[candidates]]
        if len(newly):
            covered[newly] = True
            entries, counts = _gather_slices(flat, offsets, newly)
            dec_weight = np.repeat(weights[newly], counts)
            score -= np.bincount(entries, weights=dec_weight, minlength=n)
        # Guard against float drift leaving the seed positive.
        score[u] = -np.inf
    if compute_bound is not False:
        # The final state also bounds the optimum (and coverage can only
        # have grown, so only the residual term matters there).
        tb = time.perf_counter()
        opt_upper = min(
            opt_upper, covered_weight + _topk_residual(score, n, k)
        )
        bound_seconds += time.perf_counter() - tb
    estimate = n * covered_weight / l
    t_end = time.perf_counter()
    timings = SelectionTimings(
        score_build=t_built - t_start,
        selection=(t_end - t_built) - bound_seconds,
        bound=bound_seconds,
        total=t_end - t_start,
    )
    return CoverageResult(
        seeds=seeds,
        gains=gains,
        estimate=estimate,
        samples_used=l,
        optimal_coverage_upper=opt_upper,
        timings=timings,
    )


def _greedy_cover_compiled(
    corpus: RRCorpus,
    weights: np.ndarray,
    k: int,
    l: int,
    n: int,
    method: str,
    t_start: float,
) -> CoverageResult:
    """The ``backend="numba"`` path of :func:`weighted_greedy_cover`.

    Same flat inputs, same timing split: ``score_build`` covers the
    compiled score build plus the (cached) inverted-index build,
    ``selection`` the compiled pick/decrement loop.  The compiled
    kernels reproduce the numpy float semantics exactly (see
    :mod:`repro.kernels.loops`), so seeds, gains and the estimate are
    bit-identical to the numpy backend.
    """
    from repro.kernels import kernels

    ks = kernels("numba")
    flat, offsets = corpus.flat()
    inv_samples, inv_offsets = corpus.inverted()
    weights = np.ascontiguousarray(weights, dtype=np.float64)
    score = ks.score_build(flat, offsets, weights, l, n)
    t_built = time.perf_counter()
    select = ks.greedy_select if method == "eager" else ks.lazy_select
    seed_arr, gains, n_sel, covered_weight = select(
        flat, offsets, inv_samples, inv_offsets, weights, score, l, k,
        _DRIFT_RTOL,
    )
    estimate = n * covered_weight / l
    t_end = time.perf_counter()
    timings = SelectionTimings(
        score_build=t_built - t_start,
        selection=t_end - t_built,
        bound=0.0,
        total=t_end - t_start,
    )
    return CoverageResult(
        seeds=[int(s) for s in seed_arr[:n_sel]],
        gains=gains,
        estimate=estimate,
        samples_used=l,
        optimal_coverage_upper=float("inf"),
        timings=timings,
    )


@dataclass(frozen=True)
class BudgetedCoverageResult:
    """Output of the cost-aware (budgeted) greedy cover.

    ``seeds`` in selection order; ``gains[i]`` the covered-weight
    increment of ``seeds[i]``; ``cost_spent`` the total cost of the
    selected seeds (always ``<= budget``); ``estimate`` the Eq. 9 spread
    estimate of the selected set; ``samples_used`` the prefix length.
    """

    seeds: List[int]
    gains: np.ndarray
    estimate: float
    samples_used: int
    cost_spent: float
    timings: SelectionTimings | None = None


def weighted_budgeted_cover(
    corpus: RRCorpus,
    sample_weights: np.ndarray,
    costs: np.ndarray,
    budget: float,
    prefix: int | None = None,
    *,
    method: str = "lazy",
    backend: str = "numpy",
) -> BudgetedCoverageResult:
    """Cost-aware greedy max coverage: pick by gain/cost ratio, stop at budget.

    The classic budgeted-maximum-coverage ratio greedy: each iteration
    selects the *affordable* node with the largest ``gain / cost`` ratio,
    spends its cost, and stops when no affordable node remains (or the
    best affordable node's gain has fallen to drift noise, mirroring the
    top-``k`` kernel's ``_DRIFT_RTOL`` stop).  Scores are maintained with
    the same flat batched kernels as :func:`weighted_greedy_cover`.

    With uniform costs ``c`` and budget ``k * c`` the ratio ordering is
    the gain ordering (division by a common positive constant — exact
    when ``c`` is a power of two), so the selection is identical to the
    top-``k`` greedy: this is the degenerate parity the test suite pins.

    ``method="eager"`` rescans the masked ratio array each iteration;
    ``method="lazy"`` runs a CELF-style ratio heap.  Both break exact
    ratio ties toward the lowest node id and select identical seeds.
    Nodes whose cost exceeds the *remaining* budget are dropped
    permanently when encountered — the remaining budget only shrinks.

    ``backend="numba"`` runs the JIT-compiled ratio loops (same
    contract as :func:`weighted_greedy_cover`'s ``backend``): seeds,
    gains and cost accounting are bit-identical to numpy.
    """
    t_start = time.perf_counter()
    l = len(corpus) if prefix is None else int(prefix)
    if l <= 0:
        raise SamplingError("cannot run coverage over zero samples")
    if l > len(corpus):
        raise SamplingError(f"prefix {l} exceeds corpus size {len(corpus)}")
    if not budget > 0:
        raise QueryError(f"budget must be positive, got {budget}")
    if method not in ("eager", "lazy"):
        raise QueryError(f"method must be 'eager' or 'lazy', got {method!r}")
    if backend not in ("numpy", "numba"):
        raise QueryError(
            f"backend must be a resolved kernel backend ('numpy' or "
            f"'numba'), got {backend!r}"
        )
    n = corpus.n_nodes
    costs = np.asarray(costs, dtype=float)
    if costs.shape != (n,):
        raise QueryError(f"costs must have shape ({n},), got {costs.shape}")
    if not np.all(costs > 0):
        raise QueryError("all node costs must be positive")
    weights = np.asarray(sample_weights, dtype=float)
    if len(weights) < l:
        raise SamplingError(f"need at least {l} sample weights, got {len(weights)}")

    if backend == "numba":
        return _budgeted_cover_compiled(
            corpus, weights, costs, float(budget), l, n, method, t_start
        )

    flat, offsets = corpus.flat()
    end = int(offsets[l])
    flat_prefix = flat[:end]
    entry_weight = np.repeat(weights[:l], np.diff(offsets[: l + 1]))
    score = np.bincount(flat_prefix, weights=entry_weight, minlength=n)
    inv_samples, inv_offsets = corpus.inverted()
    t_built = time.perf_counter()

    heap: List[tuple[float, int]] | None = None
    if method == "lazy":
        positive = np.flatnonzero(score > 0)
        heap = [(-float(score[u]) / float(costs[u]), int(u)) for u in positive]
        heapq.heapify(heap)

    covered = np.zeros(l, dtype=bool)
    seeds: List[int] = []
    gains: List[float] = []
    covered_weight = 0.0
    remaining = float(budget)
    cost_spent = 0.0
    while True:
        if heap is None:
            affordable = costs <= remaining
            if not affordable.any():
                break
            ratio = np.where(affordable, score / costs, -np.inf)
            u = int(np.argmax(ratio))
            gain = float(score[u])
            if not np.isfinite(ratio[u]):
                break
        else:
            # CELF on ratios: scores only decrease and costs are fixed,
            # so stored ratios only go stale downward — pop-and-repush
            # restores the true maximum.  Unaffordable nodes are dropped
            # for good (remaining budget never grows back).
            u = -1
            while heap:
                neg_stale, u = heap[0]
                if float(costs[u]) > remaining:
                    heapq.heappop(heap)
                    u = -1
                    continue
                current = float(score[u]) / float(costs[u])
                if -neg_stale <= current:
                    break
                if current <= 0.0:
                    heapq.heappop(heap)
                    u = -1
                else:
                    heapq.heapreplace(heap, (-current, u))
            if not heap or u < 0:
                break
            heapq.heappop(heap)
            gain = float(score[u])
        if gain <= _DRIFT_RTOL * covered_weight:
            # The best-ratio affordable node covers only drift noise;
            # with uniform costs this is exactly the top-k kernel's stop.
            break
        seeds.append(u)
        gains.append(gain)
        covered_weight += gain
        cost_spent += float(costs[u])
        remaining -= float(costs[u])
        u_samples = inv_samples[inv_offsets[u] : inv_offsets[u + 1]]
        cut = int(np.searchsorted(u_samples, l))
        candidates = u_samples[:cut]
        newly = candidates[~covered[candidates]]
        if len(newly):
            covered[newly] = True
            entries, counts = _gather_slices(flat, offsets, newly)
            dec_weight = np.repeat(weights[newly], counts)
            score -= np.bincount(entries, weights=dec_weight, minlength=n)
        score[u] = -np.inf
    estimate = n * covered_weight / l
    t_end = time.perf_counter()
    timings = SelectionTimings(
        score_build=t_built - t_start,
        selection=t_end - t_built,
        bound=0.0,
        total=t_end - t_start,
    )
    return BudgetedCoverageResult(
        seeds=seeds,
        gains=np.asarray(gains, dtype=float),
        estimate=estimate,
        samples_used=l,
        cost_spent=cost_spent,
        timings=timings,
    )


def _budgeted_cover_compiled(
    corpus: RRCorpus,
    weights: np.ndarray,
    costs: np.ndarray,
    budget: float,
    l: int,
    n: int,
    method: str,
    t_start: float,
) -> BudgetedCoverageResult:
    """The ``backend="numba"`` path of :func:`weighted_budgeted_cover`."""
    from repro.kernels import kernels

    ks = kernels("numba")
    flat, offsets = corpus.flat()
    inv_samples, inv_offsets = corpus.inverted()
    weights = np.ascontiguousarray(weights, dtype=np.float64)
    costs = np.ascontiguousarray(costs, dtype=np.float64)
    score = ks.score_build(flat, offsets, weights, l, n)
    t_built = time.perf_counter()
    select = (
        ks.budgeted_eager_select if method == "eager"
        else ks.budgeted_lazy_select
    )
    seed_arr, gain_arr, n_sel, covered_weight, cost_spent = select(
        flat, offsets, inv_samples, inv_offsets, weights, score, costs,
        budget, l, _DRIFT_RTOL,
    )
    estimate = n * covered_weight / l
    t_end = time.perf_counter()
    timings = SelectionTimings(
        score_build=t_built - t_start,
        selection=t_end - t_built,
        bound=0.0,
        total=t_end - t_start,
    )
    return BudgetedCoverageResult(
        seeds=[int(s) for s in seed_arr[:n_sel]],
        gains=np.asarray(gain_arr[:n_sel], dtype=float),
        estimate=estimate,
        samples_used=l,
        cost_spent=float(cost_spent),
        timings=timings,
    )


def covered_sample_mask(
    corpus: RRCorpus,
    seeds: np.ndarray | List[int],
    prefix: int | None = None,
) -> np.ndarray:
    """Boolean mask over the first ``prefix`` samples hit by ``seeds``.

    One flat gather (``seed_mask[flat]``) segment-reduced with
    ``np.logical_or.reduceat`` over the CSR offsets — no per-sample loop.
    Shared by :func:`estimate_spread` and the certification path.
    """
    l = len(corpus) if prefix is None else int(prefix)
    if l <= 0 or l > len(corpus):
        raise SamplingError(f"invalid prefix {l} for corpus of {len(corpus)}")
    seed_mask = np.zeros(corpus.n_nodes, dtype=bool)
    seed_mask[np.asarray(list(seeds), dtype=np.int64)] = True
    flat, offsets = corpus.flat()
    end = int(offsets[l])
    hit = seed_mask[flat[:end]]
    sizes = np.diff(offsets[: l + 1])
    covered = np.zeros(l, dtype=bool)
    nonempty = sizes > 0
    if end and nonempty.any():
        # reduceat needs one start index per non-empty segment; empty
        # samples (possible via from_arrays, never from real RR sets)
        # stay uncovered.
        starts = offsets[:l][nonempty]
        covered[nonempty] = np.logical_or.reduceat(hit, starts)
    return covered


def estimate_spread(
    corpus: RRCorpus,
    seeds: np.ndarray | List[int],
    sample_weights: np.ndarray,
    prefix: int | None = None,
) -> float:
    """Eq. 9 for a *given* seed set (no selection).

    Used by tests to validate unbiasedness and by ablations to score seed
    sets chosen by other methods on an independent sample pool.
    """
    l = len(corpus) if prefix is None else int(prefix)
    covered = covered_sample_mask(corpus, seeds, prefix)
    weights = np.asarray(sample_weights, dtype=float)
    if len(weights) < l:
        raise SamplingError(f"need at least {l} sample weights, got {len(weights)}")
    covered_weight = float(weights[:l][covered].sum())
    return corpus.n_nodes * covered_weight / l
