"""Parallel RR-set sampling over a multiprocessing worker pool.

RR-set generation dominates RIS-DA's offline cost (Algorithms 4–5 both
grow one shared sample pool) and is parallel by construction: every RR
set is an independent draw.  :class:`ParallelRRSampler` fans a batch out
over worker processes while keeping the output **bit-identical** for a
fixed ``(seed, n_workers)`` pair:

* a batch of ``count`` samples is split into a deterministic *chunk plan*
  (a function of ``count`` and ``n_workers`` only);
* the root :class:`numpy.random.SeedSequence` spawns one child sequence
  per chunk, in plan order — each chunk's RNG stream is therefore fixed
  regardless of *where* or *when* the chunk executes;
* chunk results are concatenated in plan order, so scheduler jitter can
  never reorder the corpus;
* each chunk travels back as flat ``(roots, flat_members, offsets)``
  arrays — one pickle per chunk instead of one per RR set.

Because the chunk plan (not the execution mode) defines the output, the
serial fallback — engaged when ``n_workers <= 1``, when ``force_serial``
is set, when the batch is too small to amortise pool dispatch, or when
the pool cannot start (restricted environments) — produces exactly the
same corpus the pool would have.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import GraphError, SamplingError
from repro.network.graph import GeoSocialNetwork
from repro.obs.progress import Heartbeat
from repro.obs.trace import SpanContext, get_tracer, span_context, worker_span
from repro.ris.rrset import RRSampler
from repro.rng import RandomLike, as_seed_sequence

FlatSamples = Tuple[np.ndarray, np.ndarray, np.ndarray]
#: One chunk's result plus its (optional) finished worker span dict.
ChunkResult = Tuple[FlatSamples, Optional[Dict[str, Any]]]

#: Chunks per worker in one batch: > 1 so a slow chunk (hub-heavy RR sets)
#: doesn't leave the other workers idle at the tail of the batch.
_CHUNKS_PER_WORKER = 4

#: Below this batch size pool dispatch costs more than it saves; the
#: chunk plan is unchanged, only the execution stays in-process.
_MIN_PARALLEL_COUNT = 512

# Per-worker-process state, set once by the pool initializer so each task
# message carries only (seed_sequence, count).
_worker_network: GeoSocialNetwork | None = None
_worker_diffusion: str = "ic"


def _init_worker(network: GeoSocialNetwork, diffusion: str) -> None:
    global _worker_network, _worker_diffusion
    _worker_network = network
    _worker_diffusion = diffusion


def _sample_chunk(
    network: GeoSocialNetwork,
    diffusion: str,
    seed_seq: np.random.SeedSequence,
    count: int,
    ctx: Optional[SpanContext] = None,
) -> ChunkResult:
    """Draw ``count`` RR sets from one chunk's dedicated RNG stream.

    ``ctx`` is the parent build span's propagated context; when set, the
    chunk's timing comes back as a finished span dict for the parent
    tracer to adopt (sampling itself is unaffected — spans observe the
    chunk, they never feed its RNG).
    """
    sampler = RRSampler(
        network, seed=np.random.default_rng(seed_seq), diffusion=diffusion
    )
    start_unix = time.time()
    t0 = time.perf_counter()
    # Flat assembly lives in the sampler now (single growing buffer);
    # the draw order — hence the chunk's RNG stream — is unchanged.
    flat = sampler.sample_many_flat(count)
    span = worker_span(
        "ris.sample_chunk", ctx, start_unix,
        (time.perf_counter() - t0) * 1e3, {"count": count},
    )
    return flat, span


def _pool_task(
    args: tuple[np.random.SeedSequence, int, Optional[SpanContext]],
) -> ChunkResult:
    seed_seq, count, ctx = args
    assert _worker_network is not None, "worker pool not initialised"
    return _sample_chunk(
        _worker_network, _worker_diffusion, seed_seq, count, ctx
    )


def _concat_chunks(parts: List[FlatSamples]) -> FlatSamples:
    roots = np.concatenate([p[0] for p in parts])
    flat = np.concatenate([p[1] for p in parts])
    sizes = np.concatenate([np.diff(p[2]) for p in parts])
    offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    return roots, flat, offsets


class ParallelRRSampler:
    """Samples RR sets in parallel with deterministic per-chunk streams.

    Drop-in for :class:`~repro.ris.rrset.RRSampler` wherever only batch
    sampling is needed (:meth:`sample_many` / :meth:`sample_many_flat`);
    :class:`~repro.ris.corpus.RRCorpus` detects the flat path and appends
    whole batches without per-set copies.

    Parameters
    ----------
    network:
        The network to sample from.
    seed:
        Int seed, generator, or ``None`` — coerced into the root
        :class:`numpy.random.SeedSequence` that all chunk streams descend
        from (see :func:`repro.rng.as_seed_sequence`).
    diffusion:
        ``"ic"`` or ``"lt"``, as for :class:`RRSampler`.
    n_workers:
        Worker-process count.  ``1`` never starts a pool.
    force_serial:
        Execute the chunk plan in-process even when ``n_workers > 1``
        (useful in sandboxes that forbid subprocesses); the output is
        identical to the pooled execution by construction.

    Determinism contract: for a fixed ``(seed, n_workers)`` and the same
    sequence of batch sizes, the sampled corpus is bit-identical across
    runs and across execution modes (pool, fallback, ``force_serial``).
    Different ``n_workers`` values produce different — equally valid —
    corpora, because the chunk plan is part of the stream layout.
    """

    def __init__(
        self,
        network: GeoSocialNetwork,
        seed: RandomLike = None,
        diffusion: str = "ic",
        n_workers: int = 1,
        force_serial: bool = False,
    ):
        if n_workers < 1:
            raise SamplingError(
                f"n_workers must be at least 1, got {n_workers}"
            )
        # Validate (diffusion name, LT in-weight feasibility) eagerly with
        # a throwaway serial sampler, so errors raise here rather than
        # inside a worker process.
        RRSampler(network, seed=0, diffusion=diffusion)
        self.network = network
        self.diffusion = diffusion
        self.n_workers = int(n_workers)
        self.force_serial = bool(force_serial)
        self._seed_seq = as_seed_sequence(seed)
        self._pool = None
        self._pool_broken = False

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample_many_flat(self, count: int) -> FlatSamples:
        """``count`` RR sets as flat ``(roots, flat_members, offsets)``.

        ``flat_members[offsets[i]:offsets[i+1]]`` is sample ``i``'s sorted
        node set — the same layout :meth:`RRCorpus.flat` uses.
        """
        if count < 0:
            raise GraphError(f"count must be non-negative, got {count}")
        if count == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), np.zeros(1, dtype=np.int64)
        sizes = self._chunk_sizes(count)
        children = self._seed_seq.spawn(len(sizes))
        tracer = get_tracer()
        with tracer.span(
            "ris.sample_batch",
            {"count": count, "n_chunks": len(sizes),
             "n_workers": self.n_workers},
        ) as span:
            ctx = span_context(span)
            tasks = [
                (ss, size, ctx) for ss, size in zip(children, sizes)
            ]
            parts, chunk_spans = self._run_tasks(tasks, count)
            tracer.adopt(chunk_spans)
        return _concat_chunks(parts)

    def sample_many(self, count: int) -> tuple[np.ndarray, List[np.ndarray]]:
        """``count`` RR sets as ``(roots, list-of-member-arrays)``.

        API-compatible with :meth:`RRSampler.sample_many`; prefer
        :meth:`sample_many_flat` on hot paths.
        """
        roots, flat, offsets = self.sample_many_flat(count)
        members = [
            flat[offsets[i] : offsets[i + 1]] for i in range(len(roots))
        ]
        return roots, members

    def _chunk_sizes(self, count: int) -> List[int]:
        n_chunks = max(1, min(count, self.n_workers * _CHUNKS_PER_WORKER))
        base, extra = divmod(count, n_chunks)
        return [base + (1 if i < extra else 0) for i in range(n_chunks)]

    def _run_tasks(
        self,
        tasks: List[tuple[np.random.SeedSequence, int, Optional[SpanContext]]],
        count: int,
    ) -> Tuple[List[FlatSamples], List[Optional[Dict[str, Any]]]]:
        if count >= _MIN_PARALLEL_COUNT:
            pool = self._ensure_pool()
            if pool is not None:
                try:
                    # imap keeps plan order (determinism) while letting the
                    # heartbeat tick as chunk results are collected.
                    hb = Heartbeat("ris.sample", total=count, unit="samples")
                    results: List[ChunkResult] = []
                    for task, chunk in zip(
                        tasks, pool.imap(_pool_task, tasks)
                    ):
                        results.append(chunk)
                        hb.advance(task[1])
                    hb.finish()
                    return (
                        [r[0] for r in results],
                        [r[1] for r in results],
                    )
                except Exception:
                    # A dead/poisoned pool (e.g. a worker was killed) must
                    # not lose the batch: mark it broken and replay the
                    # identical chunk plan in-process.
                    self._teardown_pool(broken=True)
        hb = Heartbeat("ris.sample", total=count, unit="samples")
        parts: List[FlatSamples] = []
        spans: List[Optional[Dict[str, Any]]] = []
        for ss, c, ctx in tasks:
            flat, span = _sample_chunk(
                self.network, self.diffusion, ss, c, ctx
            )
            parts.append(flat)
            spans.append(span)
            hb.advance(c)
        hb.finish()
        return parts, spans

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def _ensure_pool(self):
        if self.force_serial or self.n_workers <= 1 or self._pool_broken:
            return None
        if self._pool is None:
            try:
                methods = multiprocessing.get_all_start_methods()
                # fork shares the network copy-on-write; elsewhere the
                # initializer ships it once per worker.
                ctx = multiprocessing.get_context(
                    "fork" if "fork" in methods else None
                )
                self._pool = ctx.Pool(
                    self.n_workers,
                    initializer=_init_worker,
                    initargs=(self.network, self.diffusion),
                )
            except (OSError, ValueError, RuntimeError, PermissionError):
                self._pool_broken = True
                return None
        return self._pool

    def close(self) -> None:
        """Release the worker pool (restarted lazily if sampling resumes)."""
        self._teardown_pool(broken=False)

    def _teardown_pool(self, broken: bool) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.terminate()
                pool.join()
            except Exception:
                pass
        if broken:
            self._pool_broken = True

    @property
    def pool_active(self) -> bool:
        """Whether a worker pool is currently running."""
        return self._pool is not None

    def __enter__(self) -> "ParallelRRSampler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self._teardown_pool(broken=False)
        except Exception:
            pass
