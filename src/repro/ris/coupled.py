"""Counter-based RR sampling for coupled streaming regeneration.

The sequential :class:`~repro.ris.rrset.RRSampler` draws every sample
from one RNG stream — perfect for builds, hostile to streaming
maintenance: after a graph delta there is no way to re-derive the
randomness a stored sample consumed, so an update must retire the
samples touching the dirty set and resample *conditioned on touching
it* (see :meth:`repro.ris.corpus.RRCorpus.extend_touching`).  The
rejection pass costs ``count / P(touch)`` draws, and with
``count ≈ |corpus| · P(touch)`` that is one corpus-sized sampling
sweep no matter how small the delta — the update can never beat a
rebuild by much.

This sampler removes the sequential stream entirely.  Each sample slot
carries an integer **key**, and the slot is a *pure function* of
``(seed, key, graph)``:

* the root is a hash of ``(seed, key)``;
* the coin of in-edge ``u -> x`` is a hash of ``(seed, key, u, x)`` —
  keyed by the edge's *endpoints*, not its storage position, so the
  coin survives CSR re-layout when unrelated edges are upserted.

Two properties follow.  **Independence**: distinct keys share no
randomness, so the corpus is an i.i.d. RR-set pool — replacements need
no conditioning and the post-update shuffle disappears.  **Coupling**
(common random numbers): re-running a slot on an updated graph reuses
the identical coin for every unchanged edge.  A reverse traversal only
examines the in-edge row of nodes it has already reached, and a delta
only rewrites the in-edge rows of changed-edge *heads* — so a slot
whose stored set contains no dirty head replays bit-for-bit, while a
touching slot's re-run is exactly one fresh RR set of the new graph.
The streaming update therefore regenerates only the touching slots:
cost proportional to the dirty fraction, not to the corpus size.

Hashing uses the SplitMix64 finalizer (wrapping ``uint64`` arithmetic,
vectorised over each in-edge row), whose avalanche quality is the
standard choice for counter-based ("stateless") sampling.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.network.graph import GeoSocialNetwork

_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)
#: Odd constants decorrelating the per-purpose hash domains.
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_ROOT_SALT = np.uint64(0xD1B54A32D192ED03)
_U64_SHIFT_30 = np.uint64(30)
_U64_SHIFT_27 = np.uint64(27)
_U64_SHIFT_31 = np.uint64(31)
_U64_SHIFT_11 = np.uint64(11)
def _mix64(z):
    """SplitMix64 finalizer over ``uint64`` scalars or arrays.

    Wrapping multiplication is intentional; callers run under
    ``np.errstate(over="ignore")`` so scalar overflow stays silent.
    """
    z = (z ^ (z >> _U64_SHIFT_30)) * _M1
    z = (z ^ (z >> _U64_SHIFT_27)) * _M2
    return z ^ (z >> _U64_SHIFT_31)


def quantize_probability(p: float) -> np.uint64:
    """``p`` as a 53-bit liveness threshold: a coin is live iff its top
    53 hash bits are below this.  One quantisation, used by both the
    traversal and the streaming flip filter, so the two always agree on
    every coin (a float-vs-integer mismatch on a boundary coin would
    silently skip a slot whose replay actually changed)."""
    return np.uint64(min(float(p), 1.0) * float(1 << 53))


class CoupledRRSampler:
    """RR sampling with per-slot, edge-keyed randomness (IC model only).

    Drop-in for the sequential sampler in the corpus-growth paths (via
    :meth:`sample_batch`), plus :meth:`regenerate` for the streaming
    update.  The LT model is out of scope: its reverse walk consumes a
    single *cumulative* draw per node, which has no per-edge identity
    to key a coin on — LT indexes keep the sequential sampler and the
    rejection-based refresh.

    Parameters
    ----------
    network:
        The network to sample from.
    seed:
        Integer seed.  Together with a slot key it fixes the slot's
        root and every coin, so corpora built from the same ``(seed,
        keys, graph)`` are bit-identical regardless of draw order.
    kernel_backend:
        ``"numpy"`` (default) or ``"numba"`` — a *resolved* backend
        name (see :mod:`repro.kernels`).  The compiled traversal hashes
        the identical coin domain, so batches and regenerated slots are
        bit-identical across backends; the backend is therefore free to
        change between a build and a later update.
    """

    #: Marks the per-slot contract for :class:`~repro.ris.corpus.RRCorpus`.
    coupled = True
    diffusion = "ic"

    def __init__(
        self,
        network: GeoSocialNetwork,
        seed: int = 0,
        kernel_backend: str = "numpy",
    ):
        if not isinstance(seed, (int, np.integer)):
            raise GraphError(
                f"coupled sampling needs an integer seed, got {type(seed).__name__}"
            )
        if kernel_backend not in ("numpy", "numba"):
            raise GraphError(
                f"kernel_backend must be a resolved backend ('numpy' or "
                f"'numba'), got {kernel_backend!r}"
            )
        self.kernel_backend = kernel_backend
        self.network = network
        self.seed = int(seed)
        #: Next unused slot key; advanced by the drawing methods.
        self.draw_count = 0
        with np.errstate(over="ignore"):
            self._seed64 = _mix64(np.uint64(self.seed & 0xFFFFFFFFFFFFFFFF))
            # Endpoint-keyed edge ids, premixed once: aligned with
            # in_sources, so a traversal hashes each examined row with
            # one xor + one finalizer.
            targets = np.repeat(
                np.arange(network.n, dtype=np.uint64),
                np.diff(network.in_offsets),
            )
            edge_ids = (
                network.in_sources.astype(np.uint64) * np.uint64(network.n)
                + targets
            )
            self._edge_mix = _mix64(edge_ids)
            # Probabilities pre-quantised to 53-bit integer thresholds
            # (see quantize_probability): the traversal compares hash
            # bits against these directly, skipping a float conversion
            # per examined row, and the Bernoulli law is p to within
            # one part in 2^53.
            self._thresholds = (
                np.minimum(network.in_probs, 1.0) * float(1 << 53)
            ).astype(np.uint64)

    # -- drawing -------------------------------------------------------

    def sample(self) -> tuple[int, np.ndarray]:
        """One RR set ``(root, members)`` at the next unused key."""
        key = self.draw_count
        self.draw_count += 1
        return self.regenerate(key)

    def sample_batch(
        self, count: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``count`` RR sets as ``(keys, roots, flat_members, offsets)``.

        The keyed analogue of ``sample_many_flat``: consecutive keys
        starting at :attr:`draw_count`, members concatenated in the
        :meth:`RRCorpus.flat` layout.
        """
        if count < 0:
            raise GraphError(f"count must be non-negative, got {count}")
        keys = np.arange(
            self.draw_count, self.draw_count + count, dtype=np.int64
        )
        self.draw_count += count
        if self.kernel_backend == "numba" and count:
            roots, flat, offsets = self._batch_compiled(keys)
            return keys, roots, flat, offsets
        roots = np.empty(count, dtype=np.int64)
        offsets = np.zeros(count + 1, dtype=np.int64)
        buf = np.empty(max(1024, 4 * count), dtype=np.int64)
        total = 0
        for i in range(count):
            root, mem = self.regenerate(int(keys[i]))
            roots[i] = root
            size = len(mem)
            if total + size > len(buf):
                grown = np.empty(
                    max(2 * len(buf), total + size), dtype=np.int64
                )
                grown[:total] = buf[:total]
                buf = grown
            buf[total : total + size] = mem
            total += size
            offsets[i + 1] = total
        flat = buf[:total].copy() if 2 * total < len(buf) else buf[:total]
        return keys, roots, flat, offsets

    def edge_coin_bits(self, keys, u: int, v: int) -> np.ndarray:
        """The 53-bit coin of in-edge ``u -> v`` per slot key, vectorised.

        This is how the streaming update avoids re-running most
        head-touching slots: a slot that examined a changed edge's row
        replays to a *different* set only if that edge's own coin flips
        liveness under the probability change — every other coin in the
        row is endpoint-keyed and unchanged.  Evaluating the coin
        directly (a few hashes per candidate slot) is orders of
        magnitude cheaper than a reverse traversal.  Returned in the
        integer domain so callers compare against
        :func:`quantize_probability` with exactly the traversal's
        liveness rule (``bits < threshold``).
        """
        keys = np.asarray(keys, dtype=np.int64)
        n = self.network.n
        if not (0 <= u < n and 0 <= v < n):
            raise GraphError(
                f"edge endpoints must be in [0, {n}), got ({u}, {v})"
            )
        with np.errstate(over="ignore"):
            slots = _mix64(self._seed64 ^ (keys.astype(np.uint64) * _GOLDEN))
            edge = _mix64(np.uint64(u) * np.uint64(n) + np.uint64(v))
            return _mix64(slots ^ edge) >> _U64_SHIFT_11

    def regenerate(self, key: int) -> tuple[int, np.ndarray]:
        """The RR set of slot ``key`` — pure in ``(seed, key, graph)``.

        Does not advance :attr:`draw_count`: the streaming update calls
        this for stored keys against the *new* network, and coupling
        makes the result a fresh exact RR set of that network.
        """
        if key < 0:
            raise GraphError(f"slot keys are non-negative, got {key}")
        net = self.network
        if net.n == 0:
            raise GraphError("cannot sample from an empty network")
        if self.kernel_backend == "numba":
            keys = np.asarray([key], dtype=np.int64)
            roots, flat, _ = self._batch_compiled(keys)
            return int(roots[0]), flat
        with np.errstate(over="ignore"):
            slot = _mix64(self._seed64 ^ (np.uint64(key) * _GOLDEN))
            root = int(_mix64(slot ^ _ROOT_SALT) % np.uint64(net.n))
            return root, self._reverse_reach(slot, root)

    # ------------------------------------------------------------------

    def _batch_compiled(
        self, keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run the JIT traversal over ``keys``; bit-identical to numpy."""
        from repro.kernels import kernels

        ks = kernels("numba")
        net = self.network
        return ks.coupled_batch(
            self._seed64, keys, net.in_offsets, net.in_sources,
            self._edge_mix, self._thresholds, net.n,
        )

    def _reverse_reach(self, slot: np.uint64, root: int) -> np.ndarray:
        """IC reverse traversal with hashed coins (LIFO, like the
        sequential sampler — any order samples the same distribution
        because each in-edge's coin is read exactly once, and here the
        coin value itself is order-independent)."""
        net = self.network
        edge_mix = self._edge_mix
        in_offsets = net.in_offsets
        in_sources = net.in_sources
        thresholds = self._thresholds
        visited = {root}
        stack = [root]
        while stack:
            x = stack.pop()
            lo = int(in_offsets[x])
            hi = int(in_offsets[x + 1])
            if hi == lo:
                continue
            coins = _mix64(slot ^ edge_mix[lo:hi]) >> _U64_SHIFT_11
            live = np.flatnonzero(coins < thresholds[lo:hi])
            for j in live:
                u = int(in_sources[lo + int(j)])
                if u not in visited:
                    visited.add(u)
                    stack.append(u)
        return np.asarray(sorted(visited), dtype=np.int64)
