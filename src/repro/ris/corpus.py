"""A growable corpus of RR samples with flat storage.

RIS-DA indexes one shared pool of samples (Algorithms 4–5 both append to
the same ``R``) and answers queries over a *prefix* of it, so the corpus
must support cheap appends and prefix views.  Samples are stored as one
concatenated member array plus offsets (CSR-style); the inverted index
(node -> containing samples) is rebuilt lazily when the corpus grows.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.exceptions import SamplingError
from repro.ris.rrset import RRSampler


class RRCorpus:
    """An append-only collection of RR samples.

    Attributes
    ----------
    roots:
        ``roots[i]`` is the sampled node ``v_i`` of sample ``i`` (whose
        weight the DAIM estimator uses).
    """

    def __init__(self, sampler: RRSampler):
        self._sampler = sampler
        self._roots: List[int] = []
        self._members: List[np.ndarray] = []
        self._flat_cache: tuple[np.ndarray, np.ndarray] | None = None
        self._roots_cache: np.ndarray | None = None
        self._inverted_cache: tuple[np.ndarray, np.ndarray] | None = None

    def __len__(self) -> int:
        return len(self._roots)

    @classmethod
    def from_arrays(
        cls,
        sampler: RRSampler,
        roots: np.ndarray,
        flat: np.ndarray,
        offsets: np.ndarray,
    ) -> "RRCorpus":
        """Restore a corpus from its flat representation (persistence).

        ``flat`` / ``offsets`` must follow the :meth:`flat` layout; the
        sampler is kept so the corpus can keep growing afterwards.

        The members are *views* into ``flat`` (matching
        :meth:`append_flat`), and the flat/roots caches are seeded with
        the supplied arrays directly — so a corpus restored over a
        memmap or shared-memory buffer stays zero-copy: the selection
        kernels read :meth:`flat` straight out of the shared pages.
        """
        roots = np.asarray(roots, dtype=np.int64)
        flat = np.asarray(flat, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        if len(offsets) != len(roots) + 1 or (len(offsets) and offsets[-1] != len(flat)):
            raise SamplingError("inconsistent corpus arrays")
        corpus = cls(sampler)
        corpus._roots = [int(r) for r in roots]
        corpus._members = [
            flat[offsets[i]: offsets[i + 1]] for i in range(len(roots))
        ]
        corpus._flat_cache = (flat, offsets)
        corpus._roots_cache = roots
        return corpus

    @property
    def n_nodes(self) -> int:
        return self._sampler.network.n

    @property
    def roots(self) -> np.ndarray:
        if self._roots_cache is None:
            self._roots_cache = np.asarray(self._roots, dtype=np.int64)
        return self._roots_cache

    def members(self, i: int) -> np.ndarray:
        """The node set of sample ``i``."""
        return self._members[i]

    def ensure(self, count: int) -> int:
        """Grow the corpus to at least ``count`` samples; returns new size.

        Samplers exposing ``sample_many_flat`` (both :class:`RRSampler`
        and :class:`~repro.ris.parallel.ParallelRRSampler`) grow via one
        flat batch append, so a parallel batch is transferred and stored
        without per-set copies.
        """
        if count < 0:
            raise SamplingError(f"sample count must be non-negative, got {count}")
        missing = count - len(self._roots)
        if missing > 0:
            flat_fn = getattr(self._sampler, "sample_many_flat", None)
            if flat_fn is not None:
                self.append_flat(*flat_fn(missing))
            else:
                roots, members = self._sampler.sample_many(missing)
                self._roots.extend(int(r) for r in roots)
                self._members.extend(members)
                self._invalidate()
        return len(self._roots)

    def append_flat(
        self, roots: np.ndarray, flat: np.ndarray, offsets: np.ndarray
    ) -> int:
        """Append a batch of samples in flat form; returns new size.

        ``flat`` / ``offsets`` follow the :meth:`flat` layout over the
        batch.  Member arrays are stored as views into the batch, so the
        append is O(batch) regardless of per-set sizes.
        """
        roots = np.asarray(roots, dtype=np.int64)
        flat = np.asarray(flat, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        if len(offsets) != len(roots) + 1 or (
            len(offsets) and offsets[-1] != len(flat)
        ):
            raise SamplingError("inconsistent flat batch arrays")
        self._roots.extend(int(r) for r in roots)
        self._members.extend(
            flat[offsets[i] : offsets[i + 1]] for i in range(len(roots))
        )
        self._invalidate()
        return len(self._roots)

    def _invalidate(self) -> None:
        self._flat_cache = None
        self._roots_cache = None
        self._inverted_cache = None

    def flat(self) -> tuple[np.ndarray, np.ndarray]:
        """``(flat_members, offsets)`` over the whole corpus.

        ``flat_members[offsets[i]:offsets[i+1]]`` is sample ``i``'s node
        set.  Cached until the corpus grows.
        """
        if self._flat_cache is None:
            sizes = np.asarray([len(m) for m in self._members], dtype=np.int64)
            offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
            np.cumsum(sizes, out=offsets[1:])
            flat = (
                np.concatenate(self._members)
                if self._members
                else np.empty(0, dtype=np.int64)
            )
            self._flat_cache = (flat, offsets)
        return self._flat_cache

    def inverted(self) -> tuple[np.ndarray, np.ndarray]:
        """``(inv_samples, inv_offsets)`` — the node -> samples index.

        ``inv_samples[inv_offsets[u]:inv_offsets[u+1]]`` lists the ids of
        the samples containing node ``u``, in ascending order — so a
        prefix query can cut each list with one binary search.  Cached
        until the corpus grows; building it is the dominant cost of the
        first query, so index construction calls this eagerly.
        """
        if self._inverted_cache is None:
            flat, offsets = self.flat()
            n_samples = len(self._roots)
            sample_of_entry = np.repeat(
                np.arange(n_samples, dtype=np.int64), np.diff(offsets)
            )
            order = np.argsort(flat, kind="stable")
            inv_samples = sample_of_entry[order]
            inv_offsets = np.zeros(self.n_nodes + 1, dtype=np.int64)
            np.add.at(inv_offsets, flat + 1, 1)
            np.cumsum(inv_offsets, out=inv_offsets)
            self._inverted_cache = (inv_samples, inv_offsets)
        return self._inverted_cache

    def average_size(self) -> float:
        """Mean RR-set size (diagnostic; drives memory/time estimates)."""
        if not self._members:
            return 0.0
        flat, _ = self.flat()
        return len(flat) / len(self._members)

    def total_entries(self, prefix: int | None = None) -> int:
        """Total member entries in the first ``prefix`` samples."""
        flat, offsets = self.flat()
        if prefix is None:
            return int(offsets[-1])
        prefix = min(prefix, len(self))
        return int(offsets[prefix])
