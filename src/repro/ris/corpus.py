"""A growable corpus of RR samples with flat storage.

RIS-DA indexes one shared pool of samples (Algorithms 4–5 both append to
the same ``R``) and answers queries over a *prefix* of it, so the corpus
must support cheap appends and prefix views.  Samples are stored as one
concatenated member array plus offsets (CSR-style); the inverted index
(node -> containing samples) is rebuilt lazily when the corpus changes.

Streaming updates add a retirement path: :meth:`RRCorpus.samples_touching`
finds the samples whose reverse-reach sets intersect a dirty-node set
(via the inverted index), :meth:`RRCorpus.retire` drops them, and
:meth:`RRCorpus.replace_sampler` swaps in a sampler over the updated
network so subsequent :meth:`RRCorpus.ensure` growth draws from the new
graph.  Every mutation funnels through :meth:`RRCorpus._invalidate`,
which drops all three caches (flat, roots, inverted) together — a stale
inverted index would silently mis-route the next retirement.

A corpus over a :class:`~repro.ris.coupled.CoupledRRSampler` is *keyed*:
every slot stores the integer key that, with the sampler seed, fully
determines its randomness.  Keyed corpora support
:meth:`RRCorpus.regenerate` — re-running chosen slots in place against
an updated network — which is the cheap streaming-refresh path (see the
:mod:`repro.ris.coupled` module docstring for the coupling argument).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.exceptions import SamplingError
from repro.ris.rrset import RRSampler


class RRCorpus:
    """A growable collection of RR samples (append + streaming retire).

    Attributes
    ----------
    roots:
        ``roots[i]`` is the sampled node ``v_i`` of sample ``i`` (whose
        weight the DAIM estimator uses).
    """

    def __init__(self, sampler: RRSampler):
        self._sampler = sampler
        self._roots: List[int] = []
        self._members: List[np.ndarray] = []
        # Per-slot randomness keys for coupled samplers; None marks a
        # keyless (sequentially sampled) corpus.
        self._keys: List[int] | None = (
            [] if getattr(sampler, "coupled", False) else None
        )
        self._flat_cache: tuple[np.ndarray, np.ndarray] | None = None
        self._roots_cache: np.ndarray | None = None
        self._inverted_cache: tuple[np.ndarray, np.ndarray] | None = None

    def __len__(self) -> int:
        return len(self._roots)

    @classmethod
    def from_arrays(
        cls,
        sampler: RRSampler,
        roots: np.ndarray,
        flat: np.ndarray,
        offsets: np.ndarray,
        keys: np.ndarray | None = None,
    ) -> "RRCorpus":
        """Restore a corpus from its flat representation (persistence).

        ``flat`` / ``offsets`` must follow the :meth:`flat` layout; the
        sampler is kept so the corpus can keep growing afterwards.
        ``keys`` restores a keyed corpus (one key per slot) — required
        for the coupled regeneration path; omitting it yields a keyless
        corpus that can still grow but only refresh by rejection.

        The members are *views* into ``flat`` (matching
        :meth:`append_flat`), and the flat/roots caches are seeded with
        the supplied arrays directly — so a corpus restored over a
        memmap or shared-memory buffer stays zero-copy: the selection
        kernels read :meth:`flat` straight out of the shared pages.
        """
        roots = np.asarray(roots, dtype=np.int64)
        flat = np.asarray(flat, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        if len(offsets) != len(roots) + 1 or (len(offsets) and offsets[-1] != len(flat)):
            raise SamplingError("inconsistent corpus arrays")
        corpus = cls(sampler)
        corpus._roots = [int(r) for r in roots]
        corpus._members = [
            flat[offsets[i]: offsets[i + 1]] for i in range(len(roots))
        ]
        if keys is not None:
            keys = np.asarray(keys, dtype=np.int64)
            if keys.shape != (len(roots),):
                raise SamplingError(
                    f"corpus keys must have shape ({len(roots)},), got "
                    f"{keys.shape}"
                )
            corpus._keys = [int(k) for k in keys]
        else:
            corpus._keys = None
        corpus._flat_cache = (flat, offsets)
        corpus._roots_cache = roots
        return corpus

    @property
    def n_nodes(self) -> int:
        return self._sampler.network.n

    @property
    def roots(self) -> np.ndarray:
        if self._roots_cache is None:
            self._roots_cache = np.asarray(self._roots, dtype=np.int64)
        return self._roots_cache

    def members(self, i: int) -> np.ndarray:
        """The node set of sample ``i``."""
        return self._members[i]

    def ensure(self, count: int) -> int:
        """Grow the corpus to at least ``count`` samples; returns new size.

        Samplers exposing ``sample_many_flat`` (both :class:`RRSampler`
        and :class:`~repro.ris.parallel.ParallelRRSampler`) grow via one
        flat batch append, so a parallel batch is transferred and stored
        without per-set copies.  Coupled samplers grow via
        ``sample_batch``, which also yields the per-slot keys a keyed
        corpus records (fresh keys never collide with stored ones — the
        sampler's counter is advanced past them first).
        """
        if count < 0:
            raise SamplingError(f"sample count must be non-negative, got {count}")
        missing = count - len(self._roots)
        if missing > 0:
            batch_fn = getattr(self._sampler, "sample_batch", None)
            flat_fn = getattr(self._sampler, "sample_many_flat", None)
            if batch_fn is not None:
                self._sampler.draw_count = max(
                    self._sampler.draw_count, self.next_key()
                )
                keys, roots, flat, offsets = batch_fn(missing)
                self.append_flat(
                    roots, flat, offsets,
                    keys=keys if self._keys is not None else None,
                )
            elif flat_fn is not None:
                self.append_flat(*flat_fn(missing))
            else:
                roots, members = self._sampler.sample_many(missing)
                self._roots.extend(int(r) for r in roots)
                self._members.extend(members)
                self._invalidate()
        return len(self._roots)

    def append_flat(
        self,
        roots: np.ndarray,
        flat: np.ndarray,
        offsets: np.ndarray,
        keys: np.ndarray | None = None,
    ) -> int:
        """Append a batch of samples in flat form; returns new size.

        ``flat`` / ``offsets`` follow the :meth:`flat` layout over the
        batch.  Member arrays are stored as views into the batch, so the
        append is O(batch) regardless of per-set sizes.  A keyed corpus
        requires one key per appended slot (and a keyless one rejects
        keys) — silently dropping them would break regeneration later.
        """
        roots = np.asarray(roots, dtype=np.int64)
        flat = np.asarray(flat, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        if len(offsets) != len(roots) + 1 or (
            len(offsets) and offsets[-1] != len(flat)
        ):
            raise SamplingError("inconsistent flat batch arrays")
        if (keys is not None) != (self._keys is not None):
            raise SamplingError(
                "keyed corpora require one key per appended slot; "
                "keyless corpora accept none"
            )
        if keys is not None:
            keys = np.asarray(keys, dtype=np.int64)
            if keys.shape != (len(roots),):
                raise SamplingError(
                    f"batch keys must have shape ({len(roots)},), got "
                    f"{keys.shape}"
                )
            self._keys.extend(int(k) for k in keys)
        self._roots.extend(int(r) for r in roots)
        self._members.extend(
            flat[offsets[i] : offsets[i + 1]] for i in range(len(roots))
        )
        self._invalidate()
        return len(self._roots)

    # -- streaming maintenance ----------------------------------------

    @property
    def sampler(self) -> RRSampler:
        return self._sampler

    @property
    def keys(self) -> np.ndarray | None:
        """Per-slot randomness keys (``None`` for keyless corpora)."""
        if self._keys is None:
            return None
        return np.asarray(self._keys, dtype=np.int64)

    @property
    def keyed(self) -> bool:
        return self._keys is not None

    def next_key(self) -> int:
        """The smallest key larger than every stored one (0 if empty)."""
        if not self._keys:
            return 0
        return max(self._keys) + 1

    def replace_sampler(self, sampler) -> None:
        """Swap the sampler (after a graph update) for future growth.

        The replacement must cover the same node universe — sample ids
        and member node ids stay meaningful across the swap — and a
        keyed corpus only accepts another coupled sampler (stored keys
        are meaningless to a sequential one).
        """
        if sampler.network.n != self._sampler.network.n:
            raise SamplingError(
                f"replacement sampler covers {sampler.network.n} nodes, "
                f"corpus expects {self._sampler.network.n}"
            )
        if self._keys is not None and not getattr(sampler, "coupled", False):
            raise SamplingError(
                "keyed corpus requires a coupled replacement sampler"
            )
        self._sampler = sampler

    def regenerate(self, sample_ids) -> int:
        """Re-run the given slots in place with their stored keys.

        The coupled streaming-refresh path: after
        :meth:`replace_sampler` swapped in a coupled sampler over the
        updated network, each listed slot is re-drawn as a pure function
        of ``(seed, key, new graph)``.  Slots keep their position (and,
        since the root is derived from the key, their root), so no
        shuffle is needed afterwards — every slot remains an i.i.d. RR
        set of the new graph.  Returns how many slots were re-run.
        """
        if self._keys is None:
            raise SamplingError(
                "regeneration requires a keyed corpus (coupled sampler)"
            )
        ids = np.unique(np.asarray(sample_ids, dtype=np.int64).reshape(-1))
        if len(ids) == 0:
            return 0
        if ids[0] < 0 or ids[-1] >= len(self._roots):
            raise SamplingError(
                f"sample ids must be in [0, {len(self._roots)}), got "
                f"range [{ids[0]}, {ids[-1]}]"
            )
        regen = self._sampler.regenerate
        for i in ids:
            root, members = regen(self._keys[i])
            self._roots[i] = int(root)
            self._members[i] = members
        self._invalidate()
        return int(len(ids))

    def samples_touching(self, nodes) -> np.ndarray:
        """Ids of samples whose member sets intersect ``nodes`` (sorted).

        This is the dirty-sample query of the streaming update path: a
        sample whose reverse-reach set avoids every endpoint of a changed
        edge would have flipped exactly the same coins on the new graph,
        so only the returned samples need retiring.
        """
        nodes = np.unique(np.asarray(nodes, dtype=np.int64).reshape(-1))
        if len(nodes) == 0 or not self._roots:
            return np.empty(0, dtype=np.int64)
        if nodes[0] < 0 or nodes[-1] >= self.n_nodes:
            raise SamplingError(
                f"node ids must be in [0, {self.n_nodes}), got range "
                f"[{nodes[0]}, {nodes[-1]}]"
            )
        inv_samples, inv_offsets = self.inverted()
        parts = [
            inv_samples[inv_offsets[u]: inv_offsets[u + 1]] for u in nodes
        ]
        return np.unique(np.concatenate(parts))

    def extend_touching(self, count: int, nodes) -> int:
        """Append ``count`` samples conditioned on touching ``nodes``.

        Rejection-samples from the current sampler, keeping only draws
        whose reverse-reach set intersects ``nodes``; returns the new
        corpus size.  This is the distribution streaming *replacements*
        must come from: retirement keeps exactly the samples that avoid
        the dirty set, so topping the pool back up with unconditioned
        draws would over-represent dirty-avoiding sets — the mixture
        gives each avoiding set probability ``P(S)·(2 - P(avoid))``
        instead of ``P(S)``.  Conditioning the replacements on touching
        a dirty node restores the exact RR-set law, because the avoid
        probability is identical on the old and new graphs:
        ``P(S, avoid) + P(touch)·P(S | touch) = P(S)``.

        Expected cost is ``count / P(touch)`` draws.  Since a retirement
        removes ``|corpus|·P(touch)`` samples in expectation, refilling
        costs about one corpus-sized pass in the worst case — still far
        cheaper than a rebuild, which adds the whole pivot phase on top.
        """
        if count < 0:
            raise SamplingError(
                f"sample count must be non-negative, got {count}"
            )
        if self._keys is not None:
            raise SamplingError(
                "keyed corpora refresh via regenerate(); conditioned "
                "growth is the keyless fallback"
            )
        nodes = np.unique(np.asarray(nodes, dtype=np.int64).reshape(-1))
        if count and len(nodes) == 0:
            raise SamplingError(
                "conditioned growth needs a non-empty touch set"
            )
        if len(nodes) and (nodes[0] < 0 or nodes[-1] >= self.n_nodes):
            raise SamplingError(
                f"node ids must be in [0, {self.n_nodes}), got range "
                f"[{nodes[0]}, {nodes[-1]}]"
            )
        mask = np.zeros(self.n_nodes, dtype=bool)
        mask[nodes] = True
        remaining = count
        drawn = 0
        accepted = 0
        while remaining > 0:
            if drawn:
                # Adapt to the measured acceptance rate (floored so a
                # run of rejections cannot blow the batch size up).
                rate = max(accepted / drawn, 1e-4)
                batch = int(min(max(128, np.ceil(remaining / rate * 1.2)),
                                1 << 18))
            else:
                # Start optimistic: the true acceptance rate is unknown
                # (it is the fraction of RR sets *touching* the dirty
                # set, usually far above the |nodes|/n floor), and
                # over-drawing wastes a multiple of the refill cost.
                # Worst case this costs one extra loop iteration.
                batch = max(128, 2 * remaining)
            flat_fn = getattr(self._sampler, "sample_many_flat", None)
            if flat_fn is not None:
                roots_b, flat_b, offs_b = flat_fn(batch)
            else:
                roots_list, members = self._sampler.sample_many(batch)
                roots_b = np.asarray(roots_list, dtype=np.int64)
                sizes_b = np.asarray([len(m) for m in members],
                                     dtype=np.int64)
                offs_b = np.zeros(len(sizes_b) + 1, dtype=np.int64)
                np.cumsum(sizes_b, out=offs_b[1:])
                flat_b = (np.concatenate(members) if members
                          else np.empty(0, dtype=np.int64))
            drawn += len(roots_b)
            sizes = np.diff(offs_b)
            # Per-sample OR over the member hits; the appended sentinel
            # keeps the trailing reduceat index in range, and empty
            # samples (whose reduceat window leaks into the next row)
            # are forced to False afterwards.
            hits = np.append(mask[flat_b], False)
            touched = np.logical_or.reduceat(hits, offs_b[:-1])
            touched[sizes == 0] = False
            take = np.flatnonzero(touched)[:remaining]
            accepted += len(take)
            if len(take) == 0:
                continue
            row_take = np.zeros(len(roots_b), dtype=bool)
            row_take[take] = True
            sub_sizes = sizes[take]
            sub_offsets = np.zeros(len(take) + 1, dtype=np.int64)
            np.cumsum(sub_sizes, out=sub_offsets[1:])
            self.append_flat(
                roots_b[take],
                flat_b[np.repeat(row_take, sizes)],
                sub_offsets,
            )
            remaining -= len(take)
        return len(self._roots)

    def retire(self, sample_ids) -> int:
        """Drop the given samples; survivors keep their relative order.

        Returns how many were retired.  Sample ids shift down to stay
        dense (the estimator treats the corpus as an exchangeable pool —
        identity of individual samples carries no meaning), and all three
        caches are invalidated together.
        """
        ids = np.unique(np.asarray(sample_ids, dtype=np.int64).reshape(-1))
        if len(ids) == 0:
            return 0
        if ids[0] < 0 or ids[-1] >= len(self._roots):
            raise SamplingError(
                f"sample ids must be in [0, {len(self._roots)}), got "
                f"range [{ids[0]}, {ids[-1]}]"
            )
        keep = np.ones(len(self._roots), dtype=bool)
        keep[ids] = False
        self._roots = [r for r, k in zip(self._roots, keep) if k]
        self._members = [m for m, k in zip(self._members, keep) if k]
        if self._keys is not None:
            self._keys = [c for c, k in zip(self._keys, keep) if k]
        self._invalidate()
        return int(len(ids))

    def shuffle(self, rng: np.random.Generator) -> None:
        """Randomly permute sample order (all three caches drop).

        The streaming refresh retires dirty-touching samples in place —
        survivors keep the head of the pool — and appends replacements at
        the tail.  Queries read a *prefix* of the corpus, so without a
        permutation a prefix would over-represent dirty-avoiding
        survivors even though the pool as a whole is distributed
        correctly.  A uniform permutation makes the slots exchangeable
        again: every prefix is a uniform subsample of the pool.
        """
        perm = rng.permutation(len(self._roots))
        self._roots = [self._roots[i] for i in perm]
        self._members = [self._members[i] for i in perm]
        if self._keys is not None:
            self._keys = [self._keys[i] for i in perm]
        self._invalidate()

    def _invalidate(self) -> None:
        self._flat_cache = None
        self._roots_cache = None
        self._inverted_cache = None

    def flat(self) -> tuple[np.ndarray, np.ndarray]:
        """``(flat_members, offsets)`` over the whole corpus.

        ``flat_members[offsets[i]:offsets[i+1]]`` is sample ``i``'s node
        set.  Cached until the corpus grows.
        """
        if self._flat_cache is None:
            sizes = np.asarray([len(m) for m in self._members], dtype=np.int64)
            offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
            np.cumsum(sizes, out=offsets[1:])
            flat = (
                np.concatenate(self._members)
                if self._members
                else np.empty(0, dtype=np.int64)
            )
            self._flat_cache = (flat, offsets)
        return self._flat_cache

    def inverted(self) -> tuple[np.ndarray, np.ndarray]:
        """``(inv_samples, inv_offsets)`` — the node -> samples index.

        ``inv_samples[inv_offsets[u]:inv_offsets[u+1]]`` lists the ids of
        the samples containing node ``u``, in ascending order — so a
        prefix query can cut each list with one binary search.  Cached
        until the corpus grows; building it is the dominant cost of the
        first query, so index construction calls this eagerly.
        """
        if self._inverted_cache is None:
            flat, offsets = self.flat()
            n_samples = len(self._roots)
            sample_of_entry = np.repeat(
                np.arange(n_samples, dtype=np.int64), np.diff(offsets)
            )
            order = np.argsort(flat, kind="stable")
            inv_samples = sample_of_entry[order]
            inv_offsets = np.zeros(self.n_nodes + 1, dtype=np.int64)
            np.add.at(inv_offsets, flat + 1, 1)
            np.cumsum(inv_offsets, out=inv_offsets)
            self._inverted_cache = (inv_samples, inv_offsets)
        return self._inverted_cache

    def average_size(self) -> float:
        """Mean RR-set size (diagnostic; drives memory/time estimates)."""
        if not self._members:
            return 0.0
        flat, _ = self.flat()
        return len(flat) / len(self._members)

    def total_entries(self, prefix: int | None = None) -> int:
        """Total member entries in the first ``prefix`` samples."""
        flat, offsets = self.flat()
        if prefix is None:
            return int(offsets[-1])
        prefix = min(prefix, len(self))
        return int(offsets[prefix])
