"""Lower bounds on the optimal DAIM spread ``OPT_q^k``.

RIS-DA's sample size is inversely proportional to a lower bound of
``OPT_q^k`` (Lemma 7), so tighter bounds mean exponentially cheaper
indexes.  Two estimators, matching the paper's Figure 5 comparison:

* :func:`topk_sum` — the naive bound: the weight sum of the ``k``
  heaviest nodes (any k-set's spread at least covers its own seeds);
* :func:`lb_est` — Algorithm 3: pick ``k`` promising seeds (by weight x
  out-degree), then add the influence they push to their two-hop
  neighbourhood through paths of length <= 2.

Our :func:`lb_est` keeps only pairwise *edge-disjoint* paths per target
(at most one length-2 path per intermediate node, the strongest one), so
the independent-union formula ``1 - prod(1 - Pr(path))`` is exactly the
probability that some retained path is live — a genuine lower bound on the
activation probability, making ``L_p^k <= I_p(S) <= OPT_p^k`` hold with
certainty, as the paper requires ("the algorithm returns a lower bound of
``OPT_p^k`` with 100% probability").
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.exceptions import QueryError
from repro.network.graph import GeoSocialNetwork


def topk_sum(weights: np.ndarray, k: int) -> float:
    """TOPK-SUM baseline: the sum of the ``k`` largest node weights."""
    weights = np.asarray(weights, dtype=float)
    if not 0 < k <= len(weights):
        raise QueryError(f"k must be in [1, {len(weights)}], got {k}")
    if k == len(weights):
        return float(weights.sum())
    part = np.partition(weights, len(weights) - k)
    return float(part[len(weights) - k :].sum())


def lb_est(
    network: GeoSocialNetwork,
    weights: np.ndarray,
    k: int,
    w_max: float | None = None,
) -> float:
    """Algorithm 3 (LB-EST): two-hop lower bound for ``OPT_q^k``.

    Parameters
    ----------
    network:
        The geo-social network.
    weights:
        Node weights ``w(v, q)`` for the pivot/query location.
    k:
        Seed budget.
    w_max:
        Maximum possible weight (the paper's ``c``); only used to scale the
        seed-ranking score, so it may be omitted.

    Returns the lower bound ``L_q^k``.
    """
    weights = np.asarray(weights, dtype=float)
    n = network.n
    if weights.shape != (n,):
        raise QueryError(f"weights must have shape ({n},), got {weights.shape}")
    if not 0 < k <= n:
        raise QueryError(f"k must be in [1, {n}], got {k}")
    if w_max is None:
        w_max = float(weights.max()) if len(weights) else 1.0
    if w_max <= 0:
        raise QueryError(f"w_max must be positive, got {w_max}")

    # Line 1-2: rank by weight x out-degree and take the top k as seeds.
    out_deg = np.asarray(network.out_degree(), dtype=float)
    score = weights * out_deg / w_max
    seeds = np.argpartition(score, n - k)[n - k :]
    seed_set = set(int(s) for s in seeds)

    # Line 4: the seeds themselves are activated with probability 1.
    lower = float(weights[seeds].sum())

    # Lines 5-6: influence to the two-hop neighbourhood through edge-
    # disjoint paths of length <= 2.
    #
    # survive[v] = prod over retained paths P of (1 - Pr(P));
    # the activation lower bound for v is 1 - survive[v].
    survive: Dict[int, float] = {}
    # best_via[x] = the strongest one-hop entry Pr(s, x) into intermediate x
    best_via: Dict[int, float] = {}
    for s in seed_set:
        targets = network.out_neighbors(s)
        probs = network.out_probabilities(s)
        for v, p in zip(targets, probs):
            v = int(v)
            p = float(p)
            if v in seed_set or p <= 0.0:
                continue
            # Direct path s -> v: always edge-disjoint from other retained
            # paths to v (distinct source edge).
            survive[v] = survive.get(v, 1.0) * (1.0 - p)
            if p > best_via.get(v, 0.0):
                best_via[v] = p

    for x, p_in in best_via.items():
        targets = network.out_neighbors(x)
        probs = network.out_probabilities(x)
        for v, p2 in zip(targets, probs):
            v = int(v)
            p2 = float(p2)
            if v in seed_set or v == x or p2 <= 0.0:
                continue
            # Best length-2 path through x; one per intermediate keeps the
            # retained set edge-disjoint.
            survive[v] = survive.get(v, 1.0) * (1.0 - p_in * p2)

    for v, s in survive.items():
        lower += weights[v] * (1.0 - s)
    return float(lower)


def lb_est_lt(
    network: GeoSocialNetwork,
    weights: np.ndarray,
    k: int,
    w_max: float | None = None,
) -> float:
    """Two-hop lower bound of ``OPT_q^k`` under the *linear threshold* model.

    Under LT's live-edge view each node selects at most one in-neighbour,
    with probability ``Pr(u, v)`` for ``u`` — selections of different
    nodes are independent, and a node's alternatives are mutually
    exclusive.  Hence, for seeds ``S``::

        P(u activated) >= a_u := 1                      if u in S
                               sum_{s in S} Pr(s, u)    otherwise
        P(v activated) >= sum_{u in N_in(v)} Pr(u, v) * a_u

    (the outer sum is over mutually exclusive selection events, each
    intersected with an independent event of probability ``a_u``), giving
    a certain lower bound analogous to Algorithm 3's IC version.
    """
    weights = np.asarray(weights, dtype=float)
    n = network.n
    if weights.shape != (n,):
        raise QueryError(f"weights must have shape ({n},), got {weights.shape}")
    if not 0 < k <= n:
        raise QueryError(f"k must be in [1, {n}], got {k}")
    if w_max is None:
        w_max = float(weights.max()) if len(weights) else 1.0
    if w_max <= 0:
        raise QueryError(f"w_max must be positive, got {w_max}")

    out_deg = np.asarray(network.out_degree(), dtype=float)
    score = weights * out_deg / w_max
    seeds = np.argpartition(score, n - k)[n - k :]
    seed_set = set(int(s) for s in seeds)

    # a_u: one-hop activation lower bounds (seeds pinned at 1).
    a = np.zeros(n, dtype=float)
    for s in seed_set:
        targets = network.out_neighbors(s)
        probs = network.out_probabilities(s)
        np.add.at(a, targets, probs)
    np.clip(a, 0.0, 1.0, out=a)
    for s in seed_set:
        a[s] = 1.0

    lower = float(weights[seeds].sum())
    # Two-hop push: v gains sum_u Pr(u, v) * a_u; accumulate over sources
    # with positive a (seeds and their out-neighbours).
    gain = np.zeros(n, dtype=float)
    for u in np.flatnonzero(a > 0.0):
        u = int(u)
        targets = network.out_neighbors(u)
        probs = network.out_probabilities(u)
        np.add.at(gain, targets, probs * a[u])
    np.clip(gain, 0.0, 1.0, out=gain)
    gain[list(seed_set)] = 0.0  # seeds already counted at weight 1
    lower += float(np.dot(gain, weights))
    return lower


def tightness_ratio(
    network: GeoSocialNetwork, weights: np.ndarray, k: int
) -> Tuple[float, float, float]:
    """``(lb_est, topk_sum, ratio)`` — the Figure 5 metric.

    ``ratio = lb_est / topk_sum``; values above 1 mean LB-EST is tighter
    (sample sizes shrink proportionally).
    """
    est = lb_est(network, weights, k)
    naive = topk_sum(weights, k)
    ratio = est / naive if naive > 0 else float("inf")
    return est, naive, ratio
