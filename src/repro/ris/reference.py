"""Pre-vectorization selection kernels, kept as the parity/benchmark oracle.

These are the Algorithm 2 kernels exactly as they shipped before the
flat-array rewrite of :mod:`repro.ris.coverage`: ``np.add.at`` for the
score build, a per-sample Python loop for the coverage decrement, a
``np.partition`` submodular bound recomputed every iteration, and a
per-sample Python loop in the spread estimator.  They are deliberately
*not* exported through ``repro.ris`` — production code must use
:func:`repro.ris.coverage.weighted_greedy_cover` — but they stay in the
tree for two jobs:

* **parity tests** (``tests/ris/test_kernel_parity.py``) prove the
  vectorized kernels select the same seeds with the same gains;
* **benchmarks** (``benchmarks/test_selection_kernels.py``) measure the
  speedup of the new default query path against this baseline and record
  it in ``BENCH_query_kernels.json``.

Float caveat: the reference decrements a node's score once per newly
covered sample (``((s - w1) - w2)``), while the batched kernel subtracts
the pre-summed total (``s - (w1 + w2)``).  The two differ by at most one
rounding step per covered sample, which is why parity tests compare gains
with a tight tolerance instead of bit equality.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.exceptions import QueryError, SamplingError
from repro.ris.corpus import RRCorpus
from repro.ris.coverage import CoverageResult


def reference_greedy_cover(
    corpus: RRCorpus,
    sample_weights: np.ndarray,
    k: int,
    prefix: int | None = None,
) -> CoverageResult:
    """The pre-PR eager greedy: per-iteration bound, per-sample decrements."""
    l = len(corpus) if prefix is None else int(prefix)
    if l <= 0:
        raise SamplingError("cannot run coverage over zero samples")
    if l > len(corpus):
        raise SamplingError(f"prefix {l} exceeds corpus size {len(corpus)}")
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    n = corpus.n_nodes
    if k > n:
        raise QueryError(f"k={k} exceeds node count {n}")
    weights = np.asarray(sample_weights, dtype=float)
    if len(weights) < l:
        raise SamplingError(
            f"need at least {l} sample weights, got {len(weights)}"
        )

    flat, offsets = corpus.flat()
    end = int(offsets[l])
    flat_prefix = flat[:end]
    entry_weight = np.repeat(weights[:l], np.diff(offsets[: l + 1]))

    score = np.zeros(n, dtype=float)
    np.add.at(score, flat_prefix, entry_weight)

    inv_samples, inv_offsets = corpus.inverted()

    covered = np.zeros(l, dtype=bool)
    seeds: List[int] = []
    gains = np.zeros(k, dtype=float)
    covered_weight = 0.0
    opt_upper = float("inf")
    for it in range(k):
        if k < n:
            part = np.partition(score, n - k)[n - k:]
            topk = float(part[part > 0].sum())
        else:
            topk = float(score[score > 0].sum())
        opt_upper = min(opt_upper, covered_weight + topk)
        u = int(np.argmax(score))
        gain = float(score[u])
        if gain <= 0.0:
            break
        seeds.append(u)
        gains[it] = gain
        covered_weight += gain
        u_samples = inv_samples[inv_offsets[u] : inv_offsets[u + 1]]
        cut = int(np.searchsorted(u_samples, l))
        for i in u_samples[:cut]:
            i = int(i)
            if covered[i]:
                continue
            covered[i] = True
            members = flat[offsets[i] : offsets[i + 1]]
            score[members] -= weights[i]
        score[u] = -np.inf
    estimate = n * covered_weight / l
    if k < n:
        part = np.partition(score, n - k)[n - k:]
        topk = float(part[part > 0].sum())
    else:
        topk = float(score[score > 0].sum())
    opt_upper = min(opt_upper, covered_weight + topk)
    return CoverageResult(
        seeds=seeds,
        gains=gains,
        estimate=estimate,
        samples_used=l,
        optimal_coverage_upper=opt_upper,
    )


def reference_budgeted_cover(
    corpus: RRCorpus,
    sample_weights: np.ndarray,
    costs: np.ndarray,
    budget: float,
    prefix: int | None = None,
) -> CoverageResult:
    """Naive cost-aware ratio greedy: full rescan, per-sample decrements.

    The oracle for :func:`repro.ris.coverage.weighted_budgeted_cover`:
    every iteration scans all nodes for the best ``gain / cost`` ratio
    among those still affordable, and decrements covered samples one at
    a time.  Returns a :class:`CoverageResult` (``samples_used`` etc.);
    the spent cost is recoverable as ``costs[seeds].sum()``.

    Shares the production kernel's relative drift stop: once everything
    worth covering is covered, residual scores are float dust (one
    rounding step per decrement) and picking them would make the seed
    list diverge from the vectorized kernel on noise.
    """
    drift_rtol = 1e-12  # matches coverage._DRIFT_RTOL
    l = len(corpus) if prefix is None else int(prefix)
    if l <= 0:
        raise SamplingError("cannot run coverage over zero samples")
    if l > len(corpus):
        raise SamplingError(f"prefix {l} exceeds corpus size {len(corpus)}")
    if not budget > 0:
        raise QueryError(f"budget must be positive, got {budget}")
    n = corpus.n_nodes
    costs = np.asarray(costs, dtype=float)
    if costs.shape != (n,):
        raise QueryError(f"costs must have shape ({n},), got {costs.shape}")
    if not np.all(costs > 0):
        raise QueryError("all node costs must be positive")
    weights = np.asarray(sample_weights, dtype=float)
    if len(weights) < l:
        raise SamplingError(f"need at least {l} sample weights, got {len(weights)}")

    flat, offsets = corpus.flat()
    end = int(offsets[l])
    flat_prefix = flat[:end]
    entry_weight = np.repeat(weights[:l], np.diff(offsets[: l + 1]))
    score = np.zeros(n, dtype=float)
    np.add.at(score, flat_prefix, entry_weight)

    covered = np.zeros(l, dtype=bool)
    selected = np.zeros(n, dtype=bool)
    seeds: List[int] = []
    gains: List[float] = []
    covered_weight = 0.0
    remaining = float(budget)
    while True:
        best_u, best_ratio = -1, -np.inf
        for u in range(n):
            if selected[u] or costs[u] > remaining:
                continue
            ratio = float(score[u]) / float(costs[u])
            if ratio > best_ratio:
                best_u, best_ratio = u, ratio
        if best_u < 0:
            break
        gain = float(score[best_u])
        if gain <= drift_rtol * covered_weight:
            break
        u = best_u
        seeds.append(u)
        gains.append(gain)
        covered_weight += gain
        remaining -= float(costs[u])
        selected[u] = True
        for i in range(l):
            if covered[i]:
                continue
            members = flat[offsets[i] : offsets[i + 1]]
            if u in members:
                covered[i] = True
                score[members] -= weights[i]
        score[u] = -np.inf
    return CoverageResult(
        seeds=seeds,
        gains=np.asarray(gains, dtype=float),
        estimate=n * covered_weight / l,
        samples_used=l,
    )


def reference_estimate_spread(
    corpus: RRCorpus,
    seeds: np.ndarray | List[int],
    sample_weights: np.ndarray,
    prefix: int | None = None,
) -> float:
    """The pre-PR Eq. 9 estimator: a Python loop over every sample."""
    l = len(corpus) if prefix is None else int(prefix)
    if l <= 0 or l > len(corpus):
        raise SamplingError(f"invalid prefix {l} for corpus of {len(corpus)}")
    weights = np.asarray(sample_weights, dtype=float)
    if len(weights) < l:
        raise SamplingError(f"need at least {l} sample weights, got {len(weights)}")
    seed_mask = np.zeros(corpus.n_nodes, dtype=bool)
    seed_mask[np.asarray(list(seeds), dtype=np.int64)] = True
    flat, offsets = corpus.flat()
    covered_weight = 0.0
    for i in range(l):
        members = flat[offsets[i] : offsets[i + 1]]
        if bool(seed_mask[members].any()):
            covered_weight += float(weights[i])
    return corpus.n_nodes * covered_weight / l
