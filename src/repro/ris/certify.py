"""A-posteriori certification of DAIM seed sets.

The Lemma 7 sample size is a *worst-case* requirement; in practice a seed
set is often much better than ``1 - 1/e - eps`` of optimal.  Following the
online-processing idea of OPIM-C (Tang et al., SIGMOD'18) adapted to the
distance-weighted estimator, :func:`certify_seed_set` measures how good a
*given* seed set provably is:

* draw **fresh** RR samples (independent of however the seeds were found);
* lower-bound ``I_q(S)`` with a one-sided Chernoff bound on the observed
  covered weight;
* upper-bound ``OPT_q^k``: the weighted greedy on the fresh samples covers
  at least ``(1 - 1/e)`` of the best sample coverage, and the optimal
  set's true mean is Chernoff-bounded above by its (unknown but dominated)
  sample coverage;
* report ``ratio = LCB(I_q(S)) / UCB(OPT_q^k)``, valid with probability
  at least ``1 - delta`` (a union bound over the two one-sided events).

The standard one-sided bounds for b i.i.d. variables in [0, 1] with
observed sum X and ``a = ln(2/delta)``::

    mean >= ((sqrt(X + 2a/9) - sqrt(a/2))^2 - a/18) / b        (lower)
    mean <= ((sqrt(X + a/2) + sqrt(a/2))^2) / b                (upper)
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import QueryError, SamplingError
from repro.geo.point import PointLike, as_point
from repro.geo.weights import DistanceDecay
from repro.network.graph import GeoSocialNetwork
from repro.ris.corpus import RRCorpus
from repro.ris.coverage import covered_sample_mask, weighted_greedy_cover
from repro.ris.rrset import RRSampler
from repro.ris.sample_size import GREEDY_FACTOR
from repro.rng import RandomLike


@dataclass(frozen=True)
class Certificate:
    """The outcome of :func:`certify_seed_set`.

    ``ratio`` is a certified lower bound on ``I_q(S) / OPT_q^k`` holding
    with probability at least ``1 - delta``; ``spread_lcb`` and
    ``opt_ucb`` are the two sides it is built from; ``samples`` the
    fresh-sample count used; ``elapsed`` wall-clock seconds.
    """

    ratio: float
    spread_lcb: float
    opt_ucb: float
    samples: int
    delta: float
    elapsed: float


def mean_lower_bound(x: float, b: int, a: float) -> float:
    """One-sided Chernoff LCB of the mean of b [0,1]-variables summing x."""
    if b <= 0:
        raise SamplingError(f"need a positive sample count, got {b}")
    if x < 0 or a <= 0:
        raise SamplingError(f"invalid bound inputs x={x}, a={a}")
    root = math.sqrt(x + 2.0 * a / 9.0) - math.sqrt(a / 2.0)
    value = (root * root - a / 18.0) / b
    return max(value, 0.0)


def mean_upper_bound(x: float, b: int, a: float) -> float:
    """One-sided Chernoff UCB of the mean of b [0,1]-variables summing x."""
    if b <= 0:
        raise SamplingError(f"need a positive sample count, got {b}")
    if x < 0 or a <= 0:
        raise SamplingError(f"invalid bound inputs x={x}, a={a}")
    root = math.sqrt(x + a / 2.0) + math.sqrt(a / 2.0)
    return min((root * root) / b, 1.0)


def certify_seed_set(
    network: GeoSocialNetwork,
    query_location: PointLike,
    seeds: Sequence[int],
    decay: DistanceDecay | None = None,
    k: int | None = None,
    n_samples: int = 20_000,
    delta: float = 0.01,
    diffusion: str = "ic",
    seed: RandomLike = None,
) -> Certificate:
    """Certify the quality of ``seeds`` for the query at ``query_location``.

    ``k`` defaults to ``len(seeds)``; pass a larger ``k`` to certify
    against a larger-budget optimum (a stricter test).  ``seeds`` must
    have been selected *without* looking at this function's fresh samples
    — any seed set qualifies, including ones from MIA-DA or heuristics.
    """
    seed_list = sorted(set(int(s) for s in seeds))
    if not seed_list:
        raise QueryError("cannot certify an empty seed set")
    if k is None:
        k = len(seed_list)
    if k < len(seed_list):
        raise QueryError(
            f"k={k} is smaller than the seed set ({len(seed_list)})"
        )
    if not 0 < delta < 1:
        raise SamplingError(f"delta must be in (0, 1), got {delta}")
    if n_samples <= 1:
        raise SamplingError(f"need at least 2 samples, got {n_samples}")
    decay = decay if decay is not None else DistanceDecay()

    start = time.perf_counter()
    q = as_point(query_location)
    corpus = RRCorpus(RRSampler(network, seed=seed, diffusion=diffusion))
    corpus.ensure(n_samples)
    roots = corpus.roots
    omega = decay.weights(network.coords[roots], q)
    w_max = decay.w_max
    n = network.n
    a = math.log(2.0 / delta)  # each one-sided event gets delta / 2

    # --- LCB of I_q(S): observed normalised covered weight of S. ---------
    covered_mask = covered_sample_mask(corpus, seed_list, n_samples)
    covered = float(omega[:n_samples][covered_mask].sum())
    spread_lcb = n * w_max * mean_lower_bound(covered / w_max, n_samples, a)

    # --- UCB of OPT_q^k via the fresh-sample greedy. ----------------------
    # Two deterministic bounds on the best k-set's sample coverage: the
    # (1 - 1/e) inflation of the greedy's coverage, and the tighter
    # submodular "coverage + top-k residuals" bound tracked per iteration.
    # Certification explicitly requests the bound the serving path skips.
    greedy = weighted_greedy_cover(corpus, omega, k, compute_bound=True)
    opt_cov_samples = min(
        float(greedy.gains.sum()) / GREEDY_FACTOR,
        greedy.optimal_coverage_upper,
    )
    opt_ucb = n * w_max * mean_upper_bound(
        opt_cov_samples / w_max, n_samples, a
    )

    ratio = spread_lcb / opt_ucb if opt_ucb > 0 else 0.0
    return Certificate(
        ratio=min(ratio, 1.0),
        spread_lcb=spread_lcb,
        opt_ucb=opt_ucb,
        samples=n_samples,
        delta=delta,
        elapsed=time.perf_counter() - start,
    )
