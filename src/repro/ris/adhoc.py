"""Ad-hoc (index-free) RIS-DA queries.

RIS-DA's index amortises sampling over many queries, but a one-off query
does not need Algorithm 5's worst-case Voronoi sizing: Lemma 7 with the
LB-EST lower bound for *this* query location suffices.  This module runs
that pipeline directly — Algorithm 3 for the bound, Lemma 7 for the
sample size, fresh sampling, Algorithm 2 for selection — trading index
reuse for zero offline cost.  It is the natural reference point for the
index-amortization analysis (see ``examples/index_amortization.py``).
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core.query import SeedResult
from repro.exceptions import QueryError
from repro.geo.weights import DistanceDecay
from repro.network.graph import GeoSocialNetwork
from repro.ris.corpus import RRCorpus
from repro.ris.coverage import weighted_greedy_cover
from repro.ris.lower_bound import lb_est
from repro.ris.rrset import RRSampler
from repro.ris.sample_size import required_sample_size
from repro.rng import RandomLike


def adhoc_ris_query(
    network: GeoSocialNetwork,
    query_location: Sequence[float],
    k: int,
    decay: DistanceDecay | None = None,
    epsilon: float = 0.5,
    delta: float | None = None,
    max_samples: int = 500_000,
    seed: RandomLike = None,
) -> SeedResult:
    """Answer one DAIM query without an index, with the full guarantee.

    Returns a ``1 - 1/e - epsilon`` approximate seed set with probability
    at least ``1 - delta`` (default ``delta = 1/n``), unless the Lemma 7
    size exceeds ``max_samples`` — then the sample pool is truncated and
    the guarantee weakens accordingly (``samples_used`` tells the caller).
    """
    if not 0 < k <= network.n:
        raise QueryError(f"k must be in [1, {network.n}], got {k}")
    decay = decay if decay is not None else DistanceDecay()
    if delta is None:
        delta = 1.0 / network.n

    start = time.perf_counter()
    q = tuple(query_location)
    weights = decay.weights(network.coords, q)
    lower = lb_est(network, weights, k, decay.w_max)
    l = required_sample_size(network.n, k, decay.w_max, epsilon, delta, lower)
    l = min(l, max_samples)

    corpus = RRCorpus(RRSampler(network, seed=seed))
    corpus.ensure(l)
    sample_weights = weights[corpus.roots]
    cover = weighted_greedy_cover(corpus, sample_weights, k)
    return SeedResult(
        seeds=cover.seeds,
        estimate=cover.estimate,
        method="RIS-adhoc",
        elapsed=time.perf_counter() - start,
        samples_used=l,
    )
