"""Sample-size analysis for RIS-DA (Lemmas 4–7, Eq. 12).

The chain of results (Section 4.2):

* Lemma 5 — with ``l1 = 2 n w_max ln(1/delta1) / (eps1^2 OPT)`` samples,
  the greedy's *estimated* spread is close to optimal w.h.p.;
* Lemma 6 — with ``l2 = 2 (1-1/e) n w_max ln(C(n,k)/delta2) / (OPT eps2^2)``
  samples, estimates of all ``C(n, k)`` candidate sets concentrate, so the
  *true* spread of the greedy result is within ``1 - 1/e - eps0`` w.h.p.;
* Lemma 7 / Eq. 12 — choosing ``eps1`` so that ``l1 == l2`` (with
  ``delta1 = delta2 = delta0 / 2``) gives one sample size ``l0`` satisfying
  both, hence a ``1 - 1/e - eps0`` approximation with probability
  ``1 - delta0``.

``OPT_q^k`` is unknown; callers plug in a lower bound (Algorithm 3 or
Lemma 8), which only makes the sample size larger — still sufficient.
"""

from __future__ import annotations

import math

from repro.exceptions import SamplingError

#: 1 - 1/e, the greedy approximation factor of weighted max coverage.
GREEDY_FACTOR = 1.0 - 1.0 / math.e


def log_binomial(n: int, k: int) -> float:
    """``ln C(n, k)`` via lgamma (exact enough for sample-size formulas)."""
    if k < 0 or n < 0 or k > n:
        raise SamplingError(f"invalid binomial arguments C({n}, {k})")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def epsilon_one(epsilon0: float, delta0: float, n: int, k: int) -> float:
    """Eq. 12: the split of the error budget between Lemmas 5 and 6.

    Returns ``eps1``; the Lemma 6 share is
    ``eps2 = eps0 - eps1 * (1 - 1/e)``.
    """
    _validate(epsilon0, delta0, n, k)
    log_term = math.log(2.0 / delta0)
    log_choose = log_binomial(n, k) + log_term  # ln(2 C(n,k) / delta0)
    denom = GREEDY_FACTOR * math.sqrt(log_term) + math.sqrt(
        GREEDY_FACTOR * log_choose
    )
    return epsilon0 * math.sqrt(log_term) / denom


def required_sample_size(
    n: int,
    k: int,
    w_max: float,
    epsilon: float,
    delta: float,
    lower_bound: float,
) -> int:
    """The function ``l(eps, delta, q, k, L_q^k)`` of Section 4.2.

    ``lower_bound`` is a lower bound on ``OPT_q^k`` (the optimal
    distance-aware spread); tighter bounds directly shrink the index.

    Returns the number of RR samples sufficient for Algorithm 2 to return a
    ``1 - 1/e - epsilon`` approximate seed set with probability at least
    ``1 - delta``.
    """
    _validate(epsilon, delta, n, k)
    if w_max <= 0:
        raise SamplingError(f"w_max must be positive, got {w_max}")
    if lower_bound <= 0:
        raise SamplingError(
            f"lower bound of OPT must be positive, got {lower_bound}"
        )
    eps1 = epsilon_one(epsilon, delta, n, k)
    delta1 = delta / 2.0
    l0 = (
        2.0 * n * w_max * math.log(1.0 / delta1)
        / (eps1 * eps1 * lower_bound)
    )
    return int(math.ceil(l0))


def epsilon_two(epsilon0: float, delta0: float, n: int, k: int) -> float:
    """``eps2 = eps0 - eps1 (1 - 1/e)`` — Lemma 6's error share.

    Needed online by Lemma 8's lower-bound transfer factor.
    """
    eps1 = epsilon_one(epsilon0, delta0, n, k)
    return epsilon0 - eps1 * GREEDY_FACTOR


def lemma8_lower_bound(
    pivot_estimate: float,
    distance: float,
    alpha: float,
    epsilon0: float,
    delta0: float,
    n: int,
    k: int,
) -> float:
    """Lemma 8: transfer a pivot's estimated spread to a nearby query.

    ``L_q^k = (1-1/e-eps0) / (1-1/e-eps0+eps2) * exp(-alpha d(p,q)) *
    I_hat_p(S_p^k)`` is a lower bound of ``OPT_q^k`` w.p. ``>= 1-delta0``,
    provided the pivot's seed set was computed with sample size at least
    ``l(eps0, delta0, p, k, OPT_p^k)``.
    """
    if pivot_estimate < 0:
        raise SamplingError(f"pivot estimate must be >= 0, got {pivot_estimate}")
    if distance < 0:
        raise SamplingError(f"distance must be >= 0, got {distance}")
    if alpha < 0:
        raise SamplingError(f"alpha must be >= 0, got {alpha}")
    eps2 = epsilon_two(epsilon0, delta0, n, k)
    numerator = GREEDY_FACTOR - epsilon0
    if numerator <= 0:
        raise SamplingError(
            f"epsilon0={epsilon0} >= 1 - 1/e makes the guarantee vacuous"
        )
    factor = numerator / (numerator + eps2)
    return factor * math.exp(-alpha * distance) * pivot_estimate


def _validate(epsilon: float, delta: float, n: int, k: int) -> None:
    if not 0.0 < epsilon < 1.0:
        raise SamplingError(f"epsilon must be in (0, 1), got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise SamplingError(f"delta must be in (0, 1), got {delta}")
    if n <= 0:
        raise SamplingError(f"n must be positive, got {n}")
    if not 0 < k <= n:
        raise SamplingError(f"k must be in [1, {n}], got {k}")
