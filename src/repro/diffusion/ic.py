"""Independent cascade (IC) forward simulation.

The IC process (Section 2.1): seeds are active at time 0; each newly
activated node gets exactly one chance to activate each currently inactive
out-neighbour ``v`` with probability ``Pr(u, v)``; the cascade stops when a
round activates nobody.

The simulator processes the whole frontier per round with numpy gather +
vectorized coin flips, which keeps the per-round cost at "a few array ops"
instead of a Python loop over edges.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import GraphError
from repro.network.graph import GeoSocialNetwork
from repro.rng import RandomLike, as_generator


def _seed_array(network: GeoSocialNetwork, seeds: Iterable[int]) -> np.ndarray:
    arr = np.asarray(sorted(set(int(s) for s in seeds)), dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() >= network.n):
        raise GraphError(
            f"seed ids must be in [0, {network.n}), got range "
            f"[{arr.min()}, {arr.max()}]"
        )
    return arr


def simulate_ic(
    network: GeoSocialNetwork,
    seeds: Iterable[int],
    seed: RandomLike = None,
) -> np.ndarray:
    """Run one IC cascade; returns a boolean ``(n,)`` activation mask.

    Each edge is examined at most once (when its source first activates),
    exactly matching the model semantics.
    """
    rng = as_generator(seed)
    active = np.zeros(network.n, dtype=bool)
    frontier = _seed_array(network, seeds)
    if frontier.size == 0:
        return active
    active[frontier] = True

    offsets = network.out_offsets
    targets = network.out_targets
    probs = network.out_probs

    while frontier.size:
        # Gather all out-edges of the frontier in one shot.
        starts = offsets[frontier]
        ends = offsets[frontier + 1]
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Build the flat index of candidate edges: for each frontier node,
        # the contiguous CSR slice [start, end).
        idx = np.repeat(starts, counts) + _ragged_arange(counts)
        cand_targets = targets[idx]
        cand_probs = probs[idx]
        hit = rng.random(total) < cand_probs
        newly = cand_targets[hit]
        # Keep only first activations this round.
        newly = np.unique(newly)
        newly = newly[~active[newly]]
        active[newly] = True
        frontier = newly
    return active


def simulate_ic_batch(
    network: GeoSocialNetwork,
    seeds: Iterable[int],
    rounds: int,
    seed: RandomLike = None,
) -> np.ndarray:
    """Run ``rounds`` independent cascades; returns ``(rounds, n)`` bool.

    A convenience wrapper over :func:`simulate_ic` with a single generator,
    used by the Monte-Carlo spread estimators.
    """
    if rounds <= 0:
        raise GraphError(f"rounds must be positive, got {rounds}")
    rng = as_generator(seed)
    seed_list = list(seeds)
    out = np.zeros((rounds, network.n), dtype=bool)
    for r in range(rounds):
        out[r] = simulate_ic(network, seed_list, rng)
    return out


def activation_frequency(
    network: GeoSocialNetwork,
    seeds: Sequence[int],
    rounds: int,
    seed: RandomLike = None,
) -> np.ndarray:
    """Empirical per-node activation probability ``I(S, v)`` estimates.

    The Monte-Carlo counterpart of the exact activation probabilities in
    :mod:`repro.diffusion.possible_world`.
    """
    masks = simulate_ic_batch(network, seeds, rounds, seed)
    return masks.mean(axis=0)


def _ragged_arange(counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(c)`` for each c in counts, without Python loops.

    Example: counts [2, 0, 3] -> [0, 1, 0, 1, 2].
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Zero-count groups contribute no elements, so drop them up front —
    # this keeps the boundary arithmetic simple and correct.
    nz = counts[counts > 0]
    out = np.ones(total, dtype=np.int64)
    out[0] = 0
    boundaries = np.cumsum(nz)[:-1]
    out[boundaries] = 1 - nz[:-1]
    return np.cumsum(out)
