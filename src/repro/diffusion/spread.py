"""Monte-Carlo influence-spread estimators.

``I(S)`` (unweighted, classical) and ``I_q(S)`` (distance-aware, the paper's
Definition 1) are both #P-hard to compute exactly; the paper evaluates
returned seed sets by averaging 10 000 random cascades.  These estimators do
the same, with a configurable round count and a standard-error estimate so
callers can reason about precision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import GraphError
from repro.diffusion.ic import simulate_ic
from repro.geo.weights import DistanceDecay
from repro.network.graph import GeoSocialNetwork
from repro.rng import RandomLike, as_generator


@dataclass(frozen=True)
class SpreadEstimate:
    """A Monte-Carlo spread estimate with uncertainty.

    ``value`` is the sample mean over rounds; ``std_error`` the standard
    error of that mean; ``rounds`` the number of cascades simulated.
    """

    value: float
    std_error: float
    rounds: int

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """A normal-approximation confidence interval (default ~95%)."""
        return (self.value - z * self.std_error, self.value + z * self.std_error)


def monte_carlo_spread(
    network: GeoSocialNetwork,
    seeds: Iterable[int],
    rounds: int = 1000,
    seed: RandomLike = None,
) -> SpreadEstimate:
    """Classical (unweighted) influence spread ``I(S)`` by simulation."""
    return _mc_spread(network, seeds, weights=None, rounds=rounds, seed=seed)


def monte_carlo_weighted_spread(
    network: GeoSocialNetwork,
    seeds: Iterable[int],
    node_weights: np.ndarray | None = None,
    decay: DistanceDecay | None = None,
    query: Sequence[float] | None = None,
    rounds: int = 1000,
    seed: RandomLike = None,
) -> SpreadEstimate:
    """Distance-aware spread ``I_q(S) = E[sum of w(v, q) over activated v]``.

    Either pass a pre-computed ``node_weights`` vector, or a ``decay``
    function plus ``query`` location to compute it.
    """
    if node_weights is None:
        if decay is None or query is None:
            raise GraphError(
                "provide node_weights, or decay and query, to weight the spread"
            )
        node_weights = decay.weights(network.coords, tuple(query))
    node_weights = np.asarray(node_weights, dtype=float)
    if node_weights.shape != (network.n,):
        raise GraphError(
            f"node_weights must have shape ({network.n},), got {node_weights.shape}"
        )
    return _mc_spread(network, seeds, weights=node_weights, rounds=rounds, seed=seed)


def _mc_spread(
    network: GeoSocialNetwork,
    seeds: Iterable[int],
    weights: np.ndarray | None,
    rounds: int,
    seed: RandomLike,
) -> SpreadEstimate:
    if rounds <= 0:
        raise GraphError(f"rounds must be positive, got {rounds}")
    rng = as_generator(seed)
    seed_list = list(seeds)
    total = 0.0
    total_sq = 0.0
    for _ in range(rounds):
        mask = simulate_ic(network, seed_list, rng)
        value = float(weights[mask].sum()) if weights is not None else float(mask.sum())
        total += value
        total_sq += value * value
    mean = total / rounds
    var = max(total_sq / rounds - mean * mean, 0.0)
    std_error = math.sqrt(var / rounds)
    return SpreadEstimate(value=mean, std_error=std_error, rounds=rounds)
