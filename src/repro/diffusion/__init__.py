"""Influence-diffusion substrate.

* :mod:`repro.diffusion.ic` — the independent cascade model (the paper's
  diffusion model): single cascades and batched simulation;
* :mod:`repro.diffusion.lt` — the linear threshold model (extension);
* :mod:`repro.diffusion.spread` — Monte-Carlo influence-spread estimators,
  unweighted and distance-weighted;
* :mod:`repro.diffusion.possible_world` — exact spread by possible-world
  enumeration for tiny graphs (ground truth in tests).
"""

from repro.diffusion.ic import simulate_ic, simulate_ic_batch
from repro.diffusion.lt import (
    exact_lt_activation_probabilities,
    exact_lt_spread,
    lt_spread,
    simulate_lt,
)
from repro.diffusion.possible_world import (
    exact_activation_probabilities,
    exact_spread,
    exact_weighted_spread,
)
from repro.diffusion.spread import (
    SpreadEstimate,
    monte_carlo_spread,
    monte_carlo_weighted_spread,
)

__all__ = [
    "SpreadEstimate",
    "exact_activation_probabilities",
    "exact_lt_activation_probabilities",
    "exact_lt_spread",
    "exact_spread",
    "exact_weighted_spread",
    "lt_spread",
    "monte_carlo_spread",
    "monte_carlo_weighted_spread",
    "simulate_ic",
    "simulate_ic_batch",
    "simulate_lt",
]
