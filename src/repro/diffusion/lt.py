"""Linear threshold (LT) diffusion — the paper's "other" classical model.

The DAIM paper focuses on IC, but defines its framework over a generic
propagation model and cites LT as the standard alternative.  We implement LT
so that downstream users can weight LT spreads with the same
distance-decay machinery (the diffusion model only affects ``I(S, v)``; the
distance weighting is orthogonal).

LT semantics: each node ``v`` draws a threshold ``theta_v ~ U[0, 1]``; the
in-edge weights are ``b(u, v)`` with ``sum_u b(u, v) <= 1``; ``v`` activates
once the active in-neighbour weight reaches its threshold.  Our edge
probabilities double as LT weights; weighted-cascade probabilities
(``1/indeg``) sum to exactly 1 per node, the canonical LT setting.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.exceptions import GraphError
from repro.network.graph import GeoSocialNetwork
from repro.rng import RandomLike, as_generator


def simulate_lt(
    network: GeoSocialNetwork,
    seeds: Iterable[int],
    seed: RandomLike = None,
) -> np.ndarray:
    """Run one LT cascade; returns a boolean ``(n,)`` activation mask.

    Raises :class:`GraphError` when any node's in-edge weights exceed 1
    (the model requires ``sum_u b(u, v) <= 1``).
    """
    _validate_lt_weights(network)
    rng = as_generator(seed)
    active = np.zeros(network.n, dtype=bool)
    frontier = np.asarray(sorted(set(int(s) for s in seeds)), dtype=np.int64)
    if frontier.size == 0:
        return active
    if frontier.min() < 0 or frontier.max() >= network.n:
        raise GraphError("seed ids out of range")
    active[frontier] = True

    thresholds = rng.random(network.n)
    # Accumulated active in-neighbour weight per node.
    pressure = np.zeros(network.n, dtype=float)

    while frontier.size:
        # Push each frontier node's out-edge weights onto its targets.
        starts = network.out_offsets[frontier]
        ends = network.out_offsets[frontier + 1]
        counts = ends - starts
        if int(counts.sum()) == 0:
            break
        idx = np.concatenate(
            [np.arange(s, e) for s, e in zip(starts, ends) if e > s]
        ) if counts.max() > 0 else np.empty(0, dtype=np.int64)
        targets = network.out_targets[idx]
        weights = network.out_probs[idx]
        np.add.at(pressure, targets, weights)
        crossed = (~active) & (pressure >= thresholds)
        newly = np.flatnonzero(crossed)
        active[newly] = True
        frontier = newly
    return active


def lt_spread(
    network: GeoSocialNetwork,
    seeds: Iterable[int],
    rounds: int = 1000,
    node_weights: np.ndarray | None = None,
    seed: RandomLike = None,
) -> float:
    """Monte-Carlo (optionally distance-weighted) LT spread."""
    if rounds <= 0:
        raise GraphError(f"rounds must be positive, got {rounds}")
    rng = as_generator(seed)
    seed_list = list(seeds)
    if node_weights is not None:
        node_weights = np.asarray(node_weights, dtype=float)
        if node_weights.shape != (network.n,):
            raise GraphError(
                f"node_weights must have shape ({network.n},), got {node_weights.shape}"
            )
    total = 0.0
    for _ in range(rounds):
        mask = simulate_lt(network, seed_list, rng)
        if node_weights is None:
            total += float(mask.sum())
        else:
            total += float(node_weights[mask].sum())
    return total / rounds


#: Enumeration cap for exact LT computation: the live-edge space has
#: prod(indeg(v) + 1) instances; 200k keeps tests instant.
MAX_LT_INSTANCES = 200_000


def exact_lt_activation_probabilities(
    network: GeoSocialNetwork, seeds: Iterable[int]
) -> np.ndarray:
    """Exact per-node LT activation probabilities by live-edge enumeration.

    Kempe et al.'s equivalence: LT is distributed identically to the
    live-edge model where each node independently selects at most one
    in-edge (edge ``(u, v)`` with probability ``Pr(u, v)``, none with the
    remaining mass).  For tiny graphs we enumerate the full product space
    — the ground truth the LT simulator and LT RR sets are tested against.
    """
    _validate_lt_weights(network)
    seed_arr = sorted(set(int(s) for s in seeds))
    if seed_arr and (min(seed_arr) < 0 or max(seed_arr) >= network.n):
        raise GraphError("seed ids out of range")
    n = network.n
    choices: list[list[tuple[int | None, float]]] = []
    total_instances = 1
    for v in range(n):
        opts: list[tuple[int | None, float]] = []
        srcs = network.in_neighbors(v)
        probs = network.in_probabilities(v)
        mass = 0.0
        for u, p in zip(srcs, probs):
            if p > 0:
                opts.append((int(u), float(p)))
                mass += float(p)
        opts.append((None, max(1.0 - mass, 0.0)))
        choices.append(opts)
        total_instances *= len(opts)
        if total_instances > MAX_LT_INSTANCES:
            raise GraphError(
                f"exact LT enumeration exceeds {MAX_LT_INSTANCES} instances"
            )

    result = np.zeros(n, dtype=float)
    if not seed_arr:
        return result

    def recurse(v: int, prob: float, selected: list[int | None]) -> None:
        if prob == 0.0:
            return
        if v == n:
            # Live-edge instance fixed: forward reachability from seeds
            # along the selected edges (selected[x] -> x).
            mask = np.zeros(n, dtype=bool)
            mask[seed_arr] = True
            changed = True
            while changed:
                changed = False
                for x in range(n):
                    u = selected[x]
                    if not mask[x] and u is not None and mask[u]:
                        mask[x] = True
                        changed = True
            result[mask] += prob
            return
        for u, p in choices[v]:
            selected.append(u)
            recurse(v + 1, prob * p, selected)
            selected.pop()

    recurse(0, 1.0, [])
    return result


def exact_lt_spread(network: GeoSocialNetwork, seeds: Iterable[int]) -> float:
    """Exact unweighted LT spread (tiny graphs only)."""
    return float(exact_lt_activation_probabilities(network, seeds).sum())


def _validate_lt_weights(network: GeoSocialNetwork, tol: float = 1e-9) -> None:
    incoming = np.zeros(network.n, dtype=float)
    targets = np.repeat(np.arange(network.n), np.diff(network.in_offsets))
    np.add.at(incoming, targets, network.in_probs)
    worst = float(incoming.max()) if network.n else 0.0
    if worst > 1.0 + tol:
        raise GraphError(
            f"LT requires per-node in-weights <= 1; max is {worst:.6f}. "
            "Use weighted-cascade probabilities or rescale."
        )
