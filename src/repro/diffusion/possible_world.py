"""Exact influence computation by possible-world enumeration.

Under the IC model the network induces a distribution over deterministic
"live-edge" graphs: each edge survives independently with its probability
(Section 2.1, Lemma 1).  For tiny graphs (≲ 20 edges) we can enumerate all
``2^m`` worlds and compute influence quantities *exactly* — the ground truth
against which tests validate every estimator in the library:

* the Monte-Carlo simulators (:mod:`repro.diffusion.ic`, ``spread``);
* the RIS unbiased estimator (Lemma 3);
* the MIA approximation's direction (it never exceeds exact reachability
  through the chosen paths).
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import GraphError
from repro.network.graph import GeoSocialNetwork

#: Enumeration limit: 2^20 worlds is ~1M graph traversals, the practical cap.
MAX_EXACT_EDGES = 20


def exact_activation_probabilities(
    network: GeoSocialNetwork, seeds: Iterable[int]
) -> np.ndarray:
    """Exact ``I(S, v)`` for every node ``v`` — probability S activates v.

    Raises :class:`GraphError` when the graph has more than
    :data:`MAX_EXACT_EDGES` edges.
    """
    m = network.m
    if m > MAX_EXACT_EDGES:
        raise GraphError(
            f"exact enumeration supports at most {MAX_EXACT_EDGES} edges, got {m}"
        )
    seed_arr = np.asarray(sorted(set(int(s) for s in seeds)), dtype=np.int64)
    if seed_arr.size and (seed_arr.min() < 0 or seed_arr.max() >= network.n):
        raise GraphError("seed ids out of range")

    edges, probs = network.edge_array()
    result = np.zeros(network.n, dtype=float)
    if seed_arr.size == 0:
        return result

    for alive in product((False, True), repeat=m):
        alive_arr = np.asarray(alive, dtype=bool)
        p_world = float(
            np.prod(np.where(alive_arr, probs, 1.0 - probs))
        )
        if p_world == 0.0:
            continue
        reached = _reachable(network.n, edges[alive_arr], seed_arr)
        result[reached] += p_world
    return result


def exact_spread(network: GeoSocialNetwork, seeds: Iterable[int]) -> float:
    """Exact classical influence spread ``I(S) = sum_v I(S, v)``."""
    return float(exact_activation_probabilities(network, seeds).sum())


def exact_weighted_spread(
    network: GeoSocialNetwork,
    seeds: Iterable[int],
    node_weights: Sequence[float] | np.ndarray,
) -> float:
    """Exact distance-aware spread ``I_q(S) = sum_v I(S, v) * w(v, q)``."""
    w = np.asarray(node_weights, dtype=float)
    if w.shape != (network.n,):
        raise GraphError(
            f"node_weights must have shape ({network.n},), got {w.shape}"
        )
    return float((exact_activation_probabilities(network, seeds) * w).sum())


def _reachable(n: int, live_edges: np.ndarray, seeds: np.ndarray) -> np.ndarray:
    """Boolean mask of nodes reachable from ``seeds`` via ``live_edges``."""
    adj: dict[int, list[int]] = {}
    for u, v in live_edges:
        adj.setdefault(int(u), []).append(int(v))
    mask = np.zeros(n, dtype=bool)
    stack = list(int(s) for s in seeds)
    mask[stack] = True
    while stack:
        u = stack.pop()
        for v in adj.get(u, ()):
            if not mask[v]:
                mask[v] = True
                stack.append(v)
    return mask
