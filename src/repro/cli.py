"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
generate
    Write a synthetic dataset (edge list + check-ins) to disk.
stats
    Print summary statistics of a dataset or file pair.
build-ris
    Build a RIS-DA index over a dataset and save it to ``.npz``.
build-mia
    Build a MIA-DA index over a dataset and save it to ``.npz``.
update
    Apply a JSONL stream of edge/check-in deltas to a saved index —
    incremental maintenance instead of a rebuild — and save the updated
    index plus the post-update network files.
query
    Answer a DAIM query with MIA-DA (indexed or built on the fly), RIS-DA
    (indexed or ad-hoc), or a heuristic.
serve-batch
    Answer a JSONL batch of queries against a prebuilt index through the
    serving engine (result cache, thread pool, timeouts, metrics).  Each
    line may carry a ``kind`` field — ``point`` (default), ``trajectory``,
    ``targeted``, ``budgeted`` or ``heuristic`` (see
    :mod:`repro.core.querykind`).  With ``--processes N`` the batch is
    sharded across N pre-forked worker processes that attach the index
    zero-copy via shared memory.
serve-http
    Expose a prebuilt index over HTTP: ``/query``, ``/metrics``
    (Prometheus text format), ``/healthz``, ``/slo`` (rolling-window SLO
    burn rates), ``/debug/profile`` (ad-hoc sampling profile) and
    ``POST /admin/update`` (streaming deltas against the live index);
    also accepts ``--processes N``.
diag
    Capture a one-file diagnostics bundle (tar.gz: metrics, Prometheus
    text, SLO state, traces, a span-attributed profile, slow-query tail,
    runtime info) — from a live serve-http server via ``--url``, or
    offline by loading the index and profiling a short self-driven
    workload.
info
    Print the runtime-environment snapshot (python/numpy/BLAS/CPU).

Observability flags (``--log-json``, ``--trace-out``, ``--profile-out``)
are shared by the build and serve commands: ``--log-json`` switches
progress reporting to structured JSON events on stderr, ``--trace-out
PATH`` activates the span tracer and exports the collected trace as JSON
on exit, ``--profile-out PATH`` runs the sampling profiler for the whole
command and writes flamegraph-ready collapsed stacks.  The build
commands add ``--alloc-out PATH`` (tracemalloc top allocation sites);
the serve commands add ``--slo-config PATH`` (JSON SLO objectives — SLO
tracking is on by default with standard objectives).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import signal
import sys
import time
from typing import Optional, Sequence

from repro.core.heuristics import degree_discount, top_weighted_degree
from repro.core.mia_da import MiaDaConfig, MiaDaIndex
from repro.core.persistence import (
    load_index,
    load_mia_index,
    load_ris_index,
    save_mia_index,
    save_ris_index,
)
from repro.core.query import DaimQuery
from repro.core.querykind import query_from_json, query_to_row
from repro.core.ris_da import RisDaConfig, RisDaIndex
from repro.exceptions import DataFormatError, QueryError, ReproError
from repro.geo.weights import DistanceDecay
from repro.network.datasets import DATASET_RECIPES, load_dataset
from repro.network.io import read_network, write_network
from repro.network.stats import summarize
from repro.obs.env import runtime_info
from repro.obs.log import JsonLogger, use_logger
from repro.obs.profile import (
    DEFAULT_HZ,
    SamplingProfiler,
    allocation_snapshot,
)
from repro.obs.prom import render_prometheus
from repro.obs.slo import SloConfig, SloTracker, slo_report
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import NULL_TRACER, Tracer, use_tracer
from repro.ris.adhoc import adhoc_ris_query
from repro.serve.engine import QueryEngine, ServeConfig
from repro.serve.pool import ServePool
from repro.stream.delta import GraphDelta


def _add_network_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--dataset",
        choices=sorted(DATASET_RECIPES),
        help="built-in synthetic dataset name",
    )
    p.add_argument("--scale", type=float, default=None,
                   help="size multiplier for --dataset")
    p.add_argument("--edges", help="edge-list file (alternative to --dataset)")
    p.add_argument("--checkins", help="check-in file accompanying --edges")


def _resolve_network(args: argparse.Namespace):
    if args.dataset and args.edges:
        raise ReproError("pass either --dataset or --edges, not both")
    if args.dataset:
        return load_dataset(args.dataset, scale=args.scale)
    if args.edges:
        return read_network(args.edges, args.checkins)
    raise ReproError("a network is required: --dataset or --edges")


def _add_decay_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--alpha", type=float, default=0.01,
                   help="weight decay rate (paper default 0.01)")
    p.add_argument("--c", type=float, default=1.0, help="maximum node weight")


def _add_kernel_backend_arg(
    p: argparse.ArgumentParser, default: Optional[str]
) -> None:
    p.add_argument(
        "--kernel-backend", choices=("auto", "numpy", "numba"),
        default=default,
        help="native-kernel backend for the selection/sampling hot loops: "
             "auto picks numba when installed and warm, numpy is the "
             "always-available reference, numba requires the optional "
             "extra; answers are bit-identical across backends"
             + ("" if default else
                " (default: keep the index's persisted request)"),
    )


def _add_obs_args(
    p: argparse.ArgumentParser, alloc: bool = False
) -> None:
    p.add_argument(
        "--log-json", action="store_true",
        help="emit structured JSON events (one per line) on stderr",
    )
    p.add_argument(
        "--trace-out", metavar="PATH",
        help="activate span tracing and export the trace JSON here on exit",
    )
    p.add_argument(
        "--profile-out", metavar="PATH",
        help="run the in-process sampling profiler for the whole command "
             "and write collapsed stacks (flamegraph input) here on exit",
    )
    p.add_argument(
        "--profile-hz", type=float, default=DEFAULT_HZ,
        help=f"profiler sampling rate (default {DEFAULT_HZ})",
    )
    if alloc:
        p.add_argument(
            "--alloc-out", metavar="PATH",
            help="trace allocations with tracemalloc around the build and "
                 "write the top allocation sites here (slows the build; "
                 "diagnostics only)",
        )


def _activate_obs(
    args: argparse.Namespace, stack: contextlib.ExitStack
) -> tuple:
    """Install the ambient logger/tracer/profiler the flags ask for.

    Returns ``(tracer, profiler)`` — the tracer is :data:`NULL_TRACER`
    when ``--trace-out`` is absent *and* profiling is off (the profiler
    needs a real tracer for span attribution, so ``--profile-out`` alone
    activates one whose export simply isn't written); the profiler is
    ``None`` unless ``--profile-out`` was given.  The stack stops the
    profiler on unwind, so its counts survive for export.
    """
    if getattr(args, "log_json", False):
        stack.enter_context(use_logger(JsonLogger(sys.stderr)))
    tracer = NULL_TRACER
    if getattr(args, "trace_out", None) or getattr(args, "profile_out", None):
        tracer = Tracer()
        stack.enter_context(use_tracer(tracer))
    profiler = None
    if getattr(args, "profile_out", None):
        profiler = SamplingProfiler(hz=args.profile_hz)
        profiler.start()
        stack.callback(profiler.stop)
    return tracer, profiler


def _export_trace(args: argparse.Namespace, tracer: Tracer) -> None:
    if getattr(args, "trace_out", None) and tracer.enabled:
        tracer.export_json(args.trace_out)
        print(f"trace ({len(tracer.finished_spans)} spans) -> "
              f"{args.trace_out}")


def _export_profile(args: argparse.Namespace, profiler) -> None:
    """Write ``--profile-out`` (collapsed stacks) after the workload."""
    if profiler is None:
        return
    profiler.stop()
    with open(args.profile_out, "w", encoding="utf-8") as fh:
        fh.write(profiler.collapsed())
    dump = profiler.dump()
    print(f"profile ({dump['sample_count']} samples at "
          f"{args.profile_hz:g} Hz, {len(dump['counts'])} distinct "
          f"stacks) -> {args.profile_out}")


def _serve_slo_config(args: argparse.Namespace) -> SloConfig:
    """The serve commands' SLO objectives: defaults, or ``--slo-config``."""
    if getattr(args, "slo_config", None):
        return SloConfig.from_file(args.slo_config)
    return SloConfig()


def cmd_generate(args: argparse.Namespace) -> int:
    network = load_dataset(args.dataset, scale=args.scale)
    write_network(network, args.out_edges, args.out_checkins)
    print(f"wrote {network.n} nodes / {network.m} edges to "
          f"{args.out_edges} and {args.out_checkins}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    network = _resolve_network(args)
    for key, value in summarize(network).as_row().items():
        print(f"{key:8s} {value}")
    return 0


def cmd_build_ris(args: argparse.Namespace) -> int:
    network = _resolve_network(args)
    decay = DistanceDecay(c=args.c, alpha=args.alpha)
    cfg = RisDaConfig(
        k_max=args.k_max,
        n_pivots=args.pivots,
        epsilon_pivot=args.epsilon_pivot,
        epsilon=args.epsilon,
        max_index_samples=args.max_samples,
        seed=args.seed,
        n_workers=args.workers,
        selection=args.selection,
        kernel_backend=args.kernel_backend,
    )
    with contextlib.ExitStack() as stack:
        tracer, profiler = _activate_obs(args, stack)
        if args.alloc_out:
            with allocation_snapshot() as alloc:
                index = RisDaIndex(network, decay, cfg)
            with open(args.alloc_out, "w", encoding="utf-8") as fh:
                fh.write(alloc.report() + "\n")
            print(f"allocation snapshot -> {args.alloc_out}")
        else:
            index = RisDaIndex(network, decay, cfg)
        _export_trace(args, tracer)
        _export_profile(args, profiler)
    save_ris_index(index, args.out)
    print(
        f"built RIS-DA index in {index.build_seconds:.1f}s: "
        f"{len(index.corpus)} samples "
        f"({'truncated' if index.truncated else 'complete'}), "
        f"kernel backend {index.kernel_backend}, saved to {args.out}"
    )
    return 0


def cmd_build_mia(args: argparse.Namespace) -> int:
    network = _resolve_network(args)
    decay = DistanceDecay(c=args.c, alpha=args.alpha)
    cfg = MiaDaConfig(
        theta=args.theta,
        n_anchors=args.anchors,
        tau=args.tau,
        n_heavy=args.n_heavy,
        anchor_strategy=args.anchor_strategy,
        seed=args.seed,
        n_workers=args.workers,
    )
    with contextlib.ExitStack() as stack:
        tracer, profiler = _activate_obs(args, stack)
        if args.alloc_out:
            with allocation_snapshot() as alloc:
                index = MiaDaIndex(network, decay, cfg)
            with open(args.alloc_out, "w", encoding="utf-8") as fh:
                fh.write(alloc.report() + "\n")
            print(f"allocation snapshot -> {args.alloc_out}")
        else:
            index = MiaDaIndex(network, decay, cfg)
        _export_trace(args, tracer)
        _export_profile(args, profiler)
    save_mia_index(index, args.out)
    print(
        f"built MIA-DA index in {index.build_seconds:.1f}s: "
        f"{len(index.model.trees)} arborescences, "
        f"{len(index.anchor_bounds.anchors)} anchors, "
        f"{len(index.region_bounds.nodes)} heavy nodes, "
        f"saved to {args.out}"
    )
    return 0


def _read_delta_events(path: str) -> list[dict]:
    """Parse a JSONL delta file: one event object per line."""
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError as exc:
                raise DataFormatError(
                    f"{path}:{lineno}: bad delta line ({exc}); expected "
                    'one JSON event per line, e.g. '
                    '{"op": "edge", "u": 0, "v": 1, "p": 0.1}'
                )
    if not events:
        raise DataFormatError(f"{path} holds no delta events")
    return events


def cmd_update(args: argparse.Namespace) -> int:
    network = _resolve_network(args)
    kind, index = load_index(args.index, network)
    if args.method is not None and kind != args.method:
        raise ReproError(
            f"{args.index} holds a {kind.upper()}-DA index but "
            f"--method {args.method} was required"
        )
    delta = GraphDelta.from_events(_read_delta_events(args.deltas))
    with contextlib.ExitStack() as stack:
        tracer, profiler = _activate_obs(args, stack)
        stats = index.update(delta=delta)
        _export_trace(args, tracer)
        _export_profile(args, profiler)
    out = args.out if args.out else args.index
    if kind == "ris":
        save_ris_index(index, out)
    else:
        save_mia_index(index, out)
    # The updated index validates against the *post-update* graph on
    # load, so the network files must be saved alongside it.
    write_network(index.network, args.out_edges, args.out_checkins)
    print(
        f"updated {kind.upper()}-DA index to generation {stats.generation}: "
        f"{stats.dirty_nodes} dirty nodes ({stats.dirty_fraction:.1%}), "
        f"{stats.samples_retired} samples retired / "
        f"{stats.samples_added} added, {stats.trees_rebuilt} trees rebuilt, "
        f"{stats.moved_nodes} check-ins, in {stats.seconds:.2f}s; "
        f"saved to {out} (+ {args.out_edges}, {args.out_checkins})"
    )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    network = _resolve_network(args)
    decay = DistanceDecay(c=args.c, alpha=args.alpha)
    q = (args.x, args.y)
    if args.method == "ris" and args.index:
        index = load_ris_index(args.index, network)
        if args.kernel_backend is not None:
            index.set_kernel_backend(args.kernel_backend)
        result = index.query(q, args.k)
    elif args.method == "ris":
        result = adhoc_ris_query(network, q, args.k, decay, seed=args.seed)
    elif args.method == "mia" and args.index:
        mia = load_mia_index(args.index, network)
        result = mia.query(q, args.k)
    elif args.method == "mia":
        mia = MiaDaIndex(network, decay, MiaDaConfig(seed=args.seed))
        result = mia.query(q, args.k)
    elif args.method == "weighted-degree":
        result = top_weighted_degree(network, q, args.k, decay)
    else:  # degree-discount
        result = degree_discount(network, q, args.k, decay)
    print(f"method    {result.method}")
    print(f"time      {result.elapsed * 1000:.1f} ms")
    print(f"estimate  {result.estimate:.2f}")
    if result.samples_used is not None:
        print(f"samples   {result.samples_used}")
    if result.evaluations is not None:
        print(f"evals     {result.evaluations}")
    print("seeds     " + " ".join(str(s) for s in result.seeds))
    return 0


def _read_query_batch(path: str, default_k: int) -> list:
    """Parse a JSONL query file: one query object per line.

    Every line is a ``kind``-tagged object parsed by
    :func:`repro.core.querykind.query_from_json`; ``kind`` defaults to
    ``"point"`` so the original ``{"x":, "y":, "k":?}`` format keeps
    working unchanged.
    """
    queries: list = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
                queries.append(query_from_json(obj, default_k))
            except (ValueError, KeyError, TypeError, QueryError) as exc:
                raise DataFormatError(
                    f"{path}:{lineno}: bad query line ({exc}); expected "
                    '{"x": <float>, "y": <float>, "k": <int, optional>} '
                    'or a "kind"-tagged query object'
                )
    if not queries:
        raise DataFormatError(f"{path} holds no queries")
    return queries


def _served_row(q, sr) -> dict:
    """One JSONL output row for a served query.

    Fallback and heuristic-ladder answers are tagged ``"fallback": true``
    and publish their spread as ``heuristic_score``, never ``estimate``
    — a degree-discount score is not an Eq. 9 influence estimate and
    must not be mistaken for one downstream.  Rows echo the query's
    ``kind`` (plus kind-specific parameters); trajectory rows add the
    per-waypoint seed sets.
    """
    row = query_to_row(q)
    row.update(
        elapsed_ms=round(sr.elapsed * 1000, 3),
        cached=sr.cached,
        fallback=sr.fallback,
        fallback_reason=sr.fallback_reason,
        error=sr.error,
        trace_id=sr.trace_id,
    )
    if sr.result is not None:
        row["seeds"] = [int(s) for s in sr.result.seeds]
        row["method"] = sr.result.method
        if sr.fallback:
            row["heuristic_score"] = sr.result.estimate
        else:
            row["estimate"] = sr.result.estimate
    waypoint_results = getattr(sr, "waypoint_results", None)
    if waypoint_results:
        row["waypoint_seeds"] = [
            [int(s) for s in r.seeds] for r in waypoint_results
        ]
        row["waypoint_estimates"] = [r.estimate for r in waypoint_results]
    return row


def cmd_serve_batch(args: argparse.Namespace) -> int:
    network = _resolve_network(args)
    queries = _read_query_batch(args.queries, args.k)
    config = ServeConfig(
        n_threads=args.threads,
        timeout=args.timeout,
        result_cache_size=args.cache_size,
        cache_cells=args.cache_cells,
    )
    slow_log = None
    if args.slow_query_ms is not None:
        slow_log = SlowQueryLog(args.slow_query_out, args.slow_query_ms)
    slo_cfg = _serve_slo_config(args)
    with contextlib.ExitStack() as stack:
        tracer, profiler = _activate_obs(args, stack)
        if args.processes > 0:
            # Sharded multi-process serving over shared index arrays;
            # the slow-query sink is an in-process feature (worker
            # engines run without one).  SLO windows are tracked per
            # worker and merged at refresh; with --profile-out each
            # worker profiles continuously too.
            engine = stack.enter_context(ServePool(
                args.index, network, n_workers=args.processes,
                kind=args.method, config=config, backing=args.backing,
                kernel_backend=args.kernel_backend, slo_config=slo_cfg,
                profile_hz=args.profile_hz if args.profile_out else None,
            ))
        else:
            engine = QueryEngine.from_path(
                args.index, network, kind=args.method, config=config,
                slow_log=slow_log, kernel_backend=args.kernel_backend,
                slo=SloTracker(slo_cfg),
            )
        start = time.perf_counter()
        served = engine.serve_batch(queries)
        wall = time.perf_counter() - start
        engine.refresh_slo()
        if args.processes > 0:
            # Fold worker-side counters/histograms into the report and
            # the Prometheus rendering below before workers stop.
            engine.collect_worker_metrics()
            if args.profile_out and profiler is not None:
                # Merge worker profiles into the parent's, so the
                # exported flamegraph covers the whole pool.
                merged = engine.collect_worker_profiles()
                if merged is not None:
                    profiler.stop()
                    profiler.merge(merged)
        _export_trace(args, tracer)
        _export_profile(args, profiler)

    lines = [json.dumps(_served_row(q, sr)) for q, sr in zip(queries, served)]
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
    else:
        for line in lines:
            print(line)

    n_err = sum(1 for sr in served if not sr.ok)
    n_fb = sum(1 for sr in served if sr.fallback)
    print(
        f"served {len(served)} queries in {wall:.3f}s "
        f"({len(served) / wall:.0f} q/s), {n_fb} fallbacks, {n_err} errors"
        + (f", results -> {args.out}" if args.out else "")
    )
    if slow_log is not None:
        print(f"slow queries (>= {slow_log.threshold_ms:g} ms): "
              f"{slow_log.recorded} -> {slow_log.path}")
    if engine.slo is not None:
        print(slo_report(engine.slo))
    report = engine.metrics.report()
    print(report)
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
    if args.metrics_prom:
        with open(args.metrics_prom, "w", encoding="utf-8") as fh:
            fh.write(render_prometheus(engine.metrics))
    return 0 if n_err == 0 else 1


def cmd_serve_http(args: argparse.Namespace) -> int:
    from repro.obs.httpd import ObsHttpServer

    network = _resolve_network(args)
    config = ServeConfig(
        n_threads=args.threads,
        timeout=args.timeout,
        result_cache_size=args.cache_size,
        cache_cells=args.cache_cells,
    )
    slow_log = None
    if args.slow_query_ms is not None:
        slow_log = SlowQueryLog(args.slow_query_out, args.slow_query_ms)
    slo_cfg = _serve_slo_config(args)
    with contextlib.ExitStack() as stack:
        tracer, profiler = _activate_obs(args, stack)
        if args.processes > 0:
            engine = stack.enter_context(ServePool(
                args.index, network, n_workers=args.processes,
                kind=args.method, config=config, backing=args.backing,
                kernel_backend=args.kernel_backend, slo_config=slo_cfg,
                profile_hz=args.profile_hz if args.profile_out else None,
            ))
        else:
            engine = QueryEngine.from_path(
                args.index, network, kind=args.method, config=config,
                slow_log=slow_log, kernel_backend=args.kernel_backend,
                slo=SloTracker(slo_cfg),
            )
        server = ObsHttpServer(
            engine=engine, host=args.host, port=args.port, default_k=args.k,
        )
        print(f"serving on http://{server.host}:{server.port} "
              f"(/query /metrics /healthz /slo /debug/profile, "
              f"POST /admin/update), Ctrl-C to stop", file=sys.stderr)
        # SIGTERM (docker stop, systemd, kill) must unwind the ExitStack
        # like Ctrl-C does — with --processes that is what stops the
        # workers and unlinks the shared index segments.
        def _on_sigterm(signum, frame):
            raise KeyboardInterrupt
        previous = signal.signal(signal.SIGTERM, _on_sigterm)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            signal.signal(signal.SIGTERM, previous)
            server.stop()
            if (args.processes > 0 and args.profile_out
                    and profiler is not None):
                merged = engine.collect_worker_profiles()
                if merged is not None:
                    profiler.stop()
                    profiler.merge(merged)
            _export_trace(args, tracer)
            _export_profile(args, profiler)
    return 0


def _diag_live(args: argparse.Namespace) -> int:
    """Capture a bundle from a running serve-http server over HTTP."""
    from urllib.request import urlopen

    from repro.obs.diag import bundle_report, slowlog_tail, write_bundle

    base = args.url.rstrip("/")

    def fetch(path: str, timeout: float) -> Optional[str]:
        try:
            with urlopen(base + path, timeout=timeout) as resp:
                return resp.read().decode("utf-8")
        except Exception as exc:  # a partial bundle beats no bundle
            print(f"warning: GET {path} failed: {exc}", file=sys.stderr)
            return None

    health = fetch("/healthz", 10.0)
    metrics = fetch("/metrics", 10.0)
    slo = fetch("/slo", 10.0)
    profile = fetch(
        f"/debug/profile?seconds={args.seconds:g}&hz={args.profile_hz:g}",
        args.seconds + 30.0,
    )
    extra = {}
    if health is not None:
        extra["healthz.json"] = health.encode("utf-8")
    write_bundle(
        args.out,
        prometheus_text=metrics,
        slo_prom_text=slo,
        profile_collapsed=profile,
        slow_rows=(
            slowlog_tail(args.slow_query_log)
            if args.slow_query_log else None
        ),
        extra_files=extra,
        source=f"live {base}",
    )
    print(bundle_report(args.out))
    return 0


def _diag_offline(args: argparse.Namespace) -> int:
    """Capture a bundle by loading the index and driving a short
    profiled workload against it (result cache off, so the profile shows
    real selection work)."""
    from repro.obs.diag import bundle_report, slowlog_tail, write_bundle

    network = _resolve_network(args)
    config = ServeConfig(n_threads=1, result_cache_size=0)
    tracer = Tracer()
    engine = QueryEngine.from_path(
        args.index, network, kind=args.method, config=config,
        tracer=tracer, slo=SloTracker(_serve_slo_config(args)),
    )
    queries = (
        _read_query_batch(args.queries, args.k) if args.queries else None
    )
    # RIS indexes answer k <= k_max only; clamp the self-driven budget
    # so a small smoke index still yields a real (non-error) workload.
    k = args.k
    k_max = getattr(engine.index, "k_max", None)
    if k_max is not None:
        k = min(k, int(k_max))
    box = network.bounding_box()
    fracs = (0.2, 0.5, 0.8)
    locations = [
        (box.xmin + (box.xmax - box.xmin) * fx,
         box.ymin + (box.ymax - box.ymin) * fy)
        for fx in fracs for fy in fracs
    ]
    profiler = SamplingProfiler(hz=args.profile_hz)
    profiler.start()
    deadline = time.perf_counter() + args.seconds
    count = 0
    try:
        while time.perf_counter() < deadline:
            if queries:
                engine.query(queries[count % len(queries)])
            else:
                engine.query(locations[count % len(locations)], k)
            count += 1
    finally:
        profiler.stop()
    engine.refresh_slo()
    write_bundle(
        args.out,
        metrics=engine.metrics,
        slo=engine.slo,
        traces=tracer.export(),
        profile_dump=profiler.dump(),
        slow_rows=(
            slowlog_tail(args.slow_query_log)
            if args.slow_query_log else None
        ),
        source=f"offline {args.index}",
    )
    print(f"drove {count} queries over {args.seconds:g}s "
          f"(cache disabled) while profiling at {args.profile_hz:g} Hz")
    print(bundle_report(args.out))
    return 0


def cmd_diag(args: argparse.Namespace) -> int:
    if args.url and args.index:
        raise ReproError("pass either --url (live) or --index (offline), "
                         "not both")
    if args.url:
        return _diag_live(args)
    if not args.index:
        raise ReproError(
            "diag needs a live server (--url) or an index to load "
            "(--index plus --dataset/--edges)"
        )
    return _diag_offline(args)


def cmd_info(args: argparse.Namespace) -> int:
    print(json.dumps(runtime_info(), indent=2, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distance-aware influence maximization (DAIM) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="write a synthetic dataset to disk")
    p.add_argument("--dataset", choices=sorted(DATASET_RECIPES), required=True)
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--out-edges", required=True)
    p.add_argument("--out-checkins", required=True)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("stats", help="summarise a dataset")
    _add_network_args(p)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("build-ris", help="build and save a RIS-DA index")
    _add_network_args(p)
    _add_decay_args(p)
    p.add_argument("--out", required=True, help="output .npz path")
    p.add_argument("--k-max", type=int, default=50)
    p.add_argument("--pivots", type=int, default=100)
    p.add_argument("--epsilon-pivot", type=float, default=0.25)
    p.add_argument("--epsilon", type=float, default=0.5)
    p.add_argument("--max-samples", type=int, default=300_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for RR-set sampling (1 = serial; builds "
             "are reproducible per (seed, workers) pair)",
    )
    p.add_argument(
        "--selection", choices=("eager", "lazy"), default="eager",
        help="greedy-cover kernel: eager argmax scan (default) or "
             "CELF-style lazy heap; both select identical seed sets",
    )
    _add_kernel_backend_arg(p, default="auto")
    _add_obs_args(p, alloc=True)
    p.set_defaults(func=cmd_build_ris)

    p = sub.add_parser("build-mia", help="build and save a MIA-DA index")
    _add_network_args(p)
    _add_decay_args(p)
    p.add_argument("--out", required=True, help="output .npz path")
    p.add_argument("--theta", type=float, default=0.05,
                   help="MIP pruning threshold (paper default 0.05)")
    p.add_argument("--anchors", type=int, default=300,
                   help="anchor-point count |L| (paper default 300)")
    p.add_argument("--tau", type=int, default=200,
                   help="region-grid cell budget (paper default 200)")
    p.add_argument("--n-heavy", type=int, default=None,
                   help="heavy-node count for region bounds "
                        "(default: max(32, n/20))")
    p.add_argument("--anchor-strategy", choices=("uniform", "density"),
                   default="uniform")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the arborescence build (1 = serial; "
             "the index is bit-identical for any worker count)",
    )
    _add_obs_args(p, alloc=True)
    p.set_defaults(func=cmd_build_mia)

    p = sub.add_parser(
        "update",
        help="apply streaming edge/check-in deltas to a saved index",
    )
    _add_network_args(p)
    p.add_argument("--index", required=True,
                   help="saved index (.npz) from build-ris or build-mia")
    p.add_argument(
        "--deltas", required=True,
        help='JSONL delta events, one per line: '
             '{"op": "edge", "u":, "v":, "p":} upserts an edge, '
             '{"op": "drop_edge", "u":, "v":} removes one, '
             '{"op": "checkin", "node":, "x":, "y":} moves a node',
    )
    p.add_argument("--out",
                   help="output .npz path (default: overwrite --index)")
    p.add_argument("--out-edges", required=True,
                   help="write the post-update edge list here (the "
                        "updated index only loads against it)")
    p.add_argument("--out-checkins", required=True,
                   help="write the post-update check-in file here")
    p.add_argument("--method", choices=("ris", "mia"), default=None,
                   help="require this index kind (default: update "
                        "whatever the file holds)")
    _add_obs_args(p)
    p.set_defaults(func=cmd_update)

    p = sub.add_parser("query", help="answer a DAIM query")
    _add_network_args(p)
    _add_decay_args(p)
    p.add_argument("--x", type=float, required=True)
    p.add_argument("--y", type=float, required=True)
    p.add_argument("-k", "--k", type=int, default=30)
    p.add_argument(
        "--method",
        choices=("mia", "ris", "weighted-degree", "degree-discount"),
        default="mia",
    )
    p.add_argument(
        "--index",
        help="saved index (.npz) for --method ris (build-ris) or "
             "--method mia (build-mia)",
    )
    p.add_argument("--seed", type=int, default=0)
    _add_kernel_backend_arg(p, default=None)
    p.set_defaults(func=cmd_query)

    p = sub.add_parser(
        "serve-batch",
        help="serve a JSONL query batch against a prebuilt index",
    )
    _add_network_args(p)
    p.add_argument("--index", required=True,
                   help="saved index (.npz) from build-ris or build-mia")
    p.add_argument("--queries", required=True,
                   help='JSONL input, one {"x":, "y":, "k":?} per line')
    p.add_argument("--out",
                   help="JSONL output path (default: print results)")
    p.add_argument("-k", "--k", type=int, default=30,
                   help="budget for query lines without their own k")
    p.add_argument("--method", choices=("ris", "mia"), default=None,
                   help="require this index kind (default: serve whatever "
                        "the file holds)")
    p.add_argument("--threads", type=int, default=4,
                   help="serving thread-pool size (per process)")
    p.add_argument("--processes", type=int, default=0,
                   help="serve through N pre-forked worker processes "
                        "sharing the index zero-copy, sharded by query "
                        "location (0 = in-process serving)")
    p.add_argument("--backing", choices=("shm", "mmap"), default="shm",
                   help="shared-index storage for --processes: POSIX "
                        "shared memory, or memory-mapped .npy spill "
                        "files (kernel-evictable; for indexes larger "
                        "than RAM)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-query deadline in seconds; on expiry the "
                        "degree-discount fallback answers instead")
    p.add_argument("--cache-size", type=int, default=1024,
                   help="result-cache capacity (0 disables caching)")
    p.add_argument("--cache-cells", type=int, default=4096,
                   help="quantization-grid cell budget for cache keys")
    p.add_argument("--metrics-out",
                   help="also write the metrics report to this file")
    p.add_argument("--metrics-prom",
                   help="write the metrics in Prometheus text format here")
    p.add_argument(
        "--slow-query-ms", type=float, default=None,
        help="record queries at or above this latency (span tree + "
             "diagnostics) to the slow-query JSONL sink",
    )
    p.add_argument(
        "--slow-query-out", default="slow-queries.jsonl",
        help="slow-query JSONL sink path (default: slow-queries.jsonl)",
    )
    p.add_argument(
        "--slo-config", metavar="PATH",
        help="JSON file with SLO objectives (latency_threshold_ms, "
             "latency_target, availability_target, staleness_limit_s, "
             "shed_burn, windows); default objectives apply without it",
    )
    _add_kernel_backend_arg(p, default=None)
    _add_obs_args(p)
    p.set_defaults(func=cmd_serve_batch)

    p = sub.add_parser(
        "serve-http",
        help="serve a prebuilt index over HTTP "
             "(/query, /metrics, /healthz)",
    )
    _add_network_args(p)
    p.add_argument("--index", required=True,
                   help="saved index (.npz) from build-ris or build-mia")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9464,
                   help="listen port (0 picks an ephemeral port)")
    p.add_argument("-k", "--k", type=int, default=30,
                   help="budget for /query requests without their own k")
    p.add_argument("--method", choices=("ris", "mia"), default=None,
                   help="require this index kind (default: serve whatever "
                        "the file holds)")
    p.add_argument("--threads", type=int, default=4,
                   help="serving thread-pool size (per process)")
    p.add_argument("--processes", type=int, default=0,
                   help="answer /query through N pre-forked worker "
                        "processes sharing the index zero-copy "
                        "(0 = in-process serving)")
    p.add_argument("--backing", choices=("shm", "mmap"), default="shm",
                   help="shared-index storage for --processes")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-query deadline in seconds; on expiry the "
                        "degree-discount fallback answers instead")
    p.add_argument("--cache-size", type=int, default=1024,
                   help="result-cache capacity (0 disables caching)")
    p.add_argument("--cache-cells", type=int, default=4096,
                   help="quantization-grid cell budget for cache keys")
    p.add_argument(
        "--slow-query-ms", type=float, default=None,
        help="record queries at or above this latency (span tree + "
             "diagnostics) to the slow-query JSONL sink",
    )
    p.add_argument(
        "--slow-query-out", default="slow-queries.jsonl",
        help="slow-query JSONL sink path (default: slow-queries.jsonl)",
    )
    p.add_argument(
        "--slo-config", metavar="PATH",
        help="JSON file with SLO objectives (latency_threshold_ms, "
             "latency_target, availability_target, staleness_limit_s, "
             "shed_burn, windows); default objectives apply without it",
    )
    _add_kernel_backend_arg(p, default=None)
    _add_obs_args(p)
    p.set_defaults(func=cmd_serve_http)

    p = sub.add_parser(
        "diag",
        help="capture a one-file diagnostics bundle (tar.gz with "
             "metrics, SLO state, a span-attributed profile, traces, "
             "slow-query tail, runtime info)",
    )
    p.add_argument("--out", default="repro-diag.tar.gz",
                   help="bundle path (default: repro-diag.tar.gz)")
    p.add_argument(
        "--url",
        help="base URL of a live serve-http server (e.g. "
             "http://127.0.0.1:9464); fetches /healthz /metrics /slo "
             "/debug/profile instead of loading an index",
    )
    _add_network_args(p)
    p.add_argument("--index",
                   help="saved index (.npz) for offline capture")
    p.add_argument("--method", choices=("ris", "mia"), default=None,
                   help="require this index kind in offline mode")
    p.add_argument("--queries",
                   help="optional JSONL queries to drive the offline "
                        "workload (default: a deterministic location "
                        "grid over the network bounding box)")
    p.add_argument("-k", "--k", type=int, default=30,
                   help="budget for the self-driven offline workload")
    p.add_argument("--seconds", type=float, default=2.0,
                   help="profiling window (live) / workload duration "
                        "(offline); default 2s")
    p.add_argument("--profile-hz", type=float, default=DEFAULT_HZ,
                   help=f"profiler sampling rate (default {DEFAULT_HZ})")
    p.add_argument(
        "--slo-config", metavar="PATH",
        help="JSON SLO objectives for the offline tracker "
             "(ignored with --url: the server owns its objectives)",
    )
    p.add_argument(
        "--slow-query-log", metavar="PATH",
        help="existing slow-query JSONL sink whose tail to include",
    )
    p.set_defaults(func=cmd_diag)

    p = sub.add_parser(
        "info",
        help="print the runtime-environment snapshot (JSON)",
    )
    p.set_defaults(func=cmd_info)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
