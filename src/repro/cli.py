"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
generate
    Write a synthetic dataset (edge list + check-ins) to disk.
stats
    Print summary statistics of a dataset or file pair.
build-ris
    Build a RIS-DA index over a dataset and save it to ``.npz``.
build-mia
    Build a MIA-DA index over a dataset and save it to ``.npz``.
query
    Answer a DAIM query with MIA-DA (indexed or built on the fly), RIS-DA
    (indexed or ad-hoc), or a heuristic.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.heuristics import degree_discount, top_weighted_degree
from repro.core.mia_da import MiaDaConfig, MiaDaIndex
from repro.core.persistence import (
    load_mia_index,
    load_ris_index,
    save_mia_index,
    save_ris_index,
)
from repro.core.ris_da import RisDaConfig, RisDaIndex
from repro.exceptions import ReproError
from repro.geo.weights import DistanceDecay
from repro.network.datasets import DATASET_RECIPES, load_dataset
from repro.network.io import read_network, write_network
from repro.network.stats import summarize
from repro.ris.adhoc import adhoc_ris_query


def _add_network_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--dataset",
        choices=sorted(DATASET_RECIPES),
        help="built-in synthetic dataset name",
    )
    p.add_argument("--scale", type=float, default=None,
                   help="size multiplier for --dataset")
    p.add_argument("--edges", help="edge-list file (alternative to --dataset)")
    p.add_argument("--checkins", help="check-in file accompanying --edges")


def _resolve_network(args: argparse.Namespace):
    if args.dataset and args.edges:
        raise ReproError("pass either --dataset or --edges, not both")
    if args.dataset:
        return load_dataset(args.dataset, scale=args.scale)
    if args.edges:
        return read_network(args.edges, args.checkins)
    raise ReproError("a network is required: --dataset or --edges")


def _add_decay_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--alpha", type=float, default=0.01,
                   help="weight decay rate (paper default 0.01)")
    p.add_argument("--c", type=float, default=1.0, help="maximum node weight")


def cmd_generate(args: argparse.Namespace) -> int:
    network = load_dataset(args.dataset, scale=args.scale)
    write_network(network, args.out_edges, args.out_checkins)
    print(f"wrote {network.n} nodes / {network.m} edges to "
          f"{args.out_edges} and {args.out_checkins}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    network = _resolve_network(args)
    for key, value in summarize(network).as_row().items():
        print(f"{key:8s} {value}")
    return 0


def cmd_build_ris(args: argparse.Namespace) -> int:
    network = _resolve_network(args)
    decay = DistanceDecay(c=args.c, alpha=args.alpha)
    cfg = RisDaConfig(
        k_max=args.k_max,
        n_pivots=args.pivots,
        epsilon_pivot=args.epsilon_pivot,
        epsilon=args.epsilon,
        max_index_samples=args.max_samples,
        seed=args.seed,
        n_workers=args.workers,
    )
    index = RisDaIndex(network, decay, cfg)
    save_ris_index(index, args.out)
    print(
        f"built RIS-DA index in {index.build_seconds:.1f}s: "
        f"{len(index.corpus)} samples "
        f"({'truncated' if index.truncated else 'complete'}), "
        f"saved to {args.out}"
    )
    return 0


def cmd_build_mia(args: argparse.Namespace) -> int:
    network = _resolve_network(args)
    decay = DistanceDecay(c=args.c, alpha=args.alpha)
    cfg = MiaDaConfig(
        theta=args.theta,
        n_anchors=args.anchors,
        tau=args.tau,
        n_heavy=args.n_heavy,
        anchor_strategy=args.anchor_strategy,
        seed=args.seed,
        n_workers=args.workers,
    )
    index = MiaDaIndex(network, decay, cfg)
    save_mia_index(index, args.out)
    print(
        f"built MIA-DA index in {index.build_seconds:.1f}s: "
        f"{len(index.model.trees)} arborescences, "
        f"{len(index.anchor_bounds.anchors)} anchors, "
        f"{len(index.region_bounds.nodes)} heavy nodes, "
        f"saved to {args.out}"
    )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    network = _resolve_network(args)
    decay = DistanceDecay(c=args.c, alpha=args.alpha)
    q = (args.x, args.y)
    if args.method == "ris" and args.index:
        index = load_ris_index(args.index, network)
        result = index.query(q, args.k)
    elif args.method == "ris":
        result = adhoc_ris_query(network, q, args.k, decay, seed=args.seed)
    elif args.method == "mia" and args.index:
        mia = load_mia_index(args.index, network)
        result = mia.query(q, args.k)
    elif args.method == "mia":
        mia = MiaDaIndex(network, decay, MiaDaConfig(seed=args.seed))
        result = mia.query(q, args.k)
    elif args.method == "weighted-degree":
        result = top_weighted_degree(network, q, args.k, decay)
    else:  # degree-discount
        result = degree_discount(network, q, args.k, decay)
    print(f"method    {result.method}")
    print(f"time      {result.elapsed * 1000:.1f} ms")
    print(f"estimate  {result.estimate:.2f}")
    if result.samples_used is not None:
        print(f"samples   {result.samples_used}")
    if result.evaluations is not None:
        print(f"evals     {result.evaluations}")
    print("seeds     " + " ".join(str(s) for s in result.seeds))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distance-aware influence maximization (DAIM) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="write a synthetic dataset to disk")
    p.add_argument("--dataset", choices=sorted(DATASET_RECIPES), required=True)
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--out-edges", required=True)
    p.add_argument("--out-checkins", required=True)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("stats", help="summarise a dataset")
    _add_network_args(p)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("build-ris", help="build and save a RIS-DA index")
    _add_network_args(p)
    _add_decay_args(p)
    p.add_argument("--out", required=True, help="output .npz path")
    p.add_argument("--k-max", type=int, default=50)
    p.add_argument("--pivots", type=int, default=100)
    p.add_argument("--epsilon-pivot", type=float, default=0.25)
    p.add_argument("--epsilon", type=float, default=0.5)
    p.add_argument("--max-samples", type=int, default=300_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for RR-set sampling (1 = serial; builds "
             "are reproducible per (seed, workers) pair)",
    )
    p.set_defaults(func=cmd_build_ris)

    p = sub.add_parser("build-mia", help="build and save a MIA-DA index")
    _add_network_args(p)
    _add_decay_args(p)
    p.add_argument("--out", required=True, help="output .npz path")
    p.add_argument("--theta", type=float, default=0.05,
                   help="MIP pruning threshold (paper default 0.05)")
    p.add_argument("--anchors", type=int, default=300,
                   help="anchor-point count |L| (paper default 300)")
    p.add_argument("--tau", type=int, default=200,
                   help="region-grid cell budget (paper default 200)")
    p.add_argument("--n-heavy", type=int, default=None,
                   help="heavy-node count for region bounds "
                        "(default: max(32, n/20))")
    p.add_argument("--anchor-strategy", choices=("uniform", "density"),
                   default="uniform")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the arborescence build (1 = serial; "
             "the index is bit-identical for any worker count)",
    )
    p.set_defaults(func=cmd_build_mia)

    p = sub.add_parser("query", help="answer a DAIM query")
    _add_network_args(p)
    _add_decay_args(p)
    p.add_argument("--x", type=float, required=True)
    p.add_argument("--y", type=float, required=True)
    p.add_argument("-k", "--k", type=int, default=30)
    p.add_argument(
        "--method",
        choices=("mia", "ris", "weighted-degree", "degree-discount"),
        default="mia",
    )
    p.add_argument(
        "--index",
        help="saved index (.npz) for --method ris (build-ris) or "
             "--method mia (build-mia)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_query)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
