"""Algorithm 1: the naive Monte-Carlo greedy.

The reference method: at every iteration, estimate the marginal gain of
every remaining candidate by Monte-Carlo simulation and take the best.
This gives the classical ``1 - 1/e - eps`` guarantee on *any* graph, but
costs ``O(k * n * rounds * cascade)`` — usable only on small graphs, which
is exactly its role here: the correctness yardstick the index-based methods
are compared against in tests and examples.

A CELF-style lazy evaluation (Leskovec et al., KDD'07) is applied: stale
marginal gains are upper bounds by submodularity, so most candidates are
never re-evaluated.  This changes nothing about the output distribution,
only the constant factor.
"""

from __future__ import annotations

import heapq
import time
from typing import Sequence


from repro.core.query import SeedResult
from repro.diffusion.spread import monte_carlo_weighted_spread
from repro.exceptions import QueryError
from repro.geo.weights import DistanceDecay
from repro.network.graph import GeoSocialNetwork
from repro.rng import RandomLike, as_generator


def naive_greedy(
    network: GeoSocialNetwork,
    query_location: Sequence[float],
    k: int,
    decay: DistanceDecay | None = None,
    rounds: int = 200,
    candidates: Sequence[int] | None = None,
    seed: RandomLike = None,
) -> SeedResult:
    """Algorithm 1 with CELF laziness; returns a :class:`SeedResult`.

    Parameters
    ----------
    network:
        The geo-social network.
    query_location:
        The promoted location ``q``.
    k:
        Seed budget.
    decay:
        Weight function (defaults to the paper's ``c=1, alpha=0.01``).
    rounds:
        Monte-Carlo rounds per spread evaluation.  The guarantee's ``eps``
        shrinks as rounds grow.
    candidates:
        Optional restriction of the candidate pool (e.g. to high-degree
        nodes) for larger graphs; ``None`` evaluates every node, as the
        paper's Algorithm 1 does.
    """
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    if decay is None:
        decay = DistanceDecay()
    rng = as_generator(seed)
    weights = decay.weights(network.coords, tuple(query_location))

    pool = (
        list(range(network.n))
        if candidates is None
        else sorted(set(int(c) for c in candidates))
    )
    if k > len(pool):
        raise QueryError(f"k={k} exceeds candidate pool of {len(pool)}")

    start = time.perf_counter()

    def spread_of(seed_nodes: list[int]) -> float:
        if not seed_nodes:
            return 0.0
        est = monte_carlo_weighted_spread(
            network, seed_nodes, node_weights=weights, rounds=rounds, seed=rng
        )
        return est.value

    seeds: list[int] = []
    current = 0.0
    evaluations = 0
    # CELF heap: (-stale_gain, node, version at which the gain was computed)
    heap: list[tuple[float, int, int]] = []
    for u in pool:
        gain = spread_of([u])
        evaluations += 1
        heapq.heappush(heap, (-gain, u, 0))

    while len(seeds) < k and heap:
        neg_gain, u, version = heapq.heappop(heap)
        if version == len(seeds):
            seeds.append(u)
            current += -neg_gain
            continue
        gain = spread_of(seeds + [u]) - current
        evaluations += 1
        heapq.heappush(heap, (-gain, u, len(seeds)))

    elapsed = time.perf_counter() - start
    return SeedResult(
        seeds=seeds,
        estimate=current,
        method="Greedy-MC",
        elapsed=elapsed,
        evaluations=evaluations,
    )
