"""MIA-DA: the index-based MIA approach (Section 3).

Offline, the index holds:

* the :class:`~repro.mia.pmia.MiaModel` (all arborescences, as PMIA does);
* :class:`~repro.core.bounds.AnchorBounds` over ``|L|`` sampled anchor
  locations (paper default 300);
* :class:`~repro.core.bounds.RegionBounds` for the heavy nodes (paper's
  ``tau = 200`` region-based estimation).

Online, a query runs the *priority-based search*: candidates live in a
max-heap keyed by the best-known upper bound of their marginal influence —
initially the anchor/region bound (Rule 1), later stale exact marginals
(Rule 2, valid upper bounds by submodularity, CELF-style).  A node is
selected when its bound is exact at the current iteration, or when its
*lower* bound already dominates every other candidate's upper bound (the
lower-bound shortcut of Rule 1).  Nodes whose upper bound never reaches
the top of the heap are pruned without ever being evaluated — that is the
speed-up over PMIA that Figure 4 measures.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.bounds import AnchorBounds, RegionBounds
from repro.core.query import DaimQuery, SeedResult
from repro.exceptions import QueryError
from repro.geo.point import PointLike
from repro.geo.sampling import sample_density_pivots, sample_uniform_points
from repro.geo.weights import DistanceDecay
from repro.mia.influence import activation_probabilities, linear_coefficients
from repro.mia.parallel import ParallelMiaBuilder
from repro.mia.pmia import MiaModel
from repro.network.graph import GeoSocialNetwork
from repro.obs.log import get_logger
from repro.obs.trace import get_tracer
from repro.rng import as_generator


@dataclass(frozen=True)
class MiaQueryDiagnostics:
    """Side-channel information about one MIA-DA query.

    ``setup_seconds`` is the per-query bound setup (node weights plus the
    anchor/region bound evaluation) that :attr:`SeedResult.elapsed`
    deliberately excludes — ``elapsed`` is documented as *selection only*.
    ``heap_pops`` counts priority-queue pops; together with
    ``evaluations`` it measures how well the bounds prune.
    """

    evaluations: int
    heap_pops: int
    setup_seconds: float


@dataclass(frozen=True)
class MiaDaConfig:
    """Build-time parameters of the MIA-DA index.

    ``n_anchors`` is the paper's ``|L|`` (default 300), ``tau`` the region
    count for heavy-node bounds (default 200), ``theta`` the MIP pruning
    threshold (default 0.05).  ``n_heavy`` bounds how many nodes get a
    region index; ``None`` picks ``max(32, n // 20)``.  ``n_workers`` fans
    the arborescence build over that many worker processes (``1`` builds
    serially in-process; the index is bit-identical either way).
    """

    theta: float = 0.05
    n_anchors: int = 300
    tau: int = 200
    n_heavy: Optional[int] = None
    anchor_strategy: str = "uniform"
    seed: int = 0
    n_workers: int = 1

    def __post_init__(self) -> None:
        if self.n_anchors <= 0:
            raise QueryError(f"n_anchors must be positive, got {self.n_anchors}")
        if self.tau <= 0:
            raise QueryError(f"tau must be positive, got {self.tau}")
        if self.n_heavy is not None and self.n_heavy <= 0:
            raise QueryError(
                f"n_heavy must be positive (or None for automatic sizing), "
                f"got {self.n_heavy}"
            )
        if self.n_workers < 1:
            raise QueryError(f"n_workers must be at least 1, got {self.n_workers}")
        if self.anchor_strategy not in ("uniform", "density"):
            raise QueryError(
                f"anchor_strategy must be 'uniform' or 'density', "
                f"got {self.anchor_strategy!r}"
            )


class _LazyMiaState:
    """Per-query MIA greedy state with *lazy* per-root refresh.

    Unlike :class:`~repro.mia.pmia.MiaGreedyState`, no global gain vector
    is maintained — marginals are computed only for the nodes the priority
    search actually asks about.
    """

    def __init__(self, model: MiaModel, weights: np.ndarray):
        self.model = model
        self.weights = weights
        self.seeds: list[int] = []
        self._seed_set: Set[int] = set()
        self._ap: Dict[int, np.ndarray] = {}
        self._alpha: Dict[int, np.ndarray] = {}
        self._dirty: Set[int] = set()
        self._touched_roots: Set[int] = set()

    def marginal(self, u: int) -> float:
        """Exact ``I_q^m(u | S)`` at the current seed set."""
        u = int(u)
        roots, probs = self.model.reach_of(u)
        if not self.seeds:
            # No seeds yet: marginal == singleton influence, a dot product.
            return float(np.dot(probs, self.weights[roots]))
        total = 0.0
        for v in roots:
            v = int(v)
            wv = float(self.weights[v])
            if wv == 0.0:
                continue
            ap, alpha = self._tree_state(v)
            tree = self.model.trees[v]
            i = tree.local_index(u)
            total += float(alpha[i]) * (1.0 - float(ap[i])) * wv
        return total

    def add_seed(self, u: int) -> None:
        u = int(u)
        if u in self._seed_set:
            raise QueryError(f"node {u} is already a seed")
        self._seed_set.add(u)
        self.seeds.append(u)
        roots, _ = self.model.reach_of(u)
        for v in roots:
            v = int(v)
            self._dirty.add(v)
            self._touched_roots.add(v)

    def spread(self) -> float:
        """``I_q^m(S)`` over all roots any seed can reach."""
        total = 0.0
        for v in self._touched_roots:
            ap, _ = self._tree_state(v)
            total += float(ap[0]) * float(self.weights[v])
        return total

    def _tree_state(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        if v in self._ap and v not in self._dirty:
            return self._ap[v], self._alpha[v]
        tree = self.model.trees[v]
        # Roots untouched by any seed keep the closed-form empty state.
        if v not in self._touched_roots:
            ap = np.zeros(len(tree), dtype=float)
            alpha = tree.path_prob
        else:
            ap = activation_probabilities(tree, self._seed_set)
            alpha = linear_coefficients(tree, self._seed_set, ap)
        self._ap[v] = ap
        self._alpha[v] = alpha
        self._dirty.discard(v)
        return ap, alpha


class MiaDaIndex:
    """The MIA-DA offline index and its online query processor."""

    def __init__(
        self,
        network: GeoSocialNetwork,
        decay: DistanceDecay | None = None,
        config: MiaDaConfig | None = None,
        model: MiaModel | None = None,
    ):
        self.network = network
        self.decay = decay if decay is not None else DistanceDecay()
        self.config = config if config is not None else MiaDaConfig()
        #: Bumped by :meth:`update`; serving folds it into cache keys so
        #: result-cache entries die when the in-memory index changes.
        self.generation = 0
        tracer = get_tracer()
        logger = get_logger()
        if logger.enabled:
            logger.event(
                "build_start", phase="mia.build", n=network.n,
                theta=self.config.theta, n_anchors=self.config.n_anchors,
                n_workers=self.config.n_workers,
            )
        build_start = time.perf_counter()
        with tracer.span(
            "mia.build",
            {"n": network.n, "theta": self.config.theta,
             "n_anchors": self.config.n_anchors, "tau": self.config.tau,
             "n_workers": self.config.n_workers},
        ):
            if model is not None:
                self.model = model
            elif self.config.n_workers > 1:
                # ParallelMiaBuilder emits its own "mia.build_trees" span
                # (with re-parented per-chunk worker spans) inside ours.
                with ParallelMiaBuilder(
                    network, self.config.theta,
                    n_workers=self.config.n_workers,
                ) as builder:
                    self.model = builder.build_model()
            else:
                with tracer.span("mia.build_trees", {"n": network.n}):
                    self.model = MiaModel(network, self.config.theta)
            rng = as_generator(self.config.seed)
            if self.config.anchor_strategy == "uniform":
                anchors = sample_uniform_points(
                    network.bounding_box(), self.config.n_anchors, rng
                )
            else:
                anchors = sample_density_pivots(
                    network.coords, self.config.n_anchors, rng
                )
            with tracer.span(
                "mia.anchor_bounds", {"n_anchors": len(anchors)}
            ):
                self.anchor_bounds = AnchorBounds(
                    self.model, self.decay, anchors
                )
            n_heavy = self.config.n_heavy
            if n_heavy is None:
                n_heavy = max(32, network.n // 20)
            n_heavy = min(n_heavy, network.n)
            # Heavy = largest influence seen at any anchor (a cheap, robust
            # proxy for "influential anywhere").
            peak = self.anchor_bounds.influence.max(axis=0)
            heavy = np.argpartition(
                peak, network.n - n_heavy
            )[network.n - n_heavy :]
            with tracer.span(
                "mia.region_bounds",
                {"n_heavy": int(n_heavy), "tau": self.config.tau},
            ):
                self.region_bounds = RegionBounds(
                    self.model, self.decay, heavy, self.config.tau
                )
        self.build_seconds = time.perf_counter() - build_start
        if logger.enabled:
            logger.event(
                "build_end", phase="mia.build",
                seconds=round(self.build_seconds, 3), n=network.n,
            )

    # ------------------------------------------------------------------
    # Streaming maintenance
    # ------------------------------------------------------------------

    def update(
        self,
        edges=None,
        probabilities=None,
        removed=None,
        checkins=None,
        *,
        delta=None,
    ) -> "UpdateStats":
        """Fold a graph delta into the index without a full rebuild.

        Only the *dirty* arborescences are rebuilt: a changed edge
        ``<u, w>`` can alter ``MIIA(v)`` only if the tree already
        contains a changed-edge endpoint (a maximum-influence path
        through the edge enters ``v`` via ``w``'s unchanged MIP suffix,
        which must clear ``theta`` — so ``w`` sits in the old tree).
        Those trees are found through the flat membership index
        (:meth:`MiaModel.reach_of`) and rebuilt over the new network;
        every other tree is reused as-is.  The anchor and region bounds
        are then recomputed through the same constructors a fresh build
        runs (they are vectorized and cheap next to ``n`` Dijkstras), so
        the updated index is **bit-identical** to a from-scratch rebuild
        on the final graph.

        Accepts either loose arguments (as in
        :meth:`repro.stream.GraphDelta.make`) or a prepared ``delta``.
        Returns :class:`repro.stream.UpdateStats`; bumps
        :attr:`generation` so serving caches invalidate.
        """
        from repro.mia.arborescence import build_miia
        from repro.stream.delta import GraphDelta, UpdateStats, apply_delta

        start = time.perf_counter()
        if delta is None:
            delta = GraphDelta.make(
                edges=edges, probabilities=probabilities,
                removed=removed, checkins=checkins,
            )
        applied = apply_delta(self.network, delta)
        cfg = self.config
        dirty_roots: Set[int] = set()
        for d in applied.dirty_nodes:
            roots, _ = self.model.reach_of(int(d))
            dirty_roots.update(int(v) for v in roots)
        net = applied.network
        trees = [
            build_miia(net, v, cfg.theta) if v in dirty_roots
            else self.model.trees[v]
            for v in range(net.n)
        ]
        self.network = net
        self.model = MiaModel(net, cfg.theta, trees=trees)
        # Geometry-dependent structures are recomputed wholesale through
        # the build's exact code path (same RNG consumption, new bounding
        # box) — that is what buys bit-identical rebuild parity even when
        # check-ins move the bounding box.
        rng = as_generator(cfg.seed)
        if cfg.anchor_strategy == "uniform":
            anchors = sample_uniform_points(
                net.bounding_box(), cfg.n_anchors, rng
            )
        else:
            anchors = sample_density_pivots(net.coords, cfg.n_anchors, rng)
        self.anchor_bounds = AnchorBounds(self.model, self.decay, anchors)
        n_heavy = cfg.n_heavy
        if n_heavy is None:
            n_heavy = max(32, net.n // 20)
        n_heavy = min(n_heavy, net.n)
        peak = self.anchor_bounds.influence.max(axis=0)
        heavy = np.argpartition(peak, net.n - n_heavy)[net.n - n_heavy:]
        self.region_bounds = RegionBounds(
            self.model, self.decay, heavy, cfg.tau
        )
        self.generation += 1
        stats = UpdateStats(
            generation=self.generation,
            dirty_nodes=int(len(applied.dirty_nodes)),
            dirty_fraction=float(len(applied.dirty_nodes)) / net.n,
            moved_nodes=int(len(applied.moved_nodes)),
            samples_retired=0,
            samples_added=0,
            trees_rebuilt=int(len(dirty_roots)),
            seconds=time.perf_counter() - start,
            updated_unix=time.time(),
        )
        logger = get_logger()
        if logger.enabled:
            logger.event(
                "index_update", kind="mia",
                generation=stats.generation,
                dirty_nodes=stats.dirty_nodes,
                trees_rebuilt=stats.trees_rebuilt,
                seconds=round(stats.seconds, 4),
            )
        return stats

    # ------------------------------------------------------------------

    def node_bounds(self, q: PointLike) -> Tuple[np.ndarray, np.ndarray]:
        """``(lower, upper)`` singleton-influence bounds for every node.

        Anchor bounds refined by region bounds on the heavy nodes.  Exposed
        for tests (bound validity) and ablations.
        """
        lower, upper = self.anchor_bounds.bounds(q)
        d_min, d_max = self.region_bounds.cell_distances(q)
        for u in self.region_bounds.nodes:
            lo, hi = self.region_bounds.bounds_for(int(u), d_min, d_max)
            u = int(u)
            upper[u] = min(upper[u], hi)
            lower[u] = max(lower[u], lo)
        return lower, upper

    def query(
        self,
        q: PointLike | DaimQuery,
        k: int | None = None,
        return_diagnostics: bool = False,
    ) -> SeedResult | Tuple[SeedResult, MiaQueryDiagnostics]:
        """Answer a DAIM query with the priority-based search.

        Accepts either ``query(DaimQuery(loc, k))`` or ``query(loc, k)``.
        With ``return_diagnostics`` the result comes with a
        :class:`MiaQueryDiagnostics` (pruning stats, bound-setup time).
        ``SeedResult.elapsed`` covers seed *selection* only; the bound
        setup is measured separately as ``diagnostics.setup_seconds``.
        """
        if isinstance(q, DaimQuery):
            location, k = q.location, q.k
        else:
            if k is None:
                raise QueryError("k is required when passing a bare location")
            location = q
        return self._priority_query(location, k, return_diagnostics, mask=None)

    def query_masked(
        self,
        q: PointLike,
        k: int,
        mask: np.ndarray,
        return_diagnostics: bool = False,
    ) -> SeedResult | Tuple[SeedResult, MiaQueryDiagnostics]:
        """A targeted (bichromatic) query under a per-node weight mask.

        MIA influence is linear in the node weights (``sigma_q(u) =
        sum_v ap_u(v) * w(v, q)``), so masking multiplies the weights
        into the lazy marginals and scales the anchor/region bounds:
        ``lower * min(mask)`` and ``upper * max(mask)`` remain valid
        singleton bounds.  With an all-ones mask both scalings are by
        exactly 1.0, so the search is bit-identical to :meth:`query`.
        """
        mask = self._validate_mask(mask)
        return self._priority_query(q, k, return_diagnostics, mask=mask)

    def _validate_mask(self, mask: np.ndarray) -> np.ndarray:
        mask = np.asarray(mask, dtype=float)
        if mask.shape != (self.network.n,):
            raise QueryError(
                f"mask must have shape ({self.network.n},), got {mask.shape}"
            )
        if not np.all(mask >= 0):
            raise QueryError("mask entries must be >= 0")
        return mask

    def _priority_query(
        self,
        location: PointLike,
        k: int,
        return_diagnostics: bool,
        mask: np.ndarray | None,
    ) -> SeedResult | Tuple[SeedResult, MiaQueryDiagnostics]:
        if not 0 < k <= self.network.n:
            raise QueryError(f"k must be in [1, {self.network.n}], got {k}")

        setup_start = time.perf_counter()
        weights = self.decay.weights(self.network.coords, location)
        lower, upper = self.node_bounds(location)
        if mask is not None:
            weights = weights * mask
            # Influence is linear in weights, so scaling by the mask's
            # range keeps the bounds valid (and exact for 0/1 extremes).
            lower = lower * float(mask.min())
            upper = upper * float(mask.max())
        setup_seconds = time.perf_counter() - setup_start

        start = time.perf_counter()
        state = _LazyMiaState(self.model, weights)

        # Priority heap: (-bound, node, version); version == number of
        # seeds at which the bound became an *exact* marginal, -1 for the
        # initial index bound.
        heap: list[tuple[float, int, int]] = [
            (-float(upper[u]), u, -1) for u in range(self.network.n)
        ]
        heapq.heapify(heap)
        seeds: list[int] = []
        evaluations = 0
        heap_pops = 0
        selected: Set[int] = set()
        estimate = 0.0

        while len(seeds) < k and heap:
            neg_bound, u, version = heapq.heappop(heap)
            heap_pops += 1
            if u in selected:
                continue
            if version == len(seeds):
                # Exact at the current iteration: dominates all remaining
                # upper bounds, select it (Rules 1 & 2 success path).  Its
                # key is the exact marginal, so the objective accumulates
                # for free — no post-hoc spread recomputation needed.
                state.add_seed(u)
                seeds.append(u)
                selected.add(u)
                estimate += -neg_bound
                continue
            if version == -1 and not seeds and heap:
                # Rule 1 lower-bound shortcut for the first seed: if u's
                # lower bound beats the next candidate's upper bound, u is
                # provably the best node — select without competing it
                # through the heap (its exact gain is still computed once,
                # for the objective value).
                next_bound = -heap[0][0]
                if float(lower[u]) >= next_bound:
                    gain = state.marginal(u)
                    evaluations += 1
                    state.add_seed(u)
                    seeds.append(u)
                    selected.add(u)
                    estimate += gain
                    continue
            gain = state.marginal(u)
            evaluations += 1
            heapq.heappush(heap, (-gain, u, len(seeds)))

        if len(seeds) < k:
            raise QueryError(
                f"could not select {k} seeds (graph has {self.network.n} nodes)"
            )
        elapsed = time.perf_counter() - start
        result = SeedResult(
            seeds=seeds,
            estimate=estimate,
            method="MIA-DA",
            elapsed=elapsed,
            evaluations=evaluations,
        )
        if return_diagnostics:
            return result, MiaQueryDiagnostics(
                evaluations=evaluations,
                heap_pops=heap_pops,
                setup_seconds=setup_seconds,
            )
        return result

    def query_budgeted(
        self,
        q: PointLike,
        budget: float,
        costs: np.ndarray,
        return_diagnostics: bool = False,
    ) -> SeedResult | Tuple[SeedResult, MiaQueryDiagnostics]:
        """Cost-aware priority search: ratio-keyed CELF under a budget.

        The heap is keyed by ``bound / cost`` instead of the raw bound;
        stale exact marginals remain valid upper bounds by submodularity,
        so the CELF invariant carries over ratio-for-ratio (costs are
        fixed).  Selection stops when the budget affords no remaining
        candidate.  Nodes costing more than the *remaining* budget are
        dropped permanently on pop — the remaining budget only shrinks.
        With uniform power-of-two costs ``c`` and budget ``k * c`` the
        ratio ordering equals the bound ordering (exact division), so
        the selection matches :meth:`query` seed-for-seed; the Rule 1
        lower-bound shortcut is not taken here, which can change
        ``evaluations`` but never the seeds.
        """
        n = self.network.n
        costs = np.asarray(costs, dtype=float)
        if costs.shape != (n,):
            raise QueryError(f"costs must have shape ({n},), got {costs.shape}")
        if not np.all(costs > 0):
            raise QueryError("all node costs must be positive")
        budget = float(budget)
        if not budget > 0:
            raise QueryError(f"budget must be positive, got {budget}")
        if budget < float(costs.min()):
            raise QueryError(
                f"budget {budget} cannot afford any node (cheapest costs "
                f"{float(costs.min())})"
            )

        setup_start = time.perf_counter()
        weights = self.decay.weights(self.network.coords, q)
        _, upper = self.node_bounds(q)
        setup_seconds = time.perf_counter() - setup_start

        start = time.perf_counter()
        state = _LazyMiaState(self.model, weights)
        # (-bound/cost, node, version, bound): version as in query();
        # the raw bound rides along so a selection can accumulate the
        # exact marginal rather than un-dividing the ratio (float
        # division does not invert exactly).
        heap: list[tuple[float, int, int, float]] = [
            (-float(upper[u]) / float(costs[u]), u, -1, float(upper[u]))
            for u in range(n)
        ]
        heapq.heapify(heap)
        seeds: list[int] = []
        evaluations = 0
        heap_pops = 0
        selected: Set[int] = set()
        estimate = 0.0
        remaining = budget
        while heap:
            neg_ratio, u, version, bound = heapq.heappop(heap)
            heap_pops += 1
            if u in selected:
                continue
            if float(costs[u]) > remaining:
                continue
            if version == len(seeds):
                state.add_seed(u)
                seeds.append(u)
                selected.add(u)
                estimate += bound
                remaining -= float(costs[u])
                continue
            gain = state.marginal(u)
            evaluations += 1
            heapq.heappush(
                heap, (-gain / float(costs[u]), u, len(seeds), gain)
            )
        elapsed = time.perf_counter() - start
        result = SeedResult(
            seeds=seeds,
            estimate=estimate,
            method="MIA-DA",
            elapsed=elapsed,
            evaluations=evaluations,
        )
        if return_diagnostics:
            return result, MiaQueryDiagnostics(
                evaluations=evaluations,
                heap_pops=heap_pops,
                setup_seconds=setup_seconds,
            )
        return result

    def query_trajectory(
        self,
        waypoints: Sequence[PointLike],
        k: int,
        return_diagnostics: bool = False,
    ) -> list[SeedResult] | list[Tuple[SeedResult, MiaQueryDiagnostics]]:
        """One seed set per waypoint.

        MIA-DA's per-query state (weights, bounds, lazy tree states) all
        depend on the location, so unlike the RIS backend there is no
        cross-waypoint work to share — this is the plain loop, present
        so both index families expose the same trajectory surface.
        """
        if not len(waypoints):
            raise QueryError("trajectory needs at least one waypoint")
        return [
            self.query(wp, k, return_diagnostics=return_diagnostics)
            for wp in waypoints
        ]  # type: ignore[return-value]

    def query_many(
        self,
        locations: Sequence[PointLike],
        k: int,
        return_diagnostics: bool = False,
    ) -> list[SeedResult] | list[Tuple[SeedResult, MiaQueryDiagnostics]]:
        """Answer a batch of queries with the same budget.

        Query state is per-location (the bounds and the greedy state both
        depend on ``q``), so this is a convenience loop; it exists so
        batch callers do not have to reimplement error handling.  For
        cached, concurrent, metered batches, wrap the index in a
        :class:`repro.serve.QueryEngine` (see :meth:`serve`) instead.
        """
        return [
            self.query(q, k, return_diagnostics=return_diagnostics)
            for q in locations
        ]  # type: ignore[return-value]

    def serve(self, config=None, metrics=None, **kwargs):
        """A :class:`repro.serve.QueryEngine` over this index.

        Convenience for ``QueryEngine(index, ...)``; the serving layer is
        imported lazily to keep ``repro.core`` free of the dependency.
        Extra keyword arguments (``tracer``, ``logger``, ``slow_log``)
        pass straight through to the engine.
        """
        from repro.serve.engine import QueryEngine

        return QueryEngine(self, config=config, metrics=metrics, **kwargs)
