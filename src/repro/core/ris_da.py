"""RIS-DA: the sampling-based index with theoretical guarantees (Section 4).

Offline (:meth:`RisDaIndex.build`, run by the constructor):

1. **Pivot phase** (Algorithm 4) — sample pivot locations; for each pivot
   ``p`` derive a certain lower bound ``L_p^k`` of ``OPT_p^k`` with
   Algorithm 3 (LB-EST), grow the shared sample pool to the Lemma 7 size,
   run the weighted greedy (Algorithm 2) and record the estimated spread
   ``I_hat_p(S_p^k)`` for every ``k`` up to ``k_max`` (greedy seed sets are
   nested, so one run yields the whole curve).
2. **Worst-case sizing** (Algorithm 5) — partition space into the pivots'
   Voronoi cells; for each cell take the location furthest from its pivot,
   transfer the pivot's estimate there with Lemma 8, and size the pool for
   the worst (cell, k) combination.  The pool then suffices for *any*
   online query.

Online (:meth:`RisDaIndex.query`): find the nearest pivot, derive the
query-specific lower bound via Lemma 8, compute the (much smaller) sample
prefix it implies, and run Algorithm 2 over that prefix only — the paper's
key observation that building the coverage structures dominates online
cost, so using fewer samples than indexed is the main lever.

Guarantee: ``1 - 1/e - epsilon`` with probability ``>= 1 - delta`` for any
query location and any ``k <= k_max`` (Lemma 9) — provided the pool was not
truncated by ``max_index_samples`` (a practical memory valve the paper's
C++ implementation does not need at its scale; when it engages, the flag
:attr:`RisDaIndex.truncated` is set and queries needing more samples than
indexed report ``guarantee_met=False`` in their diagnostics).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.query import DaimQuery, SeedResult
from repro.exceptions import QueryError, SamplingError
from repro.geo.kdtree import KDTree
from repro.geo.point import PointLike, as_point
from repro.geo.sampling import (
    farthest_point_sample,
    sample_density_pivots,
    sample_uniform_points,
)
from repro.geo.voronoi import VoronoiDiagram
from repro.geo.weights import DistanceDecay
from repro.kernels import resolve_backend
from repro.network.graph import GeoSocialNetwork
from repro.obs.log import get_logger
from repro.obs.progress import Heartbeat
from repro.obs.trace import get_tracer
from repro.ris.corpus import RRCorpus
from repro.ris.coupled import CoupledRRSampler, quantize_probability
from repro.ris.coverage import weighted_budgeted_cover, weighted_greedy_cover
from repro.ris.lower_bound import lb_est, lb_est_lt
from repro.ris.parallel import ParallelRRSampler
from repro.ris.rrset import RRSampler
from repro.ris.sample_size import lemma8_lower_bound, required_sample_size
from repro.rng import as_generator


@dataclass(frozen=True)
class RisDaConfig:
    """Build-time parameters of the RIS-DA index.

    Paper defaults: 2000 pivots, ``epsilon_pivot = 0.1``,
    ``delta_pivot = 1/(10n)``, online ``epsilon = 0.5``, ``delta = 1/n``.
    ``n_pivots`` and ``epsilon_pivot`` here default to laptop-scaled
    values; pass the paper's numbers explicitly to reproduce them.

    ``lb_k_grid`` controls at which ``k`` values Algorithm 3 is re-run per
    pivot (LB-EST is monotone in ``k``, so the bound at the largest grid
    point below ``k`` remains valid for ``k``); 0 means every ``k``.
    ``max_index_samples`` caps the pool size (memory valve; see module
    docs).

    ``n_workers > 1`` samples RR sets over a
    :class:`~repro.ris.parallel.ParallelRRSampler` worker pool during both
    offline phases (pivot growth and the Algorithm 5 worst-case top-up).
    The build stays fully reproducible per ``(seed, n_workers)`` pair;
    different worker counts yield different, equally valid sample streams.

    ``selection`` picks the greedy-cover kernel for both the pivot phase
    and online queries: ``"eager"`` (default; argmax scan, reproducible
    reference) or ``"lazy"`` (CELF-style stale-gain heap).  Both select
    identical seed sets up to exact float ties — see
    :func:`repro.ris.coverage.weighted_greedy_cover`.

    ``kernel_backend`` requests the native-kernel backend for the hot
    loops (selection and the coupled sampler traversal): ``"auto"``
    (default; numba when importable and warm, else numpy), ``"numpy"``
    or ``"numba"`` (raises :class:`~repro.exceptions.KernelError` when
    the host cannot compile).  Resolution happens once per index — see
    :mod:`repro.kernels` — and the compiled kernels are bit-identical
    to the numpy ones, so the backend is a pure speed knob.
    """

    k_max: int = 50
    n_pivots: int = 100
    epsilon_pivot: float = 0.25
    delta_pivot: Optional[float] = None
    epsilon: float = 0.5
    delta: Optional[float] = None
    pivot_strategy: str = "uniform"
    max_index_samples: int = 300_000
    lb_k_grid: int = 8
    diffusion: str = "ic"
    seed: int = 0
    n_workers: int = 1
    selection: str = "eager"
    kernel_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.diffusion not in ("ic", "lt"):
            raise QueryError(
                f"diffusion must be 'ic' or 'lt', got {self.diffusion!r}"
            )
        if self.k_max <= 0:
            raise QueryError(f"k_max must be positive, got {self.k_max}")
        if self.n_pivots <= 0:
            raise QueryError(f"n_pivots must be positive, got {self.n_pivots}")
        if self.pivot_strategy not in ("uniform", "density", "farthest"):
            raise QueryError(
                "pivot_strategy must be 'uniform', 'density' or 'farthest', "
                f"got {self.pivot_strategy!r}"
            )
        if self.max_index_samples <= 0:
            raise QueryError("max_index_samples must be positive")
        if self.n_workers < 1:
            raise QueryError(
                f"n_workers must be at least 1, got {self.n_workers}"
            )
        if self.selection not in ("eager", "lazy"):
            raise QueryError(
                f"selection must be 'eager' or 'lazy', got {self.selection!r}"
            )
        if self.kernel_backend not in ("auto", "numpy", "numba"):
            raise QueryError(
                "kernel_backend must be 'auto', 'numpy' or 'numba', "
                f"got {self.kernel_backend!r}"
            )

    def resolved_deltas(self, n: int) -> Tuple[float, float]:
        """``(delta_pivot, delta_online)`` with the paper's defaults."""
        dp = self.delta_pivot if self.delta_pivot is not None else 1.0 / (10.0 * n)
        d = self.delta if self.delta is not None else 1.0 / n
        if not 0 < dp < d < 1:
            raise SamplingError(
                f"need 0 < delta_pivot ({dp}) < delta ({d}) < 1 so that the "
                "online union bound delta - delta_pivot stays positive"
            )
        return dp, d


@dataclass(frozen=True)
class QueryTimings:
    """Per-stage wall-clock seconds of one online query.

    ``weight_eval`` is the distance-decay evaluation over the prefix
    roots; ``score_build`` / ``selection`` / ``bound`` come from the
    greedy cover (see :class:`repro.ris.coverage.SelectionTimings`);
    ``total`` is the whole query including pivot lookup and sizing.
    """

    weight_eval: float
    score_build: float
    selection: float
    bound: float
    total: float

    def as_dict(self) -> dict:
        return {
            "weight_eval": self.weight_eval,
            "score_build": self.score_build,
            "selection": self.selection,
            "bound": self.bound,
            "total": self.total,
        }


@dataclass(frozen=True)
class QueryDiagnostics:
    """Side-channel information about one RIS-DA query.

    ``timings`` is excluded from equality: two runs of the same query are
    diagnostically identical even though their wall clocks never are.
    """

    pivot_index: int
    pivot_distance: float
    lower_bound: float
    samples_required: int
    samples_used: int
    guarantee_met: bool
    timings: Optional[QueryTimings] = field(default=None, compare=False)


class RisDaIndex:
    """The RIS-DA offline index and its online query processor."""

    def __init__(
        self,
        network: GeoSocialNetwork,
        decay: DistanceDecay | None = None,
        config: RisDaConfig | None = None,
    ):
        self.network = network
        self.decay = decay if decay is not None else DistanceDecay()
        self.config = config if config is not None else RisDaConfig()
        #: The *resolved* native-kernel backend ("numpy" or "numba",
        #: never "auto"); stamped into serving metrics and ``repro info``.
        self.kernel_backend = resolve_backend(self.config.kernel_backend)
        #: Bumped by :meth:`update`; serving folds it into cache keys so
        #: result-cache entries die when the in-memory index changes.
        self.generation = 0
        self._build()

    # ------------------------------------------------------------------
    # Offline phase
    # ------------------------------------------------------------------

    def _build(self) -> None:
        cfg = self.config
        net = self.network
        n = net.n
        k_max = min(cfg.k_max, n)
        # Resolved once; both the pivot phase and the Voronoi sizing below
        # reuse the same pair (it depends only on the network size).
        delta_pivot, delta_online = cfg.resolved_deltas(n)
        rng = as_generator(cfg.seed)
        tracer = get_tracer()
        logger = get_logger()
        if logger.enabled:
            logger.event(
                "build_start", phase="ris.build", n=n, k_max=k_max,
                n_pivots=cfg.n_pivots, n_workers=cfg.n_workers,
            )
        start = time.perf_counter()
        with tracer.span(
            "ris.build",
            {"n": n, "k_max": k_max, "n_pivots": cfg.n_pivots,
             "n_workers": cfg.n_workers, "diffusion": cfg.diffusion},
        ) as build_span:
            self._build_phases(
                cfg, net, n, k_max, delta_pivot, delta_online, rng,
                tracer, start,
            )
            build_span.set_attribute("samples", len(self.corpus))
            build_span.set_attribute("truncated", self.truncated)
        self.build_seconds = time.perf_counter() - start
        self.k_max = k_max
        if logger.enabled:
            logger.event(
                "build_end", phase="ris.build",
                seconds=round(self.build_seconds, 3),
                samples=len(self.corpus), truncated=self.truncated,
            )

    def _build_phases(
        self, cfg, net, n, k_max, delta_pivot, delta_online, rng,
        tracer, start,
    ) -> None:
        box = net.bounding_box()
        if cfg.pivot_strategy == "uniform":
            pivots = sample_uniform_points(box, cfg.n_pivots, rng)
        elif cfg.pivot_strategy == "density":
            pivots = sample_density_pivots(net.coords, cfg.n_pivots, rng)
        else:
            candidates = sample_uniform_points(box, cfg.n_pivots * 16, rng)
            pivots = farthest_point_sample(candidates, cfg.n_pivots, rng)
        self.pivots = pivots
        self._pivot_tree = KDTree(pivots)

        if cfg.n_workers > 1:
            self.sampler: RRSampler | ParallelRRSampler | CoupledRRSampler = (
                ParallelRRSampler(
                    net, seed=rng, diffusion=cfg.diffusion,
                    n_workers=cfg.n_workers,
                )
            )
        elif cfg.diffusion == "ic":
            # Counter-based sampler: every slot is a pure function of
            # (seed, key, graph), which is what lets update() regenerate
            # only the dirty slots instead of resampling a corpus-sized
            # pass (see repro.ris.coupled).
            self.sampler = CoupledRRSampler(
                net, seed=cfg.seed, kernel_backend=self.kernel_backend
            )
        else:
            self.sampler = RRSampler(net, seed=rng, diffusion=cfg.diffusion)
        self.corpus = RRCorpus(self.sampler)

        # ---- Algorithm 4: pivot information ----
        w_max = self.decay.w_max
        self.pivot_estimates = np.zeros((len(pivots), k_max), dtype=float)
        self.pivot_lower_bounds = np.zeros((len(pivots), k_max), dtype=float)
        self.truncated = False
        with tracer.span("ris.pivot_phase", {"n_pivots": len(pivots)}):
            hb = Heartbeat("ris.pivot_phase", total=len(pivots),
                           unit="pivots")
            for pi, p in enumerate(pivots):
                loc = (float(p[0]), float(p[1]))
                weights = self.decay.weights(net.coords, loc)
                lbs = self._lb_curve(weights, k_max)
                self.pivot_lower_bounds[pi] = lbs
                # One sample size covering every k at this pivot.
                l_p = max(
                    required_sample_size(n, k, w_max, cfg.epsilon_pivot,
                                         delta_pivot, float(lbs[k - 1]))
                    for k in range(1, k_max + 1)
                )
                l_p = self._capped(l_p)
                self.corpus.ensure(l_p)
                # The pivot phase only needs the estimate curve, never the
                # certification bound — skip the per-iteration partitions.
                cover = weighted_greedy_cover(
                    self.corpus, weights[self.corpus.roots[:l_p]], k_max,
                    prefix=l_p, compute_bound=False, method=cfg.selection,
                    backend=self.kernel_backend,
                )
                # Greedy is nested: prefix estimates give the whole k curve.
                self.pivot_estimates[pi] = [
                    cover.estimate_for_prefix(k, n)
                    for k in range(1, k_max + 1)
                ]
                hb.advance()
            hb.finish()
        self.pivot_seconds = time.perf_counter() - start

        # ---- Algorithm 5: Voronoi worst-case sizing ----
        vstart = time.perf_counter()
        with tracer.span("ris.voronoi_sizing"):
            self.voronoi = VoronoiDiagram(pivots, box)
            l_max = 0
            delta_query = delta_online - delta_pivot
            for cell in self.voronoi.cells:
                pi = cell.site_index
                d_worst = cell.worst_distance
                for k in range(1, k_max + 1):
                    lb = lemma8_lower_bound(
                        float(self.pivot_estimates[pi, k - 1]), d_worst,
                        self.decay.alpha, cfg.epsilon_pivot, delta_pivot,
                        n, k,
                    )
                    if lb <= 0:
                        lb = float(
                            self.pivot_lower_bounds[pi, k - 1]
                        ) * np.exp(-self.decay.alpha * d_worst)
                    if lb <= 0:
                        continue
                    l_max = max(
                        l_max,
                        required_sample_size(n, k, w_max, cfg.epsilon,
                                             delta_query, lb),
                    )
            self.index_samples_required = l_max
            l_final = self._capped(max(l_max, len(self.corpus)))
            self.corpus.ensure(l_final)
        if isinstance(self.sampler, ParallelRRSampler):
            # Sampling is done; free the workers.  The pool restarts
            # lazily if the corpus ever grows again.
            self.sampler.close()
        with tracer.span("ris.inverted_index"):
            # Pay the inverted-index build offline; queries then only
            # binary-search prefix cutoffs instead of re-sorting.
            self.corpus.inverted()
        self.voronoi_seconds = time.perf_counter() - vstart

    def _capped(self, l: int) -> int:
        if l > self.config.max_index_samples:
            self.truncated = True
            return self.config.max_index_samples
        return l

    def _lb_curve(self, weights: np.ndarray, k_max: int) -> np.ndarray:
        """``L_p^k`` for k = 1..k_max via Algorithm 3 on a k-grid.

        LB-EST is monotone in k (adding seeds only adds weight), so for
        off-grid k the bound at the largest grid point <= k is still a
        valid (slightly looser) lower bound.
        """
        grid = self.config.lb_k_grid
        if grid <= 0:
            ks = list(range(1, k_max + 1))
        else:
            ks = sorted(set([1, k_max] + list(range(1, k_max + 1, grid))))
        curve = np.zeros(k_max, dtype=float)
        last = 0.0
        bound_fn = lb_est if self.config.diffusion == "ic" else lb_est_lt
        values = {k: bound_fn(self.network, weights, k, self.decay.w_max) for k in ks}
        for k in range(1, k_max + 1):
            if k in values:
                # Guard monotonicity against tie-breaking jitter in the
                # seed ranking.
                last = max(last, values[k])
            curve[k - 1] = last
        return curve

    # ------------------------------------------------------------------
    # Streaming maintenance
    # ------------------------------------------------------------------

    def update(
        self,
        edges=None,
        probabilities=None,
        removed=None,
        checkins=None,
        *,
        delta=None,
    ) -> "UpdateStats":
        """Fold a graph delta into the index without a full rebuild.

        Reservoir-style corpus refresh, coupled path (keyed corpora —
        the default for serially built IC indexes): each sample slot's
        randomness is a pure function of ``(seed, key)`` with per-edge
        coins keyed by edge *endpoints* (:mod:`repro.ris.coupled`).
        Only slots whose reverse-reach set contains the **head** of a
        changed edge are located via the inverted index and re-run in
        place against the new network — a reverse traversal flips coins
        only on the in-edge rows of nodes it reached, and a delta only
        rewrites the in-edge rows of changed-edge heads, so every other
        slot replays bit-identically and needs no work.  Re-run slots
        are exact fresh RR sets of the new graph, slots stay i.i.d., no
        shuffle is needed, and the cost scales with the dirty fraction
        instead of the corpus size.  Growth to the Algorithm 5
        worst-case size (Lemmas 5–7) then appends slots under fresh
        keys.

        Keyless corpora (parallel-built, LT diffusion, or restored from
        pre-key save files) fall back to retire-and-resample: samples
        touching any dirty endpoint are retired, replacements are drawn
        *conditioned on touching a dirty node* (the survivors are
        exactly the dirty-avoiding draws, so unconditioned refills would
        skew the pool; :meth:`RRCorpus.extend_touching` restores the
        exact RR-set law), and a shuffle restores slot exchangeability
        for prefix reads.  Moved check-ins require no sample work on
        either path: distance-decay weights are evaluated at query time
        from ``self.network.coords``.

        Pivot estimates are *not* recomputed — they remain the build's
        Algorithm 4 snapshot, so after heavy drift the Lemma 8 transfer
        degrades gracefully (the bound loosens, sample prefixes grow)
        rather than breaking; rebuild when staleness accumulates.

        Accepts either loose arguments (``edges``/``probabilities``/
        ``removed``/``checkins`` as in
        :meth:`repro.stream.GraphDelta.make`) or a prepared ``delta``.
        Returns :class:`repro.stream.UpdateStats`; bumps
        :attr:`generation` so serving caches invalidate.
        """
        from repro.stream.delta import GraphDelta, UpdateStats, apply_delta

        start = time.perf_counter()
        if delta is None:
            delta = GraphDelta.make(
                edges=edges, probabilities=probabilities,
                removed=removed, checkins=checkins,
            )
        applied = apply_delta(self.network, delta)
        cfg = self.config
        prior = len(self.corpus)
        if self.corpus.keyed:
            retired, added = self._refresh_coupled(applied, delta, prior)
        else:
            retired, added = self._refresh_rejection(applied, prior)
        # Rebuild the inverted index eagerly, mirroring _build_phases:
        # the next update's dirty-sample query (and first query's prefix
        # cuts) should not pay for it inline.
        self.corpus.inverted()
        self.generation += 1
        stats = UpdateStats(
            generation=self.generation,
            dirty_nodes=int(len(applied.dirty_nodes)),
            dirty_fraction=float(len(applied.dirty_nodes)) / self.network.n,
            moved_nodes=int(len(applied.moved_nodes)),
            samples_retired=int(retired),
            samples_added=int(added),
            trees_rebuilt=0,
            seconds=time.perf_counter() - start,
            updated_unix=time.time(),
        )
        logger = get_logger()
        if logger.enabled:
            logger.event(
                "index_update", kind="ris",
                generation=stats.generation,
                dirty_nodes=stats.dirty_nodes,
                samples_retired=stats.samples_retired,
                samples_added=stats.samples_added,
                seconds=round(stats.seconds, 4),
            )
        return stats

    def _refresh_coupled(self, applied, delta, prior: int) -> tuple[int, int]:
        """Keyed-corpus refresh: regenerate dirty slots in place.

        Returns ``(slots regenerated, slots regenerated + slots grown)``
        for the stats accounting — regenerated slots are fresh draws, so
        they count on both sides.
        """
        cfg = self.config
        dirty = self._flipped_slots(delta)
        self.network = applied.network
        sampler = CoupledRRSampler(
            applied.network, seed=cfg.seed,
            kernel_backend=self.kernel_backend,
        )
        self.sampler = sampler
        self.corpus.replace_sampler(sampler)
        retired = self.corpus.regenerate(dirty)
        target = self._capped(max(self.index_samples_required, prior))
        grown = max(0, target - prior)
        self.corpus.ensure(target)
        return retired, retired + grown

    def _flipped_slots(self, delta) -> np.ndarray:
        """Slot ids whose replay changes under ``delta`` (coupled path).

        Two exact filters stack.  First, only slots whose stored set
        contains a changed edge's *head* can change — a reverse
        traversal flips coins only on the in-edge rows of nodes it
        reached, and a delta rewrites exactly the heads' rows.  Second,
        among those candidates only the slots whose hashed coin for that
        edge flips liveness (lands between the old and new probability)
        replay differently: every other coin in the row is
        endpoint-keyed and untouched, so the traversal reaches the same
        set regardless of the row's new layout.  Must run against the
        *old* network (it reads the old probabilities).
        """
        corpus = self.corpus
        old = self.network
        keys = corpus.keys
        # Last-wins change resolution, mirroring apply_delta.
        final: dict = {}
        for (u, v), p in zip(delta.edges, delta.probabilities):
            final[(int(u), int(v))] = float(p)
        for u, v in delta.removed:
            final[(int(u), int(v))] = 0.0
        flipped = []
        for (u, v), p_new in final.items():
            lo = int(old.in_offsets[v])
            hi = int(old.in_offsets[v + 1])
            at = np.flatnonzero(old.in_sources[lo:hi] == u)
            p_old = float(old.in_probs[lo + int(at[0])]) if len(at) else 0.0
            if p_old == p_new:
                continue
            cand = corpus.samples_touching(np.asarray([v]))
            if not len(cand):
                continue
            bits = self.sampler.edge_coin_bits(keys[cand], u, v)
            t_lo = quantize_probability(min(p_old, p_new))
            t_hi = quantize_probability(max(p_old, p_new))
            flips = cand[(bits >= t_lo) & (bits < t_hi)]
            if len(flips):
                flipped.append(flips)
        if not flipped:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(flipped))

    def _refresh_rejection(self, applied, prior: int) -> tuple[int, int]:
        """Keyless-corpus fallback: retire, resample conditioned, shuffle.

        Returns ``(samples retired, samples drawn)`` — replacements plus
        growth to the Lemma 5–7 target.
        """
        cfg = self.config
        retired = 0
        if len(applied.dirty_nodes):
            retired = self.corpus.retire(
                self.corpus.samples_touching(applied.dirty_nodes)
            )
        self.network = applied.network
        # A fresh sampler over the new graph, deterministically seeded per
        # (config seed, generation) so replayed update sequences reproduce.
        rng = np.random.default_rng([cfg.seed, self.generation + 1])
        if cfg.n_workers > 1:
            sampler: RRSampler | ParallelRRSampler = ParallelRRSampler(
                applied.network, seed=rng, diffusion=cfg.diffusion,
                n_workers=cfg.n_workers,
            )
        else:
            sampler = RRSampler(
                applied.network, seed=rng, diffusion=cfg.diffusion
            )
        self.sampler = sampler
        self.corpus.replace_sampler(sampler)
        target = self._capped(max(self.index_samples_required, prior))
        added = max(0, target - len(self.corpus))
        if retired:
            # Replacements must touch a dirty node: retirement keeps
            # exactly the dirty-avoiding samples, so unconditioned
            # refills would bias the pool toward them (see
            # RRCorpus.extend_touching for the exact argument).
            self.corpus.extend_touching(
                min(retired, added), applied.dirty_nodes
            )
        # Any growth beyond the replaced slots restores the Lemma 5-7
        # worst-case size with ordinary unconditioned draws.
        self.corpus.ensure(target)
        # Queries read corpus *prefixes*; survivors sit at the head and
        # conditioned replacements at the tail, so restore slot
        # exchangeability (see RRCorpus.shuffle).
        self.corpus.shuffle(rng)
        if isinstance(sampler, ParallelRRSampler):
            sampler.close()
        return retired, added

    def set_kernel_backend(self, name: str) -> str:
        """Re-resolve the native-kernel backend on a built index.

        ``name`` is any of ``"auto"``/``"numpy"``/``"numba"``; returns
        the resolved concrete name.  Safe at any time: the compiled and
        numpy kernels are bit-identical, so switching never changes a
        query answer — a loaded index can be served with a different
        backend than it was built with (the persisted config stores the
        *request*, each host resolves it locally).
        """
        resolved = resolve_backend(name)
        self.config = replace(self.config, kernel_backend=name)
        self.kernel_backend = resolved
        if isinstance(self.sampler, CoupledRRSampler):
            self.sampler.kernel_backend = resolved
        return resolved

    # ------------------------------------------------------------------
    # Online phase
    # ------------------------------------------------------------------

    def lower_bound_for(self, q: PointLike, k: int) -> Tuple[float, QueryDiagnostics]:
        """Lemma 8 lower bound of ``OPT_q^k`` plus diagnostics skeleton."""
        delta_pivot, _ = self.config.resolved_deltas(self.network.n)
        return self._lower_bound_at(as_point(q), k, delta_pivot)

    def _lower_bound_at(
        self, loc: Tuple[float, float], k: int, delta_pivot: float
    ) -> Tuple[float, QueryDiagnostics]:
        if not 0 < k <= self.k_max:
            raise QueryError(f"k must be in [1, {self.k_max}], got {k}")
        pi, dist = self._pivot_tree.nearest(loc)
        cfg = self.config
        n = self.network.n
        lb = lemma8_lower_bound(
            float(self.pivot_estimates[pi, k - 1]), dist,
            self.decay.alpha, cfg.epsilon_pivot, delta_pivot, n, k,
        )
        if lb <= 0:
            lb = float(self.pivot_lower_bounds[pi, k - 1]) * float(
                np.exp(-self.decay.alpha * dist)
            )
        diag = QueryDiagnostics(
            pivot_index=pi,
            pivot_distance=dist,
            lower_bound=lb,
            samples_required=0,
            samples_used=0,
            guarantee_met=True,
        )
        return lb, diag

    def query(
        self,
        q: PointLike | DaimQuery,
        k: int | None = None,
        return_diagnostics: bool = False,
    ) -> SeedResult | Tuple[SeedResult, QueryDiagnostics]:
        """Answer a DAIM query from the indexed samples.

        Accepts either ``query(DaimQuery(loc, k))`` or ``query(loc, k)``.
        """
        if isinstance(q, DaimQuery):
            location, k = q.location, q.k
        else:
            if k is None:
                raise QueryError("k is required when passing a bare location")
            location = as_point(q)
        deltas = self.config.resolved_deltas(self.network.n)
        return self._query_at(location, k, return_diagnostics, deltas)

    def _query_at(
        self,
        location: Tuple[float, float],
        k: int,
        return_diagnostics: bool,
        deltas: Tuple[float, float],
        mask: np.ndarray | None = None,
    ) -> SeedResult | Tuple[SeedResult, QueryDiagnostics]:
        start = time.perf_counter()
        cfg = self.config
        n = self.network.n
        delta_pivot, delta_online = deltas
        lb, diag = self._lower_bound_at(location, k, delta_pivot)
        if lb <= 0:
            raise SamplingError(
                f"lower bound collapsed to {lb} at {location}; the pivot "
                "phase produced no usable estimate (graph too sparse or "
                "decay too aggressive)"
            )
        l_required = required_sample_size(
            n, k, self.decay.w_max, cfg.epsilon, delta_online - delta_pivot, lb
        )
        l_used = min(l_required, len(self.corpus))
        guarantee = l_used >= l_required
        if mask is not None and not bool(np.all(mask == 1.0)):
            # The Lemma 8 sizing lower-bounds the *unmasked* optimum; a
            # genuine mask shrinks OPT below it, so the (1 - 1/e - eps)
            # certificate no longer transfers.  The estimate stays
            # unbiased for the masked spread at any prefix length.
            guarantee = False

        t_weights = time.perf_counter()
        roots = self.corpus.roots[:l_used]
        sample_weights = self.decay.weights(
            self.network.coords[roots], location
        )
        if mask is not None:
            sample_weights = sample_weights * mask[roots]
        weight_seconds = time.perf_counter() - t_weights
        # Serving default: no certification bound (certify.py draws its
        # own fresh samples and requests the bound explicitly there).
        cover = weighted_greedy_cover(
            self.corpus, sample_weights, k, prefix=l_used,
            compute_bound=False, method=cfg.selection,
            backend=self.kernel_backend,
        )
        elapsed = time.perf_counter() - start
        result = SeedResult(
            seeds=cover.seeds,
            estimate=cover.estimate,
            method="RIS-DA",
            elapsed=elapsed,
            samples_used=l_used,
        )
        if return_diagnostics:
            ct = cover.timings
            diag = QueryDiagnostics(
                pivot_index=diag.pivot_index,
                pivot_distance=diag.pivot_distance,
                lower_bound=lb,
                samples_required=l_required,
                samples_used=l_used,
                guarantee_met=guarantee,
                timings=QueryTimings(
                    weight_eval=weight_seconds,
                    score_build=ct.score_build if ct else 0.0,
                    selection=ct.selection if ct else 0.0,
                    bound=ct.bound if ct else 0.0,
                    total=elapsed,
                ),
            )
            return result, diag
        return result

    def _validate_mask(self, mask: np.ndarray) -> np.ndarray:
        mask = np.asarray(mask, dtype=float)
        if mask.shape != (self.network.n,):
            raise QueryError(
                f"mask must have shape ({self.network.n},), got {mask.shape}"
            )
        if not np.all(mask >= 0):
            raise QueryError("mask entries must be >= 0")
        return mask

    def query_masked(
        self,
        q: PointLike,
        k: int,
        mask: np.ndarray,
        return_diagnostics: bool = False,
    ) -> SeedResult | Tuple[SeedResult, QueryDiagnostics]:
        """A targeted (bichromatic) query: Eq. 9 over masked node weights.

        ``mask`` is a per-node weight multiplier (0/1 for a target
        subset): sample ``i``'s weight becomes ``w(v_i, q) * mask[v_i]``,
        so only influence landing on masked-in nodes counts.  With an
        all-ones mask this is bit-identical to :meth:`query` (multiplying
        by 1.0 is exact); with a genuine mask the estimate remains
        unbiased for the masked spread but ``guarantee_met`` reports
        ``False`` — the Lemma 8 sizing bounds the unmasked optimum.
        """
        mask = self._validate_mask(mask)
        deltas = self.config.resolved_deltas(self.network.n)
        return self._query_at(as_point(q), k, return_diagnostics, deltas, mask=mask)

    def query_budgeted(
        self,
        q: PointLike,
        budget: float,
        costs: np.ndarray,
        return_diagnostics: bool = False,
    ) -> SeedResult | Tuple[SeedResult, QueryDiagnostics]:
        """Cost-aware seed selection under a total budget.

        ``costs`` is a dense per-node cost vector; selection is the
        gain/cost ratio greedy of
        :func:`repro.ris.coverage.weighted_budgeted_cover` over the same
        sized sample prefix a top-``k_eff`` query would use, where
        ``k_eff = min(k_max, floor(budget / min cost))`` bounds how many
        seeds the budget can possibly buy.  With uniform costs ``c`` and
        budget ``k * c`` the answer is bit-identical to ``query(q, k)``.
        """
        start = time.perf_counter()
        cfg = self.config
        n = self.network.n
        location = as_point(q)
        costs = np.asarray(costs, dtype=float)
        if costs.shape != (n,):
            raise QueryError(f"costs must have shape ({n},), got {costs.shape}")
        if not np.all(costs > 0):
            raise QueryError("all node costs must be positive")
        k_eff = min(self.k_max, int(float(budget) // float(costs.min())))
        if k_eff < 1:
            raise QueryError(
                f"budget {budget} cannot afford any node (cheapest costs "
                f"{float(costs.min())})"
            )
        delta_pivot, delta_online = cfg.resolved_deltas(n)
        lb, diag = self._lower_bound_at(location, k_eff, delta_pivot)
        if lb <= 0:
            raise SamplingError(
                f"lower bound collapsed to {lb} at {location}; the pivot "
                "phase produced no usable estimate"
            )
        l_required = required_sample_size(
            n, k_eff, self.decay.w_max, cfg.epsilon, delta_online - delta_pivot, lb
        )
        l_used = min(l_required, len(self.corpus))
        guarantee = l_used >= l_required

        t_weights = time.perf_counter()
        roots = self.corpus.roots[:l_used]
        sample_weights = self.decay.weights(self.network.coords[roots], location)
        weight_seconds = time.perf_counter() - t_weights
        cover = weighted_budgeted_cover(
            self.corpus, sample_weights, costs, float(budget),
            prefix=l_used, method=cfg.selection,
            backend=self.kernel_backend,
        )
        elapsed = time.perf_counter() - start
        result = SeedResult(
            seeds=cover.seeds,
            estimate=cover.estimate,
            method="RIS-DA",
            elapsed=elapsed,
            samples_used=l_used,
        )
        if return_diagnostics:
            ct = cover.timings
            diag = QueryDiagnostics(
                pivot_index=diag.pivot_index,
                pivot_distance=diag.pivot_distance,
                lower_bound=lb,
                samples_required=l_required,
                samples_used=l_used,
                guarantee_met=guarantee,
                timings=QueryTimings(
                    weight_eval=weight_seconds,
                    score_build=ct.score_build if ct else 0.0,
                    selection=ct.selection if ct else 0.0,
                    bound=ct.bound if ct else 0.0,
                    total=elapsed,
                ),
            )
            return result, diag
        return result

    def query_trajectory(
        self,
        waypoints: Sequence[PointLike],
        k: int,
        return_diagnostics: bool = False,
    ) -> list[SeedResult] | list[Tuple[SeedResult, QueryDiagnostics]]:
        """Answer a trajectory: one seed set per waypoint, shared setup.

        Equivalent to ``[query(wp, k) for wp in waypoints]`` bit-for-bit,
        but the root-coordinate gather — the dominant per-query numpy
        allocation besides selection itself — is done once at the largest
        prefix any waypoint needs and sliced per waypoint, and the delta
        resolution is hoisted out of the loop.  Only the distance-decay
        evaluation and the greedy cover remain per-waypoint.
        """
        if not len(waypoints):
            raise QueryError("trajectory needs at least one waypoint")
        cfg = self.config
        n = self.network.n
        locs = [as_point(wp) for wp in waypoints]
        delta_pivot, delta_online = cfg.resolved_deltas(n)
        sized = []
        for loc in locs:
            lb, diag = self._lower_bound_at(loc, k, delta_pivot)
            if lb <= 0:
                raise SamplingError(
                    f"lower bound collapsed to {lb} at {loc}; the pivot "
                    "phase produced no usable estimate"
                )
            l_required = required_sample_size(
                n, k, self.decay.w_max, cfg.epsilon,
                delta_online - delta_pivot, lb,
            )
            l_used = min(l_required, len(self.corpus))
            sized.append((loc, lb, diag, l_required, l_used))
        l_max = max(s[4] for s in sized)
        t_gather = time.perf_counter()
        # One gather serves every waypoint: coords[roots[:l]] equals
        # coords[roots[:l_max]][:l] value-for-value for any l <= l_max.
        root_coords = self.network.coords[self.corpus.roots[:l_max]]
        gather_seconds = time.perf_counter() - t_gather
        out = []
        for wi, (loc, lb, diag, l_required, l_used) in enumerate(sized):
            start = time.perf_counter()
            t_weights = time.perf_counter()
            sample_weights = self.decay.weights(root_coords[:l_used], loc)
            weight_seconds = time.perf_counter() - t_weights
            if wi == 0:
                weight_seconds += gather_seconds
            cover = weighted_greedy_cover(
                self.corpus, sample_weights, k, prefix=l_used,
                compute_bound=False, method=cfg.selection,
                backend=self.kernel_backend,
            )
            elapsed = time.perf_counter() - start
            result = SeedResult(
                seeds=cover.seeds,
                estimate=cover.estimate,
                method="RIS-DA",
                elapsed=elapsed,
                samples_used=l_used,
            )
            if return_diagnostics:
                ct = cover.timings
                out.append((result, QueryDiagnostics(
                    pivot_index=diag.pivot_index,
                    pivot_distance=diag.pivot_distance,
                    lower_bound=lb,
                    samples_required=l_required,
                    samples_used=l_used,
                    guarantee_met=l_used >= l_required,
                    timings=QueryTimings(
                        weight_eval=weight_seconds,
                        score_build=ct.score_build if ct else 0.0,
                        selection=ct.selection if ct else 0.0,
                        bound=ct.bound if ct else 0.0,
                        total=elapsed,
                    ),
                )))
            else:
                out.append(result)
        return out  # type: ignore[return-value]

    def query_many(
        self,
        locations: Sequence[PointLike],
        k: int,
        return_diagnostics: bool = False,
    ) -> list[SeedResult] | list[Tuple[SeedResult, QueryDiagnostics]]:
        """Answer a batch of queries with the same budget.

        With ``return_diagnostics`` each element is the same
        ``(SeedResult, QueryDiagnostics)`` pair :meth:`query` returns.
        The per-query delta resolution is hoisted out of the loop — the
        deltas depend only on the network size, not the location.  For
        cached, concurrent, metered batches, wrap the index in a
        :class:`repro.serve.QueryEngine` (see :meth:`serve`) instead.
        """
        deltas = self.config.resolved_deltas(self.network.n)
        return [
            self._query_at(as_point(q), k, return_diagnostics, deltas)
            for q in locations
        ]  # type: ignore[return-value]

    def serve(self, config=None, metrics=None, **kwargs):
        """A :class:`repro.serve.QueryEngine` over this index.

        Convenience for ``QueryEngine(index, ...)``; the serving layer is
        imported lazily to keep ``repro.core`` free of the dependency.
        Extra keyword arguments (``tracer``, ``logger``, ``slow_log``)
        pass straight through to the engine.
        """
        from repro.serve.engine import QueryEngine

        return QueryEngine(self, config=config, metrics=metrics, **kwargs)
