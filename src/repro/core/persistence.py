"""Persistence for the RIS-DA and MIA-DA offline indexes.

Index construction is the expensive phase — minutes of RR-set sampling
for RIS-DA, one theta-pruned Dijkstra *per node* for MIA-DA — so a
production deployment builds once and serves many processes.
:func:`save_ris_index` / :func:`load_ris_index` round-trip everything the
RIS online phase needs (pivots, pivot estimates, the sample corpus, the
configuration); :func:`save_mia_index` / :func:`load_mia_index` do the
same for MIA-DA (all arborescences as flat CSR arrays, anchor locations
with their influence matrix and mass vector, and the per-heavy-node
region masses).  Each format is one versioned ``.npz`` file.

The network itself is *not* stored (persist it with
:func:`repro.network.io.write_network`); loading validates that the
supplied network matches the saved index by node/edge counts, and each
loader rejects the other's files by the ``kind`` tag in the metadata.

Reading and assembly are deliberately split: :func:`read_index_arrays`
returns the raw ``(kind, meta, arrays)`` triple, and
:func:`assemble_ris_index` / :func:`assemble_mia_index` (dispatched by
:func:`assemble_index`) rebuild a queryable index around *any* mapping
of flat arrays — freshly decompressed, ``np.memmap``'d, or views over
:mod:`multiprocessing.shared_memory` segments.  The multi-process
serving pool relies on this: each pre-forked worker attaches to the
parent's shared segments and assembles its index zero-copy, instead of
deserialising the ``.npz`` once per process.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping, Tuple, Union

import numpy as np

from repro.core.bounds import AnchorBounds, RegionBounds
from repro.core.mia_da import MiaDaConfig, MiaDaIndex
from repro.core.ris_da import RisDaConfig, RisDaIndex
from repro.exceptions import DataFormatError
from repro.geo.grid import UniformGrid
from repro.geo.kdtree import KDTree
from repro.geo.weights import DistanceDecay
from repro.kernels import resolve_backend
from repro.mia.pmia import MiaModel
from repro.network.graph import GeoSocialNetwork
from repro.ris.corpus import RRCorpus
from repro.ris.coupled import CoupledRRSampler
from repro.ris.rrset import RRSampler

PathLike = Union[str, Path]

_FORMAT_VERSION = 1
_MIA_FORMAT_VERSION = 1


def _with_npz_suffix(path: PathLike) -> Path:
    """``path`` with the ``.npz`` suffix ``np.savez`` would give it.

    ``np.savez_compressed`` appends ``.npz`` to any filename not already
    ending in it, so ``save_ris_index(idx, "index")`` writes
    ``index.npz``.  Both save and load normalise through this helper so a
    suffixless path round-trips.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def peek_index_kind(path: PathLike) -> str:
    """The ``kind`` tag (``"ris"`` or ``"mia"``) of a saved index file.

    Reads only the JSON metadata member, so callers (the serving layer's
    index cache, CLI dispatch) can pick the matching loader without paying
    for the array payload.  Files predating the ``kind`` tag are all RIS
    indexes.
    """
    path = _with_npz_suffix(path)
    with np.load(path) as data:
        if "meta" not in data:
            raise DataFormatError(f"{path} is not a repro index file")
        meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
    return meta.get("kind", "ris")


def read_index_arrays(
    path: PathLike,
) -> Tuple[str, dict, Dict[str, np.ndarray]]:
    """The raw content of a saved index: ``(kind, meta, arrays)``.

    ``arrays`` maps every non-``meta`` member of the ``.npz`` to its
    fully materialised array.  This is the read half of loading; pair it
    with :func:`assemble_index` to get a queryable index, or hand the
    arrays to the serving pool's shared-memory layer so many processes
    can assemble against one copy.
    """
    path = _with_npz_suffix(path)
    with np.load(path) as data:
        if "meta" not in data:
            raise DataFormatError(f"{path} is not a repro index file")
        meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
        arrays = {name: data[name] for name in data.files if name != "meta"}
    return meta.get("kind", "ris"), meta, arrays


def assemble_index(
    kind: str,
    network: GeoSocialNetwork,
    meta: dict,
    arrays: Mapping[str, np.ndarray],
    source: str = "index arrays",
) -> Union[RisDaIndex, MiaDaIndex]:
    """Rebuild an index of ``kind`` from its meta + flat arrays."""
    if kind == "ris":
        return assemble_ris_index(network, meta, arrays, source)
    if kind == "mia":
        return assemble_mia_index(network, meta, arrays, source)
    raise DataFormatError(f"{source} holds an unknown index kind {kind!r}")


def load_index(
    path: PathLike, network: GeoSocialNetwork
) -> tuple[str, Union[RisDaIndex, MiaDaIndex]]:
    """Load a saved index of either kind; returns ``(kind, index)``.

    Dispatches on the file's ``kind`` tag, so callers that accept both
    (the query engine, ``serve-batch``) need no a-priori knowledge of
    what was saved.  The file is read once (no separate peek pass).
    """
    kind, meta, arrays = read_index_arrays(path)
    return kind, assemble_index(
        kind, network, meta, arrays, source=str(_with_npz_suffix(path))
    )


def index_arrays(
    index: Union[RisDaIndex, MiaDaIndex],
) -> Tuple[str, dict, Dict[str, np.ndarray]]:
    """An in-memory index as its ``(kind, meta, arrays)`` triple.

    The same flat layout the savers write and :func:`assemble_index`
    reads — without touching disk.  The streaming serving pool uses this
    to republish an updated in-memory index into shared memory (and to
    diff which arrays actually changed, so untouched segments are
    reused).
    """
    if isinstance(index, RisDaIndex):
        meta, arrays = ris_index_arrays(index)
        return "ris", meta, arrays
    if isinstance(index, MiaDaIndex):
        meta, arrays = mia_index_arrays(index)
        return "mia", meta, arrays
    raise DataFormatError(
        f"cannot serialise index of type {type(index).__name__}"
    )


def ris_index_arrays(
    index: RisDaIndex,
) -> Tuple[dict, Dict[str, np.ndarray]]:
    """The ``(meta, arrays)`` of a RIS-DA index (shared save/publish path)."""
    flat, offsets = index.corpus.flat()
    meta = {
        "format_version": _FORMAT_VERSION,
        "kind": "ris",
        "n_nodes": index.network.n,
        "n_edges": index.network.m,
        "k_max": index.k_max,
        "truncated": bool(index.truncated),
        "index_samples_required": int(index.index_samples_required),
        "generation": int(getattr(index, "generation", 0)),
        "decay": {
            "c": index.decay.c,
            "alpha": index.decay.alpha,
            "metric": index.decay.metric
            if isinstance(index.decay.metric, str)
            else "euclidean",
        },
        "config": {
            "k_max": index.config.k_max,
            "n_pivots": index.config.n_pivots,
            "epsilon_pivot": index.config.epsilon_pivot,
            "delta_pivot": index.config.delta_pivot,
            "epsilon": index.config.epsilon,
            "delta": index.config.delta,
            "pivot_strategy": index.config.pivot_strategy,
            "max_index_samples": index.config.max_index_samples,
            "lb_k_grid": index.config.lb_k_grid,
            "diffusion": index.config.diffusion,
            "seed": index.config.seed,
            "n_workers": index.config.n_workers,
            "selection": index.config.selection,
            "kernel_backend": index.config.kernel_backend,
        },
    }
    arrays = {
        "pivots": index.pivots,
        "pivot_estimates": index.pivot_estimates,
        "pivot_lower_bounds": index.pivot_lower_bounds,
        "corpus_roots": index.corpus.roots,
        "corpus_flat": flat,
        "corpus_offsets": offsets,
    }
    keys = index.corpus.keys
    if keys is not None:
        # Per-slot randomness keys of a coupled corpus: without them a
        # restored index loses the cheap regeneration-based update path
        # (it would fall back to rejection refresh).
        arrays["corpus_keys"] = keys
    return meta, arrays


def save_ris_index(index: RisDaIndex, path: PathLike) -> None:
    """Serialise a built RIS-DA index to ``path`` (``.npz``).

    A missing ``.npz`` suffix is appended, matching what
    :func:`numpy.savez_compressed` writes; :func:`load_ris_index` applies
    the same normalisation, so save/load agree on the file name either
    way.
    """
    path = _with_npz_suffix(path)
    meta, arrays = ris_index_arrays(index)
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        **arrays,
    )


def load_ris_index(path: PathLike, network: GeoSocialNetwork) -> RisDaIndex:
    """Restore a RIS-DA index saved by :func:`save_ris_index`.

    ``network`` must be the same graph the index was built over (checked
    by node/edge counts).  The returned index answers queries exactly as
    the original did.  Keyed (coupled-sampler) corpora also grow and
    regenerate deterministically after the round-trip — the stored slot
    keys plus the config seed reconstruct every slot's randomness;
    keyless corpora get a fresh sequential sampler, which only matters
    if the caller mutates them.
    """
    path = _with_npz_suffix(path)
    _, meta, arrays = read_index_arrays(path)
    return assemble_ris_index(network, meta, arrays, source=str(path))


def assemble_ris_index(
    network: GeoSocialNetwork,
    meta: dict,
    arrays: Mapping[str, np.ndarray],
    source: str = "index arrays",
) -> RisDaIndex:
    """Rebuild a RIS-DA index from its meta dict and flat arrays.

    ``arrays`` holds the members :func:`save_ris_index` writes; they are
    wrapped, not copied, so memmap'd or shared-memory-backed arrays stay
    zero-copy (the corpus keeps views into ``corpus_flat``).  Derived
    structures (pivot k-d tree, inverted corpus index) are rebuilt
    per process — they are not part of the stored layout.
    """
    # Pre-"kind" files are all RIS indexes, hence the default.
    if meta.get("kind", "ris") != "ris":
        raise DataFormatError(
            f"{source} holds a {meta['kind']!r} index, not a RIS-DA one "
            f"(use the matching loader)"
        )
    if meta.get("format_version") != _FORMAT_VERSION:
        raise DataFormatError(
            f"unsupported index format {meta.get('format_version')!r}"
        )
    if meta["n_nodes"] != network.n or meta["n_edges"] != network.m:
        raise DataFormatError(
            f"index was built over a graph with {meta['n_nodes']} nodes "
            f"/ {meta['n_edges']} edges; got {network.n} / {network.m}"
        )
    pivots = arrays["pivots"]
    pivot_estimates = arrays["pivot_estimates"]
    pivot_lower_bounds = arrays["pivot_lower_bounds"]
    roots = arrays["corpus_roots"]
    flat = arrays["corpus_flat"]
    offsets = arrays["corpus_offsets"]

    decay = DistanceDecay(
        c=float(meta["decay"]["c"]),
        alpha=float(meta["decay"]["alpha"]),
        metric=meta["decay"]["metric"],
    )
    cfg_raw = meta["config"]
    config = RisDaConfig(
        k_max=cfg_raw["k_max"],
        n_pivots=cfg_raw["n_pivots"],
        epsilon_pivot=cfg_raw["epsilon_pivot"],
        delta_pivot=cfg_raw["delta_pivot"],
        epsilon=cfg_raw["epsilon"],
        delta=cfg_raw["delta"],
        pivot_strategy=cfg_raw["pivot_strategy"],
        max_index_samples=cfg_raw["max_index_samples"],
        lb_k_grid=cfg_raw["lb_k_grid"],
        diffusion=cfg_raw.get("diffusion", "ic"),
        seed=cfg_raw["seed"],
        n_workers=cfg_raw.get("n_workers", 1),
        # Pre-kernel-PR files carry no selection field: they were eager.
        selection=cfg_raw.get("selection", "eager"),
        # The *request* is persisted; each loading host resolves it
        # locally (answers are backend-invariant, speed is not).
        kernel_backend=cfg_raw.get("kernel_backend", "auto"),
    )

    # Assemble the object without re-running the build.
    index = RisDaIndex.__new__(RisDaIndex)
    index.network = network
    index.decay = decay
    index.config = config
    # Resolved per loading host, never persisted concrete: the file may
    # travel between numba-capable and numba-less machines.
    index.kernel_backend = resolve_backend(config.kernel_backend)
    index.pivots = pivots
    index._pivot_tree = KDTree(pivots)
    if "corpus_keys" in arrays:
        # Keyed corpora restore with a coupled sampler so streaming
        # updates keep the regeneration path after a round-trip.
        index.sampler = CoupledRRSampler(
            network, seed=config.seed, kernel_backend=index.kernel_backend
        )
        index.corpus = RRCorpus.from_arrays(
            index.sampler, roots, flat, offsets, keys=arrays["corpus_keys"]
        )
    else:
        index.sampler = RRSampler(
            network, seed=config.seed, diffusion=config.diffusion
        )
        index.corpus = RRCorpus.from_arrays(index.sampler, roots, flat, offsets)
    index.corpus.inverted()  # pay the inverted-index cost at load time
    index.pivot_estimates = pivot_estimates
    index.pivot_lower_bounds = pivot_lower_bounds
    index.k_max = int(meta["k_max"])
    index.truncated = bool(meta["truncated"])
    index.index_samples_required = int(meta["index_samples_required"])
    index.voronoi = None  # only needed during construction
    index.generation = int(meta.get("generation", 0))
    index.pivot_seconds = 0.0
    index.voronoi_seconds = 0.0
    index.build_seconds = 0.0
    return index


def mia_index_arrays(
    index: MiaDaIndex,
) -> Tuple[dict, Dict[str, np.ndarray]]:
    """The ``(meta, arrays)`` of a MIA-DA index (shared save/publish path)."""
    members, parents, edge_probs, path_probs, offsets = index.model.flat_trees()
    region = index.region_bounds
    region_sizes = np.asarray([len(c) for c in region._cells], dtype=np.int64)
    region_offsets = np.zeros(len(region.nodes) + 1, dtype=np.int64)
    np.cumsum(region_sizes, out=region_offsets[1:])
    meta = {
        "format_version": _MIA_FORMAT_VERSION,
        "kind": "mia",
        "n_nodes": index.network.n,
        "n_edges": index.network.m,
        "generation": int(getattr(index, "generation", 0)),
        "decay": {
            "c": index.decay.c,
            "alpha": index.decay.alpha,
            "metric": index.decay.metric
            if isinstance(index.decay.metric, str)
            else "euclidean",
        },
        "config": {
            "theta": index.config.theta,
            "n_anchors": index.config.n_anchors,
            "tau": index.config.tau,
            "n_heavy": index.config.n_heavy,
            "anchor_strategy": index.config.anchor_strategy,
            "seed": index.config.seed,
            "n_workers": index.config.n_workers,
        },
    }
    empty_i = np.empty(0, dtype=np.int64)
    empty_f = np.empty(0, dtype=float)
    arrays = {
        "tree_members": members,
        "tree_parents": parents,
        "tree_edge_probs": edge_probs,
        "tree_path_probs": path_probs,
        "tree_offsets": offsets,
        "anchors": index.anchor_bounds.anchors,
        "anchor_influence": index.anchor_bounds.influence,
        "anchor_mass": index.anchor_bounds.mass,
        "region_nodes": region.nodes,
        "region_cells": (
            np.concatenate(region._cells) if region._cells else empty_i
        ),
        "region_masses": (
            np.concatenate(region._masses) if region._masses else empty_f
        ),
        "region_offsets": region_offsets,
    }
    return meta, arrays


def save_mia_index(index: MiaDaIndex, path: PathLike) -> None:
    """Serialise a built MIA-DA index to ``path`` (``.npz``).

    Stores the :class:`~repro.mia.pmia.MiaModel` arborescences as flat
    CSR arrays, the anchor locations with their influence matrix and mass
    vector, and the per-heavy-node region ``(cells, masses)`` lists.  A
    missing ``.npz`` suffix is appended, matching the RIS path's
    normalisation.
    """
    path = _with_npz_suffix(path)
    meta, arrays = mia_index_arrays(index)
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        **arrays,
    )


def load_mia_index(path: PathLike, network: GeoSocialNetwork) -> MiaDaIndex:
    """Restore a MIA-DA index saved by :func:`save_mia_index`.

    ``network`` must be the same graph the index was built over (checked
    by node/edge counts).  The returned index answers queries exactly as
    the original did: arborescences, anchor bounds, and region bounds are
    reassembled from the stored arrays without re-running any Dijkstra.
    """
    path = _with_npz_suffix(path)
    _, meta, arrays = read_index_arrays(path)
    return assemble_mia_index(network, meta, arrays, source=str(path))


def assemble_mia_index(
    network: GeoSocialNetwork,
    meta: dict,
    arrays: Mapping[str, np.ndarray],
    source: str = "index arrays",
) -> MiaDaIndex:
    """Rebuild a MIA-DA index from its meta dict and flat arrays.

    The arborescences, anchor structures, and region bounds are all
    views over the supplied arrays (no copies, no Dijkstra re-runs), so
    shared-memory or memmap'd arrays serve many processes from one
    physical copy.  Only the anchor k-d tree is rebuilt per process.
    """
    if meta.get("kind", "ris") != "mia":
        raise DataFormatError(
            f"{source} holds a {meta.get('kind', 'ris')!r} index, not a "
            f"MIA-DA one (use the matching loader)"
        )
    if meta.get("format_version") != _MIA_FORMAT_VERSION:
        raise DataFormatError(
            f"unsupported MIA index format {meta.get('format_version')!r}"
        )
    if meta["n_nodes"] != network.n or meta["n_edges"] != network.m:
        raise DataFormatError(
            f"index was built over a graph with {meta['n_nodes']} nodes "
            f"/ {meta['n_edges']} edges; got {network.n} / {network.m}"
        )
    flat = (
        arrays["tree_members"],
        arrays["tree_parents"],
        arrays["tree_edge_probs"],
        arrays["tree_path_probs"],
        arrays["tree_offsets"],
    )
    anchors = arrays["anchors"]
    anchor_influence = arrays["anchor_influence"]
    anchor_mass = arrays["anchor_mass"]
    region_nodes = arrays["region_nodes"]
    region_cells = arrays["region_cells"]
    region_masses = arrays["region_masses"]
    region_offsets = arrays["region_offsets"]

    decay = DistanceDecay(
        c=float(meta["decay"]["c"]),
        alpha=float(meta["decay"]["alpha"]),
        metric=meta["decay"]["metric"],
    )
    cfg_raw = meta["config"]
    config = MiaDaConfig(
        theta=cfg_raw["theta"],
        n_anchors=cfg_raw["n_anchors"],
        tau=cfg_raw["tau"],
        n_heavy=cfg_raw["n_heavy"],
        anchor_strategy=cfg_raw["anchor_strategy"],
        seed=cfg_raw["seed"],
        n_workers=cfg_raw.get("n_workers", 1),
    )
    model = MiaModel.from_flat_trees(network, config.theta, flat)

    # Assemble the bound structures without recomputing any influences.
    anchor_bounds = AnchorBounds.__new__(AnchorBounds)
    anchor_bounds.decay = decay
    anchor_bounds.anchors = anchors
    anchor_bounds._tree = KDTree(anchors)
    anchor_bounds.influence = anchor_influence
    anchor_bounds.mass = anchor_mass

    region_bounds = RegionBounds.__new__(RegionBounds)
    region_bounds.decay = decay
    # The grid is a pure function of (bounding box, tau) — identical to
    # the build-time grid because the network is shape-validated above.
    region_bounds.grid = UniformGrid.with_cell_budget(
        network.bounding_box(), config.tau
    )
    region_bounds.nodes = region_nodes
    region_bounds._node_pos = {int(u): i for i, u in enumerate(region_nodes)}
    region_bounds._cells = [
        region_cells[region_offsets[i] : region_offsets[i + 1]]
        for i in range(len(region_nodes))
    ]
    region_bounds._masses = [
        region_masses[region_offsets[i] : region_offsets[i + 1]]
        for i in range(len(region_nodes))
    ]

    index = MiaDaIndex.__new__(MiaDaIndex)
    index.network = network
    index.decay = decay
    index.config = config
    index.model = model
    index.anchor_bounds = anchor_bounds
    index.region_bounds = region_bounds
    index.generation = int(meta.get("generation", 0))
    index.build_seconds = 0.0
    return index
