"""Persistence for the RIS-DA index.

Index construction is the expensive phase (minutes of sampling at paper
scale), so a production deployment builds once and serves many processes.
:func:`save_ris_index` / :func:`load_ris_index` round-trip everything the
online phase needs — pivots, pivot estimates, the sample corpus, and the
configuration — into one ``.npz`` file.  The network itself is *not*
stored (persist it with :func:`repro.network.io.write_network`); loading
validates that the supplied network matches the saved index.

MIA-DA is intentionally not persisted: rebuilding its structures from the
network takes seconds at any scale this library targets, so a file format
would only add a compatibility surface.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.ris_da import RisDaConfig, RisDaIndex
from repro.exceptions import DataFormatError
from repro.geo.kdtree import KDTree
from repro.geo.weights import DistanceDecay
from repro.network.graph import GeoSocialNetwork
from repro.ris.corpus import RRCorpus
from repro.ris.rrset import RRSampler

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def _with_npz_suffix(path: PathLike) -> Path:
    """``path`` with the ``.npz`` suffix ``np.savez`` would give it.

    ``np.savez_compressed`` appends ``.npz`` to any filename not already
    ending in it, so ``save_ris_index(idx, "index")`` writes
    ``index.npz``.  Both save and load normalise through this helper so a
    suffixless path round-trips.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_ris_index(index: RisDaIndex, path: PathLike) -> None:
    """Serialise a built RIS-DA index to ``path`` (``.npz``).

    A missing ``.npz`` suffix is appended, matching what
    :func:`numpy.savez_compressed` writes; :func:`load_ris_index` applies
    the same normalisation, so save/load agree on the file name either
    way.
    """
    path = _with_npz_suffix(path)
    flat, offsets = index.corpus.flat()
    meta = {
        "format_version": _FORMAT_VERSION,
        "n_nodes": index.network.n,
        "n_edges": index.network.m,
        "k_max": index.k_max,
        "truncated": bool(index.truncated),
        "index_samples_required": int(index.index_samples_required),
        "decay": {
            "c": index.decay.c,
            "alpha": index.decay.alpha,
            "metric": index.decay.metric
            if isinstance(index.decay.metric, str)
            else "euclidean",
        },
        "config": {
            "k_max": index.config.k_max,
            "n_pivots": index.config.n_pivots,
            "epsilon_pivot": index.config.epsilon_pivot,
            "delta_pivot": index.config.delta_pivot,
            "epsilon": index.config.epsilon,
            "delta": index.config.delta,
            "pivot_strategy": index.config.pivot_strategy,
            "max_index_samples": index.config.max_index_samples,
            "lb_k_grid": index.config.lb_k_grid,
            "diffusion": index.config.diffusion,
            "seed": index.config.seed,
            "n_workers": index.config.n_workers,
        },
    }
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        pivots=index.pivots,
        pivot_estimates=index.pivot_estimates,
        pivot_lower_bounds=index.pivot_lower_bounds,
        corpus_roots=index.corpus.roots,
        corpus_flat=flat,
        corpus_offsets=offsets,
    )


def load_ris_index(path: PathLike, network: GeoSocialNetwork) -> RisDaIndex:
    """Restore a RIS-DA index saved by :func:`save_ris_index`.

    ``network`` must be the same graph the index was built over (checked
    by node/edge counts).  The returned index answers queries exactly as
    the original did; it can NOT grow its corpus deterministically (the
    sampler state is fresh), which only matters if the caller mutates it.
    """
    path = _with_npz_suffix(path)
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise DataFormatError(
                f"unsupported index format {meta.get('format_version')!r}"
            )
        if meta["n_nodes"] != network.n or meta["n_edges"] != network.m:
            raise DataFormatError(
                f"index was built over a graph with {meta['n_nodes']} nodes "
                f"/ {meta['n_edges']} edges; got {network.n} / {network.m}"
            )
        pivots = data["pivots"]
        pivot_estimates = data["pivot_estimates"]
        pivot_lower_bounds = data["pivot_lower_bounds"]
        roots = data["corpus_roots"]
        flat = data["corpus_flat"]
        offsets = data["corpus_offsets"]

    decay = DistanceDecay(
        c=float(meta["decay"]["c"]),
        alpha=float(meta["decay"]["alpha"]),
        metric=meta["decay"]["metric"],
    )
    cfg_raw = meta["config"]
    config = RisDaConfig(
        k_max=cfg_raw["k_max"],
        n_pivots=cfg_raw["n_pivots"],
        epsilon_pivot=cfg_raw["epsilon_pivot"],
        delta_pivot=cfg_raw["delta_pivot"],
        epsilon=cfg_raw["epsilon"],
        delta=cfg_raw["delta"],
        pivot_strategy=cfg_raw["pivot_strategy"],
        max_index_samples=cfg_raw["max_index_samples"],
        lb_k_grid=cfg_raw["lb_k_grid"],
        diffusion=cfg_raw.get("diffusion", "ic"),
        seed=cfg_raw["seed"],
        n_workers=cfg_raw.get("n_workers", 1),
    )

    # Assemble the object without re-running the build.
    index = RisDaIndex.__new__(RisDaIndex)
    index.network = network
    index.decay = decay
    index.config = config
    index.pivots = pivots
    index._pivot_tree = KDTree(pivots)
    index.sampler = RRSampler(network, seed=config.seed, diffusion=config.diffusion)
    index.corpus = RRCorpus.from_arrays(index.sampler, roots, flat, offsets)
    index.corpus.inverted()  # pay the inverted-index cost at load time
    index.pivot_estimates = pivot_estimates
    index.pivot_lower_bounds = pivot_lower_bounds
    index.k_max = int(meta["k_max"])
    index.truncated = bool(meta["truncated"])
    index.index_samples_required = int(meta["index_samples_required"])
    index.voronoi = None  # only needed during construction
    index.pivot_seconds = 0.0
    index.voronoi_seconds = 0.0
    index.build_seconds = 0.0
    return index
