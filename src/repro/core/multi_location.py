"""Multi-location DAIM queries (the Appendix E extension).

A chain with several stores promotes all locations ``Q = {q_1, ..., q_j}``
at once; a user attends the *closest* store, so the natural node weight is

    w(v, Q) = max_i w(v, q_i)  =  c * exp(-alpha * min_i d(v, q_i))

Both indexes consume per-node/per-sample weight vectors, so the extension
needs only (1) the weight kernel below, and (2) a sound lower bound on
``OPT_Q^k`` for RIS-DA's sample sizing: since ``w(v, Q) >= w(v, q_i)`` for
every ``i`` pointwise, ``OPT_Q^k >= max_i OPT_{q_i}^k``, and Lemma 8's
per-location bounds transfer — :func:`multi_location_query` takes the max.

MIA-DA's anchor bounds also transfer (``I_Q^m({u}) <= sum over the best
anchor per location`` is loose); for simplicity and exactness we answer
multi-location MIA queries through the PMIA engine with the combined
weight vector, which stays polynomial.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.query import SeedResult
from repro.exceptions import QueryError, SamplingError
from repro.geo.point import PointLike, as_point
from repro.geo.weights import DistanceDecay
from repro.ris.coverage import weighted_greedy_cover
from repro.ris.sample_size import required_sample_size

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.ris_da import RisDaIndex


def multi_location_weights(
    decay: DistanceDecay,
    coords: np.ndarray,
    locations: Sequence[PointLike],
) -> np.ndarray:
    """``w(v, Q) = max_i w(v, q_i)`` for every node.

    ``coords`` is the ``(n, 2)`` node-location array.
    """
    locs = [as_point(q) for q in locations]
    if not locs:
        raise QueryError("need at least one promoted location")
    weights = decay.weights(coords, locs[0])
    for q in locs[1:]:
        np.maximum(weights, decay.weights(coords, q), out=weights)
    return weights


def multi_location_query(
    index: "RisDaIndex",
    locations: Sequence[PointLike],
    k: int,
) -> SeedResult:
    """Answer a multi-store DAIM query from an existing RIS-DA index.

    Sample sizing uses ``max_i L_{q_i}^k`` (a valid lower bound of
    ``OPT_Q^k``); the greedy runs once over the combined weights.
    """
    locs = [as_point(q) for q in locations]
    if not locs:
        raise QueryError("need at least one promoted location")
    if not 0 < k <= index.k_max:
        raise QueryError(f"k must be in [1, {index.k_max}], got {k}")

    start = time.perf_counter()
    lb = max(index.lower_bound_for(q, k)[0] for q in locs)
    if lb <= 0:
        raise SamplingError(
            "no usable lower bound for any promoted location"
        )
    cfg = index.config
    n = index.network.n
    delta_pivot, delta_online = cfg.resolved_deltas(n)
    l_required = required_sample_size(
        n, k, index.decay.w_max, cfg.epsilon, delta_online - delta_pivot, lb
    )
    l_used = min(l_required, len(index.corpus))

    roots = index.corpus.roots[:l_used]
    sample_weights = multi_location_weights(
        index.decay, index.network.coords[roots], locs
    )
    cover = weighted_greedy_cover(index.corpus, sample_weights, k, prefix=l_used)
    elapsed = time.perf_counter() - start
    return SeedResult(
        seeds=cover.seeds,
        estimate=cover.estimate,
        method="RIS-DA-multi",
        elapsed=elapsed,
        samples_used=l_used,
    )
