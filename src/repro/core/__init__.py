"""The paper's primary contribution: DAIM queries and the two indexes.

* :mod:`repro.core.query` — query and result types;
* :mod:`repro.core.greedy` — Algorithm 1, the naive Monte-Carlo greedy
  (the gold-standard reference on small graphs);
* :mod:`repro.core.bounds` — MIA-DA's anchor-point and region-based
  influence bounds (reconstruction of Appendix B/C);
* :mod:`repro.core.mia_da` — the MIA-DA index: pruning rules + priority
  search over the MIA model (Section 3);
* :mod:`repro.core.ris_da` — the RIS-DA index: pivot info, Voronoi-sized
  sample pool, online lower-bound queries (Section 4);
* :mod:`repro.core.multi_location` — the multi-store extension sketched in
  Appendix E.
"""

from repro.core.bounds import AnchorBounds, RegionBounds
from repro.core.greedy import naive_greedy
from repro.core.heuristics import (
    degree_discount,
    top_degree,
    top_weight,
    top_weighted_degree,
)
from repro.core.keyword import keyword_cover_query
from repro.core.mia_da import MiaDaConfig, MiaDaIndex
from repro.core.multi_location import multi_location_weights
from repro.core.persistence import (
    load_mia_index,
    load_ris_index,
    save_mia_index,
    save_ris_index,
)
from repro.core.query import DaimQuery, SeedResult
from repro.core.ris_da import RisDaConfig, RisDaIndex

__all__ = [
    "AnchorBounds",
    "DaimQuery",
    "MiaDaConfig",
    "MiaDaIndex",
    "RegionBounds",
    "RisDaConfig",
    "RisDaIndex",
    "SeedResult",
    "degree_discount",
    "keyword_cover_query",
    "load_mia_index",
    "load_ris_index",
    "multi_location_weights",
    "naive_greedy",
    "save_mia_index",
    "save_ris_index",
    "top_degree",
    "top_weight",
    "top_weighted_degree",
]
