"""The paper's primary contribution: DAIM queries and the two indexes.

* :mod:`repro.core.query` — query and result types;
* :mod:`repro.core.querykind` — the richer query kinds the serving stack
  understands (trajectory, targeted, budgeted, heuristic-ladder);
* :mod:`repro.core.greedy` — Algorithm 1, the naive Monte-Carlo greedy
  (the gold-standard reference on small graphs);
* :mod:`repro.core.bounds` — MIA-DA's anchor-point and region-based
  influence bounds (reconstruction of Appendix B/C);
* :mod:`repro.core.mia_da` — the MIA-DA index: pruning rules + priority
  search over the MIA model (Section 3);
* :mod:`repro.core.ris_da` — the RIS-DA index: pivot info, Voronoi-sized
  sample pool, online lower-bound queries (Section 4);
* :mod:`repro.core.multi_location` — the multi-store extension sketched in
  Appendix E.
"""

from repro.core.bounds import AnchorBounds, RegionBounds
from repro.core.greedy import naive_greedy
from repro.core.heuristics import (
    degree_discount,
    heuristic_ladder,
    single_discount,
    top_degree,
    top_weight,
    top_weighted_degree,
)
from repro.core.keyword import keyword_cover_query
from repro.core.mia_da import MiaDaConfig, MiaDaIndex
from repro.core.multi_location import multi_location_weights
from repro.core.persistence import (
    load_mia_index,
    load_ris_index,
    save_mia_index,
    save_ris_index,
)
from repro.core.query import DaimQuery, SeedResult
from repro.core.querykind import (
    BudgetedQuery,
    HeuristicQuery,
    TargetedQuery,
    TrajectoryQuery,
    kind_of,
    normalize_query,
    query_from_json,
    query_to_row,
)
from repro.core.ris_da import RisDaConfig, RisDaIndex

__all__ = [
    "AnchorBounds",
    "BudgetedQuery",
    "DaimQuery",
    "HeuristicQuery",
    "MiaDaConfig",
    "MiaDaIndex",
    "RegionBounds",
    "RisDaConfig",
    "RisDaIndex",
    "SeedResult",
    "TargetedQuery",
    "TrajectoryQuery",
    "degree_discount",
    "heuristic_ladder",
    "keyword_cover_query",
    "kind_of",
    "normalize_query",
    "query_from_json",
    "query_to_row",
    "load_mia_index",
    "load_ris_index",
    "multi_location_weights",
    "naive_greedy",
    "save_mia_index",
    "save_ris_index",
    "single_discount",
    "top_degree",
    "top_weight",
    "top_weighted_degree",
]
