"""First-class query kinds for the DAIM serving stack.

The seed repo answered exactly one query shape — point ``q``, budget
``k`` (:class:`repro.core.query.DaimQuery`).  The Eq. 9 machinery
generalizes cleanly to richer geo-social workloads, and this module is
the shared vocabulary for them:

* :class:`TrajectoryQuery` — a sequence of locations answered
  incrementally; each waypoint reuses the result cache's grid
  quantization, and the RIS backend shares one root-coordinate gather
  across waypoints;
* :class:`TargetedQuery` — bichromatic influence maximization over a
  specified target-node subset, realised as a per-node 0/1 weight mask
  pushed into the flat coverage kernels and the MIA anchor bounds;
* :class:`BudgetedQuery` — heterogeneous per-node seeding costs with a
  total budget, answered by cost-aware (gain/cost ratio) greedy;
* :class:`HeuristicQuery` — an explicit request for a heuristic-ladder
  answer (degree-discount → single-discount → high-degree), tagged in
  results exactly like an overload fallback and never scored as an
  Eq. 9 estimate.

Plain :class:`~repro.core.query.DaimQuery` remains the ``"point"`` kind
and its serving path is untouched (bit-identical results, caches still
hit).  :func:`query_from_json` is the one place the JSONL batch format
and the HTTP sidecar's query parameters are parsed, so the two fronts
cannot drift; :func:`cache_extra` is the kind-discriminating component
of the result-cache key (see ``serve/cache.py``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.query import DaimQuery
from repro.exceptions import QueryError
from repro.geo.point import Point, as_point

#: Every query kind the serving stack understands, in JSONL ``kind`` order.
QUERY_KINDS = ("point", "trajectory", "targeted", "budgeted", "heuristic")

#: Rungs of the heuristic ladder, cheapest last (see ``core/heuristics.py``).
LADDER_RUNGS = ("degree-discount", "single-discount", "high-degree")


def _as_k(k: object) -> int:
    k = int(k)
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    return k


@dataclass(frozen=True)
class TrajectoryQuery:
    """A sequence of promoted locations, each with the same seed budget.

    Answered waypoint by waypoint: the result is one seed set per
    waypoint, and ``ServedResult.result`` carries the final waypoint's
    (the "current position" of the trajectory).  A one-waypoint
    trajectory is exactly a point query.
    """

    waypoints: Tuple[Point, ...]
    k: int

    def __post_init__(self) -> None:
        pts = tuple(as_point(p) for p in self.waypoints)
        if not pts:
            raise QueryError("trajectory needs at least one waypoint")
        object.__setattr__(self, "waypoints", pts)
        object.__setattr__(self, "k", _as_k(self.k))


@dataclass(frozen=True)
class TargetedQuery:
    """Maximize influence over a specified target-node subset.

    ``targets`` is the bichromatic target set: only influence landing on
    these nodes counts.  Internally it becomes a 0/1 node mask multiplied
    into the distance-decay weights; an all-nodes target set degenerates
    to the standard query bit-identically (multiplying by 1.0 is exact).
    """

    location: Point
    k: int
    targets: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "location", as_point(self.location))
        object.__setattr__(self, "k", _as_k(self.k))
        ids = sorted({int(t) for t in self.targets})
        if not ids:
            raise QueryError("targeted query needs at least one target node")
        if ids[0] < 0:
            raise QueryError(f"target node ids must be >= 0, got {ids[0]}")
        object.__setattr__(self, "targets", tuple(ids))


@dataclass(frozen=True)
class BudgetedQuery:
    """Seed selection under heterogeneous per-node costs and a budget.

    ``costs`` holds sparse per-node overrides as ``(node, cost)`` pairs;
    every other node costs ``default_cost``.  With uniform costs ``c``
    and budget ``k * c`` this degenerates to the top-``k`` greedy.
    """

    location: Point
    budget: float
    costs: Tuple[Tuple[int, float], ...] = ()
    default_cost: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "location", as_point(self.location))
        budget = float(self.budget)
        if not budget > 0:
            raise QueryError(f"budget must be positive, got {budget}")
        object.__setattr__(self, "budget", budget)
        default = float(self.default_cost)
        if not default > 0:
            raise QueryError(f"default_cost must be positive, got {default}")
        object.__setattr__(self, "default_cost", default)
        overrides = []
        seen = set()
        for node, cost in self.costs:
            node, cost = int(node), float(cost)
            if node < 0:
                raise QueryError(f"cost override node must be >= 0, got {node}")
            if node in seen:
                raise QueryError(f"duplicate cost override for node {node}")
            if not cost > 0:
                raise QueryError(f"node costs must be positive, got {cost}")
            seen.add(node)
            overrides.append((node, cost))
        overrides.sort()
        object.__setattr__(self, "costs", tuple(overrides))


@dataclass(frozen=True)
class HeuristicQuery:
    """An explicit request for a heuristic-ladder answer.

    ``level`` pins a rung (one of :data:`LADDER_RUNGS`); otherwise the
    rung is chosen from ``budget_ms`` (the latency the caller will
    tolerate) via the ladder's cost model, defaulting to the most
    accurate rung when neither is given.  The response is tagged like a
    fallback (``fallback_reason="requested"``) and its score is the
    heuristic's own objective, never an Eq. 9 estimate.
    """

    location: Point
    k: int
    level: Optional[str] = None
    budget_ms: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "location", as_point(self.location))
        object.__setattr__(self, "k", _as_k(self.k))
        if self.level is not None and self.level not in LADDER_RUNGS:
            raise QueryError(
                f"heuristic level must be one of {LADDER_RUNGS}, got {self.level!r}"
            )
        if self.budget_ms is not None:
            budget_ms = float(self.budget_ms)
            if budget_ms < 0:
                raise QueryError(f"budget_ms must be >= 0, got {budget_ms}")
            object.__setattr__(self, "budget_ms", budget_ms)


#: Any query object the serving stack accepts.
AnyQuery = Union[
    DaimQuery, TrajectoryQuery, TargetedQuery, BudgetedQuery, HeuristicQuery
]

_KIND_BY_TYPE = {
    DaimQuery: "point",
    TrajectoryQuery: "trajectory",
    TargetedQuery: "targeted",
    BudgetedQuery: "budgeted",
    HeuristicQuery: "heuristic",
}


def kind_of(query: AnyQuery) -> str:
    """The JSONL ``kind`` tag of a query object (``DaimQuery`` → ``point``)."""
    try:
        return _KIND_BY_TYPE[type(query)]
    except KeyError:
        raise QueryError(f"not a known query kind: {type(query).__name__}")


def normalize_query(query: object, k: Optional[int] = None) -> AnyQuery:
    """Coerce serving input into a query object.

    Existing kind objects pass through unchanged (``k`` is ignored, as
    the legacy ``QueryEngine.query(q, k=...)`` path always did for
    ``DaimQuery``); a bare location plus ``k`` becomes a point query.
    """
    if type(query) in _KIND_BY_TYPE:
        return query  # type: ignore[return-value]
    if k is None:
        raise QueryError("k is required when the query is a bare location")
    return DaimQuery(location=as_point(query), k=k)


def route_location(query: AnyQuery) -> Point:
    """The location that places a query on the grid / shard ring.

    Trajectories route by their *first* waypoint's cell: the shard that
    owns where the trajectory starts serves the whole sequence.
    """
    if isinstance(query, TrajectoryQuery):
        return query.waypoints[0]
    return query.location


def fallback_location(query: AnyQuery) -> Point:
    """Where an overload fallback should aim its heuristic answer.

    For trajectories that is the *last* waypoint — the one whose answer
    ``ServedResult.result`` carries.
    """
    if isinstance(query, TrajectoryQuery):
        return query.waypoints[-1]
    return query.location


def fallback_k(query: AnyQuery, n_nodes: int) -> int:
    """The seed-count budget a heuristic fallback should honour."""
    if isinstance(query, BudgetedQuery):
        min_cost = query.default_cost
        if query.costs:
            min_cost = min(min_cost, min(c for _, c in query.costs))
        return max(1, min(n_nodes, int(query.budget // min_cost)))
    return min(n_nodes, query.k)


def target_mask(query: TargetedQuery, n_nodes: int) -> np.ndarray:
    """The 0/1 node-weight mask realising a targeted query."""
    ids = np.asarray(query.targets, dtype=np.int64)
    if ids[-1] >= n_nodes:
        raise QueryError(
            f"target node {int(ids[-1])} out of range for {n_nodes} nodes"
        )
    mask = np.zeros(n_nodes, dtype=float)
    mask[ids] = 1.0
    return mask


def cost_array(query: BudgetedQuery, n_nodes: int) -> np.ndarray:
    """The dense per-node cost vector realising a budgeted query."""
    costs = np.full(n_nodes, query.default_cost, dtype=float)
    for node, cost in query.costs:
        if node >= n_nodes:
            raise QueryError(
                f"cost override node {node} out of range for {n_nodes} nodes"
            )
        costs[node] = cost
    return costs


def _digest(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=8).hexdigest()


def targets_fingerprint(targets: Sequence[int]) -> str:
    """A short stable digest of a target set (for cache keys and rows)."""
    return _digest(np.asarray(sorted(targets), dtype=np.int64).tobytes())


def costs_fingerprint(query: BudgetedQuery) -> str:
    """A short stable digest of a budgeted query's cost structure."""
    parts = [repr(query.default_cost).encode()]
    for node, cost in query.costs:
        parts.append(f"{node}:{repr(cost)}".encode())
    return _digest(b"|".join(parts))


def cache_extra(query: AnyQuery) -> Optional[tuple]:
    """The kind-discriminating tail of the result-cache key.

    Returns ``None`` for kinds that must never be cached (heuristic
    answers, like fallbacks, are always recomputed).  Trajectory
    waypoints are cached as ``point`` entries on purpose: a waypoint's
    answer *is* the point answer for that location, so trajectories warm
    the point cache and vice versa.  Targeted and budgeted entries carry
    a mask/cost fingerprint so two kinds (or two parameterisations of
    one kind) hashing to the same ``(fingerprint, cell, k)`` can no
    longer collide.
    """
    if isinstance(query, DaimQuery):
        return ("point", query.k)
    if isinstance(query, TargetedQuery):
        return ("targeted", query.k, targets_fingerprint(query.targets))
    if isinstance(query, BudgetedQuery):
        return ("budgeted", query.budget, costs_fingerprint(query))
    return None


def _require(obj: Mapping, field_name: str, kind: str) -> object:
    if field_name not in obj or obj[field_name] is None:
        raise QueryError(f"{kind} query needs a {field_name!r} field")
    return obj[field_name]


def _point_of(obj: Mapping, kind: str) -> Point:
    return (float(_require(obj, "x", kind)), float(_require(obj, "y", kind)))


def _k_of(obj: Mapping, default_k: int) -> int:
    return int(obj.get("k", default_k))


def query_from_json(obj: Mapping, default_k: int) -> AnyQuery:
    """Parse one JSONL row / HTTP parameter map into a query object.

    The ``kind`` field defaults to ``"point"`` so every pre-existing
    batch file keeps working unchanged.  Field values may be strings
    (HTTP query parameters) — they are coerced.
    """
    kind = str(obj.get("kind", "point"))
    if kind == "point":
        return DaimQuery(location=_point_of(obj, kind), k=_k_of(obj, default_k))
    if kind == "trajectory":
        raw = _require(obj, "waypoints", kind)
        try:
            waypoints = tuple((float(p[0]), float(p[1])) for p in raw)
        except (TypeError, ValueError, IndexError):
            raise QueryError(
                f"trajectory waypoints must be [x, y] pairs, got {raw!r}"
            )
        return TrajectoryQuery(waypoints=waypoints, k=_k_of(obj, default_k))
    if kind == "targeted":
        raw = _require(obj, "targets", kind)
        try:
            targets = tuple(int(t) for t in raw)
        except (TypeError, ValueError):
            raise QueryError(f"targets must be a list of node ids, got {raw!r}")
        return TargetedQuery(
            location=_point_of(obj, kind), k=_k_of(obj, default_k), targets=targets
        )
    if kind == "budgeted":
        raw_costs = obj.get("costs", ())
        if isinstance(raw_costs, Mapping):
            pairs = tuple((int(node), float(cost)) for node, cost in raw_costs.items())
        else:
            try:
                pairs = tuple((int(p[0]), float(p[1])) for p in raw_costs)
            except (TypeError, ValueError, IndexError):
                raise QueryError(
                    "budgeted costs must be a {node: cost} map or [node, cost]"
                    f" pairs, got {raw_costs!r}"
                )
        return BudgetedQuery(
            location=_point_of(obj, kind),
            budget=float(_require(obj, "budget", kind)),
            costs=pairs,
            default_cost=float(obj.get("cost", 1.0)),
        )
    if kind == "heuristic":
        level = obj.get("level")
        budget_ms = obj.get("budget_ms")
        return HeuristicQuery(
            location=_point_of(obj, kind),
            k=_k_of(obj, default_k),
            level=str(level) if level is not None else None,
            budget_ms=float(budget_ms) if budget_ms is not None else None,
        )
    raise QueryError(f"unknown query kind {kind!r} (expected one of {QUERY_KINDS})")


def query_to_row(query: AnyQuery) -> dict:
    """The echo fields a served output row carries for this query.

    Every kind includes ``kind`` plus ``x``/``y`` (the routing location)
    so simple row consumers keep working; kind-specific parameters ride
    along.
    """
    x, y = route_location(query)
    row: dict = {"kind": kind_of(query), "x": x, "y": y}
    if isinstance(query, TrajectoryQuery):
        row["waypoints"] = [[wx, wy] for wx, wy in query.waypoints]
        row["k"] = query.k
    elif isinstance(query, TargetedQuery):
        row["k"] = query.k
        row["targets"] = len(query.targets)
        row["targets_fp"] = targets_fingerprint(query.targets)
    elif isinstance(query, BudgetedQuery):
        row["budget"] = query.budget
        row["cost"] = query.default_cost
    elif isinstance(query, HeuristicQuery):
        row["k"] = query.k
        if query.level is not None:
            row["level"] = query.level
    else:
        row["k"] = query.k
    return row
