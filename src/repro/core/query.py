"""DAIM query and result types."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.exceptions import QueryError
from repro.geo.point import Point, as_point


@dataclass(frozen=True)
class DaimQuery:
    """A distance-aware influence maximization query.

    ``location`` is the promoted location ``q`` in the plane and ``k`` the
    seed budget.  The weight function lives on the index (it is part of the
    offline configuration), not on the query.
    """

    location: Point
    k: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "location", as_point(self.location))
        if self.k <= 0:
            raise QueryError(f"k must be positive, got {self.k}")


@dataclass(frozen=True)
class SeedResult:
    """The answer to a DAIM query.

    Attributes
    ----------
    seeds:
        The selected seed nodes, in selection (greedy) order.
    estimate:
        The method's own estimate of ``I_q(S)`` — under the MIA surrogate
        for MIA-based methods, the Eq. 9 estimator for RIS-DA, a
        Monte-Carlo mean for the naive greedy.  Evaluate seed sets with
        :func:`repro.diffusion.monte_carlo_weighted_spread` for a
        method-independent comparison.
    method:
        Human-readable method name ("MIA-DA", "RIS-DA", "PMIA", ...).
    elapsed:
        Online query latency in seconds — seed *selection* only.  Index
        construction and per-query bound setup are excluded; MIA-DA
        reports its setup time separately as
        ``MiaQueryDiagnostics.setup_seconds``.
    samples_used:
        RIS prefix length used (RIS methods only).
    evaluations:
        Number of exact marginal evaluations performed (MIA methods only;
        measures pruning effectiveness).
    """

    seeds: List[int]
    estimate: float
    method: str
    elapsed: float = 0.0
    samples_used: Optional[int] = None
    evaluations: Optional[int] = None

    def __post_init__(self) -> None:
        if len(set(self.seeds)) != len(self.seeds):
            raise QueryError(f"duplicate seeds in result: {self.seeds}")

    @property
    def k(self) -> int:
        return len(self.seeds)
