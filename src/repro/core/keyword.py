"""Keyword-constrained DAIM (the influential-cover-set extension).

Section 4 of the paper notes that MIA-DA's per-node index makes it "easy
to adopt new constraints over the selected nodes", citing the influential
cover set problem (Feng et al., SIGMOD'14): each user carries a keyword
set ``A(u)`` (abilities, interests); given required keywords ``Q`` and a
budget ``k``, find a ``k``-node seed set that *covers* ``Q``
(``Q ⊆ ∪ A(u)``) with maximum influence.

The selection here is a two-phase greedy heuristic over the exact MIA
marginals (covering the constraint is set-cover-hard, so no polynomial
method guarantees feasibility-optimal trade-offs):

1. while keywords remain uncovered, pick — among nodes covering at least
   one uncovered keyword — the node maximising
   ``(newly covered keywords, marginal influence)`` lexicographically
   weighted, which is the standard cost-effective set-cover rule;
2. spend the remaining budget on pure influence greedy.
"""

from __future__ import annotations

import time
from typing import AbstractSet, Mapping, Sequence

import numpy as np

from repro.core.query import SeedResult
from repro.exceptions import QueryError
from repro.geo.point import PointLike
from repro.geo.weights import DistanceDecay
from repro.mia.pmia import MiaGreedyState, MiaModel


def keyword_cover_query(
    model: MiaModel,
    decay: DistanceDecay,
    query_location: PointLike,
    k: int,
    required_keywords: AbstractSet[str],
    node_keywords: Mapping[int, AbstractSet[str]] | Sequence[AbstractSet[str]],
) -> SeedResult:
    """Select ``k`` seeds covering the required keywords, influence-greedy.

    Parameters
    ----------
    model:
        A pre-built :class:`~repro.mia.pmia.MiaModel`.
    decay:
        The node-weight function.
    query_location:
        The promoted location ``q``.
    k:
        Seed budget.
    required_keywords:
        The keyword set ``Q`` that must be covered.
    node_keywords:
        Per-node keyword sets (dict or sequence indexed by node id; nodes
        absent from a dict have no keywords).

    Raises :class:`QueryError` when no ``k``-node cover exists under the
    greedy cover rule (in particular when some keyword appears on no
    node).
    """
    n = model.n
    if not 0 < k <= n:
        raise QueryError(f"k must be in [1, {n}], got {k}")
    required = set(required_keywords)

    def keywords_of(u: int) -> AbstractSet[str]:
        if isinstance(node_keywords, Mapping):
            return node_keywords.get(u, frozenset())
        return node_keywords[u]

    available = set()
    for u in range(n):
        available |= set(keywords_of(u)) & required
    missing = required - available
    if missing:
        raise QueryError(
            f"keywords {sorted(missing)} appear on no node; no cover exists"
        )

    start = time.perf_counter()
    weights = decay.weights(model.network.coords, query_location)
    state = MiaGreedyState(model, weights)
    seeds: list[int] = []
    uncovered = set(required)
    total = 0.0

    while len(seeds) < k:
        if uncovered:
            # Cover phase: cost-effective rule over eligible candidates.
            best_u, best_key = -1, (-1, -np.inf)
            for u in range(n):
                if u in seeds:
                    continue
                newly = len(set(keywords_of(u)) & uncovered)
                if newly == 0:
                    continue
                key = (newly, float(state.gain[u]))
                if key > best_key:
                    best_key = key
                    best_u = u
            if best_u < 0:
                raise QueryError(
                    f"cannot cover {sorted(uncovered)} with the remaining "
                    f"budget of {k - len(seeds)}"
                )
            u = best_u
        else:
            # Influence phase: plain greedy.
            u = state.best_candidate()
        uncovered -= set(keywords_of(u))
        total += state.add_seed(u)
        seeds.append(u)

    if uncovered:
        raise QueryError(
            f"budget k={k} exhausted with {sorted(uncovered)} uncovered"
        )
    return SeedResult(
        seeds=seeds,
        estimate=total,
        method="MIA-DA-keyword",
        elapsed=time.perf_counter() - start,
    )
