"""Anchor-point and region-based influence bounds for MIA-DA.

The main text (Section 3.2) specifies the *interface*: cheap upper/lower
bounds ``I_q^U({v})`` / ``I_q^L({v})`` for every node at any query
location, pre-computed from sampled locations, with a finer space partition
for influential nodes (the details lived in the conference paper's
appendices).  The reconstruction here follows directly from the decay
function's structure:

**Anchor bounds.** For an anchor ``a`` with ``d = d(a, q)``, the triangle
inequality gives ``w(v, q) <= e^{alpha d} w(v, a)`` and
``w(v, q) >= e^{-alpha d} w(v, a)`` for *every* node ``v``; summing over a
node's MIA out-reach::

    e^{-alpha d} I_a^m({u})  <=  I_q^m({u})  <=  e^{+alpha d} I_a^m({u})

The upper bound is additionally capped by ``c * sum_v Pr(MIP(u, v))``
(no weight exceeds ``c``).  Pre-computing ``I_a^m({u})`` for all nodes at
``|L|`` anchors costs one vectorized pass per anchor.

**Region bounds.** For the ``n_heavy`` most influential nodes, the
influence mass ``sum Pr(MIP(u, v))`` is bucketed over a ``tau``-cell grid;
at query time each cell's weight is bracketed via the min/max distance
from ``q`` to the cell rectangle.  These bounds tighten as the grid
refines and do not degrade with anchor distance.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import QueryError
from repro.geo.grid import UniformGrid
from repro.geo.kdtree import KDTree
from repro.geo.point import PointLike
from repro.geo.weights import DistanceDecay
from repro.mia.pmia import MiaModel


class AnchorBounds:
    """Per-node singleton-influence bounds from pre-sampled anchor points.

    Parameters
    ----------
    model:
        The pre-built MIA model.
    decay:
        The weight function (fixed at index-build time).
    anchors:
        ``(A, 2)`` anchor locations (the paper's ``L``, default 300).
    """

    def __init__(self, model: MiaModel, decay: DistanceDecay, anchors: np.ndarray):
        anchors = np.atleast_2d(np.asarray(anchors, dtype=float))
        if anchors.size == 0:
            raise QueryError("need at least one anchor point")
        self.decay = decay
        self.anchors = anchors
        self._tree = KDTree(anchors)
        coords = model.network.coords
        # influence[a, u] = I_a^m({u}): MIA singleton influence at anchor a.
        self.influence = np.vstack(
            [
                model.singleton_influences(decay.weights(coords, (a[0], a[1])))
                for a in anchors
            ]
        )
        # Weight-free influence mass caps the upper bound at c * mass.
        self.mass = model.unweighted_singleton_mass()

    def nearest_anchor(self, q: PointLike) -> Tuple[int, float]:
        """``(anchor index, distance to q)``."""
        return self._tree.nearest(q)

    def bounds(self, q: PointLike) -> Tuple[np.ndarray, np.ndarray]:
        """``(lower, upper)`` bounds of ``I_q^m({u})`` for every node."""
        a, d = self.nearest_anchor(q)
        base = self.influence[a]
        lower = base * self.decay.shift_factor(d)
        # NOTE: upper_shift's per-weight cap at c does NOT apply here —
        # base is a sum of weights, so the only valid caps are the raised
        # anchor influence and c times the weight-free mass.  Like
        # upper_shift, the raise runs in log space: alpha * d alone can
        # overflow exp for far queries or large alpha, but log(base) +
        # alpha * d is well-behaved and residual overflow saturates to inf
        # before the mass cap clips it.  Anchor influences that underflowed
        # to (near) zero carry no usable log information, so the bound
        # degrades to the c * mass cap there instead.
        with np.errstate(over="ignore", divide="ignore"):
            raised = np.exp(np.log(base) + self.decay.alpha * d)
        raised = np.where(base > 1e-300, raised, np.inf)
        upper = np.minimum(raised, self.mass * self.decay.c)
        return lower, upper


class RegionBounds:
    """Grid-partitioned influence-mass bounds for heavy nodes.

    Implements the paper's "for nodes with larger influence, we further
    partition the space for them to derive tighter bounds" with a
    ``tau``-cell uniform grid (paper default ``tau = 200``).
    """

    def __init__(
        self,
        model: MiaModel,
        decay: DistanceDecay,
        heavy_nodes: Sequence[int],
        tau: int = 200,
    ):
        if tau <= 0:
            raise QueryError(f"tau must be positive, got {tau}")
        self.decay = decay
        self.grid = UniformGrid.with_cell_budget(
            model.network.bounding_box(), tau
        )
        coords = model.network.coords
        self.nodes = np.asarray(sorted(set(int(h) for h in heavy_nodes)), dtype=np.int64)
        self._node_pos = {int(u): i for i, u in enumerate(self.nodes)}
        # Sparse per-node (cells, masses): influence mass bucketed by cell.
        self._cells: list[np.ndarray] = []
        self._masses: list[np.ndarray] = []
        for u in self.nodes:
            roots, probs = model.reach_of(int(u))
            cell_ids = self.grid.cells_of(coords[roots])
            uniq, inv = np.unique(cell_ids, return_inverse=True)
            mass = np.zeros(len(uniq), dtype=float)
            np.add.at(mass, inv, probs)
            self._cells.append(uniq)
            self._masses.append(mass)

    def covers(self, u: int) -> bool:
        return int(u) in self._node_pos

    def bounds_for(
        self, u: int, d_min: np.ndarray, d_max: np.ndarray
    ) -> Tuple[float, float]:
        """``(lower, upper)`` for one heavy node given per-cell distances.

        ``d_min``/``d_max`` come from :meth:`cell_distances` — computed
        once per query and shared across heavy nodes.
        """
        i = self._node_pos.get(int(u))
        if i is None:
            raise QueryError(f"node {u} has no region index")
        cells = self._cells[i]
        mass = self._masses[i]
        upper = float(np.dot(mass, self.decay.weight_of_distance(d_min[cells])))
        lower = float(np.dot(mass, self.decay.weight_of_distance(d_max[cells])))
        return lower, upper

    def cell_distances(self, q: PointLike) -> Tuple[np.ndarray, np.ndarray]:
        """Per-cell (min, max) distances from ``q`` (one pass per query)."""
        return self.grid.distance_bounds(q)
