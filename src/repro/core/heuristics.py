"""Cheap heuristic baselines for DAIM seed selection.

The influence-maximization literature the paper builds on (Section 6)
compares against degree-style heuristics; these are their distance-aware
counterparts.  None carries an approximation guarantee — they exist as
fast baselines and as candidate generators for the exact methods.

* :func:`top_degree` — highest out-degree, geography-blind;
* :func:`top_weighted_degree` — ``w(v, q) * outdeg(v)``, the ranking
  Algorithm 3 (LB-EST) uses for its seed guess;
* :func:`degree_discount` — Chen et al.'s degree-discount heuristic
  (KDD'09) generalised to per-node weights and heterogeneous edge
  probabilities;
* :func:`single_discount` — Chen et al.'s cheaper single-discount: one
  weighted-degree unit removed per edge into an already-chosen seed;
* :func:`top_weight` — the ``k`` users closest to the promoted location
  (the "just ask the neighbours" strawman).

:func:`heuristic_ladder` grades three of these into an overload ladder —
``degree-discount`` → ``single-discount`` → ``high-degree`` — picking
the most accurate rung whose predicted cost fits a wall-clock budget.
The ``high-degree`` rung is the distance-aware variant
(:func:`top_weighted_degree`): pure vector work, the cheapest answer
that still respects the query location.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.query import SeedResult
from repro.core.querykind import LADDER_RUNGS
from repro.exceptions import QueryError
from repro.geo.weights import DistanceDecay
from repro.network.graph import GeoSocialNetwork


def _validate(network: GeoSocialNetwork, k: int) -> None:
    if not 0 < k <= network.n:
        raise QueryError(f"k must be in [1, {network.n}], got {k}")


def _result(scores: np.ndarray, k: int, method: str, start: float) -> SeedResult:
    seeds = np.argpartition(scores, len(scores) - k)[len(scores) - k:]
    order = np.argsort(scores[seeds])[::-1]
    ranked = [int(s) for s in seeds[order]]
    return SeedResult(
        seeds=ranked,
        estimate=float(scores[ranked].sum()),
        method=method,
        elapsed=time.perf_counter() - start,
    )


def top_degree(network: GeoSocialNetwork, k: int) -> SeedResult:
    """The ``k`` highest out-degree nodes (geography-blind)."""
    _validate(network, k)
    start = time.perf_counter()
    deg = np.asarray(network.out_degree(), dtype=float)
    return _result(deg, k, "TopDegree", start)


def top_weight(
    network: GeoSocialNetwork,
    query_location: Sequence[float],
    k: int,
    decay: DistanceDecay | None = None,
) -> SeedResult:
    """The ``k`` nodes with the largest weight (closest to the query)."""
    _validate(network, k)
    start = time.perf_counter()
    decay = decay if decay is not None else DistanceDecay()
    w = decay.weights(network.coords, tuple(query_location))
    return _result(w, k, "TopWeight", start)


def top_weighted_degree(
    network: GeoSocialNetwork,
    query_location: Sequence[float],
    k: int,
    decay: DistanceDecay | None = None,
) -> SeedResult:
    """The ``k`` nodes maximising ``w(v, q) * outdeg(v)``.

    This is the ranking LB-EST (Algorithm 3) seeds its lower bound with.
    """
    _validate(network, k)
    start = time.perf_counter()
    decay = decay if decay is not None else DistanceDecay()
    w = decay.weights(network.coords, tuple(query_location))
    deg = np.asarray(network.out_degree(), dtype=float)
    return _result(w * deg, k, "TopWeightedDegree", start)


def degree_discount(
    network: GeoSocialNetwork,
    query_location: Sequence[float],
    k: int,
    decay: DistanceDecay | None = None,
) -> SeedResult:
    """Distance-aware degree discount (after Chen et al., KDD'09).

    Classic degree discount assumes a constant probability ``p``; here
    each selected seed ``s`` discounts its out-neighbours ``v`` by the
    expected overlap ``Pr(s, v)``-weighted degree mass, all scaled by the
    node weights ``w(., q)``.  Runs in ``O(k log n + m)``.
    """
    _validate(network, k)
    start = time.perf_counter()
    decay = decay if decay is not None else DistanceDecay()
    w = decay.weights(network.coords, tuple(query_location))

    # Base score: the weighted mass a node can activate in one hop, plus
    # its own weight.
    score = w.copy()
    for u in range(network.n):
        nbrs = network.out_neighbors(u)
        probs = network.out_probabilities(u)
        if len(nbrs):
            score[u] += float(np.dot(probs, w[nbrs]))

    chosen: list[int] = []
    active = np.zeros(network.n, dtype=bool)
    working = score.copy()
    estimate = 0.0
    for _ in range(k):
        u = int(np.argmax(working))
        chosen.append(u)
        active[u] = True
        # The heuristic's own objective is the sum of *discounted* scores
        # at selection time — the base score would double-count mass that
        # earlier seeds already claimed.
        estimate += float(working[u])
        working[u] = -np.inf
        # Discount: u's neighbours lose the share of their score that u
        # will already have claimed (their own weight times Pr(u, v)).
        nbrs = network.out_neighbors(u)
        probs = network.out_probabilities(u)
        for v, p in zip(nbrs, probs):
            v = int(v)
            if not active[v]:
                working[v] -= float(p) * float(w[v])
    return SeedResult(
        seeds=chosen,
        estimate=estimate,
        method="DegreeDiscount",
        elapsed=time.perf_counter() - start,
    )


def single_discount(
    network: GeoSocialNetwork,
    query_location: Sequence[float],
    k: int,
    decay: DistanceDecay | None = None,
) -> SeedResult:
    """Distance-aware single discount (after Chen et al., KDD'09).

    Classic single discount scores a node by its degree and, whenever a
    seed is chosen, knocks one unit off each neighbour that has an edge
    into it (that edge can no longer activate anyone new).  Here the
    score is the weighted out-degree ``w(v, q) * outdeg(v)``, so an edge
    ``v -> u`` into a chosen seed ``u`` costs ``v`` exactly ``w(v, q)``.
    The base score is one vector pass; the discounts are ``O(k *
    indeg)`` — strictly cheaper than :func:`degree_discount`, which
    walks every adjacency list to build its base score.
    """
    _validate(network, k)
    start = time.perf_counter()
    decay = decay if decay is not None else DistanceDecay()
    w = decay.weights(network.coords, tuple(query_location))
    deg = np.asarray(network.out_degree(), dtype=float)

    chosen: list[int] = []
    active = np.zeros(network.n, dtype=bool)
    working = w * deg
    estimate = 0.0
    for _ in range(k):
        u = int(np.argmax(working))
        chosen.append(u)
        active[u] = True
        estimate += float(working[u])
        working[u] = -np.inf
        # Each in-neighbour v loses the edge v -> u from its usable
        # out-degree: one w(v, q) of score.
        for v in network.in_neighbors(u):
            v = int(v)
            if not active[v]:
                working[v] -= float(w[v])
    return SeedResult(
        seeds=chosen,
        estimate=estimate,
        method="SingleDiscount",
        elapsed=time.perf_counter() - start,
    )


def ladder_cost_estimates(network: GeoSocialNetwork, k: int) -> dict:
    """Predicted wall-clock seconds of each ladder rung on this network.

    A deliberately coarse cost model — per-node/per-edge constants
    measured on commodity hardware — used only to *order* rungs against
    a latency budget, never to report timings.  ``degree-discount``
    pays a Python pass over every adjacency list; ``single-discount``
    pays vector setup plus ``k`` in-neighbour walks; ``high-degree`` is
    pure vector work.
    """
    n = max(network.n, 1)
    m = max(network.m, 1)
    avg_deg = m / n
    discount = 1.5e-6 * k * avg_deg
    return {
        "degree-discount": 4e-6 * (n + m) + discount,
        "single-discount": 5e-8 * n + discount,
        "high-degree": 5e-8 * n,
    }


def ladder_rung_for(
    network: GeoSocialNetwork, k: int, budget_s: Optional[float]
) -> str:
    """The most accurate rung whose predicted cost fits ``budget_s``.

    ``None`` means no budget pressure: take the top rung.  When even the
    cheapest rung does not fit, it is still returned — the ladder always
    answers with *something* location-aware.
    """
    if budget_s is None:
        return LADDER_RUNGS[0]
    estimates = ladder_cost_estimates(network, k)
    for rung in LADDER_RUNGS:
        if estimates[rung] <= budget_s:
            return rung
    return LADDER_RUNGS[-1]


def heuristic_ladder(
    network: GeoSocialNetwork,
    query_location: Sequence[float],
    k: int,
    decay: DistanceDecay | None = None,
    *,
    budget_s: Optional[float] = None,
    level: Optional[str] = None,
) -> Tuple[SeedResult, str]:
    """Answer with the graded heuristic ladder; returns ``(result, rung)``.

    ``level`` pins a rung explicitly (one of :data:`LADDER_RUNGS`);
    otherwise :func:`ladder_rung_for` picks from the remaining latency
    budget ``budget_s``.  The returned rung name is what serving tags
    into metrics (``heuristic_rung_total{rung=...}``) and fallback rows.
    """
    if level is not None:
        if level not in LADDER_RUNGS:
            raise QueryError(
                f"ladder level must be one of {LADDER_RUNGS}, got {level!r}"
            )
        rung = level
    else:
        rung = ladder_rung_for(network, k, budget_s)
    if rung == "degree-discount":
        result = degree_discount(network, query_location, k, decay)
    elif rung == "single-discount":
        result = single_discount(network, query_location, k, decay)
    else:
        result = top_weighted_degree(network, query_location, k, decay)
    return result, rung
