"""Cheap heuristic baselines for DAIM seed selection.

The influence-maximization literature the paper builds on (Section 6)
compares against degree-style heuristics; these are their distance-aware
counterparts.  None carries an approximation guarantee — they exist as
fast baselines and as candidate generators for the exact methods.

* :func:`top_degree` — highest out-degree, geography-blind;
* :func:`top_weighted_degree` — ``w(v, q) * outdeg(v)``, the ranking
  Algorithm 3 (LB-EST) uses for its seed guess;
* :func:`degree_discount` — Chen et al.'s degree-discount heuristic
  (KDD'09) generalised to per-node weights and heterogeneous edge
  probabilities;
* :func:`top_weight` — the ``k`` users closest to the promoted location
  (the "just ask the neighbours" strawman).
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.core.query import SeedResult
from repro.exceptions import QueryError
from repro.geo.weights import DistanceDecay
from repro.network.graph import GeoSocialNetwork


def _validate(network: GeoSocialNetwork, k: int) -> None:
    if not 0 < k <= network.n:
        raise QueryError(f"k must be in [1, {network.n}], got {k}")


def _result(scores: np.ndarray, k: int, method: str, start: float) -> SeedResult:
    seeds = np.argpartition(scores, len(scores) - k)[len(scores) - k:]
    order = np.argsort(scores[seeds])[::-1]
    ranked = [int(s) for s in seeds[order]]
    return SeedResult(
        seeds=ranked,
        estimate=float(scores[ranked].sum()),
        method=method,
        elapsed=time.perf_counter() - start,
    )


def top_degree(network: GeoSocialNetwork, k: int) -> SeedResult:
    """The ``k`` highest out-degree nodes (geography-blind)."""
    _validate(network, k)
    start = time.perf_counter()
    deg = np.asarray(network.out_degree(), dtype=float)
    return _result(deg, k, "TopDegree", start)


def top_weight(
    network: GeoSocialNetwork,
    query_location: Sequence[float],
    k: int,
    decay: DistanceDecay | None = None,
) -> SeedResult:
    """The ``k`` nodes with the largest weight (closest to the query)."""
    _validate(network, k)
    start = time.perf_counter()
    decay = decay if decay is not None else DistanceDecay()
    w = decay.weights(network.coords, tuple(query_location))
    return _result(w, k, "TopWeight", start)


def top_weighted_degree(
    network: GeoSocialNetwork,
    query_location: Sequence[float],
    k: int,
    decay: DistanceDecay | None = None,
) -> SeedResult:
    """The ``k`` nodes maximising ``w(v, q) * outdeg(v)``.

    This is the ranking LB-EST (Algorithm 3) seeds its lower bound with.
    """
    _validate(network, k)
    start = time.perf_counter()
    decay = decay if decay is not None else DistanceDecay()
    w = decay.weights(network.coords, tuple(query_location))
    deg = np.asarray(network.out_degree(), dtype=float)
    return _result(w * deg, k, "TopWeightedDegree", start)


def degree_discount(
    network: GeoSocialNetwork,
    query_location: Sequence[float],
    k: int,
    decay: DistanceDecay | None = None,
) -> SeedResult:
    """Distance-aware degree discount (after Chen et al., KDD'09).

    Classic degree discount assumes a constant probability ``p``; here
    each selected seed ``s`` discounts its out-neighbours ``v`` by the
    expected overlap ``Pr(s, v)``-weighted degree mass, all scaled by the
    node weights ``w(., q)``.  Runs in ``O(k log n + m)``.
    """
    _validate(network, k)
    start = time.perf_counter()
    decay = decay if decay is not None else DistanceDecay()
    w = decay.weights(network.coords, tuple(query_location))

    # Base score: the weighted mass a node can activate in one hop, plus
    # its own weight.
    score = w.copy()
    for u in range(network.n):
        nbrs = network.out_neighbors(u)
        probs = network.out_probabilities(u)
        if len(nbrs):
            score[u] += float(np.dot(probs, w[nbrs]))

    chosen: list[int] = []
    active = np.zeros(network.n, dtype=bool)
    working = score.copy()
    estimate = 0.0
    for _ in range(k):
        u = int(np.argmax(working))
        chosen.append(u)
        active[u] = True
        # The heuristic's own objective is the sum of *discounted* scores
        # at selection time — the base score would double-count mass that
        # earlier seeds already claimed.
        estimate += float(working[u])
        working[u] = -np.inf
        # Discount: u's neighbours lose the share of their score that u
        # will already have claimed (their own weight times Pr(u, v)).
        nbrs = network.out_neighbors(u)
        probs = network.out_probabilities(u)
        for v, p in zip(nbrs, probs):
            v = int(v)
            if not active[v]:
                working[v] -= float(p) * float(w[v])
    return SeedResult(
        seeds=chosen,
        estimate=estimate,
        method="DegreeDiscount",
        elapsed=time.perf_counter() - start,
    )
