"""The distance-decay weight function ``w(v, q) = c * exp(-alpha * d(v, q))``.

This is the weight family the paper analyses (Section 2.1): ``c > 0`` is the
maximum weight a node can attain (at distance zero) and ``alpha > 0`` is the
decay speed.  ``alpha = 0`` is allowed as the degenerate "classical influence
maximization" case where every node weighs ``c``.

The exponential form gives the multiplicative shift property that both
indexes rely on (used in Lemma 8 and the anchor bounds of MIA-DA)::

    exp(-alpha * d(p, q)) * w(v, p) <= w(v, q) <= exp(+alpha * d(p, q)) * w(v, p)

which follows from the triangle inequality
``d(v, p) - d(p, q) <= d(v, q) <= d(v, p) + d(p, q)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.exceptions import GeometryError
from repro.geo.point import MetricFn, PointLike, as_point, resolve_metric


@dataclass(frozen=True)
class DistanceDecay:
    """Exponential distance-decay node-weight function.

    Parameters
    ----------
    c:
        Maximum weight, attained at distance 0.  Paper default: 1.
    alpha:
        Decay rate per unit distance.  Paper default: 0.01 (with distances
        roughly in kilometres).  ``alpha = 0`` degrades to uniform weights.
    metric:
        Distance metric name or callable; Euclidean by default.
    """

    c: float = 1.0
    alpha: float = 0.01
    metric: Union[str, MetricFn] = "euclidean"
    _metric_fn: MetricFn = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.c <= 0:
            raise GeometryError(f"weight scale c must be positive, got {self.c}")
        if self.alpha < 0:
            raise GeometryError(f"decay alpha must be non-negative, got {self.alpha}")
        object.__setattr__(self, "_metric_fn", resolve_metric(self.metric))

    @property
    def w_max(self) -> float:
        """The largest weight any node can have (``c``, per the paper)."""
        return self.c

    def weight_of_distance(self, d: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """Weight as a function of distance alone."""
        return self.c * np.exp(-self.alpha * np.asarray(d, dtype=float))

    def weights(self, coords: np.ndarray, q: PointLike) -> np.ndarray:
        """Vector of node weights ``w(v, q)`` for all rows of ``coords``.

        ``coords`` is an ``(n, 2)`` array of node locations; the result has
        shape ``(n,)``.  This is the hot kernel both indexes call once per
        query, so it stays fully vectorized.
        """
        q = np.asarray(as_point(q), dtype=float)
        coords = np.atleast_2d(np.asarray(coords, dtype=float))
        d = self._metric_fn(coords, q[None, :])
        return self.c * np.exp(-self.alpha * d)

    def weight(self, v: PointLike, q: PointLike) -> float:
        """Scalar weight of a node at location ``v`` for query ``q``."""
        a = np.asarray(as_point(v), dtype=float)
        b = np.asarray(as_point(q), dtype=float)
        return float(self.c * math.exp(-self.alpha * float(self._metric_fn(a, b))))

    def distance(self, a: PointLike, b: PointLike) -> float:
        """The underlying metric distance ``d(a, b)``."""
        pa = np.asarray(as_point(a), dtype=float)
        pb = np.asarray(as_point(b), dtype=float)
        return float(self._metric_fn(pa, pb))

    # ------------------------------------------------------------------
    # Shift bounds: the algebraic heart of anchor/pivot-based indexing.
    # ------------------------------------------------------------------

    def shift_factor(self, d_pq: float) -> float:
        """Multiplier ``exp(-alpha * d(p, q))`` used to transfer weights.

        For any node ``v``: ``w(v, q) >= shift_factor(d(p, q)) * w(v, p)``.
        """
        if d_pq < 0:
            raise GeometryError(f"distance must be non-negative, got {d_pq}")
        return math.exp(-self.alpha * d_pq)

    def lower_shift(self, weights_at_p: np.ndarray, d_pq: float) -> np.ndarray:
        """Lower bound of ``w(., q)`` from weights computed at anchor ``p``."""
        return np.asarray(weights_at_p, dtype=float) * self.shift_factor(d_pq)

    def upper_shift(self, weights_at_p: np.ndarray, d_pq: float) -> np.ndarray:
        """Upper bound of ``w(., q)`` from weights computed at anchor ``p``.

        The bound ``w(v, q) <= e^{+alpha d(p,q)} w(v, p)`` is capped at ``c``
        because no weight can exceed the maximum.
        """
        if d_pq < 0:
            raise GeometryError(f"distance must be non-negative, got {d_pq}")
        # Work in log space: alpha * d_pq can exceed the float exponent
        # range on its own, but log(w) + alpha * d_pq is well-behaved, and
        # any residual overflow saturates to inf before the cap at c.
        w = np.asarray(weights_at_p, dtype=float)
        with np.errstate(over="ignore", divide="ignore"):
            raised = np.exp(np.log(w) + self.alpha * d_pq)
        # A weight that underflowed to (near) zero carries no usable
        # information — subnormals lose log precision — so the only safe
        # upper bound there is the maximum weight c.
        raised = np.where(w > 1e-300, raised, self.c)
        return np.minimum(raised, self.c)

    def interval_weights(self, d_min: float, d_max: float) -> tuple[float, float]:
        """(lower, upper) weight bounds for nodes at distance in [d_min, d_max].

        Used by region-based bounds: if every node of a region is between
        ``d_min`` and ``d_max`` from the query, each node's weight lies in
        the returned interval (the decay is monotone decreasing).
        """
        if d_min < 0 or d_max < d_min:
            raise GeometryError(
                f"invalid distance interval [{d_min}, {d_max}] (need 0 <= min <= max)"
            )
        lo = self.c * math.exp(-self.alpha * d_max)
        hi = self.c * math.exp(-self.alpha * d_min)
        return lo, hi

    def with_alpha(self, alpha: float) -> "DistanceDecay":
        """A copy with a different decay rate (used by the alpha sweep)."""
        return DistanceDecay(c=self.c, alpha=alpha, metric=self.metric)
