"""Convex polygons and half-plane clipping.

RIS-DA's index construction (Algorithm 5) needs, for each Voronoi cell, the
location inside the cell that is *furthest* from the cell's pivot.  A bounded
Voronoi cell is a convex polygon (an intersection of half-planes with the
bounding box); the furthest point of a convex polygon from any location is
always one of its vertices, so the computation reduces to polygon clipping
followed by a vertex scan.  This module implements that machinery with no
external geometry dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.exceptions import GeometryError
from repro.geo.point import BoundingBox, Point, PointLike, as_point

#: Tolerance for classifying a point as lying on a half-plane boundary.
_EPS = 1e-12


@dataclass(frozen=True)
class HalfPlane:
    """The half-plane ``a*x + b*y <= c``."""

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        if self.a == 0.0 and self.b == 0.0:
            raise GeometryError("half-plane normal must be non-zero")

    @classmethod
    def bisector(cls, keep: PointLike, other: PointLike) -> "HalfPlane":
        """The half-plane of points at least as close to ``keep`` as ``other``.

        This is the perpendicular bisector between the two sites, oriented so
        that ``keep`` satisfies the inequality.  Used to carve Voronoi cells.
        """
        kx, ky = as_point(keep)
        ox, oy = as_point(other)
        if kx == ox and ky == oy:
            raise GeometryError("bisector of identical points is undefined")
        # |p - keep|^2 <= |p - other|^2   simplifies to a linear inequality.
        a = 2.0 * (ox - kx)
        b = 2.0 * (oy - ky)
        c = ox * ox + oy * oy - kx * kx - ky * ky
        return cls(a, b, c)

    def signed_value(self, p: PointLike) -> float:
        """``a*x + b*y - c``; non-positive means inside."""
        x, y = as_point(p)
        return self.a * x + self.b * y - self.c

    def contains(self, p: PointLike, tol: float = _EPS) -> bool:
        return self.signed_value(p) <= tol


class ConvexPolygon:
    """A convex polygon stored as a counter-clockwise vertex ring.

    Construction does not verify convexity exhaustively (the library only
    ever produces these via box corners and half-plane clipping, which
    preserve convexity), but degenerate inputs are rejected.
    """

    __slots__ = ("_vertices",)

    def __init__(self, vertices: Sequence[PointLike]):
        pts = [as_point(v) for v in vertices]
        if len(pts) < 3:
            raise GeometryError(f"a polygon needs >= 3 vertices, got {len(pts)}")
        self._vertices = np.asarray(pts, dtype=float)

    @classmethod
    def from_box(cls, box: BoundingBox) -> "ConvexPolygon":
        return cls(box.corners())

    @property
    def vertices(self) -> np.ndarray:
        """The ``(m, 2)`` vertex array (copy-safe view; treat as read-only)."""
        return self._vertices

    def __len__(self) -> int:
        return len(self._vertices)

    def area(self) -> float:
        """Polygon area via the shoelace formula."""
        x = self._vertices[:, 0]
        y = self._vertices[:, 1]
        return 0.5 * abs(
            float(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1)))
        )

    def centroid(self) -> Point:
        """Area centroid of the polygon."""
        v = self._vertices
        x, y = v[:, 0], v[:, 1]
        xn, yn = np.roll(x, -1), np.roll(y, -1)
        cross = x * yn - xn * y
        a = float(cross.sum()) / 2.0
        if abs(a) < _EPS:
            # Degenerate (zero-area) polygon; fall back to the vertex mean.
            return (float(x.mean()), float(y.mean()))
        cx = float(((x + xn) * cross).sum()) / (6.0 * a)
        cy = float(((y + yn) * cross).sum()) / (6.0 * a)
        return (cx, cy)

    def contains(self, p: PointLike, tol: float = 1e-9) -> bool:
        """Point-in-convex-polygon test (boundary counts as inside)."""
        x, y = as_point(p)
        v = self._vertices
        xn = np.roll(v[:, 0], -1)
        yn = np.roll(v[:, 1], -1)
        cross = (xn - v[:, 0]) * (y - v[:, 1]) - (yn - v[:, 1]) * (x - v[:, 0])
        return bool(np.all(cross >= -tol) or np.all(cross <= tol))

    def clip(self, hp: HalfPlane) -> "ConvexPolygon | None":
        """Intersect with a half-plane (Sutherland–Hodgman, one edge).

        Returns the clipped polygon, or ``None`` when the intersection is
        empty or degenerate (fewer than 3 distinct vertices).
        """
        out: List[Point] = []
        verts = self._vertices
        m = len(verts)
        values = verts @ np.array([hp.a, hp.b]) - hp.c
        for i in range(m):
            cur, nxt = verts[i], verts[(i + 1) % m]
            vc, vn = float(values[i]), float(values[(i + 1) % m])
            cur_in = vc <= _EPS
            nxt_in = vn <= _EPS
            if cur_in:
                out.append((float(cur[0]), float(cur[1])))
            if cur_in != nxt_in:
                # The edge crosses the boundary; add the intersection point.
                t = vc / (vc - vn)
                ix = float(cur[0] + t * (nxt[0] - cur[0]))
                iy = float(cur[1] + t * (nxt[1] - cur[1]))
                out.append((ix, iy))
        deduped = _dedupe_ring(out)
        if len(deduped) < 3:
            return None
        return ConvexPolygon(deduped)

    def furthest_vertex(self, p: PointLike) -> tuple[Point, float]:
        """The vertex furthest from ``p`` and its Euclidean distance.

        Because the polygon is convex, this vertex realises the maximum of
        ``d(p, .)`` over the entire polygon — the quantity Algorithm 5 needs
        (``q_{c(p)}``, the furthest location from a pivot in its cell).
        """
        x, y = as_point(p)
        d = np.hypot(self._vertices[:, 0] - x, self._vertices[:, 1] - y)
        i = int(np.argmax(d))
        vx, vy = self._vertices[i]
        return (float(vx), float(vy)), float(d[i])

    def min_distance(self, p: PointLike) -> float:
        """Distance from ``p`` to the polygon (0 when inside)."""
        if self.contains(p):
            return 0.0
        x, y = as_point(p)
        v = self._vertices
        best = math.inf
        m = len(v)
        for i in range(m):
            best = min(best, _point_segment_distance((x, y), v[i], v[(i + 1) % m]))
        return best


def _dedupe_ring(points: List[Point], tol: float = 1e-9) -> List[Point]:
    """Remove consecutive (and wrap-around) duplicate vertices."""
    if not points:
        return []
    out: List[Point] = [points[0]]
    for p in points[1:]:
        q = out[-1]
        if math.hypot(p[0] - q[0], p[1] - q[1]) > tol:
            out.append(p)
    if len(out) > 1:
        first, last = out[0], out[-1]
        if math.hypot(first[0] - last[0], first[1] - last[1]) <= tol:
            out.pop()
    return out


def _point_segment_distance(p: Point, a: np.ndarray, b: np.ndarray) -> float:
    """Distance from point ``p`` to the segment ``ab``."""
    px, py = p
    ax, ay = float(a[0]), float(a[1])
    bx, by = float(b[0]), float(b[1])
    dx, dy = bx - ax, by - ay
    seg_len2 = dx * dx + dy * dy
    if seg_len2 <= _EPS:
        return math.hypot(px - ax, py - ay)
    t = ((px - ax) * dx + (py - ay) * dy) / seg_len2
    t = min(1.0, max(0.0, t))
    cx, cy = ax + t * dx, ay + t * dy
    return math.hypot(px - cx, py - cy)
