"""A static 2-D k-d tree for nearest-neighbour queries.

Both indexes need "find the closest pre-sampled location to the query":
MIA-DA picks the closest *anchor*, RIS-DA picks the closest *pivot*
(Section 4.3.2).  A k-d tree answers that in ``O(log n)`` expected time.

The tree is built once over a fixed point set (median splits, array-based
nodes — no Python object per node) and is immutable afterwards, which fits
the offline-index / online-query split of the paper.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.exceptions import GeometryError
from repro.geo.point import PointLike, as_point


class KDTree:
    """Immutable 2-D k-d tree over an ``(n, 2)`` coordinate array.

    Queries return *indices into the original array*, so callers can keep
    satellite data (pivot metadata, anchor influence tables) in parallel
    arrays.
    """

    __slots__ = (
        "_points",
        "_index",
        "_left",
        "_right",
        "_axis",
        "_root",
        "_size",
        "_next_slot",
    )

    _LEAF = -1

    def __init__(self, points: np.ndarray):
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if pts.size == 0:
            raise GeometryError("cannot build a k-d tree over an empty point set")
        if pts.shape[1] != 2:
            raise GeometryError(f"expected (n, 2) points, got shape {pts.shape}")
        self._points = pts
        n = len(pts)
        self._size = n
        # Node storage: each node is identified by its position in these
        # arrays; _index[i] is the point stored at node i.
        self._index = np.empty(n, dtype=np.int64)
        self._left = np.full(n, self._LEAF, dtype=np.int64)
        self._right = np.full(n, self._LEAF, dtype=np.int64)
        self._axis = np.zeros(n, dtype=np.int8)
        self._next_slot = 0
        order = np.arange(n, dtype=np.int64)
        self._root = self._build(order, depth=0)
        del self._next_slot  # construction-only scratch

    def __len__(self) -> int:
        return self._size

    @property
    def points(self) -> np.ndarray:
        return self._points

    def _build(self, order: np.ndarray, depth: int) -> int:
        if order.size == 0:
            return self._LEAF
        axis = depth % 2
        coords = self._points[order, axis]
        mid = order.size // 2
        part = np.argpartition(coords, mid)
        order = order[part]
        node = self._next_slot
        self._next_slot += 1
        self._index[node] = order[mid]
        self._axis[node] = axis
        self._left[node] = self._build(order[:mid], depth + 1)
        self._right[node] = self._build(order[mid + 1 :], depth + 1)
        return node

    def nearest(self, q: PointLike) -> Tuple[int, float]:
        """Index of the nearest stored point to ``q`` and its distance."""
        qx, qy = as_point(q)
        best_idx = -1
        best_d2 = math.inf
        # Iterative search with an explicit stack of (node, dist2-to-split).
        stack: list[int] = [self._root]
        pts = self._points
        while stack:
            node = stack.pop()
            if node == self._LEAF:
                continue
            i = int(self._index[node])
            dx = pts[i, 0] - qx
            dy = pts[i, 1] - qy
            d2 = dx * dx + dy * dy
            if d2 < best_d2:
                best_d2 = d2
                best_idx = i
            axis = int(self._axis[node])
            delta = (qx - pts[i, 0]) if axis == 0 else (qy - pts[i, 1])
            near = self._left[node] if delta <= 0 else self._right[node]
            far = self._right[node] if delta <= 0 else self._left[node]
            # Visit the near side first; only cross the split if the slab
            # could still contain a closer point.
            if far != self._LEAF and delta * delta < best_d2:
                stack.append(int(far))
            if near != self._LEAF:
                stack.append(int(near))
        return best_idx, math.sqrt(best_d2)

    def nearest_many(self, queries: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vector form of :meth:`nearest` over an ``(m, 2)`` query array."""
        qs = np.atleast_2d(np.asarray(queries, dtype=float))
        idx = np.empty(len(qs), dtype=np.int64)
        dist = np.empty(len(qs), dtype=float)
        for row, q in enumerate(qs):
            i, d = self.nearest((float(q[0]), float(q[1])))
            idx[row] = i
            dist[row] = d
        return idx, dist

    def within_radius(self, q: PointLike, radius: float) -> np.ndarray:
        """Indices of all stored points within ``radius`` of ``q``.

        Used by pivot-pruned Voronoi construction: only nearby sites can
        constrain a cell.
        """
        if radius < 0:
            raise GeometryError(f"radius must be non-negative, got {radius}")
        qx, qy = as_point(q)
        r2 = radius * radius
        hits: list[int] = []
        stack: list[int] = [self._root]
        pts = self._points
        while stack:
            node = stack.pop()
            if node == self._LEAF:
                continue
            i = int(self._index[node])
            dx = pts[i, 0] - qx
            dy = pts[i, 1] - qy
            if dx * dx + dy * dy <= r2:
                hits.append(i)
            axis = int(self._axis[node])
            delta = (qx - pts[i, 0]) if axis == 0 else (qy - pts[i, 1])
            near = self._left[node] if delta <= 0 else self._right[node]
            far = self._right[node] if delta <= 0 else self._left[node]
            if near != self._LEAF:
                stack.append(int(near))
            if far != self._LEAF and delta * delta <= r2:
                stack.append(int(far))
        return np.asarray(sorted(hits), dtype=np.int64)
