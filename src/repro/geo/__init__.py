"""Computational-geometry and spatial-indexing substrate.

This package provides everything spatial that the DAIM algorithms need:

* :mod:`repro.geo.point` — points, bounding boxes, distance metrics;
* :mod:`repro.geo.weights` — the exponential distance-decay weight function
  ``w(v, q) = c * exp(-alpha * d(v, q))`` and its Lipschitz-style bounds;
* :mod:`repro.geo.convex` — convex polygons and half-plane clipping;
* :mod:`repro.geo.voronoi` — bounded Voronoi cells over a pivot set and the
  furthest-point-in-cell computation used by RIS-DA index sizing;
* :mod:`repro.geo.kdtree` — a static k-d tree for nearest-pivot lookup;
* :mod:`repro.geo.grid` — a uniform grid index used for region-based bounds;
* :mod:`repro.geo.sampling` — pivot/anchor placement strategies.
"""

from repro.geo.convex import ConvexPolygon, HalfPlane
from repro.geo.grid import UniformGrid
from repro.geo.kdtree import KDTree
from repro.geo.point import (
    BoundingBox,
    Point,
    euclidean,
    manhattan,
    pairwise_distances,
    resolve_metric,
)
from repro.geo.sampling import (
    farthest_point_sample,
    sample_density_pivots,
    sample_uniform_points,
)
from repro.geo.voronoi import VoronoiCell, VoronoiDiagram
from repro.geo.weights import DistanceDecay

__all__ = [
    "BoundingBox",
    "ConvexPolygon",
    "DistanceDecay",
    "HalfPlane",
    "KDTree",
    "Point",
    "UniformGrid",
    "VoronoiCell",
    "VoronoiDiagram",
    "euclidean",
    "farthest_point_sample",
    "manhattan",
    "pairwise_distances",
    "resolve_metric",
    "sample_density_pivots",
    "sample_uniform_points",
]
