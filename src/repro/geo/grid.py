"""Uniform grid spatial index.

MIA-DA's *region-based estimation* (the ``tau`` parameter in Section 5.1)
partitions the space around influential nodes into regions and stores the
influence mass per region; at query time the weight of every node in a region
is bounded via the min/max distance from the query to the region rectangle.
A uniform grid is the natural region structure: cells are axis-aligned
rectangles with O(1) point-to-cell assignment and closed-form min/max
distances.
"""

from __future__ import annotations

import math
from typing import Iterator, Tuple

import numpy as np

from repro.exceptions import GeometryError
from repro.geo.point import BoundingBox, PointLike, as_point


class UniformGrid:
    """A ``rows x cols`` grid over a bounding box.

    Cells are indexed by a flat integer ``cell = row * cols + col``.
    """

    __slots__ = ("box", "rows", "cols", "_cw", "_ch")

    def __init__(self, box: BoundingBox, rows: int, cols: int):
        if rows <= 0 or cols <= 0:
            raise GeometryError(f"grid must have positive shape, got {rows}x{cols}")
        if box.width <= 0 or box.height <= 0:
            # Zero-extent boxes (all points identical) get a tiny pad so that
            # cell sizes stay positive.
            box = box.expanded(max(box.diagonal, 1.0) * 1e-9 + 1e-9)
        self.box = box
        self.rows = rows
        self.cols = cols
        self._cw = box.width / cols
        self._ch = box.height / rows

    @classmethod
    def with_cell_budget(cls, box: BoundingBox, n_cells: int) -> "UniformGrid":
        """A roughly square grid with about ``n_cells`` cells.

        This mirrors the paper's ``tau`` parameter: ``tau = 200`` means each
        heavy node's influenced area is split into ~200 regions.
        """
        if n_cells <= 0:
            raise GeometryError(f"cell budget must be positive, got {n_cells}")
        aspect = box.width / box.height if box.height > 0 else 1.0
        cols = max(1, int(round(math.sqrt(n_cells * max(aspect, 1e-9)))))
        rows = max(1, int(round(n_cells / cols)))
        return cls(box, rows, cols)

    @property
    def n_cells(self) -> int:
        return self.rows * self.cols

    def cell_of(self, p: PointLike) -> int:
        """Flat cell id containing ``p`` (clamped to the grid extent)."""
        x, y = as_point(p)
        col = int((x - self.box.xmin) / self._cw)
        row = int((y - self.box.ymin) / self._ch)
        col = min(max(col, 0), self.cols - 1)
        row = min(max(row, 0), self.rows - 1)
        return row * self.cols + col

    def cells_of(self, coords: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`cell_of` over an ``(n, 2)`` array."""
        coords = np.atleast_2d(np.asarray(coords, dtype=float))
        col = ((coords[:, 0] - self.box.xmin) / self._cw).astype(np.int64)
        row = ((coords[:, 1] - self.box.ymin) / self._ch).astype(np.int64)
        np.clip(col, 0, self.cols - 1, out=col)
        np.clip(row, 0, self.rows - 1, out=row)
        return row * self.cols + col

    def cell_box(self, cell: int) -> BoundingBox:
        """The rectangle of a flat cell id."""
        if not 0 <= cell < self.n_cells:
            raise GeometryError(f"cell {cell} out of range [0, {self.n_cells})")
        row, col = divmod(cell, self.cols)
        return BoundingBox(
            xmin=self.box.xmin + col * self._cw,
            ymin=self.box.ymin + row * self._ch,
            xmax=self.box.xmin + (col + 1) * self._cw,
            ymax=self.box.ymin + (row + 1) * self._ch,
        )

    def cell_centers(self) -> np.ndarray:
        """``(n_cells, 2)`` array of cell centres, in flat-id order."""
        cols = np.arange(self.cols)
        rows = np.arange(self.rows)
        cx = self.box.xmin + (cols + 0.5) * self._cw
        cy = self.box.ymin + (rows + 0.5) * self._ch
        gx, gy = np.meshgrid(cx, cy)
        return np.column_stack([gx.ravel(), gy.ravel()])

    def distance_bounds(self, q: PointLike) -> Tuple[np.ndarray, np.ndarray]:
        """Per-cell (min, max) Euclidean distance from ``q``; shape (n_cells,).

        Fully vectorized; this runs once per node-bound evaluation in MIA-DA
        so it must be cheap.
        """
        qx, qy = as_point(q)
        cols = np.arange(self.cols)
        rows = np.arange(self.rows)
        x_lo = self.box.xmin + cols * self._cw
        x_hi = x_lo + self._cw
        y_lo = self.box.ymin + rows * self._ch
        y_hi = y_lo + self._ch

        dx_min = np.maximum(np.maximum(x_lo - qx, qx - x_hi), 0.0)
        dy_min = np.maximum(np.maximum(y_lo - qy, qy - y_hi), 0.0)
        dx_max = np.maximum(np.abs(qx - x_lo), np.abs(qx - x_hi))
        dy_max = np.maximum(np.abs(qy - y_lo), np.abs(qy - y_hi))

        gx_min, gy_min = np.meshgrid(dx_min, dy_min)
        gx_max, gy_max = np.meshgrid(dx_max, dy_max)
        d_min = np.hypot(gx_min, gy_min).ravel()
        d_max = np.hypot(gx_max, gy_max).ravel()
        return d_min, d_max

    def iter_cells(self) -> Iterator[Tuple[int, BoundingBox]]:
        """Iterate ``(cell_id, rectangle)`` over all cells."""
        for cell in range(self.n_cells):
            yield cell, self.cell_box(cell)
