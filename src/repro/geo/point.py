"""Points, bounding boxes and distance metrics.

Coordinates throughout the library are plain ``(x, y)`` pairs in an abstract
planar space (the paper uses projected longitude/latitude; any consistent
planar embedding works because the algorithms only consume distances).

Two metric families are supported, matching the paper's claim that the
techniques extend beyond Euclidean distance:

* ``"euclidean"`` — the metric used in all of the paper's experiments;
* ``"manhattan"`` — the L1 alternative mentioned in Section 2.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Tuple, Union

import numpy as np

from repro.exceptions import GeometryError

#: A point is any 2-sequence of floats; ``Point`` is the canonical tuple form.
Point = Tuple[float, float]

PointLike = Union[Point, Iterable[float], np.ndarray]

MetricFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def as_point(p: PointLike) -> Point:
    """Coerce ``p`` into a ``(float, float)`` tuple, validating its shape."""
    arr = tuple(float(c) for c in p)
    if len(arr) != 2:
        raise GeometryError(f"expected a 2-D point, got {len(arr)} coordinates")
    if not all(math.isfinite(c) for c in arr):
        raise GeometryError(f"point coordinates must be finite, got {arr}")
    return arr  # type: ignore[return-value]


def euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean (L2) distance; broadcasts over leading dimensions.

    ``a`` and ``b`` are arrays whose last dimension has size 2.
    """
    diff = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
    return np.sqrt(np.sum(diff * diff, axis=-1))


def manhattan(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Manhattan (L1) distance; broadcasts over leading dimensions."""
    diff = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
    return np.sum(np.abs(diff), axis=-1)


_METRICS: dict[str, MetricFn] = {
    "euclidean": euclidean,
    "manhattan": manhattan,
}


def resolve_metric(metric: Union[str, MetricFn]) -> MetricFn:
    """Return a metric function for a name or pass a callable through.

    Raises :class:`GeometryError` for unknown metric names.
    """
    if callable(metric):
        return metric
    try:
        return _METRICS[metric]
    except KeyError:
        known = ", ".join(sorted(_METRICS))
        raise GeometryError(f"unknown metric {metric!r}; known metrics: {known}") from None


def pairwise_distances(
    points: np.ndarray, queries: np.ndarray, metric: Union[str, MetricFn] = "euclidean"
) -> np.ndarray:
    """Distance from every query to every point.

    Returns an array of shape ``(len(queries), len(points))``.
    """
    fn = resolve_metric(metric)
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    qs = np.atleast_2d(np.asarray(queries, dtype=float))
    return fn(qs[:, None, :], pts[None, :, :])


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise GeometryError(
                f"degenerate bounding box: ({self.xmin}, {self.ymin}) .. "
                f"({self.xmax}, {self.ymax})"
            )

    @classmethod
    def of_points(cls, coords: np.ndarray, pad: float = 0.0) -> "BoundingBox":
        """Smallest box containing ``coords`` (an ``(n, 2)`` array), padded."""
        coords = np.atleast_2d(np.asarray(coords, dtype=float))
        if coords.size == 0:
            raise GeometryError("cannot bound an empty point set")
        return cls(
            xmin=float(coords[:, 0].min() - pad),
            ymin=float(coords[:, 1].min() - pad),
            xmax=float(coords[:, 0].max() + pad),
            ymax=float(coords[:, 1].max() + pad),
        )

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def diagonal(self) -> float:
        """Length of the box diagonal — the maximum distance within the box."""
        return math.hypot(self.width, self.height)

    @property
    def center(self) -> Point:
        return ((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    def corners(self) -> np.ndarray:
        """The four corners in counter-clockwise order, shape ``(4, 2)``."""
        return np.array(
            [
                [self.xmin, self.ymin],
                [self.xmax, self.ymin],
                [self.xmax, self.ymax],
                [self.xmin, self.ymax],
            ]
        )

    def contains(self, p: PointLike) -> bool:
        x, y = as_point(p)
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax

    def clamp(self, p: PointLike) -> Point:
        """The closest point inside the box to ``p``."""
        x, y = as_point(p)
        return (min(max(x, self.xmin), self.xmax), min(max(y, self.ymin), self.ymax))

    def min_distance(self, p: PointLike) -> float:
        """Euclidean distance from ``p`` to the box (0 if inside)."""
        x, y = as_point(p)
        cx, cy = self.clamp((x, y))
        return math.hypot(x - cx, y - cy)

    def max_distance(self, p: PointLike) -> float:
        """Euclidean distance from ``p`` to the farthest point of the box."""
        x, y = as_point(p)
        dx = max(abs(x - self.xmin), abs(x - self.xmax))
        dy = max(abs(y - self.ymin), abs(y - self.ymax))
        return math.hypot(dx, dy)

    def expanded(self, pad: float) -> "BoundingBox":
        """A copy grown by ``pad`` on every side."""
        return BoundingBox(
            self.xmin - pad, self.ymin - pad, self.xmax + pad, self.ymax + pad
        )
