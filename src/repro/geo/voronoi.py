"""Bounded Voronoi diagrams over a pivot set.

RIS-DA (Algorithm 5) partitions the query space into the Voronoi cells of the
sampled pivots and sizes the sample index for the *worst* query in each cell
— the location furthest from the cell's pivot.  Because every cell clipped to
the bounding box is a convex polygon, that worst location is a cell vertex.

Cells are computed by half-plane clipping: start from the bounding box and
intersect with the bisector half-plane against every other site.  A k-d tree
over the sites orders candidate clippers by proximity and stops early once no
further site can cut the cell (classic security-radius argument: a site
further than twice the cell's current max distance from the pivot cannot
contribute), which makes construction near-linear for well-spread pivots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import GeometryError
from repro.geo.convex import ConvexPolygon, HalfPlane
from repro.geo.kdtree import KDTree
from repro.geo.point import BoundingBox, Point, PointLike, as_point


@dataclass(frozen=True)
class VoronoiCell:
    """One bounded Voronoi cell.

    Attributes
    ----------
    site_index:
        Index of the owning pivot in the diagram's site array.
    polygon:
        The cell geometry clipped to the bounding box.
    worst_point:
        The location in the cell furthest from the pivot — the worst-case
        query Algorithm 5 sizes the sample index for.
    worst_distance:
        ``d(pivot, worst_point)``; also called the cell radius.
    """

    site_index: int
    polygon: ConvexPolygon
    worst_point: Point
    worst_distance: float


class VoronoiDiagram:
    """Voronoi cells of a site set, clipped to a bounding box."""

    def __init__(self, sites: np.ndarray, box: BoundingBox):
        pts = np.atleast_2d(np.asarray(sites, dtype=float))
        if pts.size == 0:
            raise GeometryError("cannot build a Voronoi diagram over zero sites")
        if pts.shape[1] != 2:
            raise GeometryError(f"expected (n, 2) sites, got shape {pts.shape}")
        self._sites = pts
        self._box = box
        self._tree = KDTree(pts) if len(pts) > 1 else None
        self._cells: List[VoronoiCell] = [self._build_cell(i) for i in range(len(pts))]

    @property
    def sites(self) -> np.ndarray:
        return self._sites

    @property
    def box(self) -> BoundingBox:
        return self._box

    @property
    def cells(self) -> Sequence[VoronoiCell]:
        return self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def _build_cell(self, i: int) -> VoronoiCell:
        site = (float(self._sites[i, 0]), float(self._sites[i, 1]))
        cell: Optional[ConvexPolygon] = ConvexPolygon.from_box(self._box)
        if self._tree is not None:
            cell = self._clip_against_neighbours(i, site, cell)
        if cell is None:
            # The cell collapsed to (near) nothing — can happen with
            # coincident sites.  The worst query then coincides with the
            # site itself.
            return VoronoiCell(i, _point_like_polygon(site), site, 0.0)
        worst, dist = cell.furthest_vertex(site)
        return VoronoiCell(i, cell, worst, dist)

    def _clip_against_neighbours(
        self, i: int, site: Point, cell: Optional[ConvexPolygon]
    ) -> Optional[ConvexPolygon]:
        assert self._tree is not None
        # Candidate clippers ordered by distance from the site.  We expand
        # the search radius geometrically; once all remaining sites are
        # further than twice the current cell radius they cannot clip.
        n = len(self._sites)
        d = np.hypot(self._sites[:, 0] - site[0], self._sites[:, 1] - site[1])
        order = np.argsort(d)
        for j in order:
            j = int(j)
            if j == i or cell is None:
                if cell is None:
                    break
                continue
            if d[j] == 0.0:
                # A coincident duplicate site: the bisector is undefined.
                # By convention the lower-indexed site keeps the cell.
                if j < i:
                    return None
                continue
            _, radius = cell.furthest_vertex(site)
            if d[j] > 2.0 * radius:
                # Security radius reached: no further site can cut the cell.
                break
            cell = cell.clip(HalfPlane.bisector(site, (self._sites[j, 0], self._sites[j, 1])))
        return cell

    def locate(self, q: PointLike) -> int:
        """Index of the site whose cell contains ``q`` (nearest site)."""
        qp = as_point(q)
        if self._tree is None:
            return 0
        idx, _ = self._tree.nearest(qp)
        return idx

    def max_cell_radius(self) -> float:
        """The largest worst-case distance over all cells.

        This controls the global looseness of RIS-DA's lower bound: more
        pivots => smaller radius => tighter bound => fewer samples.
        """
        return max(c.worst_distance for c in self._cells)


def _point_like_polygon(p: Point) -> ConvexPolygon:
    """A tiny triangle standing in for a degenerate (empty) cell."""
    eps = 1e-9
    return ConvexPolygon([(p[0], p[1]), (p[0] + eps, p[1]), (p[0], p[1] + eps)])
