"""Spatial point-sampling strategies for pivots and anchors.

Both indexes pre-sample query locations offline:

* MIA-DA samples *anchor points* (paper: ``|L| = 300``) at which node
  influences are pre-computed;
* RIS-DA samples *pivots* (paper: 2000) at which the DAIM problem is solved
  to seed the lower-bound machinery.

The paper samples locations "randomly from the entire space".  We provide
that (uniform), plus two refinements that are useful in practice and serve
as ablation knobs: density-matched sampling (pivots where users actually
are) and farthest-point sampling (maximally spread pivots, which minimises
the worst-case cell radius that drives RIS-DA's sample count).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GeometryError
from repro.geo.point import BoundingBox
from repro.rng import RandomLike, as_generator


def sample_uniform_points(
    box: BoundingBox, n: int, seed: RandomLike = None
) -> np.ndarray:
    """``n`` points uniformly at random in ``box``; shape ``(n, 2)``."""
    if n <= 0:
        raise GeometryError(f"sample count must be positive, got {n}")
    rng = as_generator(seed)
    xs = rng.uniform(box.xmin, box.xmax, size=n)
    ys = rng.uniform(box.ymin, box.ymax, size=n)
    return np.column_stack([xs, ys])


def sample_density_pivots(
    coords: np.ndarray,
    n: int,
    seed: RandomLike = None,
    jitter: float = 0.0,
) -> np.ndarray:
    """``n`` pivots drawn from the empirical node-location distribution.

    Each pivot is a (possibly jittered) copy of a random node location, so
    pivots concentrate where users concentrate — queries near dense areas
    then find a very close pivot.

    Parameters
    ----------
    coords:
        ``(m, 2)`` node locations.
    jitter:
        Standard deviation of Gaussian noise added to each pivot; 0 reuses
        exact node locations.
    """
    coords = np.atleast_2d(np.asarray(coords, dtype=float))
    if coords.size == 0:
        raise GeometryError("cannot sample pivots from an empty location set")
    if n <= 0:
        raise GeometryError(f"sample count must be positive, got {n}")
    rng = as_generator(seed)
    idx = rng.integers(0, len(coords), size=n)
    pts = coords[idx].copy()
    if jitter > 0:
        pts += rng.normal(0.0, jitter, size=pts.shape)
    return pts


def farthest_point_sample(
    candidates: np.ndarray, n: int, seed: RandomLike = None
) -> np.ndarray:
    """Greedy farthest-point subsample of ``candidates``; shape ``(n, 2)``.

    Starts from a random candidate and repeatedly adds the candidate
    furthest from the chosen set.  This 2-approximates the optimal
    k-centre cover, i.e. it (nearly) minimises the maximum distance from
    any candidate to its closest pivot — exactly the quantity RIS-DA's
    index size depends on.
    """
    cands = np.atleast_2d(np.asarray(candidates, dtype=float))
    if cands.size == 0:
        raise GeometryError("cannot subsample an empty candidate set")
    if n <= 0:
        raise GeometryError(f"sample count must be positive, got {n}")
    rng = as_generator(seed)
    n = min(n, len(cands))
    chosen = np.empty(n, dtype=np.int64)
    chosen[0] = rng.integers(0, len(cands))
    # min-distance of each candidate to the chosen set so far
    d = np.hypot(
        cands[:, 0] - cands[chosen[0], 0], cands[:, 1] - cands[chosen[0], 1]
    )
    for i in range(1, n):
        nxt = int(np.argmax(d))
        chosen[i] = nxt
        nd = np.hypot(cands[:, 0] - cands[nxt, 0], cands[:, 1] - cands[nxt, 1])
        np.minimum(d, nd, out=d)
    return cands[chosen].copy()
