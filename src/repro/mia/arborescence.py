"""MIIA / MIOA arborescence structures (Definition 2).

``MIIA(v)`` assembles the maximum influence paths *into* ``v``; since
subpaths of MIPs are MIPs (with deterministic tie-breaking), the union of
paths forms a tree rooted at ``v`` whose edges point toward the root.
``MIOA(v)`` is the symmetric out-tree.

The tree is stored in arrays indexed by *local* position (0 is the root),
with nodes ordered root-first by decreasing path probability — i.e. a
topological order where every node appears after its tree-parent.  Walking
the array backward visits leaves before parents, which is the order the
activation-probability recursion (Eq. 5) needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.exceptions import GraphError
from repro.mia.paths import PathMap, max_influence_paths_from, max_influence_paths_to
from repro.network.graph import GeoSocialNetwork


@dataclass(frozen=True)
class Arborescence:
    """A maximum-influence arborescence (in- or out-tree).

    Attributes
    ----------
    root:
        The global node id of the root ``v``.
    nodes:
        Global node ids, root-first topological order (``nodes[0] == root``).
    parent:
        ``parent[i]`` is the *local index* of node i's tree-parent — the
        next hop toward the root in an MIIA, or the previous hop from the
        root in an MIOA.  The root has parent ``-1``.
    edge_prob:
        ``edge_prob[i]`` is the probability of the tree edge between node i
        and its parent, *oriented in influence direction* (for MIIA:
        ``Pr(nodes[i], parent)``; for MIOA: ``Pr(parent, nodes[i])``).
        1.0 at the root.
    path_prob:
        ``path_prob[i] = Pr(MIP)`` between ``nodes[i]`` and the root.
    kind:
        ``"miia"`` or ``"mioa"``.
    """

    root: int
    nodes: np.ndarray
    parent: np.ndarray
    edge_prob: np.ndarray
    path_prob: np.ndarray
    kind: str
    local: Dict[int, int] = field(repr=False, default_factory=dict)
    children: List[np.ndarray] = field(repr=False, default_factory=list)

    def __post_init__(self) -> None:
        if self.kind not in ("miia", "mioa"):
            raise GraphError(f"kind must be 'miia' or 'mioa', got {self.kind!r}")
        if len(self.nodes) == 0 or self.nodes[0] != self.root:
            raise GraphError("arborescence must start at its root")
        # Local id lookup and children lists are derived once here.  This
        # runs once per tree — n times per model build or index load — so
        # the children grouping is vectorized (bucket by parent via a
        # stable argsort) rather than looped.
        object.__setattr__(
            self, "local", {int(g): i for i, g in enumerate(self.nodes)}
        )
        n = len(self.nodes)
        parent = np.asarray(self.parent, dtype=np.int64)
        child_ids = np.arange(1, n, dtype=np.int64)
        p = parent[1:]
        if np.any((p < 0) | (p >= child_ids)):
            raise GraphError(
                "parent indices must precede children (topological order)"
            )
        order = np.argsort(p, kind="stable")  # stable keeps children ascending
        counts = np.bincount(p, minlength=n) if n > 1 else np.zeros(n, np.int64)
        object.__setattr__(
            self,
            "children",
            np.split(child_ids[order], np.cumsum(counts)[:-1]),
        )

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: int) -> bool:
        return int(node) in self.local

    def local_index(self, node: int) -> int:
        """Local position of a global node id (raises KeyError if absent)."""
        return self.local[int(node)]


def _from_pathmap(root: int, paths: PathMap, kind: str) -> Arborescence:
    """Assemble an arborescence from a Dijkstra path map.

    ``paths[node] = (prob, hop)`` where ``hop`` is the neighbour through
    which the path reaches ``node`` in *traversal* direction — for an MIIA
    the traversal runs backward from the root, so the hop of ``u`` is u's
    tree-parent (next node toward ``v``); same for MIOA in the forward
    direction.
    """
    # Topological order: sort by hop depth (path length in edges), which
    # always places a node's parent before it — probability alone would
    # tie on probability-1 edges.  Depth is computed by walking hop chains
    # with memoisation.
    depth: Dict[int, int] = {root: 0}

    def node_depth(g: int) -> int:
        chain: List[int] = []
        while g not in depth:
            chain.append(g)
            g = int(paths[g][1])
        d = depth[g]
        for node in reversed(chain):
            d += 1
            depth[node] = d
        return depth[chain[0]] if chain else d

    for g in paths:
        node_depth(g)
    items = sorted(paths.items(), key=lambda kv: (depth[kv[0]], -kv[1][0], kv[0]))
    nodes = np.asarray([g for g, _ in items], dtype=np.int64)
    local = {int(g): i for i, g in enumerate(nodes)}
    n = len(nodes)
    parent = np.full(n, -1, dtype=np.int64)
    edge_prob = np.ones(n, dtype=float)
    path_prob = np.ones(n, dtype=float)
    for i, (g, (prob, hop)) in enumerate(items):
        path_prob[i] = prob
        if g == root:
            continue
        p = local[int(hop)]
        parent[i] = p
        # Edge probability along the influence direction: the ratio of the
        # two path probabilities (product structure of the path).
        pp = path_prob[p] if path_prob[p] > 0 else 1.0
        edge_prob[i] = min(prob / pp, 1.0)
    # Guard: a child sorted before its parent would break the recursion.
    for i in range(1, n):
        if parent[i] >= i:
            raise GraphError("non-topological arborescence order (internal error)")
    return Arborescence(
        root=root, nodes=nodes, parent=parent, edge_prob=edge_prob,
        path_prob=path_prob, kind=kind,
    )


def build_miia(network: GeoSocialNetwork, v: int, theta: float) -> Arborescence:
    """Build ``MIIA(v)``: every node that can influence ``v`` at >= theta."""
    return _from_pathmap(int(v), max_influence_paths_to(network, v, theta), "miia")


def build_mioa(network: GeoSocialNetwork, v: int, theta: float) -> Arborescence:
    """Build ``MIOA(v)``: every node ``v`` can influence at >= theta."""
    return _from_pathmap(int(v), max_influence_paths_from(network, v, theta), "mioa")
