"""Parallel MIIA construction over a multiprocessing worker pool.

Building one ``MIIA(v)`` per node — a theta-pruned Dijkstra over the whole
graph, ``n`` times — dominates MIA-DA's offline cost and is parallel by
construction: every arborescence is an independent computation.
:class:`ParallelMiaBuilder` fans the node range out over worker processes
while keeping the output **bit-identical** to the serial build:

* the node range ``[0, n)`` is split into a deterministic *chunk plan*
  (a function of ``n`` and ``n_workers`` only) of contiguous root ranges;
* each chunk travels back as one flat CSR block — ``(members, parents,
  edge_probs, path_probs, offsets)``, the exact layout
  :class:`~repro.mia.pmia.MiaModel` flattens into — one pickle per chunk
  instead of one per tree;
* chunk results are concatenated in plan order, which is node order, so
  scheduler jitter can never reorder the index.

MIIA construction is deterministic (no RNG), so unlike RR sampling the
output does not even depend on ``n_workers``: every ``(n_workers,
execution mode)`` combination — pool, fallback, ``force_serial`` —
produces the same bytes the serial build would.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.mia.arborescence import build_miia
from repro.mia.pmia import FlatTrees, MiaModel
from repro.network.graph import GeoSocialNetwork
from repro.obs.progress import Heartbeat
from repro.obs.trace import SpanContext, get_tracer, span_context, worker_span

#: One chunk's CSR block plus its (optional) finished worker span dict.
ChunkResult = Tuple[FlatTrees, Optional[Dict[str, Any]]]

#: Chunks per worker in one build: > 1 so a slow chunk (hub-heavy trees)
#: doesn't leave the other workers idle at the tail of the build.
_CHUNKS_PER_WORKER = 4

#: Below this node count pool dispatch costs more than it saves; the
#: chunk plan is unchanged, only the execution stays in-process.
_MIN_PARALLEL_NODES = 256

# Per-worker-process state, set once by the pool initializer so each task
# message carries only (start, count).
_worker_network: GeoSocialNetwork | None = None
_worker_theta: float = 0.05


def _init_worker(network: GeoSocialNetwork, theta: float) -> None:
    global _worker_network, _worker_theta
    _worker_network = network
    _worker_theta = theta


def _build_chunk(
    network: GeoSocialNetwork,
    theta: float,
    start: int,
    count: int,
    ctx: Optional[SpanContext] = None,
) -> ChunkResult:
    """``MIIA(v)`` for roots ``start .. start+count`` as one CSR block.

    ``ctx`` is the parent build span's propagated context; when set, the
    chunk's timing comes back as a finished span dict for the parent
    tracer to adopt.  Tree construction is unaffected.
    """
    start_unix = time.time()
    t0 = time.perf_counter()
    trees = [build_miia(network, v, theta) for v in range(start, start + count)]
    sizes = np.asarray([len(t) for t in trees], dtype=np.int64)
    offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    if trees:
        members = np.concatenate([t.nodes for t in trees])
        parents = np.concatenate([t.parent for t in trees])
        edge_probs = np.concatenate([t.edge_prob for t in trees])
        path_probs = np.concatenate([t.path_prob for t in trees])
    else:
        members = np.empty(0, dtype=np.int64)
        parents = np.empty(0, dtype=np.int64)
        edge_probs = np.empty(0, dtype=float)
        path_probs = np.empty(0, dtype=float)
    span = worker_span(
        "mia.build_chunk", ctx, start_unix,
        (time.perf_counter() - t0) * 1e3,
        {"start": start, "count": count},
    )
    return (members, parents, edge_probs, path_probs, offsets), span


def _pool_task(args: tuple[int, int, Optional[SpanContext]]) -> ChunkResult:
    start, count, ctx = args
    assert _worker_network is not None, "worker pool not initialised"
    return _build_chunk(_worker_network, _worker_theta, start, count, ctx)


def _concat_chunks(parts: List[FlatTrees]) -> FlatTrees:
    members = np.concatenate([p[0] for p in parts])
    parents = np.concatenate([p[1] for p in parts])
    edge_probs = np.concatenate([p[2] for p in parts])
    path_probs = np.concatenate([p[3] for p in parts])
    sizes = np.concatenate([np.diff(p[4]) for p in parts])
    offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    return members, parents, edge_probs, path_probs, offsets


class ParallelMiaBuilder:
    """Builds all ``MIIA(v)`` trees in parallel, bit-identical to serial.

    Mirrors :class:`~repro.ris.parallel.ParallelRRSampler`'s design: a
    deterministic chunk plan, flat-array chunk transfer, lazy pool start,
    and an in-process fallback — engaged when ``n_workers <= 1``, when
    ``force_serial`` is set, when the graph is too small to amortise pool
    dispatch, or when the pool cannot start (restricted environments) —
    that executes the identical chunk plan.

    Parameters
    ----------
    network:
        The network whose arborescences to build.
    theta:
        MIP pruning threshold, as for :class:`~repro.mia.pmia.MiaModel`.
    n_workers:
        Worker-process count.  ``1`` never starts a pool.
    force_serial:
        Execute the chunk plan in-process even when ``n_workers > 1``
        (useful in sandboxes that forbid subprocesses).

    Determinism contract: the flat index is bit-identical across all
    ``n_workers`` values and execution modes — MIIA construction has no
    randomness, and concatenation in plan order restores node order.
    """

    def __init__(
        self,
        network: GeoSocialNetwork,
        theta: float = 0.05,
        n_workers: int = 1,
        force_serial: bool = False,
    ):
        if n_workers < 1:
            raise GraphError(f"n_workers must be at least 1, got {n_workers}")
        if not 0.0 < theta <= 1.0:
            raise GraphError(f"theta must be in (0, 1], got {theta}")
        self.network = network
        self.theta = float(theta)
        self.n_workers = int(n_workers)
        self.force_serial = bool(force_serial)
        self._pool = None
        self._pool_broken = False

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def build_flat(self) -> FlatTrees:
        """All ``n`` arborescences as one :data:`FlatTrees` CSR block."""
        n = self.network.n
        if n == 0:
            empty_i = np.empty(0, dtype=np.int64)
            empty_f = np.empty(0, dtype=float)
            return (
                empty_i,
                empty_i.copy(),
                empty_f,
                empty_f.copy(),
                np.zeros(1, dtype=np.int64),
            )
        plan = self._chunk_plan(n)
        tracer = get_tracer()
        with tracer.span(
            "mia.build_trees",
            {"n": n, "n_chunks": len(plan), "n_workers": self.n_workers,
             "theta": self.theta},
        ) as span:
            ctx = span_context(span)
            tasks = [(start, count, ctx) for start, count in plan]
            parts, chunk_spans = self._run_tasks(tasks, n)
            tracer.adopt(chunk_spans)
        return _concat_chunks(parts)

    def build_model(self) -> MiaModel:
        """A :class:`MiaModel` assembled from the (possibly pooled) build."""
        return MiaModel.from_flat_trees(
            self.network, self.theta, self.build_flat()
        )

    def _chunk_plan(self, n: int) -> List[Tuple[int, int]]:
        """Contiguous ``(start, count)`` root ranges covering ``[0, n)``."""
        n_chunks = max(1, min(n, self.n_workers * _CHUNKS_PER_WORKER))
        base, extra = divmod(n, n_chunks)
        plan: List[Tuple[int, int]] = []
        start = 0
        for i in range(n_chunks):
            count = base + (1 if i < extra else 0)
            plan.append((start, count))
            start += count
        return plan

    def _run_tasks(
        self, tasks: List[Tuple[int, int, Optional[SpanContext]]], n: int
    ) -> Tuple[List[FlatTrees], List[Optional[Dict[str, Any]]]]:
        if n >= _MIN_PARALLEL_NODES:
            pool = self._ensure_pool()
            if pool is not None:
                try:
                    # imap keeps plan order (node order) while letting the
                    # heartbeat tick as chunk results are collected.
                    hb = Heartbeat("mia.trees", total=n, unit="trees")
                    results: List[ChunkResult] = []
                    for task, chunk in zip(
                        tasks, pool.imap(_pool_task, tasks)
                    ):
                        results.append(chunk)
                        hb.advance(task[1])
                    hb.finish()
                    return (
                        [r[0] for r in results],
                        [r[1] for r in results],
                    )
                except Exception:
                    # A dead/poisoned pool (e.g. a worker was killed) must
                    # not lose the build: mark it broken and replay the
                    # identical chunk plan in-process.
                    self._teardown_pool(broken=True)
        hb = Heartbeat("mia.trees", total=n, unit="trees")
        parts: List[FlatTrees] = []
        spans: List[Optional[Dict[str, Any]]] = []
        for start, count, ctx in tasks:
            block, span = _build_chunk(
                self.network, self.theta, start, count, ctx
            )
            parts.append(block)
            spans.append(span)
            hb.advance(count)
        hb.finish()
        return parts, spans

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def _ensure_pool(self):
        if self.force_serial or self.n_workers <= 1 or self._pool_broken:
            return None
        if self._pool is None:
            try:
                methods = multiprocessing.get_all_start_methods()
                # fork shares the network copy-on-write; elsewhere the
                # initializer ships it once per worker.
                ctx = multiprocessing.get_context(
                    "fork" if "fork" in methods else None
                )
                self._pool = ctx.Pool(
                    self.n_workers,
                    initializer=_init_worker,
                    initargs=(self.network, self.theta),
                )
            except (OSError, ValueError, RuntimeError, PermissionError):
                self._pool_broken = True
                return None
        return self._pool

    def close(self) -> None:
        """Release the worker pool (restarted lazily if building resumes)."""
        self._teardown_pool(broken=False)

    def _teardown_pool(self, broken: bool) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.terminate()
                pool.join()
            except Exception:
                pass
        if broken:
            self._pool_broken = True

    @property
    def pool_active(self) -> bool:
        """Whether a worker pool is currently running."""
        return self._pool is not None

    def __enter__(self) -> "ParallelMiaBuilder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self._teardown_pool(broken=False)
        except Exception:
            pass
