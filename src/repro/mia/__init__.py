"""Maximum Influence Arborescence (MIA) substrate.

The MIA model (Chen, Wang & Wang, KDD'10; paper Section 2.2.1) approximates
influence as travelling only along each pair's *maximum influence path*
(MIP) — the path of largest probability — and prunes MIPs whose probability
falls below a threshold ``theta``.

* :mod:`repro.mia.paths` — MIP computation (Dijkstra on ``-log p``);
* :mod:`repro.mia.arborescence` — the ``MIIA(v)`` / ``MIOA(v)`` trees;
* :mod:`repro.mia.influence` — activation probabilities on a tree (Eq. 5)
  and the linear (alpha) coefficients for incremental marginal gains;
* :mod:`repro.mia.pmia` — the PMIA-DA baseline: greedy seed selection over
  pre-built arborescences with distance-aware node weights;
* :mod:`repro.mia.parallel` — worker-pool ``MIIA`` construction with a
  deterministic chunk plan (bit-identical to the serial build).
"""

from repro.mia.arborescence import Arborescence, build_miia, build_mioa
from repro.mia.influence import activation_probabilities, linear_coefficients
from repro.mia.parallel import ParallelMiaBuilder
from repro.mia.paths import max_influence_paths_from, max_influence_paths_to
from repro.mia.pmia import FlatTrees, MiaModel, PmiaDa

__all__ = [
    "Arborescence",
    "FlatTrees",
    "MiaModel",
    "ParallelMiaBuilder",
    "PmiaDa",
    "activation_probabilities",
    "build_miia",
    "build_mioa",
    "linear_coefficients",
    "max_influence_paths_from",
    "max_influence_paths_to",
]
