"""Maximum influence path (MIP) computation.

``MIP(u, v)`` is the path from ``u`` to ``v`` maximising the product of edge
probabilities (Eq. 4).  Maximising a product of values in (0, 1] is a
shortest-path problem on edge lengths ``-log Pr``; we run Dijkstra and stop
expanding once path probability drops below the pruning threshold ``theta``
(paths with ``Pr(MIP) < theta`` are "insignificant" and treated as
non-existent, per Section 2.2.1).

Ties between equal-probability paths are broken deterministically by
preferring lower node ids, so MIP subpath consistency holds (needed for the
``u in MIIA(v)  <=>  v in MIOA(u)`` equivalence the algorithms rely on).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.network.graph import GeoSocialNetwork

#: Result type: node -> (path probability, predecessor toward the source).
PathMap = Dict[int, Tuple[float, int]]


def _dijkstra(
    n: int,
    offsets: np.ndarray,
    adjacency: np.ndarray,
    probs: np.ndarray,
    source: int,
    theta: float,
) -> PathMap:
    """Max-product Dijkstra from ``source`` over the given CSR arrays.

    Returns ``{node: (prob, hop)}`` where ``hop`` is the neighbour through
    which the optimal path reaches ``node`` (i.e. the previous node on the
    path in traversal direction); the source maps to ``(1.0, -1)``.
    """
    if not 0 <= source < n:
        raise GraphError(f"source {source} out of range [0, {n})")
    if not 0.0 < theta <= 1.0:
        raise GraphError(f"theta must be in (0, 1], got {theta}")

    best: PathMap = {}
    # Heap entries: (-log prob, tie-break node id, node, hop)
    heap: list[tuple[float, int, int, int]] = [(0.0, source, source, -1)]
    log_theta = -math.log(theta)
    while heap:
        dist, _, node, hop = heapq.heappop(heap)
        if node in best:
            continue
        best[node] = (math.exp(-dist), hop)
        lo, hi = offsets[node], offsets[node + 1]
        for j in range(lo, hi):
            nxt = int(adjacency[j])
            p = float(probs[j])
            if p <= 0.0 or nxt in best:
                continue
            ndist = dist - math.log(p)
            if ndist > log_theta + 1e-12:
                continue
            heapq.heappush(heap, (ndist, nxt, nxt, node))
    return best


def max_influence_paths_from(
    network: GeoSocialNetwork, u: int, theta: float
) -> PathMap:
    """All MIPs *out of* ``u`` with probability >= theta.

    Returns ``{v: (Pr(MIP(u, v)), predecessor of v on the path)}``.
    The node set is exactly ``MIOA(u)``.
    """
    return _dijkstra(
        network.n, network.out_offsets, network.out_targets, network.out_probs,
        u, theta,
    )


def max_influence_paths_to(
    network: GeoSocialNetwork, v: int, theta: float
) -> PathMap:
    """All MIPs *into* ``v`` with probability >= theta.

    Returns ``{u: (Pr(MIP(u, v)), successor of u on the path toward v)}``.
    The node set is exactly ``MIIA(v)``.
    """
    return _dijkstra(
        network.n, network.in_offsets, network.in_sources, network.in_probs,
        v, theta,
    )


def mip_probability(
    network: GeoSocialNetwork, u: int, v: int, theta: float
) -> float:
    """``Pr(MIP(u, v))``, or 0.0 when it falls below ``theta``.

    Convenience accessor (runs a full Dijkstra; batch callers should use
    :func:`max_influence_paths_from` directly).
    """
    paths = max_influence_paths_from(network, u, theta)
    entry = paths.get(int(v))
    return entry[0] if entry is not None else 0.0
