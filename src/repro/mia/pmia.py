"""The MIA influence model and the PMIA-DA baseline.

:class:`MiaModel` holds the static, query-independent structures — one
``MIIA(v)`` per node plus a flat membership index — built offline exactly as
the paper prescribes for PMIA ("we pre-compute the MIIA(v) and MIOA(v)
offline for each node, because there may be many queries raised").

:class:`MiaGreedyState` is the per-query mutable state implementing Chen et
al.'s incremental greedy: marginal gains for *all* candidates are maintained
under seed insertions via the linear (alpha) coefficients.  PMIA-DA runs it
to completion for every query; MIA-DA (in :mod:`repro.core.mia_da`) drives
the same state lazily through its pruning rules.

The distance-aware part is a per-query node-weight vector ``w``: the
marginal gain of ``u`` is ``sum_v alpha(v, u) * (1 - ap_v(u)) * w[v]``
(Section 3.1, Eq. 8 applied to marginals).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError, QueryError
from repro.mia.arborescence import Arborescence, build_miia
from repro.mia.influence import activation_probabilities, linear_coefficients
from repro.network.graph import GeoSocialNetwork

#: Flat CSR layout of all arborescences, in root order: ``(members,
#: parents, edge_probs, path_probs, offsets)`` where tree ``v``'s arrays
#: live at ``[offsets[v]:offsets[v+1]]`` and ``parents`` holds *local*
#: indices within each tree (-1 at the root).  This is the transfer format
#: of :class:`~repro.mia.parallel.ParallelMiaBuilder` and the on-disk
#: format of :func:`~repro.core.persistence.save_mia_index`.
FlatTrees = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]


class MiaModel:
    """Pre-built MIA structures for a network at a given ``theta``.

    Parameters
    ----------
    network:
        The geo-social network.
    theta:
        MIP pruning threshold (paper default 0.05): pairs whose best path
        has probability below ``theta`` do not influence each other.
    trees:
        Pre-built ``MIIA(v)`` arborescences, one per node in node order.
        ``None`` (the default) builds them serially here; a parallel build
        passes the trees it assembled from worker chunks.
    """

    def __init__(
        self,
        network: GeoSocialNetwork,
        theta: float = 0.05,
        trees: List[Arborescence] | None = None,
    ):
        if not 0.0 < theta <= 1.0:
            raise GraphError(f"theta must be in (0, 1], got {theta}")
        self.network = network
        self.theta = float(theta)
        if trees is None:
            trees = [build_miia(network, v, theta) for v in range(network.n)]
        elif len(trees) != network.n or any(
            t.root != v for v, t in enumerate(trees)
        ):
            raise GraphError(
                "trees must hold exactly one MIIA per node, in node order"
            )
        self.trees: List[Arborescence] = trees
        # Flat membership index: entry j says node flat_member[j] belongs to
        # MIIA(flat_root[j]) with path probability flat_prob[j].  Grouped by
        # member via a CSR-like offsets array for fast "which roots does u
        # reach" lookups.
        members: list[int] = []
        roots: list[int] = []
        prob: list[float] = []
        for tree in self.trees:
            members.extend(int(g) for g in tree.nodes)
            roots.extend([tree.root] * len(tree))
            prob.extend(float(p) for p in tree.path_prob)
        member_arr = np.asarray(members, dtype=np.int64)
        root_arr = np.asarray(roots, dtype=np.int64)
        prob_arr = np.asarray(prob, dtype=float)
        order = np.argsort(member_arr, kind="stable")
        self._flat_member = member_arr[order]
        self._flat_root = root_arr[order]
        self._flat_prob = prob_arr[order]
        self._member_offsets = np.zeros(network.n + 1, dtype=np.int64)
        np.add.at(self._member_offsets, self._flat_member + 1, 1)
        np.cumsum(self._member_offsets, out=self._member_offsets)

    @classmethod
    def from_flat_trees(
        cls,
        network: GeoSocialNetwork,
        theta: float,
        flat: FlatTrees,
    ) -> "MiaModel":
        """Rebuild a model from the :data:`FlatTrees` CSR layout.

        The inverse of :meth:`flat_trees`; used by the parallel builder and
        the persistence layer.  Rebuilding is exact: the arborescences come
        back with identical arrays, so the resulting model is
        indistinguishable from a serial in-process build.
        """
        members, parents, edge_probs, path_probs, offsets = flat
        if len(offsets) != network.n + 1:
            raise GraphError(
                f"flat trees describe {len(offsets) - 1} roots for a "
                f"{network.n}-node network"
            )
        trees: List[Arborescence] = []
        for v in range(network.n):
            lo, hi = int(offsets[v]), int(offsets[v + 1])
            trees.append(
                Arborescence(
                    root=v,
                    nodes=members[lo:hi],
                    parent=parents[lo:hi],
                    edge_prob=edge_probs[lo:hi],
                    path_prob=path_probs[lo:hi],
                    kind="miia",
                )
            )
        return cls(network, theta, trees=trees)

    def flat_trees(self) -> FlatTrees:
        """All arborescences as one :data:`FlatTrees` CSR block.

        Tree ``v`` occupies ``[offsets[v]:offsets[v+1]]`` of each array;
        concatenation order is node order, so two models over the same
        network agree byte-for-byte iff their trees do.
        """
        sizes = np.asarray([len(t) for t in self.trees], dtype=np.int64)
        offsets = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        return (
            np.concatenate([t.nodes for t in self.trees]),
            np.concatenate([t.parent for t in self.trees]),
            np.concatenate([t.edge_prob for t in self.trees]),
            np.concatenate([t.path_prob for t in self.trees]),
            offsets,
        )

    @property
    def n(self) -> int:
        return self.network.n

    def reach_of(self, u: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(roots, path_probs)`` — nodes ``u`` influences under MIA.

        Equivalent to iterating ``MIOA(u)`` (membership symmetry of MIPs).
        """
        lo, hi = self._member_offsets[u], self._member_offsets[u + 1]
        return self._flat_root[lo:hi], self._flat_prob[lo:hi]

    def singleton_influences(self, weights: np.ndarray) -> np.ndarray:
        """``I_q^m({u})`` for every node at once (vectorized).

        For a singleton seed the MIA activation probability equals the MIP
        path probability, so the influence is a weighted segment sum over
        the flat membership index.
        """
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.n,):
            raise QueryError(
                f"weights must have shape ({self.n},), got {weights.shape}"
            )
        out = np.zeros(self.n, dtype=float)
        np.add.at(out, self._flat_member, self._flat_prob * weights[self._flat_root])
        return out

    def unweighted_singleton_mass(self) -> np.ndarray:
        """``sum_v Pr(MIP(u, v))`` per node — the weight-free influence mass.

        MIA-DA uses this to cap upper bounds (no node's weight exceeds c).
        """
        out = np.zeros(self.n, dtype=float)
        np.add.at(out, self._flat_member, self._flat_prob)
        return out

    def tree_sizes(self) -> np.ndarray:
        return np.asarray([len(t) for t in self.trees], dtype=np.int64)


class MiaGreedyState:
    """Per-query incremental greedy state over a :class:`MiaModel`.

    Maintains, for the current seed set ``S``:

    * ``ap_v`` and ``alpha_v`` per arborescence (lazily refreshed);
    * the exact marginal gain ``gain[u] = I_q^m(u | S)`` for every node;
    * the current objective ``I_q^m(S)``.
    """

    def __init__(self, model: MiaModel, weights: np.ndarray):
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (model.n,):
            raise QueryError(
                f"weights must have shape ({model.n},), got {weights.shape}"
            )
        self.model = model
        self.weights = weights
        self.seeds: list[int] = []
        self._seed_set: set[int] = set()
        # With S empty: ap == 0 everywhere, alpha == path_prob, so the
        # initial gains are the singleton influences.
        self.gain = model.singleton_influences(weights)
        self._root_ap = np.zeros(model.n, dtype=float)  # ap_v(root) per v
        self._ap: Dict[int, np.ndarray] = {}
        self._alpha: Dict[int, np.ndarray] = {}

    @property
    def spread(self) -> float:
        """Current MIA objective ``I_q^m(S) = sum_v ap_v(root) * w[v]``."""
        return float(np.dot(self._root_ap, self.weights))

    def marginal(self, u: int) -> float:
        """Exact marginal gain of adding ``u`` to the current seeds."""
        return float(self.gain[u])

    def best_candidate(self) -> int:
        """The node with the largest exact marginal gain."""
        return int(np.argmax(self.gain))

    def _tree_state(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """Cached (ap, alpha) for MIIA(v) under the current seed set."""
        if v not in self._ap:
            tree = self.model.trees[v]
            # Fresh state for the empty-seed baseline of this tree.
            ap = np.zeros(len(tree), dtype=float)
            alpha = tree.path_prob.copy()
            self._ap[v] = ap
            self._alpha[v] = alpha
        return self._ap[v], self._alpha[v]

    def add_seed(self, u: int) -> float:
        """Add ``u`` to the seed set; returns its (pre-add) marginal gain.

        Updates the marginal gains of every node sharing an arborescence
        with ``u`` via subtract-old / recompute / add-new passes.
        """
        u = int(u)
        if u in self._seed_set:
            raise QueryError(f"node {u} is already a seed")
        gained = float(self.gain[u])
        self._seed_set.add(u)
        self.seeds.append(u)

        roots, _ = self.model.reach_of(u)
        w = self.weights
        for v in roots:
            v = int(v)
            tree = self.model.trees[v]
            ap_old, alpha_old = self._tree_state(v)
            nodes = tree.nodes
            wv = float(w[v])
            if wv != 0.0:
                # Subtract this tree's old contribution from every member.
                self.gain[nodes] -= alpha_old * (1.0 - ap_old) * wv
            ap_new = activation_probabilities(tree, self._seed_set)
            alpha_new = linear_coefficients(tree, self._seed_set, ap_new)
            self._ap[v] = ap_new
            self._alpha[v] = alpha_new
            self._root_ap[v] = ap_new[0]
            if wv != 0.0:
                self.gain[nodes] += alpha_new * (1.0 - ap_new) * wv
        # Seeds never get re-selected.
        self.gain[u] = -np.inf
        for s in self.seeds:
            self.gain[s] = -np.inf
        return gained


class PmiaDa:
    """The PMIA baseline extended to DAIM (paper Section 5.1).

    Offline, all arborescences are pre-computed (the :class:`MiaModel`).
    Online, a query supplies node weights; the greedy runs with *full*
    marginal-gain maintenance — no pruning, no anchor index — which is
    exactly what MIA-DA's pruning is benchmarked against.
    """

    def __init__(self, network: GeoSocialNetwork, theta: float = 0.05,
                 model: MiaModel | None = None):
        self.network = network
        self.model = model if model is not None else MiaModel(network, theta)

    def select(self, weights: Sequence[float] | np.ndarray, k: int
               ) -> Tuple[list[int], float]:
        """Greedy seed selection; returns ``(seeds, I_q^m(S))``.

        ``weights`` is the per-node weight vector ``w(v, q)`` for the query.
        """
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        if k > self.network.n:
            raise QueryError(f"k={k} exceeds node count {self.network.n}")
        state = MiaGreedyState(self.model, np.asarray(weights, dtype=float))
        for _ in range(k):
            state.add_seed(state.best_candidate())
        return list(state.seeds), state.spread
