"""Influence computation on arborescences.

Two primitives drive every MIA-based algorithm:

* :func:`activation_probabilities` — Eq. 5 of the paper: the probability
  ``ap(u)`` that the seed set ``S`` activates each node of ``MIIA(v)``
  through the tree, computed bottom-up (leaves to root).  ``ap(root)`` is
  the MIA approximation ``I^m(S, v)``.

* :func:`linear_coefficients` — Chen et al.'s ``alpha(v, u)``: because the
  tree makes subtree contributions independent, ``ap(root)`` is *linear* in
  each ``ap(u)`` individually, and ``alpha(v, u) = d ap(root) / d ap(u)``.
  Adding ``u`` to the seed set raises ``ap(u)`` to 1, so the exact marginal
  contribution of ``u`` to root ``v`` is ``alpha(v, u) * (1 - ap(u))``.
  This turns greedy marginal-gain updates into one bottom-up plus one
  top-down pass per affected tree.
"""

from __future__ import annotations

from typing import AbstractSet

import numpy as np

from repro.mia.arborescence import Arborescence


def activation_probabilities(
    tree: Arborescence, seeds: AbstractSet[int]
) -> np.ndarray:
    """Per-node activation probabilities on an MIIA tree (Eq. 5).

    ``seeds`` holds *global* node ids.  Returns ``ap`` indexed by local
    position; ``ap[0]`` is ``I^m(S, root)``.

    Recursion (bottom-up)::

        ap(u) = 1                                          if u in S
        ap(u) = 1 - prod_{c in children(u)} (1 - ap(c) * Pr(c, u))   otherwise

    Leaves that are not seeds get ap 0 (empty product keeps them at
    ``1 - 1 = 0``).
    """
    n = len(tree)
    ap = np.zeros(n, dtype=float)
    nodes = tree.nodes
    children = tree.children
    edge_prob = tree.edge_prob
    for i in range(n - 1, -1, -1):
        if int(nodes[i]) in seeds:
            ap[i] = 1.0
            continue
        kids = children[i]
        if len(kids) == 0:
            ap[i] = 0.0
            continue
        survive = 1.0 - ap[kids] * edge_prob[kids]
        ap[i] = 1.0 - float(np.prod(survive))
    return ap


def linear_coefficients(
    tree: Arborescence, seeds: AbstractSet[int], ap: np.ndarray
) -> np.ndarray:
    """The linear coefficients ``alpha(root, u)`` for every tree node.

    Top-down recursion (Chen et al., KDD'10, Algorithm 3)::

        alpha(root) = 1
        alpha(u)    = 0                                    if parent(u) in S
        alpha(u)    = alpha(p) * Pr(u, p) *
                      prod_{siblings s of u} (1 - ap(s) * Pr(s, p))

    where ``p = parent(u)``.  A seed parent blocks its children because its
    activation probability is pinned at 1 regardless of the subtree.
    """
    n = len(tree)
    alpha = np.zeros(n, dtype=float)
    alpha[0] = 1.0
    nodes = tree.nodes
    children = tree.children
    edge_prob = tree.edge_prob
    for p in range(n):
        kids = children[p]
        if len(kids) == 0:
            continue
        if int(nodes[p]) in seeds or alpha[p] == 0.0:
            # Children of a seed (or of an irrelevant branch) contribute 0.
            continue
        survive = 1.0 - ap[kids] * edge_prob[kids]
        prod_all = float(np.prod(survive))
        for j, c in enumerate(kids):
            s = float(survive[j])
            # Product over siblings: divide out c's own factor, guarding 0.
            if s > 1e-300:
                sibling_prod = prod_all / s
            else:
                mask = np.ones(len(kids), dtype=bool)
                mask[j] = False
                sibling_prod = float(np.prod(survive[mask]))
            alpha[c] = alpha[p] * float(edge_prob[c]) * sibling_prod
    return alpha


def tree_influence(
    tree: Arborescence, seeds: AbstractSet[int]
) -> float:
    """``I^m(S, root)`` — the MIA activation probability of the root."""
    return float(activation_probabilities(tree, seeds)[0])


def singleton_weighted_influence(
    mioa: Arborescence, node_weights: np.ndarray
) -> float:
    """``I_q^m({u})`` from ``MIOA(u)``: sum of path probabilities x weights.

    For a singleton seed the MIA activation probability of each reachable
    node is exactly the MIP path probability, so the weighted influence is
    a dot product over the out-tree.
    """
    return float(np.dot(mioa.path_prob, node_weights[mioa.nodes]))
