"""Shared measurement loop for the figure reproductions.

Every figure compares methods on two axes:

* **effectiveness** — the Monte-Carlo distance-aware spread of the
  returned seed set (method-independent evaluation, paper Section 5.1:
  "we run 10000 round random simulations for each returned seed set");
* **efficiency** — the online response time, averaged over the workload.

:func:`evaluate_methods` runs a set of named query functions over a shared
workload and returns both numbers per method.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.core.query import SeedResult
from repro.diffusion.spread import monte_carlo_weighted_spread
from repro.geo.point import Point
from repro.geo.weights import DistanceDecay
from repro.network.graph import GeoSocialNetwork
from repro.rng import RandomLike, as_generator

#: A method under test: maps (query location, k) to a SeedResult.
QueryFn = Callable[[Point, int], SeedResult]


@dataclass(frozen=True)
class MethodResult:
    """Aggregated workload measurements for one method."""

    method: str
    avg_spread: float
    avg_time_ms: float
    per_query_spread: List[float]
    per_query_time_ms: List[float]

    def as_row(self) -> dict[str, object]:
        return {
            "method": self.method,
            "influence": round(self.avg_spread, 2),
            "time_ms": round(self.avg_time_ms, 2),
        }


def evaluate_spread(
    network: GeoSocialNetwork,
    seeds: Sequence[int],
    decay: DistanceDecay,
    query: Point,
    rounds: int = 300,
    seed: RandomLike = 0,
) -> float:
    """Monte-Carlo ``I_q(S)`` of a returned seed set (shared evaluator)."""
    weights = decay.weights(network.coords, query)
    est = monte_carlo_weighted_spread(
        network, seeds, node_weights=weights, rounds=rounds, seed=seed
    )
    return est.value


def evaluate_methods(
    network: GeoSocialNetwork,
    methods: Dict[str, QueryFn],
    queries: Sequence[Point],
    k: int,
    decay: DistanceDecay,
    mc_rounds: int = 300,
    seed: RandomLike = 0,
) -> List[MethodResult]:
    """Run every method over the workload; returns one row per method.

    Timing covers only the method call (online phase); spread evaluation
    is done separately with a shared Monte-Carlo evaluator so that all
    methods are scored identically.
    """
    rng = as_generator(seed)
    results: List[MethodResult] = []
    for name, fn in methods.items():
        spreads: List[float] = []
        times: List[float] = []
        for q in queries:
            start = time.perf_counter()
            res = fn(q, k)
            elapsed = time.perf_counter() - start
            times.append(elapsed * 1000.0)
            spreads.append(
                evaluate_spread(network, res.seeds, decay, q, mc_rounds, rng)
            )
        results.append(
            MethodResult(
                method=name,
                avg_spread=float(np.mean(spreads)),
                avg_time_ms=float(np.mean(times)),
                per_query_spread=spreads,
                per_query_time_ms=times,
            )
        )
    return results
