"""Plain-text tables and series for benchmark output.

The harness prints the same rows/series the paper plots, e.g.::

    Figure 3 (Brightkite): influence spread vs k
    k      PMIA   MIA-DA   RIS-DA
    10    62.11    61.90    66.02
    ...
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_name: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
) -> str:
    """One row per x value, one column per named series (figure layout)."""
    headers = [x_name] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)


#: Eight block characters from low to high for terminal sparklines.
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A unicode mini-chart of a numeric series, e.g. ``▁▂▄▆█``.

    Handy for eyeballing figure trends inside benchmark logs without a
    plotting stack.  Constant series render as a flat mid-level line.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi - lo < 1e-12:
        return _SPARK_BLOCKS[3] * len(vals)
    span = hi - lo
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_SPARK_BLOCKS) - 1))
        out.append(_SPARK_BLOCKS[idx])
    return "".join(out)


def format_series_with_sparklines(
    x_name: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
) -> str:
    """:func:`format_series` plus one trend sparkline per series."""
    table = format_series(x_name, x_values, series, title=title)
    trend_lines = [
        f"  {name}: {sparkline(vals)}" for name, vals in series.items()
    ]
    return table + "\ntrends:\n" + "\n".join(trend_lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0 or 0.01 <= abs(value) < 1e6:
            return f"{value:.2f}"
        return f"{value:.3g}"
    return str(value)
