"""Query and sampling workload generators for the evaluation.

The paper's query workload: "query locations are randomly selected from
the entire space" (Section 5.1), plus Figure 7's partitioning of queries
into quintiles by the average user-to-query distance.  In addition,
:func:`sampling_throughput` and :func:`mia_build_throughput` measure the
offline side — serial vs parallel RR-set generation and MIIA
construction — and :func:`serve_throughput` measures the online side:
cold-cache vs warm-cache queries/sec through the serving engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.exceptions import QueryError
from repro.geo.point import Point
from repro.geo.sampling import sample_uniform_points
from repro.mia.parallel import ParallelMiaBuilder
from repro.network.graph import GeoSocialNetwork
from repro.ris.parallel import ParallelRRSampler
from repro.rng import RandomLike, as_generator


def random_queries(
    network: GeoSocialNetwork, count: int, seed: RandomLike = None
) -> List[Point]:
    """``count`` query locations uniform over the network's bounding box."""
    pts = sample_uniform_points(network.bounding_box(), count, seed)
    return [(float(x), float(y)) for x, y in pts]


def average_user_distance(network: GeoSocialNetwork, q: Point) -> float:
    """Mean Euclidean distance from all users to ``q`` (Figure 7's axis)."""
    d = np.hypot(network.coords[:, 0] - q[0], network.coords[:, 1] - q[1])
    return float(d.mean())


def distance_partitioned_queries(
    network: GeoSocialNetwork,
    per_bucket: int,
    n_buckets: int = 5,
    candidates: int = 500,
    seed: RandomLike = None,
) -> List[List[Point]]:
    """Queries grouped into ``n_buckets`` quantiles of average user distance.

    Reproduces Figure 7's workload: bucket 0 holds the queries closest to
    the user mass ("0-20"), the last bucket the farthest ("80-100").
    """
    if per_bucket <= 0 or n_buckets <= 0:
        raise QueryError("per_bucket and n_buckets must be positive")
    rng = as_generator(seed)
    pool = random_queries(network, max(candidates, per_bucket * n_buckets), rng)
    scored = sorted(pool, key=lambda q: average_user_distance(network, q))
    chunk = len(scored) // n_buckets
    buckets: List[List[Point]] = []
    for b in range(n_buckets):
        segment = scored[b * chunk : (b + 1) * chunk]
        if len(segment) < per_bucket:
            raise QueryError(
                f"bucket {b} has only {len(segment)} candidates; "
                f"raise the candidate pool"
            )
        idx = rng.choice(len(segment), size=per_bucket, replace=False)
        buckets.append([segment[int(i)] for i in idx])
    return buckets


@dataclass(frozen=True)
class SamplingThroughput:
    """One row of the RR-set sampling-throughput workload."""

    workers: int
    samples: int
    entries: int
    seconds: float
    samples_per_second: float
    speedup: float

    def as_row(self) -> dict[str, object]:
        return {
            "workers": self.workers,
            "samples": self.samples,
            "sec": round(self.seconds, 3),
            "samples/s": int(self.samples_per_second),
            "speedup": round(self.speedup, 2),
        }


def sampling_throughput(
    network: GeoSocialNetwork,
    n_samples: int,
    workers: Sequence[int] = (1, 2, 4),
    diffusion: str = "ic",
    seed: int = 0,
) -> List[SamplingThroughput]:
    """Serial-vs-parallel RR-set generation throughput.

    Draws ``n_samples`` RR sets once per worker count in ``workers`` and
    reports wall-clock, throughput, and the speedup over the first entry
    (conventionally ``workers[0] == 1``, the serial baseline).  Each run
    uses the same ``seed``, so runs differ only in chunk-plan layout, not
    in sampling distribution.
    """
    if n_samples <= 0:
        raise QueryError(f"n_samples must be positive, got {n_samples}")
    if not workers:
        raise QueryError("workers must name at least one worker count")
    rows: List[SamplingThroughput] = []
    baseline: float | None = None
    for w in workers:
        sampler = ParallelRRSampler(
            network, seed=seed, diffusion=diffusion, n_workers=w
        )
        try:
            start = time.perf_counter()
            _, flat, _ = sampler.sample_many_flat(n_samples)
            elapsed = time.perf_counter() - start
        finally:
            sampler.close()
        if baseline is None:
            baseline = elapsed
        rows.append(
            SamplingThroughput(
                workers=int(w),
                samples=int(n_samples),
                entries=int(len(flat)),
                seconds=elapsed,
                samples_per_second=n_samples / elapsed if elapsed > 0 else 0.0,
                speedup=baseline / elapsed if elapsed > 0 else 0.0,
            )
        )
    return rows


@dataclass(frozen=True)
class MiaBuildThroughput:
    """One row of the MIIA construction-throughput workload."""

    workers: int
    trees: int
    entries: int
    seconds: float
    trees_per_second: float
    speedup: float

    def as_row(self) -> dict[str, object]:
        return {
            "workers": self.workers,
            "trees": self.trees,
            "entries": self.entries,
            "sec": round(self.seconds, 3),
            "trees/s": int(self.trees_per_second),
            "speedup": round(self.speedup, 2),
        }


@dataclass(frozen=True)
class ServeThroughput:
    """One phase (cold or warm) of the query-serving workload."""

    phase: str
    queries: int
    seconds: float
    queries_per_second: float
    cache_hits: int
    cache_misses: int
    fallbacks: int
    speedup: float

    def as_row(self) -> dict[str, object]:
        return {
            "phase": self.phase,
            "queries": self.queries,
            "sec": round(self.seconds, 4),
            "q/s": int(self.queries_per_second),
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "fallbacks": self.fallbacks,
            "speedup": round(self.speedup, 2),
        }


def serve_throughput(engine, queries, k: int, rounds: int = 2):
    """Cold-cache vs warm-cache serving throughput.

    Serves the same batch ``rounds`` times through ``engine`` (a
    :class:`repro.serve.QueryEngine`).  Round 0 runs against an empty
    result cache ("cold"); later rounds replay the identical workload
    and should be answered mostly from the cache ("warm").  Each row
    reports the per-round hit/miss deltas and the speedup over the cold
    round.
    """
    if rounds < 2:
        raise QueryError(f"need at least 2 rounds (cold + warm), got {rounds}")
    if not queries:
        raise QueryError("queries must not be empty")
    rows: List[ServeThroughput] = []
    hits = engine.metrics.counter("result_cache.hits")
    misses = engine.metrics.counter("result_cache.misses")
    fallbacks = engine.metrics.counter("fallbacks")
    cold_seconds: float | None = None
    for r in range(rounds):
        h0, m0, f0 = hits.value, misses.value, fallbacks.value
        start = time.perf_counter()
        engine.serve_batch(queries, k=k)
        elapsed = time.perf_counter() - start
        if cold_seconds is None:
            cold_seconds = elapsed
        rows.append(
            ServeThroughput(
                phase="cold" if r == 0 else f"warm{r}",
                queries=len(queries),
                seconds=elapsed,
                queries_per_second=len(queries) / elapsed if elapsed > 0 else 0.0,
                cache_hits=hits.value - h0,
                cache_misses=misses.value - m0,
                fallbacks=fallbacks.value - f0,
                speedup=cold_seconds / elapsed if elapsed > 0 else 0.0,
            )
        )
    return rows


def mia_build_throughput(
    network: GeoSocialNetwork,
    workers: Sequence[int] = (1, 2, 4),
    theta: float = 0.05,
) -> List[MiaBuildThroughput]:
    """Serial-vs-parallel MIIA construction throughput.

    Builds all ``n`` arborescences once per worker count in ``workers``
    and reports wall-clock, throughput, and the speedup over the first
    entry (conventionally ``workers[0] == 1``, the serial baseline).
    Unlike RR sampling, the output is bit-identical across worker counts,
    so rows differ only in wall-clock.
    """
    if not workers:
        raise QueryError("workers must name at least one worker count")
    rows: List[MiaBuildThroughput] = []
    baseline: float | None = None
    for w in workers:
        builder = ParallelMiaBuilder(network, theta, n_workers=w)
        try:
            start = time.perf_counter()
            members, _, _, _, _ = builder.build_flat()
            elapsed = time.perf_counter() - start
        finally:
            builder.close()
        if baseline is None:
            baseline = elapsed
        rows.append(
            MiaBuildThroughput(
                workers=int(w),
                trees=int(network.n),
                entries=int(len(members)),
                seconds=elapsed,
                trees_per_second=network.n / elapsed if elapsed > 0 else 0.0,
                speedup=baseline / elapsed if elapsed > 0 else 0.0,
            )
        )
    return rows
