"""Query workload generators for the evaluation.

The paper's workload: "query locations are randomly selected from the
entire space" (Section 5.1), plus Figure 7's partitioning of queries into
quintiles by the average user-to-query distance.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import QueryError
from repro.geo.point import Point
from repro.geo.sampling import sample_uniform_points
from repro.network.graph import GeoSocialNetwork
from repro.rng import RandomLike, as_generator


def random_queries(
    network: GeoSocialNetwork, count: int, seed: RandomLike = None
) -> List[Point]:
    """``count`` query locations uniform over the network's bounding box."""
    pts = sample_uniform_points(network.bounding_box(), count, seed)
    return [(float(x), float(y)) for x, y in pts]


def average_user_distance(network: GeoSocialNetwork, q: Point) -> float:
    """Mean Euclidean distance from all users to ``q`` (Figure 7's axis)."""
    d = np.hypot(network.coords[:, 0] - q[0], network.coords[:, 1] - q[1])
    return float(d.mean())


def distance_partitioned_queries(
    network: GeoSocialNetwork,
    per_bucket: int,
    n_buckets: int = 5,
    candidates: int = 500,
    seed: RandomLike = None,
) -> List[List[Point]]:
    """Queries grouped into ``n_buckets`` quantiles of average user distance.

    Reproduces Figure 7's workload: bucket 0 holds the queries closest to
    the user mass ("0-20"), the last bucket the farthest ("80-100").
    """
    if per_bucket <= 0 or n_buckets <= 0:
        raise QueryError("per_bucket and n_buckets must be positive")
    rng = as_generator(seed)
    pool = random_queries(network, max(candidates, per_bucket * n_buckets), rng)
    scored = sorted(pool, key=lambda q: average_user_distance(network, q))
    chunk = len(scored) // n_buckets
    buckets: List[List[Point]] = []
    for b in range(n_buckets):
        segment = scored[b * chunk : (b + 1) * chunk]
        if len(segment) < per_bucket:
            raise QueryError(
                f"bucket {b} has only {len(segment)} candidates; "
                f"raise the candidate pool"
            )
        idx = rng.choice(len(segment), size=per_bucket, replace=False)
        buckets.append([segment[int(i)] for i in idx])
    return buckets
