"""Benchmark harness: workloads, timing, and reporting.

These helpers keep the ``benchmarks/`` scripts short and uniform: every
figure reproduction generates a workload, runs each method through the
same timing loop, evaluates returned seed sets with one shared Monte-Carlo
evaluator, and prints rows in the shape the paper reports.
"""

from repro.bench.reporting import (
    format_series,
    format_series_with_sparklines,
    format_table,
    sparkline,
)
from repro.bench.runner import MethodResult, evaluate_methods, evaluate_spread
from repro.bench.workloads import (
    distance_partitioned_queries,
    random_queries,
)

__all__ = [
    "MethodResult",
    "distance_partitioned_queries",
    "evaluate_methods",
    "evaluate_spread",
    "format_series",
    "format_series_with_sparklines",
    "format_table",
    "random_queries",
    "sparkline",
]
