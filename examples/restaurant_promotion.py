#!/usr/bin/env python
"""The paper's motivating scenario: promoting a new restaurant.

A restaurant ("Sokyo", Example 1 of the paper) opens at a location q and
wants to hand out coupons to k influential users.  This example shows why
*distance-aware* seed selection matters:

1. classical influence maximization (alpha = 0) picks globally influential
   users, many of whom live far away and whose audience will not come;
2. a distance-aware query (alpha > 0) picks users whose influence lands
   near the restaurant;
3. moving the restaurant across town *changes the seed set* — the whole
   reason per-query indexes exist.

Run:  python examples/restaurant_promotion.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DistanceDecay,
    MiaDaConfig,
    MiaDaIndex,
    MiaModel,
    load_dataset,
    monte_carlo_weighted_spread,
)


def describe(network, seeds, q, decay) -> str:
    d = np.hypot(
        network.coords[seeds, 0] - q[0], network.coords[seeds, 1] - q[1]
    )
    w = decay.weights(network.coords, q)
    spread = monte_carlo_weighted_spread(
        network, seeds, node_weights=w, rounds=500, seed=1
    )
    return (
        f"weighted spread {spread.value:7.2f}, "
        f"median seed distance from venue {np.median(d):6.1f}"
    )


def main() -> None:
    network = load_dataset("brightkite")
    model = MiaModel(network, theta=0.05)
    k = 15

    # The restaurant opens in a secondary neighbourhood — away from the
    # dense centre where the globally influential users live.  This is
    # exactly the regime where classical IM misfires (its seeds are
    # influential, but their audience is across town).
    center = (
        float(np.quantile(network.coords[:, 0], 0.15)),
        float(np.quantile(network.coords[:, 1], 0.80)),
    )
    print(f"restaurant opens at ({center[0]:.1f}, {center[1]:.1f})\n")

    # --- 1. Classical IM ignores geography (alpha = 0). ------------------
    flat = DistanceDecay(c=1.0, alpha=0.0)
    flat_index = MiaDaIndex(network, flat, MiaDaConfig(n_anchors=20), model=model)
    classical = flat_index.query(center, k).seeds

    # --- 2. Distance-aware IM (the paper's default alpha). ---------------
    decay = DistanceDecay(c=1.0, alpha=0.01)
    index = MiaDaIndex(network, decay, MiaDaConfig(n_anchors=60), model=model)
    aware = index.query(center, k).seeds

    print("evaluated under the distance-aware objective at the restaurant:")
    print(f"  classical IM seeds:      {describe(network, classical, center, decay)}")
    print(f"  distance-aware seeds:    {describe(network, aware, center, decay)}")

    overlap = len(set(classical) & set(aware))
    print(f"  seed overlap: {overlap}/{k}\n")

    # --- 3. A second branch across town gets different seeds. ------------
    far_corner = (
        float(network.coords[:, 0].max() * 0.9),
        float(network.coords[:, 1].max() * 0.9),
    )
    branch = index.query(far_corner, k).seeds
    print(
        f"second branch at ({far_corner[0]:.1f}, {far_corner[1]:.1f}): "
        f"{len(set(branch) & set(aware))}/{k} seeds shared with the "
        "first location"
    )
    print("  (different promoted locations genuinely need different seeds)")


if __name__ == "__main__":
    main()
