#!/usr/bin/env python
"""Quickstart: answer a distance-aware influence maximization query.

Generates a synthetic geo-social network (a laptop-scale stand-in for the
paper's Gowalla dataset), builds both indexes offline, and answers the
same DAIM query with three methods:

* PMIA        — the baseline: full greedy over pre-built arborescences;
* MIA-DA      — the pruned priority search (fastest);
* RIS-DA      — weighted reverse influence sampling (best spread, with a
                1 - 1/e - eps guarantee).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import (
    DistanceDecay,
    MiaDaConfig,
    MiaDaIndex,
    MiaModel,
    PmiaDa,
    RisDaConfig,
    RisDaIndex,
    load_dataset,
    monte_carlo_weighted_spread,
)


def main() -> None:
    # 1. A geo-social network: nodes have 2-D locations, edges carry
    #    weighted-cascade probabilities Pr(u, v) = 1 / indeg(v).
    network = load_dataset("gowalla")
    print(f"network: {network.n} users, {network.m} follow edges")

    # 2. The weight function of the paper: w(v, q) = c * exp(-alpha d(v,q)).
    decay = DistanceDecay(c=1.0, alpha=0.01)

    # 3. Offline index construction (done once, reused by every query).
    t0 = time.perf_counter()
    model = MiaModel(network, theta=0.05)
    mia_index = MiaDaIndex(network, decay, MiaDaConfig(n_anchors=60), model=model)
    print(f"MIA-DA index built in {time.perf_counter() - t0:.1f}s")

    t0 = time.perf_counter()
    ris_index = RisDaIndex(
        network,
        decay,
        RisDaConfig(k_max=30, n_pivots=24, max_index_samples=80_000),
    )
    print(
        f"RIS-DA index built in {time.perf_counter() - t0:.1f}s "
        f"({len(ris_index.corpus)} RR samples indexed)"
    )

    # 4. The query: promote a venue at location q, pick k = 20 seed users.
    q = (120.0, 180.0)
    k = 20

    pmia = PmiaDa(network, model=model)
    weights = decay.weights(network.coords, q)
    t0 = time.perf_counter()
    pmia_seeds, _ = pmia.select(weights, k)
    pmia_ms = (time.perf_counter() - t0) * 1000

    mia_res = mia_index.query(q, k)
    ris_res = ris_index.query(q, k)

    # 5. Evaluate all three seed sets with the same Monte-Carlo simulator.
    print(f"\nDAIM query at {q} with k={k}:")
    rows = [
        ("PMIA", pmia_seeds, pmia_ms),
        ("MIA-DA", mia_res.seeds, mia_res.elapsed * 1000),
        ("RIS-DA", ris_res.seeds, ris_res.elapsed * 1000),
    ]
    for name, seeds, ms in rows:
        spread = monte_carlo_weighted_spread(
            network, seeds, node_weights=weights, rounds=500, seed=0
        )
        print(
            f"  {name:8s} spread={spread.value:8.2f} "
            f"(+-{spread.std_error:4.2f})  time={ms:7.2f} ms  "
            f"seeds={seeds[:5]}..."
        )

    print(
        "\nMIA-DA evaluated only "
        f"{mia_res.evaluations}/{network.n} candidates; "
        f"RIS-DA used {ris_res.samples_used} of "
        f"{len(ris_index.corpus)} indexed samples."
    )


if __name__ == "__main__":
    main()
