#!/usr/bin/env python
"""Index amortization: why offline indexes pay off for online workloads.

The paper's central systems argument: a promotion platform receives many
DAIM queries (different venues, different budgets), so per-query cost
matters more than one-off cost.  This example measures:

* build-once cost of MIA-DA and RIS-DA;
* per-query latency of the indexed methods vs the naive Monte-Carlo
  greedy (Algorithm 1), and the break-even query count.

Run:  python examples/index_amortization.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    DistanceDecay,
    MiaDaConfig,
    MiaDaIndex,
    MiaModel,
    RisDaConfig,
    RisDaIndex,
    load_dataset,
    naive_greedy,
)
from repro.bench import random_queries


def main() -> None:
    network = load_dataset("brightkite")
    decay = DistanceDecay(alpha=0.01)
    k = 10
    queries = random_queries(network, 10, seed=4)

    # --- Offline costs. ---------------------------------------------------
    t0 = time.perf_counter()
    model = MiaModel(network, theta=0.05)
    mia = MiaDaIndex(network, decay, MiaDaConfig(n_anchors=60), model=model)
    mia_build = time.perf_counter() - t0

    t0 = time.perf_counter()
    ris = RisDaIndex(
        network, decay,
        RisDaConfig(k_max=k, n_pivots=24, max_index_samples=60_000, seed=0),
    )
    ris_build = time.perf_counter() - t0
    print(f"offline: MIA-DA built in {mia_build:5.1f}s, "
          f"RIS-DA built in {ris_build:5.1f}s\n")

    # --- Online latencies. --------------------------------------------------
    mia_times, ris_times = [], []
    for q in queries:
        mia_times.append(mia.query(q, k).elapsed)
        ris_times.append(ris.query(q, k).elapsed)

    # The naive greedy is far too slow to run on every query; time one.
    t0 = time.perf_counter()
    naive_greedy(network, queries[0], k, decay=decay, rounds=60, seed=1)
    naive_time = time.perf_counter() - t0

    mia_q = float(np.mean(mia_times))
    ris_q = float(np.mean(ris_times))
    print(f"online per query: naive greedy {naive_time:7.2f}s   "
          f"MIA-DA {mia_q * 1000:6.1f}ms   RIS-DA {ris_q * 1000:6.1f}ms")

    for name, build, per_q in (
        ("MIA-DA", mia_build, mia_q),
        ("RIS-DA", ris_build, ris_q),
    ):
        breakeven = build / max(naive_time - per_q, 1e-9)
        print(
            f"{name}: index pays for itself after "
            f"{breakeven:5.1f} queries "
            f"({naive_time / per_q:7.0f}x faster per query than naive)"
        )


if __name__ == "__main__":
    main()
