#!/usr/bin/env python
"""Data pipeline: from raw files to a certified answer.

The workflow a practitioner with real check-in data would follow:

1. persist / reload the network in the two-file text format
   (SNAP-compatible edge list + check-ins);
2. clean it: keep the largest weakly connected component, re-normalise
   weighted-cascade probabilities;
3. optionally crop to the metropolitan area of interest;
4. answer a DAIM query;
5. *certify* the answer: a fresh-sample Chernoff certificate that the
   returned seed set provably achieves a stated fraction of the optimum.

Run:  python examples/data_pipeline.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    DistanceDecay,
    MiaDaConfig,
    MiaDaIndex,
    certify_seed_set,
    load_dataset,
    read_network,
    write_network,
)
from repro.geo.point import BoundingBox
from repro.network import (
    assign_weighted_cascade,
    largest_weak_component,
    spatial_subgraph,
    summarize,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-pipeline-"))
    edges, checkins = workdir / "city.edges", workdir / "city.checkins"

    # --- 1. Raw data on disk (here: a generated stand-in). ---------------
    raw = load_dataset("brightkite")
    write_network(raw, edges, checkins)
    print(f"raw files: {edges.name}, {checkins.name} in {workdir}")
    network = read_network(edges, checkins)
    print(f"loaded   : {summarize(network).as_row()}")

    # --- 2. Clean: largest component + WC renormalisation. ---------------
    component, kept = largest_weak_component(network)
    component = assign_weighted_cascade(component)
    print(f"component: kept {component.n}/{network.n} users")

    # --- 3. Crop to a city-sized window around the venue. -----------------
    venue = (120.0, 150.0)
    window = BoundingBox(
        venue[0] - 100, venue[1] - 100, venue[0] + 100, venue[1] + 100
    )
    city, _ = spatial_subgraph(component, window)
    city = assign_weighted_cascade(city)
    print(f"city crop: {city.n} users inside a 200x200 window")

    # --- 4. Query. ---------------------------------------------------------
    decay = DistanceDecay(alpha=0.01)
    index = MiaDaIndex(city, decay, MiaDaConfig(n_anchors=40))
    result = index.query(venue, 10)
    print(
        f"query    : k=10 -> seeds {result.seeds[:5]}..., "
        f"MIA estimate {result.estimate:.2f} "
        f"({result.elapsed * 1000:.1f} ms, {result.evaluations} evals)"
    )

    # --- 5. Certify. ---------------------------------------------------------
    cert = certify_seed_set(
        city, venue, result.seeds, decay, n_samples=30_000, delta=0.01, seed=0
    )
    print(
        f"certify  : I_q(S) >= {cert.spread_lcb:.2f} and "
        f"OPT <= {cert.opt_ucb:.2f}  =>  provably >= "
        f"{100 * cert.ratio:.0f}% of optimal "
        f"(confidence {100 * (1 - cert.delta):.0f}%, "
        f"{cert.samples} fresh samples, {cert.elapsed:.1f}s)"
    )


if __name__ == "__main__":
    main()
