#!/usr/bin/env python
"""Multi-store campaign: one seed budget across several locations.

The Appendix E extension: a chain with stores in multiple cities promotes
them all at once.  A user attends the closest store, so the node weight is
``w(v, Q) = max_i w(v, q_i)``.  This example compares:

* per-store campaigns (k seeds each, budget 3k total);
* one combined multi-location campaign with budget k — often nearly as
  effective because a well-placed seed serves the store nearest to its
  audience.

Run:  python examples/multi_store_campaign.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DistanceDecay,
    RisDaConfig,
    RisDaIndex,
    load_dataset,
    monte_carlo_weighted_spread,
    multi_location_query,
    multi_location_weights,
)


def main() -> None:
    network = load_dataset("twitter")
    decay = DistanceDecay(c=1.0, alpha=0.01)
    index = RisDaIndex(
        network,
        decay,
        RisDaConfig(k_max=30, n_pivots=24, max_index_samples=80_000, seed=0),
    )

    # Three stores in different parts of the map.
    box = network.bounding_box()
    stores = [
        (box.xmin + 0.25 * box.width, box.ymin + 0.25 * box.height),
        (box.xmin + 0.75 * box.width, box.ymin + 0.30 * box.height),
        (box.xmin + 0.50 * box.width, box.ymin + 0.80 * box.height),
    ]
    k = 15
    combined_w = multi_location_weights(decay, network.coords, stores)

    print(f"{len(stores)} stores, combined objective w(v, Q) = max_i w(v, q_i)\n")

    # --- Per-store campaigns (3x the budget). ----------------------------
    union: set[int] = set()
    for i, q in enumerate(stores):
        res = index.query(q, k)
        union.update(res.seeds)
        spread = monte_carlo_weighted_spread(
            network, res.seeds, node_weights=combined_w, rounds=400, seed=2
        )
        print(
            f"store {i + 1} at ({q[0]:5.1f}, {q[1]:5.1f}): "
            f"k={k}, combined-objective spread {spread.value:7.2f}"
        )
    union_spread = monte_carlo_weighted_spread(
        network, sorted(union), node_weights=combined_w, rounds=400, seed=2
    )
    print(
        f"union of per-store campaigns: {len(union)} seeds, "
        f"spread {union_spread.value:7.2f}\n"
    )

    # --- One multi-location campaign with a single budget k. -------------
    multi = multi_location_query(index, stores, k)
    multi_spread = monte_carlo_weighted_spread(
        network, multi.seeds, node_weights=combined_w, rounds=400, seed=2
    )
    print(
        f"multi-location campaign: k={k} seeds, "
        f"spread {multi_spread.value:7.2f} "
        f"({multi.samples_used} samples used)"
    )
    efficiency = multi_spread.value / max(union_spread.value, 1e-9)
    print(
        f"-> {100 * efficiency:.0f}% of the 3x-budget union's spread "
        f"with 1/3 of the coupons"
    )


if __name__ == "__main__":
    main()
