"""Tests for repro.mia.pmia (MiaModel, MiaGreedyState, PmiaDa)."""

import numpy as np
import pytest

from repro.exceptions import GraphError, QueryError
from repro.mia.influence import activation_probabilities
from repro.mia.pmia import MiaGreedyState, MiaModel, PmiaDa


@pytest.fixture
def model(example_net) -> MiaModel:
    return MiaModel(example_net, theta=0.01)


class TestMiaModel:
    def test_bad_theta_rejected(self, example_net):
        with pytest.raises(GraphError):
            MiaModel(example_net, theta=0.0)

    def test_every_node_reaches_itself(self, model):
        for u in range(model.n):
            roots, probs = model.reach_of(u)
            pos = np.where(roots == u)[0]
            assert len(pos) == 1
            assert probs[pos[0]] == 1.0

    def test_reach_matches_trees(self, model):
        """reach_of(u) must agree with membership across all MIIA trees."""
        for u in range(model.n):
            roots, _ = model.reach_of(u)
            got = set(roots.tolist())
            want = {t.root for t in model.trees if u in t}
            assert got == want

    def test_singleton_influences_uniform_weights(self, model):
        si = model.singleton_influences(np.ones(model.n))
        mass = model.unweighted_singleton_mass()
        assert np.allclose(si, mass)

    def test_singleton_influences_manual(self, model, example_net):
        w = np.arange(1.0, 6.0)
        si = model.singleton_influences(w)
        for u in range(model.n):
            roots, probs = model.reach_of(u)
            assert si[u] == pytest.approx(float(np.dot(probs, w[roots])))

    def test_weight_shape_rejected(self, model):
        with pytest.raises(QueryError):
            model.singleton_influences(np.ones(3))

    def test_tree_sizes(self, model):
        sizes = model.tree_sizes()
        assert sizes.shape == (model.n,)
        assert np.all(sizes >= 1)


class TestMiaGreedyState:
    def test_initial_gain_is_singleton_influence(self, model):
        w = np.ones(model.n)
        state = MiaGreedyState(model, w)
        assert np.allclose(state.gain, model.singleton_influences(w))

    def test_add_seed_returns_gain(self, model):
        state = MiaGreedyState(model, np.ones(model.n))
        best = state.best_candidate()
        expected = state.marginal(best)
        got = state.add_seed(best)
        assert got == pytest.approx(expected)

    def test_spread_accumulates_gains(self, model):
        state = MiaGreedyState(model, np.ones(model.n))
        total = 0.0
        for _ in range(3):
            total += state.add_seed(state.best_candidate())
        assert state.spread == pytest.approx(total, abs=1e-9)

    def test_double_add_rejected(self, model):
        state = MiaGreedyState(model, np.ones(model.n))
        state.add_seed(0)
        with pytest.raises(QueryError):
            state.add_seed(0)

    def test_gain_maintenance_matches_fresh_computation(self, model):
        """After seeding, maintained gains equal recomputed ap deltas."""
        w = np.linspace(0.5, 1.5, model.n)
        state = MiaGreedyState(model, w)
        state.add_seed(state.best_candidate())
        seeds = set(state.seeds)
        for u in range(model.n):
            if u in seeds:
                continue
            # Recompute marginal from scratch via tree influence deltas.
            expected = 0.0
            for tree in model.trees:
                if u not in tree:
                    continue
                before = activation_probabilities(tree, seeds)[0]
                after = activation_probabilities(tree, seeds | {u})[0]
                expected += (after - before) * w[tree.root]
            assert state.gain[u] == pytest.approx(expected, abs=1e-9), u

    def test_seed_gain_is_minus_inf(self, model):
        state = MiaGreedyState(model, np.ones(model.n))
        u = state.best_candidate()
        state.add_seed(u)
        assert state.gain[u] == -np.inf


class TestPmiaDa:
    def test_greedy_selects_k(self, model, example_net):
        pm = PmiaDa(example_net, model=model)
        seeds, spread = pm.select(np.ones(example_net.n), 3)
        assert len(seeds) == 3
        assert len(set(seeds)) == 3
        assert spread > 0

    def test_k_validation(self, model, example_net):
        pm = PmiaDa(example_net, model=model)
        with pytest.raises(QueryError):
            pm.select(np.ones(example_net.n), 0)
        with pytest.raises(QueryError):
            pm.select(np.ones(example_net.n), 99)

    def test_greedy_matches_exhaustive_first_seed(self, model, example_net):
        """The first greedy pick maximises singleton MIA influence."""
        w = np.linspace(1.0, 2.0, example_net.n)
        pm = PmiaDa(example_net, model=model)
        seeds, _ = pm.select(w, 1)
        si = model.singleton_influences(w)
        assert si[seeds[0]] == pytest.approx(si.max())

    def test_weights_shift_selection(self, model, example_net):
        """Concentrating weight on a node's reach changes the seed choice."""
        pm = PmiaDa(example_net, model=model)
        w = np.full(example_net.n, 1e-6)
        w[4] = 1.0  # only node 4 matters (a sink)
        seeds, _ = pm.select(w, 1)
        # The best seed must reach node 4 strongly; node 4 itself does
        # with probability 1.
        assert seeds[0] == 4

    def test_spread_monotone_in_k(self, small_net):
        pm = PmiaDa(small_net, theta=0.05)
        w = np.ones(small_net.n)
        spreads = [pm.select(w, k)[1] for k in (1, 3, 6)]
        assert spreads[0] < spreads[1] < spreads[2]

    def test_greedy_prefix_property(self, small_net):
        """select(k) is a prefix of select(k + 2) (greedy is nested)."""
        pm = PmiaDa(small_net, theta=0.05)
        w = np.ones(small_net.n)
        s3, _ = pm.select(w, 3)
        s5, _ = pm.select(w, 5)
        assert s5[:3] == s3
