"""Tests for repro.mia.influence (Eq. 5 and the alpha coefficients)."""

import numpy as np
import pytest

from repro.diffusion.possible_world import exact_activation_probabilities
from repro.mia.arborescence import build_miia, build_mioa
from repro.mia.influence import (
    activation_probabilities,
    linear_coefficients,
    singleton_weighted_influence,
    tree_influence,
)
from repro.network.graph import GeoSocialNetwork


def tree_graph() -> GeoSocialNetwork:
    """A directed in-tree: 0 -> 2, 1 -> 2, 2 -> 4, 3 -> 4.

    On a tree MIA is exact, so Eq. 5 must equal possible-world truth.
    """
    coords = np.zeros((5, 2))
    return GeoSocialNetwork.from_edges(
        [(0, 2), (1, 2), (2, 4), (3, 4)], coords, [0.5, 0.6, 0.7, 0.8]
    )


class TestActivationProbabilities:
    def test_no_seeds_all_zero(self):
        t = build_miia(tree_graph(), 4, theta=0.01)
        ap = activation_probabilities(t, set())
        assert np.all(ap == 0.0)

    def test_root_seed(self):
        t = build_miia(tree_graph(), 4, theta=0.01)
        ap = activation_probabilities(t, {4})
        assert ap[0] == 1.0

    def test_hand_computed_single_seed(self):
        t = build_miia(tree_graph(), 4, theta=0.01)
        ap = activation_probabilities(t, {0})
        # 0 -> 2 (0.5) -> 4 (0.7): ap(4) = 0.35.
        assert ap[0] == pytest.approx(0.35)

    def test_hand_computed_two_seeds(self):
        t = build_miia(tree_graph(), 4, theta=0.01)
        ap = activation_probabilities(t, {0, 1})
        # ap(2) = 1 - (1 - 0.5)(1 - 0.6) = 0.8; ap(4) = 0.8 * 0.7 = 0.56.
        assert ap[t.local_index(2)] == pytest.approx(0.8)
        assert ap[0] == pytest.approx(0.56)

    def test_exact_on_tree_graphs(self):
        """MIA == possible-world exact when the graph is a tree."""
        net = tree_graph()
        t = build_miia(net, 4, theta=0.001)
        for seeds in [{0}, {1}, {3}, {0, 3}, {0, 1, 3}, {2}]:
            ap = activation_probabilities(t, seeds)
            exact = exact_activation_probabilities(net, seeds)
            assert ap[0] == pytest.approx(exact[4], abs=1e-12), seeds

    def test_seed_blocks_subtree(self):
        """A seed's ap is 1 regardless of what its subtree contributes."""
        t = build_miia(tree_graph(), 4, theta=0.01)
        ap = activation_probabilities(t, {2, 0})
        assert ap[t.local_index(2)] == 1.0
        assert ap[0] == pytest.approx(0.7)  # only via the seeded node 2


class TestLinearCoefficients:
    def test_root_alpha_is_one(self):
        t = build_miia(tree_graph(), 4, theta=0.01)
        ap = activation_probabilities(t, set())
        alpha = linear_coefficients(t, set(), ap)
        assert alpha[0] == 1.0

    def test_empty_seed_alpha_equals_path_prob(self):
        t = build_miia(tree_graph(), 4, theta=0.01)
        ap = activation_probabilities(t, set())
        alpha = linear_coefficients(t, set(), ap)
        assert np.allclose(alpha, t.path_prob)

    def test_alpha_predicts_seed_addition(self):
        """ap_new(root) == ap_old(root) + alpha(u) * (1 - ap_old(u))."""
        t = build_miia(tree_graph(), 4, theta=0.01)
        for base in [set(), {0}, {3}, {0, 1}]:
            ap = activation_probabilities(t, base)
            alpha = linear_coefficients(t, base, ap)
            for u in [0, 1, 2, 3]:
                if u in base:
                    continue
                i = t.local_index(u)
                predicted = ap[0] + alpha[i] * (1 - ap[i])
                actual = activation_probabilities(t, base | {u})[0]
                assert predicted == pytest.approx(actual, abs=1e-12), (base, u)

    def test_seed_children_blocked(self):
        t = build_miia(tree_graph(), 4, theta=0.01)
        ap = activation_probabilities(t, {2})
        alpha = linear_coefficients(t, {2}, ap)
        # Children of the seeded node 2 (i.e. nodes 0 and 1) cannot add.
        assert alpha[t.local_index(0)] == 0.0
        assert alpha[t.local_index(1)] == 0.0

    def test_alpha_on_random_arborescences(self):
        """The prediction identity on a random graph's MIIA trees."""
        rng = np.random.default_rng(1)
        n = 25
        coords = rng.random((n, 2))
        edges, probs, seen = [], [], set()
        for _ in range(100):
            u, v = rng.integers(0, n, 2)
            if u != v and (u, v) not in seen:
                seen.add((u, v))
                edges.append((int(u), int(v)))
                probs.append(float(rng.uniform(0.2, 0.95)))
        net = GeoSocialNetwork.from_edges(edges, coords, probs)
        for root in range(0, n, 5):
            t = build_miia(net, root, theta=0.05)
            if len(t) < 3:
                continue
            base = {int(t.nodes[len(t) // 2])}
            ap = activation_probabilities(t, base)
            alpha = linear_coefficients(t, base, ap)
            for i in range(1, len(t)):
                u = int(t.nodes[i])
                if u in base:
                    continue
                predicted = ap[0] + alpha[i] * (1 - ap[i])
                actual = activation_probabilities(t, base | {u})[0]
                assert predicted == pytest.approx(actual, abs=1e-9)


class TestHelpers:
    def test_tree_influence(self):
        t = build_miia(tree_graph(), 4, theta=0.01)
        assert tree_influence(t, {0}) == pytest.approx(0.35)

    def test_singleton_weighted_influence(self):
        net = tree_graph()
        t = build_mioa(net, 0, theta=0.01)
        w = np.arange(1.0, 6.0)  # weights 1..5
        # Reach of 0: itself (1.0 * w0), 2 (0.5 * w2), 4 (0.35 * w4).
        expected = 1.0 * 1.0 + 0.5 * 3.0 + 0.35 * 5.0
        assert singleton_weighted_influence(t, w) == pytest.approx(expected)
