"""Tests for repro.mia.arborescence."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.mia.arborescence import Arborescence, build_miia, build_mioa
from repro.network.graph import GeoSocialNetwork


def chain_with_branch() -> GeoSocialNetwork:
    """0 -> 1 -> 3, 2 -> 3 (various probs)."""
    coords = np.zeros((4, 2))
    return GeoSocialNetwork.from_edges(
        [(0, 1), (1, 3), (2, 3)], coords, [0.5, 0.4, 0.9]
    )


class TestBuildMiia:
    def test_root_first(self):
        t = build_miia(chain_with_branch(), 3, theta=0.01)
        assert t.nodes[0] == 3
        assert t.parent[0] == -1
        assert t.path_prob[0] == 1.0

    def test_members(self):
        t = build_miia(chain_with_branch(), 3, theta=0.01)
        assert set(t.nodes.tolist()) == {0, 1, 2, 3}

    def test_theta_prunes_members(self):
        t = build_miia(chain_with_branch(), 3, theta=0.3)
        # 0's path prob is 0.5 * 0.4 = 0.2 < 0.3.
        assert 0 not in t
        assert 1 in t

    def test_parent_points_toward_root(self):
        t = build_miia(chain_with_branch(), 3, theta=0.01)
        i0 = t.local_index(0)
        i1 = t.local_index(1)
        assert t.parent[i0] == i1
        assert t.parent[i1] == 0  # root local index

    def test_edge_probs_multiply_to_path_prob(self):
        t = build_miia(chain_with_branch(), 3, theta=0.01)
        for i in range(len(t)):
            prod = 1.0
            j = i
            while t.parent[j] != -1:
                prod *= t.edge_prob[j]
                j = t.parent[j]
            assert prod == pytest.approx(t.path_prob[i])

    def test_children_lists(self):
        t = build_miia(chain_with_branch(), 3, theta=0.01)
        root_kids = {int(t.nodes[c]) for c in t.children[0]}
        assert root_kids == {1, 2}

    def test_probability_one_edges_topological(self):
        """Edges of probability 1 (WC with indegree 1) must not break order."""
        coords = np.zeros((4, 2))
        net = GeoSocialNetwork.from_edges(
            [(0, 1), (1, 2), (2, 3)], coords, [1.0, 1.0, 1.0]
        )
        t = build_miia(net, 3, theta=0.5)
        assert set(t.nodes.tolist()) == {0, 1, 2, 3}
        for i in range(1, len(t)):
            assert t.parent[i] < i

    def test_contains_and_local_index(self):
        t = build_miia(chain_with_branch(), 3, theta=0.01)
        assert 2 in t
        assert 7 not in t
        assert t.nodes[t.local_index(2)] == 2
        with pytest.raises(KeyError):
            t.local_index(7)


class TestBuildMioa:
    def test_out_tree(self):
        t = build_mioa(chain_with_branch(), 0, theta=0.01)
        assert t.nodes[0] == 0
        assert set(t.nodes.tolist()) == {0, 1, 3}

    def test_path_probs(self):
        t = build_mioa(chain_with_branch(), 0, theta=0.01)
        assert t.path_prob[t.local_index(3)] == pytest.approx(0.2)

    def test_kind(self):
        assert build_mioa(chain_with_branch(), 0, theta=0.1).kind == "mioa"
        assert build_miia(chain_with_branch(), 3, theta=0.1).kind == "miia"


class TestValidation:
    def test_bad_kind_rejected(self):
        with pytest.raises(GraphError):
            Arborescence(
                root=0,
                nodes=np.array([0]),
                parent=np.array([-1]),
                edge_prob=np.array([1.0]),
                path_prob=np.array([1.0]),
                kind="tree",
            )

    def test_root_mismatch_rejected(self):
        with pytest.raises(GraphError):
            Arborescence(
                root=5,
                nodes=np.array([0, 5]),
                parent=np.array([-1, 0]),
                edge_prob=np.array([1.0, 0.5]),
                path_prob=np.array([1.0, 0.5]),
                kind="miia",
            )

    def test_non_topological_rejected(self):
        with pytest.raises(GraphError):
            Arborescence(
                root=0,
                nodes=np.array([0, 1, 2]),
                parent=np.array([-1, 2, 0]),  # node 1's parent comes later
                edge_prob=np.array([1.0, 0.5, 0.5]),
                path_prob=np.array([1.0, 0.25, 0.5]),
                kind="miia",
            )
