"""Tests for repro.mia.parallel (worker-pool MIIA construction)."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.mia.parallel import ParallelMiaBuilder
from repro.mia.pmia import MiaModel


def _flat_equal(a, b):
    return all(np.array_equal(xa, xb) for xa, xb in zip(a, b))


class TestValidation:
    def test_bad_worker_count_rejected(self, example_net):
        with pytest.raises(GraphError):
            ParallelMiaBuilder(example_net, n_workers=0)

    def test_bad_theta_rejected(self, example_net):
        with pytest.raises(GraphError):
            ParallelMiaBuilder(example_net, theta=0.0)
        with pytest.raises(GraphError):
            ParallelMiaBuilder(example_net, theta=1.5)


class TestChunkPlan:
    def test_plan_covers_node_range(self, small_net):
        builder = ParallelMiaBuilder(small_net, n_workers=3)
        plan = builder._chunk_plan(small_net.n)
        assert plan[0][0] == 0
        assert sum(c for _, c in plan) == small_net.n
        for (s1, c1), (s2, _) in zip(plan, plan[1:]):
            assert s1 + c1 == s2

    def test_plan_depends_only_on_inputs(self, small_net):
        a = ParallelMiaBuilder(small_net, n_workers=2)._chunk_plan(100)
        b = ParallelMiaBuilder(small_net, n_workers=2)._chunk_plan(100)
        assert a == b


class TestParity:
    """The contract: the flat index is byte-identical to the serial build
    for every worker count and execution mode."""

    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_matches_serial_model(self, small_net, n_workers):
        serial = MiaModel(small_net, 0.03).flat_trees()
        with ParallelMiaBuilder(
            small_net, 0.03, n_workers=n_workers
        ) as builder:
            parallel = builder.build_flat()
        assert _flat_equal(serial, parallel)

    def test_force_serial_matches_pool(self, small_net):
        pooled = ParallelMiaBuilder(small_net, 0.03, n_workers=4)
        serial = ParallelMiaBuilder(
            small_net, 0.03, n_workers=4, force_serial=True
        )
        try:
            a = pooled.build_flat()
            b = serial.build_flat()
        finally:
            pooled.close()
            serial.close()
        assert not serial.pool_active
        assert _flat_equal(a, b)

    def test_build_model_equals_direct_model(self, small_net):
        with ParallelMiaBuilder(small_net, 0.03, n_workers=2) as builder:
            model = builder.build_model()
        reference = MiaModel(small_net, 0.03)
        assert len(model.trees) == len(reference.trees)
        for t, r in zip(model.trees, reference.trees):
            assert t.root == r.root
            assert np.array_equal(t.nodes, r.nodes)
            assert np.array_equal(t.parent, r.parent)
            assert np.array_equal(t.edge_prob, r.edge_prob)
            assert np.array_equal(t.path_prob, r.path_prob)
        w = np.linspace(0.1, 1.0, small_net.n)
        assert np.allclose(
            model.singleton_influences(w), reference.singleton_influences(w)
        )

    def test_broken_pool_falls_back(self, small_net, monkeypatch):
        builder = ParallelMiaBuilder(small_net, 0.03, n_workers=4)
        monkeypatch.setattr(builder, "_ensure_pool", lambda: None)
        reference = MiaModel(small_net, 0.03).flat_trees()
        try:
            assert _flat_equal(builder.build_flat(), reference)
        finally:
            builder.close()


class TestSerialFallback:
    def test_one_worker_never_pools(self, small_net):
        builder = ParallelMiaBuilder(small_net, 0.03, n_workers=1)
        builder.build_flat()
        assert not builder.pool_active

    def test_small_graphs_stay_in_process(self, example_net):
        builder = ParallelMiaBuilder(example_net, 0.03, n_workers=4)
        builder.build_flat()  # 5 nodes, below the dispatch threshold
        assert not builder.pool_active
        builder.close()

    def test_close_is_idempotent(self, small_net):
        builder = ParallelMiaBuilder(small_net, 0.03, n_workers=2)
        builder.build_flat()
        builder.close()
        builder.close()
        # Building after close restarts lazily and stays identical.
        again = builder.build_flat()
        assert _flat_equal(again, MiaModel(small_net, 0.03).flat_trees())
        builder.close()


class TestFlatRoundTrip:
    def test_from_flat_trees_round_trips(self, small_net):
        model = MiaModel(small_net, 0.03)
        rebuilt = MiaModel.from_flat_trees(small_net, 0.03, model.flat_trees())
        assert _flat_equal(model.flat_trees(), rebuilt.flat_trees())
        for u in range(0, small_net.n, 17):
            ra, pa = model.reach_of(u)
            rb, pb = rebuilt.reach_of(u)
            assert np.array_equal(ra, rb)
            assert np.array_equal(pa, pb)

    def test_wrong_root_count_rejected(self, small_net, example_net):
        flat = MiaModel(example_net, 0.03).flat_trees()
        with pytest.raises(GraphError):
            MiaModel.from_flat_trees(small_net, 0.03, flat)


class TestWorkerSpans:
    def test_chunk_spans_reparented_under_build(self, small_net):
        from repro.obs.trace import Tracer, use_tracer

        tracer = Tracer()
        builder = ParallelMiaBuilder(
            small_net, 0.03, n_workers=2, force_serial=True
        )
        with use_tracer(tracer):
            builder.build_flat()
        spans = {s["name"]: s for s in tracer.finished_spans}
        build = spans["mia.build_trees"]
        assert build["attributes"]["n"] == small_net.n
        chunks = [
            s for s in tracer.finished_spans if s["name"] == "mia.build_chunk"
        ]
        assert len(chunks) == build["attributes"]["n_chunks"]
        assert all(c["parent_id"] == build["span_id"] for c in chunks)
        assert sum(c["attributes"]["count"] for c in chunks) == small_net.n

    def test_tracing_does_not_change_the_index(self, small_net):
        from repro.obs.trace import Tracer, use_tracer

        plain = ParallelMiaBuilder(
            small_net, 0.03, n_workers=2, force_serial=True
        ).build_flat()
        with use_tracer(Tracer()):
            traced = ParallelMiaBuilder(
                small_net, 0.03, n_workers=2, force_serial=True
            ).build_flat()
        assert _flat_equal(plain, traced)
