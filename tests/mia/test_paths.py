"""Tests for repro.mia.paths (maximum influence paths)."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.mia.paths import (
    max_influence_paths_from,
    max_influence_paths_to,
    mip_probability,
)
from repro.network.graph import GeoSocialNetwork


def branching() -> GeoSocialNetwork:
    """0 -> 1 (0.9), 0 -> 2 (0.2), 1 -> 2 (0.8): best 0~>2 is via 1 (0.72)."""
    coords = np.zeros((3, 2))
    return GeoSocialNetwork.from_edges(
        [(0, 1), (0, 2), (1, 2)], coords, [0.9, 0.2, 0.8]
    )


class TestForwardPaths:
    def test_source_has_probability_one(self):
        paths = max_influence_paths_from(branching(), 0, theta=0.01)
        assert paths[0] == (1.0, -1)

    def test_picks_max_product_path(self):
        paths = max_influence_paths_from(branching(), 0, theta=0.01)
        prob, hop = paths[2]
        assert prob == pytest.approx(0.72)
        assert hop == 1  # via node 1, not the direct 0.2 edge

    def test_theta_prunes(self):
        paths = max_influence_paths_from(branching(), 0, theta=0.8)
        assert 1 in paths  # 0.9 >= 0.8
        assert 2 not in paths  # 0.72 < 0.8

    def test_theta_boundary_inclusive(self):
        paths = max_influence_paths_from(branching(), 0, theta=0.72)
        assert 2 in paths

    def test_bad_theta_rejected(self):
        with pytest.raises(GraphError):
            max_influence_paths_from(branching(), 0, theta=0.0)
        with pytest.raises(GraphError):
            max_influence_paths_from(branching(), 0, theta=1.5)

    def test_bad_source_rejected(self):
        with pytest.raises(GraphError):
            max_influence_paths_from(branching(), 9, theta=0.1)

    def test_zero_probability_edges_ignored(self):
        coords = np.zeros((2, 2))
        net = GeoSocialNetwork.from_edges([(0, 1)], coords, [0.0])
        paths = max_influence_paths_from(net, 0, theta=0.01)
        assert 1 not in paths


class TestReversePaths:
    def test_reverse_mirrors_forward(self):
        net = branching()
        fwd = max_influence_paths_from(net, 0, theta=0.01)
        rev = max_influence_paths_to(net, 2, theta=0.01)
        assert rev[0][0] == pytest.approx(fwd[2][0])

    def test_membership_symmetry(self):
        """u in MIIA(v)  <=>  v in MIOA(u), for all pairs (theta fixed)."""
        rng = np.random.default_rng(0)
        n = 30
        coords = rng.random((n, 2))
        edges = []
        probs = []
        seen = set()
        for _ in range(120):
            u, v = rng.integers(0, n, 2)
            if u != v and (u, v) not in seen:
                seen.add((u, v))
                edges.append((int(u), int(v)))
                probs.append(float(rng.uniform(0.1, 0.9)))
        net = GeoSocialNetwork.from_edges(edges, coords, probs)
        theta = 0.05
        mioa = {
            u: set(max_influence_paths_from(net, u, theta)) for u in range(n)
        }
        miia = {
            v: set(max_influence_paths_to(net, v, theta)) for v in range(n)
        }
        for u in range(n):
            for v in range(n):
                assert (v in mioa[u]) == (u in miia[v])

    def test_path_probabilities_agree_both_directions(self):
        net = branching()
        fwd = max_influence_paths_from(net, 0, theta=0.01)
        for v, (p, _) in fwd.items():
            rev = max_influence_paths_to(net, v, theta=0.01)
            assert rev[0][0] == pytest.approx(p)


class TestMipProbability:
    def test_existing_path(self):
        assert mip_probability(branching(), 0, 2, 0.01) == pytest.approx(0.72)

    def test_pruned_path_is_zero(self):
        assert mip_probability(branching(), 0, 2, 0.9) == 0.0

    def test_self_probability_one(self):
        assert mip_probability(branching(), 1, 1, 0.5) == 1.0
