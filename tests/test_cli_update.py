"""End-to-end tests for the ``update`` CLI subcommand."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.persistence import load_index
from repro.network.io import read_network


@pytest.fixture
def dataset(tmp_path):
    edges = tmp_path / "g.edges"
    checkins = tmp_path / "g.ci"
    rc = main([
        "generate", "--dataset", "brightkite", "--scale", "0.05",
        "--out-edges", str(edges), "--out-checkins", str(checkins),
    ])
    assert rc == 0
    return edges, checkins


@pytest.fixture
def ris_index_path(dataset, tmp_path):
    edges, checkins = dataset
    path = tmp_path / "ris.npz"
    rc = main([
        "build-ris", "--edges", str(edges), "--checkins", str(checkins),
        "--out", str(path), "--k-max", "4", "--pivots", "5",
        "--epsilon-pivot", "0.45", "--max-samples", "4000", "--seed", "6",
    ])
    assert rc == 0
    return path


@pytest.fixture
def deltas_path(tmp_path):
    path = tmp_path / "deltas.jsonl"
    path.write_text("\n".join([
        json.dumps({"op": "edge", "u": 0, "v": 10, "p": 0.2}),
        json.dumps({"op": "checkin", "node": 3, "x": 12.0, "y": 34.0}),
    ]) + "\n")
    return path


class TestUpdateCommand:
    def test_update_roundtrip(
        self, dataset, ris_index_path, deltas_path, tmp_path, capsys
    ):
        edges, checkins = dataset
        out = tmp_path / "updated.npz"
        out_edges = tmp_path / "updated.edges"
        out_checkins = tmp_path / "updated.ci"
        rc = main([
            "update", "--edges", str(edges), "--checkins", str(checkins),
            "--index", str(ris_index_path), "--deltas", str(deltas_path),
            "--out", str(out), "--out-edges", str(out_edges),
            "--out-checkins", str(out_checkins),
        ])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "generation 1" in stdout
        # The saved index loads against the *written* network files and
        # carries the bumped generation.
        updated_net = read_network(out_edges, out_checkins)
        kind, index = load_index(out, updated_net)
        assert kind == "ris"
        assert index.generation == 1
        assert np.allclose(updated_net.coords[3], [12.0, 34.0])

    def test_updated_index_answers_queries(
        self, dataset, ris_index_path, deltas_path, tmp_path, capsys
    ):
        edges, checkins = dataset
        out_edges = tmp_path / "u.edges"
        out_checkins = tmp_path / "u.ci"
        rc = main([
            "update", "--edges", str(edges), "--checkins", str(checkins),
            "--index", str(ris_index_path), "--deltas", str(deltas_path),
            "--out-edges", str(out_edges), "--out-checkins", str(out_checkins),
        ])
        assert rc == 0
        capsys.readouterr()
        rc = main([
            "query", "--edges", str(out_edges),
            "--checkins", str(out_checkins),
            "--index", str(ris_index_path), "--method", "ris",
            "--x", "50", "--y", "50", "-k", "3",
        ])
        assert rc == 0
        assert "RIS-DA" in capsys.readouterr().out

    def test_method_mismatch_rejected(
        self, dataset, ris_index_path, deltas_path, tmp_path, capsys
    ):
        edges, checkins = dataset
        rc = main([
            "update", "--edges", str(edges), "--checkins", str(checkins),
            "--index", str(ris_index_path), "--deltas", str(deltas_path),
            "--out-edges", str(tmp_path / "e"),
            "--out-checkins", str(tmp_path / "c"),
            "--method", "mia",
        ])
        assert rc == 2
        assert "holds a RIS-DA index" in capsys.readouterr().err

    def test_bad_delta_file_reports_line(
        self, dataset, ris_index_path, tmp_path, capsys
    ):
        edges, checkins = dataset
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"op": "edge", "u": 0, "v": 1, "p": 0.1}\nnot json\n')
        rc = main([
            "update", "--edges", str(edges), "--checkins", str(checkins),
            "--index", str(ris_index_path), "--deltas", str(bad),
            "--out-edges", str(tmp_path / "e"),
            "--out-checkins", str(tmp_path / "c"),
        ])
        assert rc == 2
        assert "bad.jsonl:2" in capsys.readouterr().err

    def test_empty_delta_file_rejected(
        self, dataset, ris_index_path, tmp_path, capsys
    ):
        edges, checkins = dataset
        empty = tmp_path / "empty.jsonl"
        empty.write_text("\n")
        rc = main([
            "update", "--edges", str(edges), "--checkins", str(checkins),
            "--index", str(ris_index_path), "--deltas", str(empty),
            "--out-edges", str(tmp_path / "e"),
            "--out-checkins", str(tmp_path / "c"),
        ])
        assert rc == 2
        assert "no delta events" in capsys.readouterr().err
