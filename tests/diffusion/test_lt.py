"""Tests for repro.diffusion.lt (the linear threshold extension)."""

import numpy as np
import pytest

from repro.diffusion.lt import lt_spread, simulate_lt
from repro.exceptions import GraphError
from repro.network.generators import GeoSocialConfig, generate_geo_social_network
from repro.network.graph import GeoSocialNetwork


def wc_line() -> GeoSocialNetwork:
    """0 -> 1 -> 2 with WC probabilities (all 1.0, indegree 1)."""
    coords = np.zeros((3, 2))
    return GeoSocialNetwork.from_edges([(0, 1), (1, 2)], coords, [1.0, 1.0])


class TestSimulateLT:
    def test_weight_one_chain_fully_activates(self):
        mask = simulate_lt(wc_line(), [0], seed=0)
        assert mask.all()

    def test_empty_seeds(self):
        mask = simulate_lt(wc_line(), [], seed=0)
        assert not mask.any()

    def test_seed_out_of_range(self):
        with pytest.raises(GraphError):
            simulate_lt(wc_line(), [5])

    def test_overweight_graph_rejected(self):
        coords = np.zeros((3, 2))
        net = GeoSocialNetwork.from_edges(
            [(0, 2), (1, 2)], coords, [0.8, 0.8]
        )
        with pytest.raises(GraphError, match="in-weights"):
            simulate_lt(net, [0])

    def test_activation_probability_matches_edge_weight(self):
        """For a single in-edge of weight p, LT activates with prob p."""
        coords = np.zeros((2, 2))
        net = GeoSocialNetwork.from_edges([(0, 1)], coords, [0.3])
        rng_hits = sum(
            simulate_lt(net, [0], seed=s)[1] for s in range(4000)
        )
        assert rng_hits / 4000 == pytest.approx(0.3, abs=0.03)

    def test_monotone_in_seeds(self):
        cfg = GeoSocialConfig(n=80, avg_out_degree=3.0, extent=50.0)
        net = generate_geo_social_network(cfg, seed=0)
        rng = np.random.default_rng(1)
        # Same threshold draw via same seed: more seeds => superset.
        a = simulate_lt(net, [0], seed=9)
        b = simulate_lt(net, [0, 1, 2], seed=9)
        assert b.sum() >= a.sum() - 5  # stochastic but strongly biased


class TestLTSpread:
    def test_weighted_scaling(self):
        net = wc_line()
        w = np.full(3, 0.5)
        full = lt_spread(net, [0], rounds=50, seed=0)
        half = lt_spread(net, [0], rounds=50, node_weights=w, seed=0)
        assert half == pytest.approx(0.5 * full)

    def test_rounds_positive(self):
        with pytest.raises(GraphError):
            lt_spread(wc_line(), [0], rounds=0)

    def test_weight_shape_rejected(self):
        with pytest.raises(GraphError):
            lt_spread(wc_line(), [0], node_weights=np.ones(5))
