"""Tests for repro.diffusion.possible_world (the exact ground truth)."""

import numpy as np
import pytest

from repro.diffusion.possible_world import (
    MAX_EXACT_EDGES,
    exact_activation_probabilities,
    exact_spread,
    exact_weighted_spread,
)
from repro.exceptions import GraphError
from repro.network.graph import GeoSocialNetwork


class TestExactActivation:
    def test_line_graph_hand_computed(self, line_net):
        ap = exact_activation_probabilities(line_net, [0])
        assert ap.tolist() == pytest.approx([1.0, 0.5, 0.25])

    def test_diamond_hand_computed(self, diamond_net):
        ap = exact_activation_probabilities(diamond_net, [0])
        # Two independent 2-hop paths of prob 0.25: 1 - 0.75^2 = 0.4375.
        assert ap[3] == pytest.approx(0.4375)

    def test_empty_seed_set(self, line_net):
        ap = exact_activation_probabilities(line_net, [])
        assert np.all(ap == 0.0)

    def test_seed_probability_one(self, diamond_net):
        ap = exact_activation_probabilities(diamond_net, [3])
        assert ap[3] == 1.0
        assert ap[0] == 0.0  # no reverse edges

    def test_multiple_seeds_superset(self, diamond_net):
        ap1 = exact_activation_probabilities(diamond_net, [1])
        ap2 = exact_activation_probabilities(diamond_net, [1, 2])
        assert np.all(ap2 >= ap1 - 1e-12)

    def test_too_many_edges_rejected(self):
        n = MAX_EXACT_EDGES + 2
        coords = np.zeros((n, 2))
        edges = [(i, i + 1) for i in range(n - 1)]
        net = GeoSocialNetwork.from_edges(edges, coords, [0.5] * (n - 1))
        with pytest.raises(GraphError, match="at most"):
            exact_activation_probabilities(net, [0])

    def test_bad_seed_rejected(self, line_net):
        with pytest.raises(GraphError):
            exact_activation_probabilities(line_net, [42])

    def test_probabilities_in_unit_interval(self, example_net):
        ap = exact_activation_probabilities(example_net, [2, 3])
        assert np.all(ap >= 0.0) and np.all(ap <= 1.0)


class TestExactSpread:
    def test_line(self, line_net):
        assert exact_spread(line_net, [0]) == pytest.approx(1.75)

    def test_monotone_in_seeds(self, example_net):
        s1 = exact_spread(example_net, [0])
        s2 = exact_spread(example_net, [0, 1])
        assert s2 >= s1

    def test_submodular_on_example(self, example_net):
        """f(S+v) - f(S) >= f(T+v) - f(T) for S subset T (Lemma 1)."""
        f = lambda s: exact_spread(example_net, s)  # noqa: E731
        S = [2]
        T = [2, 0]
        v = 1
        assert f(S + [v]) - f(S) >= f(T + [v]) - f(T) - 1e-12


class TestExactWeightedSpread:
    def test_uniform_weights_match_unweighted(self, line_net):
        w = np.ones(3)
        assert exact_weighted_spread(line_net, [0], w) == pytest.approx(
            exact_spread(line_net, [0])
        )

    def test_weighting(self, line_net):
        w = np.array([1.0, 2.0, 4.0])
        # 1*1 + 0.5*2 + 0.25*4 = 3.0
        assert exact_weighted_spread(line_net, [0], w) == pytest.approx(3.0)

    def test_shape_mismatch_rejected(self, line_net):
        with pytest.raises(GraphError):
            exact_weighted_spread(line_net, [0], np.ones(5))
