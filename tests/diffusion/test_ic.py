"""Tests for repro.diffusion.ic (the independent cascade simulator)."""

import numpy as np
import pytest

from repro.diffusion.ic import (
    _ragged_arange,
    activation_frequency,
    simulate_ic,
    simulate_ic_batch,
)
from repro.exceptions import GraphError
from repro.network.graph import GeoSocialNetwork
from repro.network.probability import assign_constant


class TestRaggedArange:
    @pytest.mark.parametrize(
        "counts,expected",
        [
            ([3], [0, 1, 2]),
            ([1, 1, 1], [0, 0, 0]),
            ([2, 0, 3], [0, 1, 0, 1, 2]),
            ([0, 0, 2], [0, 1]),
            ([0], []),
            ([], []),
            ([4, 1], [0, 1, 2, 3, 0]),
        ],
    )
    def test_values(self, counts, expected):
        got = _ragged_arange(np.asarray(counts, dtype=np.int64))
        assert got.tolist() == expected

    def test_random_agreement_with_loop(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            counts = rng.integers(0, 6, size=rng.integers(1, 20))
            want = np.concatenate(
                [np.arange(c) for c in counts] or [np.empty(0, np.int64)]
            )
            got = _ragged_arange(counts.astype(np.int64))
            assert got.tolist() == want.tolist()


class TestSimulateIC:
    def test_seeds_always_active(self, line_net):
        mask = simulate_ic(line_net, [0], seed=0)
        assert mask[0]

    def test_empty_seeds(self, line_net):
        mask = simulate_ic(line_net, [], seed=0)
        assert not mask.any()

    def test_deterministic_edges(self, line_net):
        net = assign_constant(line_net, 1.0)
        mask = simulate_ic(net, [0], seed=0)
        assert mask.all()

    def test_zero_probability_edges(self, line_net):
        net = assign_constant(line_net, 0.0)
        mask = simulate_ic(net, [0], seed=0)
        assert mask.tolist() == [True, False, False]

    def test_bad_seed_rejected(self, line_net):
        with pytest.raises(GraphError):
            simulate_ic(line_net, [99])

    def test_negative_seed_rejected(self, line_net):
        with pytest.raises(GraphError):
            simulate_ic(line_net, [-1])

    def test_duplicate_seeds_collapsed(self, line_net):
        mask = simulate_ic(line_net, [0, 0, 0], seed=1)
        assert mask[0]

    def test_activation_respects_reachability(self, diamond_net):
        """Node 3 can only activate if 1 or 2 did."""
        for s in range(200):
            mask = simulate_ic(diamond_net, [0], seed=s)
            if mask[3]:
                assert mask[1] or mask[2]

    def test_frequency_matches_edge_probability(self, line_net):
        freq = activation_frequency(line_net, [0], rounds=20000, seed=2)
        assert freq[0] == 1.0
        assert freq[1] == pytest.approx(0.5, abs=0.02)
        assert freq[2] == pytest.approx(0.25, abs=0.02)

    def test_each_edge_fires_once(self):
        """An edge examined and failed must not retry in later rounds.

        Construct 0 -> 1 (p=1), {0,1} -> 2 (p=0.5 each): the probability
        node 2 activates is 1 - 0.5^2 = 0.75, *not* higher — each of the
        two edges gets exactly one shot.
        """
        coords = np.zeros((3, 2))
        net = GeoSocialNetwork.from_edges(
            [(0, 1), (0, 2), (1, 2)], coords, [1.0, 0.5, 0.5]
        )
        freq = activation_frequency(net, [0], rounds=20000, seed=3)
        assert freq[2] == pytest.approx(0.75, abs=0.02)


class TestBatch:
    def test_shape(self, line_net):
        out = simulate_ic_batch(line_net, [0], rounds=7, seed=0)
        assert out.shape == (7, 3)
        assert out.dtype == bool

    def test_rounds_positive(self, line_net):
        with pytest.raises(GraphError):
            simulate_ic_batch(line_net, [0], rounds=0)

    def test_deterministic_given_seed(self, diamond_net):
        a = simulate_ic_batch(diamond_net, [0], rounds=20, seed=5)
        b = simulate_ic_batch(diamond_net, [0], rounds=20, seed=5)
        assert np.array_equal(a, b)
