"""Tests for repro.diffusion.spread (Monte-Carlo estimators vs exact)."""

import numpy as np
import pytest

from repro.diffusion.possible_world import exact_spread, exact_weighted_spread
from repro.diffusion.spread import (
    SpreadEstimate,
    monte_carlo_spread,
    monte_carlo_weighted_spread,
)
from repro.exceptions import GraphError
from repro.geo.weights import DistanceDecay


class TestSpreadEstimate:
    def test_confidence_interval(self):
        est = SpreadEstimate(value=10.0, std_error=1.0, rounds=100)
        lo, hi = est.confidence_interval()
        assert lo == pytest.approx(10.0 - 1.96)
        assert hi == pytest.approx(10.0 + 1.96)


class TestMonteCarloSpread:
    def test_matches_exact_line(self, line_net):
        mc = monte_carlo_spread(line_net, [0], rounds=20000, seed=0)
        exact = exact_spread(line_net, [0])
        assert abs(mc.value - exact) < 4 * mc.std_error + 1e-9

    def test_matches_exact_example(self, example_net):
        mc = monte_carlo_spread(example_net, [2], rounds=20000, seed=1)
        exact = exact_spread(example_net, [2])
        assert abs(mc.value - exact) < 4 * mc.std_error + 1e-9

    def test_seed_only_spread_is_exact(self, line_net):
        mc = monte_carlo_spread(line_net, [2], rounds=100, seed=2)
        assert mc.value == pytest.approx(1.0)
        assert mc.std_error == 0.0

    def test_rounds_positive(self, line_net):
        with pytest.raises(GraphError):
            monte_carlo_spread(line_net, [0], rounds=0)

    def test_deterministic_given_seed(self, diamond_net):
        a = monte_carlo_spread(diamond_net, [0], rounds=100, seed=3)
        b = monte_carlo_spread(diamond_net, [0], rounds=100, seed=3)
        assert a.value == b.value


class TestMonteCarloWeightedSpread:
    def test_matches_exact_weighted(self, example_net):
        decay = DistanceDecay(alpha=0.3)
        q = (1.0, 0.5)
        w = decay.weights(example_net.coords, q)
        mc = monte_carlo_weighted_spread(
            example_net, [2], node_weights=w, rounds=20000, seed=4
        )
        exact = exact_weighted_spread(example_net, [2], w)
        assert abs(mc.value - exact) < 4 * mc.std_error + 1e-9

    def test_decay_and_query_path(self, example_net):
        decay = DistanceDecay(alpha=0.3)
        q = (1.0, 0.5)
        via_weights = monte_carlo_weighted_spread(
            example_net,
            [2],
            node_weights=decay.weights(example_net.coords, q),
            rounds=500,
            seed=5,
        )
        via_query = monte_carlo_weighted_spread(
            example_net, [2], decay=decay, query=q, rounds=500, seed=5
        )
        assert via_weights.value == pytest.approx(via_query.value)

    def test_missing_arguments_rejected(self, example_net):
        with pytest.raises(GraphError, match="provide node_weights"):
            monte_carlo_weighted_spread(example_net, [0])

    def test_weight_shape_rejected(self, example_net):
        with pytest.raises(GraphError):
            monte_carlo_weighted_spread(
                example_net, [0], node_weights=np.ones(2)
            )

    def test_weighted_lower_than_unweighted_when_weights_below_one(
        self, example_net
    ):
        w = np.full(example_net.n, 0.5)
        wu = monte_carlo_spread(example_net, [2], rounds=2000, seed=6)
        ww = monte_carlo_weighted_spread(
            example_net, [2], node_weights=w, rounds=2000, seed=6
        )
        assert ww.value == pytest.approx(0.5 * wu.value, rel=1e-9)
