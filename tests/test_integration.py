"""Cross-module integration tests.

These exercise full user-facing flows: build a dataset, build both
indexes, answer queries, and cross-check all three methods (MIA-DA,
RIS-DA, naive MC greedy) against each other and against Monte-Carlo
ground truth.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DistanceDecay,
    MiaDaConfig,
    MiaDaIndex,
    PmiaDa,
    RisDaConfig,
    RisDaIndex,
    load_dataset,
    monte_carlo_weighted_spread,
    naive_greedy,
)
from repro.bench import evaluate_methods, random_queries
from repro.mia.pmia import MiaModel
from repro.network.generators import GeoSocialConfig, generate_geo_social_network


@pytest.fixture(scope="module")
def net():
    return generate_geo_social_network(
        GeoSocialConfig(n=300, avg_out_degree=5.0, extent=100.0, city_std=8.0),
        seed=61,
    )


@pytest.fixture(scope="module")
def decay():
    return DistanceDecay(alpha=0.02)


@pytest.fixture(scope="module")
def model(net):
    return MiaModel(net, theta=0.05)


@pytest.fixture(scope="module")
def mia_index(net, decay, model):
    return MiaDaIndex(
        net, decay, MiaDaConfig(theta=0.05, n_anchors=30, tau=100), model=model
    )


@pytest.fixture(scope="module")
def ris_index(net, decay):
    cfg = RisDaConfig(
        k_max=10, n_pivots=12, epsilon_pivot=0.3, max_index_samples=40_000,
        seed=3,
    )
    return RisDaIndex(net, decay, cfg)


class TestMethodAgreement:
    """All methods should find seed sets of comparable quality."""

    def test_spreads_within_factor(self, net, decay, mia_index, ris_index):
        rng = np.random.default_rng(0)
        for _ in range(3):
            q = tuple(rng.uniform(20, 80, 2))
            k = 5
            w = decay.weights(net.coords, q)
            mia_seeds = mia_index.query(q, k).seeds
            ris_seeds = ris_index.query(q, k).seeds
            mia_spread = monte_carlo_weighted_spread(
                net, mia_seeds, node_weights=w, rounds=500, seed=1
            ).value
            ris_spread = monte_carlo_weighted_spread(
                net, ris_seeds, node_weights=w, rounds=500, seed=1
            ).value
            # Both are near-greedy-optimal; neither should collapse.
            assert mia_spread > 0.6 * ris_spread
            assert ris_spread > 0.6 * mia_spread

    def test_index_methods_match_mc_greedy_quality(self, net, decay, ris_index):
        """RIS-DA should be at least as good as the MC reference (both are
        1 - 1/e - eps methods; MC rounds here are modest)."""
        q, k = (50.0, 50.0), 3
        w = decay.weights(net.coords, q)
        ris_seeds = ris_index.query(q, k).seeds
        mc = naive_greedy(net, q, k, decay=decay, rounds=60, seed=2)
        ris_spread = monte_carlo_weighted_spread(
            net, ris_seeds, node_weights=w, rounds=800, seed=3
        ).value
        mc_spread = monte_carlo_weighted_spread(
            net, mc.seeds, node_weights=w, rounds=800, seed=3
        ).value
        assert ris_spread >= 0.8 * mc_spread

    def test_mia_da_equals_pmia_everywhere(self, net, decay, model, mia_index):
        pm = PmiaDa(net, model=model)
        rng = np.random.default_rng(5)
        for _ in range(5):
            q = tuple(rng.uniform(0, 100, 2))
            w = decay.weights(net.coords, q)
            assert mia_index.query(q, 6).seeds == pm.select(w, 6)[0]


class TestSeedSetsVaryWithLocation:
    """The core DAIM premise: different promoted locations, different seeds."""

    def test_distinct_locations_distinct_seeds(self, mia_index, net):
        corners = [(5.0, 5.0), (95.0, 95.0)]
        seed_sets = [set(mia_index.query(q, 8).seeds) for q in corners]
        assert seed_sets[0] != seed_sets[1]

    def test_uniform_weights_location_independent(self, net, model):
        """With alpha = 0 the query location must not matter (classical IM)."""
        decay0 = DistanceDecay(alpha=0.0)
        idx = MiaDaIndex(
            net, decay0, MiaDaConfig(theta=0.05, n_anchors=5, tau=16),
            model=model,
        )
        a = idx.query((0.0, 0.0), 5).seeds
        b = idx.query((100.0, 100.0), 5).seeds
        assert a == b


class TestBenchHarnessEndToEnd:
    def test_evaluate_methods_runs_real_indexes(
        self, net, decay, mia_index, ris_index
    ):
        queries = random_queries(net, 2, seed=9)
        rows = evaluate_methods(
            net,
            {
                "MIA-DA": lambda q, k: mia_index.query(q, k),
                "RIS-DA": lambda q, k: ris_index.query(q, k),
            },
            queries,
            k=5,
            decay=decay,
            mc_rounds=100,
        )
        assert len(rows) == 2
        for row in rows:
            assert row.avg_spread > 0
            assert row.avg_time_ms > 0


class TestDatasetPipeline:
    def test_load_build_query(self):
        net = load_dataset("brightkite", scale=0.3, cache=False)
        decay = DistanceDecay(alpha=0.01)
        idx = MiaDaIndex(
            net, decay, MiaDaConfig(theta=0.05, n_anchors=20, tau=50)
        )
        center = net.bounding_box().center
        res = idx.query(center, 10)
        assert res.k == 10
        assert res.estimate > 0

    def test_io_roundtrip_preserves_query_results(self, net, decay, tmp_path):
        from repro import read_network, write_network

        e, c = tmp_path / "edges.txt", tmp_path / "checkins.txt"
        write_network(net, e, c)
        net2 = read_network(e, c)
        m1 = MiaDaIndex(net, decay, MiaDaConfig(n_anchors=10, tau=25, seed=4))
        m2 = MiaDaIndex(net2, decay, MiaDaConfig(n_anchors=10, tau=25, seed=4))
        q = (40.0, 40.0)
        assert m1.query(q, 5).seeds == m2.query(q, 5).seeds
