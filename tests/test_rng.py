"""Tests for repro.rng."""

import numpy as np
import pytest

from repro.rng import as_generator, spawn


class TestAsGenerator:
    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(5)
        b = as_generator(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passes_through(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_none_creates_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawn:
    def test_children_are_independent_of_each_other(self):
        parent = as_generator(3)
        kids = spawn(parent, 3)
        outputs = [k.random(4).tolist() for k in kids]
        assert outputs[0] != outputs[1]
        assert outputs[1] != outputs[2]

    def test_spawn_is_deterministic_given_parent_seed(self):
        a = [g.random(3).tolist() for g in spawn(as_generator(5), 2)]
        b = [g.random(3).tolist() for g in spawn(as_generator(5), 2)]
        assert a == b

    def test_zero_children(self):
        assert spawn(as_generator(0), 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(as_generator(0), -1)
