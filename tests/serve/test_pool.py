"""Tests for repro.serve.pool (sharded multi-process serving)."""

import os
import random
import signal
import time
from multiprocessing import shared_memory

import pytest

from repro.core.mia_da import MiaDaConfig, MiaDaIndex
from repro.core.persistence import save_mia_index, save_ris_index
from repro.core.ris_da import RisDaConfig, RisDaIndex
from repro.exceptions import ServeError
from repro.geo.weights import DistanceDecay
from repro.network.generators import GeoSocialConfig, generate_geo_social_network
from repro.obs.trace import Tracer
from repro.serve.engine import QueryEngine, ServeConfig
from repro.serve.pool import ServePool, ShardRouter


@pytest.fixture(scope="module")
def net():
    return generate_geo_social_network(
        GeoSocialConfig(n=150, avg_out_degree=4.0, extent=100.0, city_std=8.0),
        seed=37,
    )


@pytest.fixture(scope="module")
def decay():
    return DistanceDecay(alpha=0.02)


@pytest.fixture(scope="module")
def ris_path(net, decay, tmp_path_factory):
    path = tmp_path_factory.mktemp("pool") / "ris.npz"
    cfg = RisDaConfig(
        k_max=5, n_pivots=6, epsilon_pivot=0.4, max_index_samples=8000, seed=2
    )
    save_ris_index(RisDaIndex(net, decay, cfg), path)
    return path


@pytest.fixture(scope="module")
def queries(net):
    box = net.bounding_box()
    rng = random.Random(17)
    return [
        (rng.uniform(box.xmin, box.xmax), rng.uniform(box.ymin, box.ymax))
        for _ in range(16)
    ]


@pytest.fixture(scope="module")
def reference(net, ris_path, queries):
    engine = QueryEngine.from_path(
        ris_path, net, config=ServeConfig(n_threads=2)
    )
    return engine.serve_batch(queries, k=4)


def _seed_lists(served):
    return [s.result.seeds for s in served]


class TestShardRouter:
    def test_deterministic_across_instances(self, net):
        box = net.bounding_box()
        a = ShardRouter(box, n_shards=3)
        b = ShardRouter(box, n_shards=3)
        rng = random.Random(5)
        points = [
            (rng.uniform(box.xmin, box.xmax), rng.uniform(box.ymin, box.ymax))
            for _ in range(200)
        ]
        assert [a.shard_of(p) for p in points] == [
            b.shard_of(p) for p in points
        ]
        assert all(0 <= a.shard_of(p) < 3 for p in points)

    def test_same_cell_same_shard(self, net):
        router = ShardRouter(net.bounding_box(), n_shards=4)
        # Two points in the same grid cell must never split across
        # workers (they share a result-cache entry).
        cell_box = router.grid.cell_box(router.grid.cell_of((50.0, 50.0)))
        p1 = (cell_box.xmin + 1e-6, cell_box.ymin + 1e-6)
        p2 = (cell_box.xmax - 1e-6, cell_box.ymax - 1e-6)
        assert router.grid.cell_of(p1) == router.grid.cell_of(p2)
        assert router.shard_of(p1) == router.shard_of(p2)

    def test_bad_shard_count(self, net):
        with pytest.raises(ServeError):
            ShardRouter(net.bounding_box(), n_shards=0)


class TestPoolServing:
    def test_matches_in_process_engine(
        self, net, ris_path, queries, reference
    ):
        with ServePool(
            ris_path, net, n_workers=2, config=ServeConfig(n_threads=2)
        ) as pool:
            served = pool.serve_batch(queries, k=4)
            assert all(s.ok for s in served)
            assert _seed_lists(served) == _seed_lists(reference)
            counters = pool.metrics.dump()["counters"]
            assert counters["queries_total"] == len(queries)
            assert (
                counters.get("shard0_queries_total", 0)
                + counters.get("shard1_queries_total", 0)
                == len(queries)
            )

    def test_mmap_backing_parity(self, net, ris_path, queries, reference):
        with ServePool(
            ris_path, net, n_workers=2, backing="mmap",
            config=ServeConfig(n_threads=2),
        ) as pool:
            served = pool.serve_batch(queries, k=4)
            assert _seed_lists(served) == _seed_lists(reference)

    def test_single_query_and_kind(self, net, ris_path, reference, queries):
        with ServePool(ris_path, net, n_workers=2) as pool:
            assert pool.index_kind == "ris"
            served = pool.query(queries[0], k=4)
            assert served.ok
            assert served.result.seeds == reference[0].result.seeds

    def test_daim_query_objects_accepted(self, net, ris_path, queries):
        from repro.core.query import DaimQuery

        with ServePool(ris_path, net, n_workers=2) as pool:
            a = pool.serve_batch([DaimQuery(queries[0], 4)])
            b = pool.serve_batch([queries[0]], k=4)
            assert a[0].result.seeds == b[0].result.seeds

    def test_empty_batch(self, net, ris_path):
        with ServePool(ris_path, net, n_workers=2) as pool:
            assert pool.serve_batch([]) == []

    def test_kind_mismatch_rejected_and_cleaned_up(
        self, net, decay, tmp_path
    ):
        path = tmp_path / "mia.npz"
        cfg = MiaDaConfig(n_anchors=10, tau=24, seed=3)
        save_mia_index(MiaDaIndex(net, decay, cfg), path)
        with pytest.raises(ServeError, match="MIA-DA"):
            ServePool(path, net, n_workers=2, kind="ris")

    def test_closed_pool_rejects_batches(self, net, ris_path, queries):
        pool = ServePool(ris_path, net, n_workers=2)
        pool.serve_batch(queries[:2], k=4)
        pool.close()
        with pytest.raises(ServeError, match="closed"):
            pool.serve_batch(queries[:2], k=4)

    def test_worker_metrics_merged_on_close(self, net, ris_path, queries):
        pool = ServePool(ris_path, net, n_workers=2)
        pool.serve_batch(queries, k=4)
        pool.close()
        counters = pool.metrics.dump()["counters"]
        assert counters["worker.queries_total"] == len(queries)
        assert pool.metrics.histogram("worker.latency_ms").count == len(
            queries
        )


class TestPoolFaultTolerance:
    def test_dead_worker_restarted_and_batch_completes(
        self, net, ris_path, queries, reference
    ):
        with ServePool(
            ris_path, net, n_workers=2, config=ServeConfig(n_threads=2)
        ) as pool:
            victim = pool._workers[0]
            os.kill(victim.pid, signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while victim.is_alive() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert not victim.is_alive()
            served = pool.serve_batch(queries, k=4)
            assert all(s.ok for s in served)
            assert _seed_lists(served) == _seed_lists(reference)
            assert (
                pool.metrics.counter("worker_restarts_total").value >= 1
            )
            # The replacement worker serves follow-up batches too.
            again = pool.serve_batch(queries[:4], k=4)
            assert all(s.ok for s in again)


class TestPoolTeardown:
    def test_no_leaked_shm_segments_after_close(self, net, ris_path):
        pool = ServePool(ris_path, net, n_workers=2)
        names = [
            s.shm_name for s in pool._shared.manifest.specs
            if s.shm_name is not None
        ]
        assert names
        pool.serve_batch([(50.0, 50.0)], k=4)
        pool.close()
        for seg_name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=seg_name)

    def test_close_is_idempotent(self, net, ris_path):
        pool = ServePool(ris_path, net, n_workers=1)
        pool.close()
        pool.close()

    def test_orphaned_workers_exit_and_segments_reclaimed(
        self, net, ris_path, tmp_path
    ):
        # SIGKILL the pool's parent process: workers must notice the
        # re-parenting and exit on their own, after which the resource
        # tracker reclaims every shm segment.  Without the orphan check
        # the workers would block on their task queues forever, pinning
        # the segments.
        import json
        import subprocess
        import sys

        script = tmp_path / "orphan_parent.py"
        script.write_text(
            "import json, sys, time\n"
            "from repro.network.generators import (\n"
            "    GeoSocialConfig, generate_geo_social_network)\n"
            "from repro.serve.pool import ServePool\n"
            "net = generate_geo_social_network(\n"
            "    GeoSocialConfig(n=150, avg_out_degree=4.0, extent=100.0,\n"
            "                    city_std=8.0), seed=37)\n"
            f"pool = ServePool({str(ris_path)!r}, net, n_workers=2)\n"
            "print(json.dumps({\n"
            "    'workers': [p.pid for p in pool._workers],\n"
            "    'segments': [s.shm_name for s in\n"
            "                 pool._shared.manifest.specs],\n"
            "}), flush=True)\n"
            "time.sleep(120)\n"
        )
        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.dirname(os.path.dirname(repro.__file__)),
                env.get("PYTHONPATH", ""),
            ) if p
        )
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=env,
        )
        try:
            info = json.loads(proc.stdout.readline())
        finally:
            proc.stdout.close()
        assert info["workers"] and info["segments"]
        proc.kill()
        proc.wait(timeout=10)

        def _all_gone():
            for pid in info["workers"]:
                try:
                    os.kill(pid, 0)
                    return False
                except ProcessLookupError:
                    pass
            for seg_name in info["segments"]:
                try:
                    shm = shared_memory.SharedMemory(name=seg_name)
                except FileNotFoundError:
                    continue
                shm.close()
                return False
            return True

        # Covers the worst case: a worker first scheduled after the
        # parent died exits immediately via the parent-supplied pid
        # check, but the 1 s orphan poll plus resource-tracker cleanup
        # still need a few seconds under load.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if _all_gone():
                break
            time.sleep(0.2)
        assert _all_gone(), "orphaned workers or shm segments survived"


class TestPoolObservability:
    def test_worker_spans_adopted_into_parent_trace(
        self, net, ris_path, queries
    ):
        tracer = Tracer()
        with ServePool(ris_path, net, n_workers=2, tracer=tracer) as pool:
            pool.serve_batch(queries[:6], k=4)
        spans = tracer.finished_spans
        roots = [s for s in spans if s["name"] == "pool.serve_batch"]
        workers = [s for s in spans if s["name"] == "pool.worker"]
        assert len(roots) == 1
        assert workers, "no worker spans adopted"
        root = roots[0]
        assert all(s["trace_id"] == root["trace_id"] for s in workers)
        assert all(s["parent_id"] == root["span_id"] for s in workers)
        assert all(s["attributes"].get("worker") for s in workers)

    def test_http_sidecar_serves_health_and_query_through_pool(
        self, net, ris_path, queries
    ):
        import json

        from repro.obs.httpd import ObsHttpServer

        with ServePool(ris_path, net, n_workers=2) as pool:
            server = ObsHttpServer(engine=pool, default_k=4)
            status, body, _ = server._route("/healthz")
            health = json.loads(body)
            assert status == 200
            assert health["index_kind"] == "ris"
            assert health["workers"] == 2
            x, y = queries[0]
            status, body, _ = server._route(f"/query?x={x}&y={y}&k=4")
            payload = json.loads(body)
            assert status == 200
            assert len(payload["seeds"]) == 4
