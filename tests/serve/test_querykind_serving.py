"""End-to-end serving of the query kinds (engine, sidecar, pool).

The parity suite (``tests/core/test_querykind_parity.py``) proves the
degenerate cases collapse to the point path; this file covers the
serving semantics around the kinds themselves: per-kind metrics and
latency, the heuristic ladder's tagging (requested answers and overload
fallbacks alike), trajectory waypoint results and their cache sharing,
the HTTP sidecar's flat parameter encodings, and mixed-kind batches
through the multi-process pool.
"""

import json
import time
import urllib.request

import pytest

from repro.core.persistence import save_ris_index
from repro.core.querykind import (
    BudgetedQuery,
    HeuristicQuery,
    TargetedQuery,
    TrajectoryQuery,
)
from repro.core.ris_da import RisDaConfig, RisDaIndex
from repro.exceptions import ServeError
from repro.geo.weights import DistanceDecay
from repro.network.generators import GeoSocialConfig, generate_geo_social_network
from repro.serve.engine import QueryEngine, ServeConfig
from repro.serve.metrics import MetricsRegistry, labelled


@pytest.fixture(scope="module")
def net():
    return generate_geo_social_network(
        GeoSocialConfig(n=150, avg_out_degree=4.0, extent=100.0, city_std=8.0),
        seed=31,
    )


@pytest.fixture(scope="module")
def decay():
    return DistanceDecay(alpha=0.02)


@pytest.fixture(scope="module")
def ris_index(net, decay):
    cfg = RisDaConfig(
        k_max=6, n_pivots=8, epsilon_pivot=0.4, max_index_samples=10_000,
        seed=3,
    )
    return RisDaIndex(net, decay, cfg)


@pytest.fixture(scope="module")
def ris_path(ris_index, tmp_path_factory):
    path = tmp_path_factory.mktemp("qk") / "ris.npz"
    save_ris_index(ris_index, path)
    return path


class TestPerKindMetrics:
    def test_each_kind_counted_and_timed(self, ris_index, net):
        metrics = MetricsRegistry()
        engine = QueryEngine(ris_index, metrics=metrics)
        q = (50.0, 50.0)
        engine.query(q, k=3)
        engine.query(TrajectoryQuery(waypoints=(q, (10.0, 10.0)), k=3))
        engine.query(TargetedQuery(location=q, k=3, targets=(0, 1, 2)))
        engine.query(BudgetedQuery(location=q, budget=2.0))
        engine.query(HeuristicQuery(location=q, k=3))
        for kind in ("point", "trajectory", "targeted", "budgeted",
                     "heuristic"):
            name = labelled("serve_queries_total", kind=kind)
            assert metrics.counter(name).value == 1, kind
            lat = labelled("latency_ms", kind=kind)
            assert metrics.histogram(lat).count == 1, kind
        assert metrics.counter("queries_total").value == 5
        assert metrics.counter("trajectory_waypoints_total").value == 2

    def test_latency_histogram_shares_latency_buckets(self, ris_index):
        metrics = MetricsRegistry()
        engine = QueryEngine(ris_index, metrics=metrics)
        engine.query((50.0, 50.0), k=3)
        plain = metrics.histogram("latency_ms")
        kinded = metrics.histogram(labelled("latency_ms", kind="point"))
        assert plain.buckets == kinded.buckets


class TestHeuristicKind:
    def test_requested_heuristic_is_tagged_like_fallback(self, ris_index):
        metrics = MetricsRegistry()
        engine = QueryEngine(ris_index, metrics=metrics)
        served = engine.query(HeuristicQuery(location=(50.0, 50.0), k=4))
        assert served.ok
        assert served.fallback
        assert served.fallback_reason == "requested"
        # Never scored as Eq. 9: the method names the heuristic.
        assert served.result.method == "DegreeDiscount"
        assert metrics.counter(
            labelled("heuristic_rung_total", rung="degree-discount")
        ).value == 1

    def test_zero_budget_walks_down_the_ladder(self, ris_index):
        metrics = MetricsRegistry()
        engine = QueryEngine(ris_index, metrics=metrics)
        served = engine.query(
            HeuristicQuery(location=(50.0, 50.0), k=4, budget_ms=0.0)
        )
        assert served.ok
        assert served.result.method == "TopWeightedDegree"
        assert metrics.counter(
            labelled("heuristic_rung_total", rung="high-degree")
        ).value == 1

    def test_pinned_level(self, ris_index):
        served = QueryEngine(ris_index).query(
            HeuristicQuery(location=(50.0, 50.0), k=4, level="single-discount")
        )
        assert served.ok
        assert served.result.method == "SingleDiscount"

    def test_heuristic_answers_never_enter_the_cache(self, ris_index):
        engine = QueryEngine(ris_index)
        query = HeuristicQuery(location=(42.0, 42.0), k=4)
        engine.query(query)
        assert not engine.query(query).cached
        # And the point path at the same cell still misses afterwards.
        assert not engine.query((42.0, 42.0), k=4).cached


class TestTrajectoryServing:
    def test_waypoint_results_and_alias(self, ris_index):
        engine = QueryEngine(ris_index)
        wps = ((10.0, 10.0), (50.0, 50.0), (90.0, 90.0))
        served = engine.query(TrajectoryQuery(waypoints=wps, k=3))
        assert served.ok
        assert len(served.waypoint_results) == 3
        assert served.result is served.waypoint_results[-1]

    def test_waypoints_warm_the_point_cache(self, ris_index):
        engine = QueryEngine(ris_index)
        wps = ((15.0, 85.0), (85.0, 15.0))
        engine.query(TrajectoryQuery(waypoints=wps, k=3))
        for wp in wps:
            assert engine.query(wp, k=3).cached

    def test_fully_cached_trajectory(self, ris_index):
        engine = QueryEngine(ris_index)
        query = TrajectoryQuery(waypoints=((33.0, 33.0), (66.0, 66.0)), k=3)
        first = engine.query(query)
        assert not first.cached
        again = engine.query(query)
        assert again.cached
        for a, b in zip(first.waypoint_results, again.waypoint_results):
            assert list(a.seeds) == list(b.seeds)


class TestLadderFallback:
    def _slow_engine(self, ris_index, monkeypatch, **cfg_kwargs):
        metrics = MetricsRegistry()
        engine = QueryEngine(
            ris_index,
            config=ServeConfig(
                n_threads=2, timeout=0.05, result_cache_size=0, **cfg_kwargs
            ),
            metrics=metrics,
        )
        for name in ("query", "query_masked", "query_budgeted",
                     "query_trajectory"):
            real = getattr(ris_index, name)

            def slow(*args, _real=real, **kwargs):
                time.sleep(0.3)
                return _real(*args, **kwargs)

            monkeypatch.setattr(ris_index, name, slow)
        return engine, metrics

    def test_ladder_fallback_respects_budget(self, ris_index, monkeypatch):
        engine, metrics = self._slow_engine(
            ris_index, monkeypatch, fallback="ladder", fallback_budget=0.0
        )
        [served] = engine.serve_batch([(50.0, 50.0)], k=4)
        assert served.ok
        assert served.fallback_reason == "timeout"
        assert served.result.method == "TopWeightedDegree"
        assert metrics.counter(
            labelled("heuristic_rung_total", rung="high-degree")
        ).value == 1

    def test_ladder_fallback_without_budget_takes_top_rung(
        self, ris_index, monkeypatch
    ):
        engine, _ = self._slow_engine(
            ris_index, monkeypatch, fallback="ladder"
        )
        [served] = engine.serve_batch([(50.0, 50.0)], k=4)
        assert served.ok
        assert served.result.method == "DegreeDiscount"

    def test_budgeted_fallback_honours_budget_as_k(
        self, ris_index, monkeypatch
    ):
        engine, _ = self._slow_engine(ris_index, monkeypatch)
        query = BudgetedQuery(location=(50.0, 50.0), budget=3.0)
        [served] = engine.serve_batch([query])
        assert served.ok and served.fallback
        assert len(served.result.seeds) == 3  # budget // min cost

    def test_trajectory_fallback_aims_last_waypoint(
        self, ris_index, net, monkeypatch
    ):
        engine, _ = self._slow_engine(ris_index, monkeypatch)
        query = TrajectoryQuery(
            waypoints=((10.0, 10.0), (90.0, 90.0)), k=4
        )
        [served] = engine.serve_batch([query])
        assert served.ok and served.fallback
        from repro.core.heuristics import degree_discount
        expected = degree_discount(net, (90.0, 90.0), 4, engine.decay)
        assert served.result.seeds == expected.seeds

    def test_fallback_config_validation(self):
        with pytest.raises(ServeError):
            ServeConfig(fallback="psychic")
        with pytest.raises(ServeError):
            ServeConfig(fallback_budget=-1.0)


class TestHttpKinds:
    @pytest.fixture(scope="class")
    def server(self, ris_index):
        from repro.obs.httpd import ObsHttpServer

        srv = ObsHttpServer(
            engine=QueryEngine(ris_index), port=0, default_k=3
        ).start()
        yield srv
        srv.stop()

    def _get(self, server, path):
        url = f"http://{server.host}:{server.port}{path}"
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, json.loads(resp.read().decode())

    def test_targeted_via_params(self, server):
        status, payload = self._get(
            server, "/query?kind=targeted&x=50&y=50&k=3&targets=0,1,2,3,4"
        )
        assert status == 200
        assert payload["kind"] == "targeted"
        assert payload["targets"] == 5
        assert len(payload["seeds"]) <= 3
        assert "estimate" in payload

    def test_budgeted_via_params(self, server):
        status, payload = self._get(
            server, "/query?kind=budgeted&x=50&y=50&budget=2&costs=0:0.5"
        )
        assert status == 200
        assert payload["kind"] == "budgeted"
        assert payload["budget"] == 2.0

    def test_trajectory_via_params(self, server):
        status, payload = self._get(
            server, "/query?kind=trajectory&waypoints=10:10;50:50&k=3"
        )
        assert status == 200
        assert payload["kind"] == "trajectory"
        assert len(payload["waypoint_seeds"]) == 2
        assert payload["seeds"] == payload["waypoint_seeds"][-1]

    def test_heuristic_via_params(self, server):
        status, payload = self._get(
            server, "/query?kind=heuristic&x=50&y=50&k=3&level=high-degree"
        )
        assert status == 200
        assert payload["kind"] == "heuristic"
        assert payload["method"] == "TopWeightedDegree"
        assert "heuristic_score" in payload and "estimate" not in payload

    def test_bad_kind_is_400(self, server):
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as err:
            self._get(server, "/query?kind=psychic&x=1&y=1")
        assert err.value.code == 400

    def test_malformed_waypoints_is_400(self, server):
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as err:
            self._get(server, "/query?kind=trajectory&waypoints=oops&k=3")
        assert err.value.code == 400


class TestPoolKinds:
    def test_mixed_kind_batch_matches_in_process(self, ris_path, net,
                                                 ris_index):
        from repro.serve.pool import ServePool

        queries = [
            (50.0, 50.0),
            TrajectoryQuery(waypoints=((10.0, 10.0), (90.0, 90.0)), k=3),
            TargetedQuery(location=(50.0, 50.0), k=3,
                          targets=tuple(range(0, net.n, 2))),
            BudgetedQuery(location=(20.0, 80.0), budget=3.0),
            HeuristicQuery(location=(80.0, 20.0), k=3),
        ]
        single = QueryEngine(ris_index).serve_batch(queries, k=3)
        metrics = MetricsRegistry()
        with ServePool(ris_path, net, n_workers=2, metrics=metrics) as pool:
            pooled = pool.serve_batch(queries, k=3)
        assert all(s.ok for s in pooled), [s.error for s in pooled]
        for s1, sp in zip(single, pooled):
            assert list(s1.result.seeds) == list(sp.result.seeds)
        # The parent counts kinds at routing time.
        for kind in ("point", "trajectory", "targeted", "budgeted",
                     "heuristic"):
            name = labelled("serve_queries_total", kind=kind)
            assert metrics.counter(name).value == 1, kind
        # Worker-side per-kind counters merged under the worker. prefix.
        merged = metrics.counter(
            "worker." + labelled("serve_queries_total", kind="point")
        ).value
        assert merged == 1
