"""Streaming updates through a running :class:`ServePool`.

The rotation contract: ``apply_update`` republishes only the changed
segments and swaps workers one at a time, so a pool keeps answering
queries — with zero failed requests — while its index moves to the next
generation.
"""

import random
import threading
from multiprocessing import shared_memory

import pytest

from repro.core.persistence import save_ris_index
from repro.core.ris_da import RisDaConfig, RisDaIndex
from repro.exceptions import ServeError
from repro.geo.weights import DistanceDecay
from repro.serve.engine import QueryEngine, ServeConfig
from repro.serve.pool import ServePool
from repro.stream.delta import GraphDelta, apply_delta


@pytest.fixture(scope="module")
def decay():
    return DistanceDecay(alpha=0.02)


@pytest.fixture(scope="module")
def ris_cfg():
    return RisDaConfig(
        k_max=4, n_pivots=5, epsilon_pivot=0.45,
        max_index_samples=4000, seed=6,
    )


@pytest.fixture(scope="module")
def ris_path(small_net, decay, ris_cfg, tmp_path_factory):
    path = tmp_path_factory.mktemp("stream-pool") / "ris.npz"
    save_ris_index(RisDaIndex(small_net, decay, ris_cfg), path)
    return path


@pytest.fixture(scope="module")
def delta():
    return GraphDelta.make(
        edges=[(0, 60), (12, 90), (33, 101)],
        probabilities=[0.2, 0.25, 0.15],
        checkins=[(5, 30.0, 40.0)],
    )


@pytest.fixture(scope="module")
def queries(small_net):
    box = small_net.bounding_box()
    rng = random.Random(23)
    return [
        (rng.uniform(box.xmin, box.xmax), rng.uniform(box.ymin, box.ymax))
        for _ in range(12)
    ]


class TestApplyUpdate:
    def test_stats_fingerprint_and_staleness(self, small_net, ris_path, delta):
        with ServePool(ris_path, small_net, n_workers=2) as pool:
            assert "#g" not in pool.fingerprint
            stats = pool.apply_update(delta)
            assert stats.generation == 1
            assert pool.last_update is stats
            assert pool.fingerprint.endswith("#g1")
            gauges = pool.metrics.dump()["gauges"]
            assert gauges["staleness_generation"] == 1.0
            served = pool.serve_batch([(50.0, 50.0)], k=3)
            assert served[0].ok

    def test_post_update_parity_with_fresh_engine(
        self, small_net, decay, ris_cfg, ris_path, delta, queries
    ):
        final_net = apply_delta(small_net, delta).network
        with ServePool(
            ris_path, small_net, n_workers=2,
            config=ServeConfig(n_threads=2),
        ) as pool:
            pool.apply_update(delta)
            served = pool.serve_batch(queries, k=4)
            assert all(s.ok for s in served)
            # The pool's updated network matches the delta applied
            # offline.
            e1, p1 = pool.network.edge_array()
            e2, p2 = final_net.edge_array()
            assert e1.tolist() == e2.tolist()
            assert p1.tolist() == p2.tolist()
            # Serving parity: an in-process engine over the pool's own
            # updated index must answer identically (same corpus, same
            # kernels) — proving workers really serve generation 1.
            # (The parent index views the pool's shared segments, so the
            # reference must be computed before the pool closes.)
            engine = QueryEngine(
                pool._parent_index, config=ServeConfig(n_threads=2)
            )
            reference = engine.serve_batch(queries, k=4)
        assert [s.result.seeds for s in served] == [
            s.result.seeds for s in reference
        ]

    def test_sequential_updates_bump_generations(
        self, small_net, ris_path, delta
    ):
        with ServePool(ris_path, small_net, n_workers=1) as pool:
            first = pool.apply_update(delta)
            second = pool.apply_update(
                GraphDelta.make(edges=[(7, 80)], probabilities=[0.3])
            )
            assert (first.generation, second.generation) == (1, 2)
            assert pool.fingerprint.endswith("#g2")
            assert pool.serve_batch([(20.0, 20.0)], k=3)[0].ok

    def test_refresh_staleness_noop_then_ages(self, small_net, ris_path, delta):
        with ServePool(ris_path, small_net, n_workers=1) as pool:
            pool.refresh_staleness()
            assert "staleness_generation" not in pool.metrics.dump()["gauges"]
            pool.apply_update(delta)
            g = pool.metrics.gauge("staleness_seconds_since_refresh")
            g.set(-1.0)
            pool.refresh_staleness()
            assert g.value >= 0.0

    def test_update_on_closed_pool_rejected(self, small_net, ris_path, delta):
        pool = ServePool(ris_path, small_net, n_workers=1)
        pool.close()
        with pytest.raises(ServeError, match="closed"):
            pool.apply_update(delta)


class TestRotationAvailability:
    def test_no_failed_requests_during_rotation(
        self, small_net, ris_path, delta, queries
    ):
        """Queries racing the update must all succeed, old or new gen."""
        failures = []
        done = threading.Event()

        with ServePool(
            ris_path, small_net, n_workers=2,
            config=ServeConfig(n_threads=2),
        ) as pool:

            def hammer():
                while not done.is_set():
                    for s in pool.serve_batch(queries[:4], k=3):
                        if not s.ok:
                            failures.append(s.error)

            t = threading.Thread(target=hammer)
            t.start()
            try:
                pool.apply_update(delta)
            finally:
                done.set()
                t.join(timeout=30.0)
            assert not t.is_alive()
            # And the pool still serves after the rotation settled.
            assert all(s.ok for s in pool.serve_batch(queries, k=3))
        assert failures == []

    def test_workers_replaced_not_reused(self, small_net, ris_path, delta):
        with ServePool(ris_path, small_net, n_workers=2) as pool:
            old_pids = [p.pid for p in pool._workers]
            pool.apply_update(delta)
            new_pids = [p.pid for p in pool._workers]
            assert set(old_pids).isdisjoint(new_pids)
            assert all(p.is_alive() for p in pool._workers)


class TestRotationCleanup:
    def test_no_leaked_segments_after_update_and_close(
        self, small_net, ris_path, delta
    ):
        pool = ServePool(ris_path, small_net, n_workers=2)
        before = {
            s.shm_name for s in pool._shared.manifest.specs
            if s.shm_name is not None
        }
        pool.apply_update(delta)
        after = {
            s.shm_name for s in pool._shared.manifest.specs
            if s.shm_name is not None
        }
        # Retired (replaced) segments are gone as soon as the rotation
        # finishes; the rest await close().
        for seg_name in before - after:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=seg_name)
        pool.serve_batch([(50.0, 50.0)], k=3)
        pool.close()
        for seg_name in before | after:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=seg_name)

    def test_unchanged_segments_survive_the_update(
        self, small_net, ris_path, delta
    ):
        with ServePool(ris_path, small_net, n_workers=1) as pool:
            before = {
                s.name: s.shm_name for s in pool._shared.manifest.specs
            }
            pool.apply_update(delta)
            after = {
                s.name: s.shm_name for s in pool._shared.manifest.specs
            }
            assert set(before) == set(after)
            reused = [n for n in before if before[n] == after[n]]
            replaced = [n for n in before if before[n] != after[n]]
            # The corpus changes; build-time constants (pivots etc.) are
            # shared with the previous generation untouched.
            assert replaced
            assert reused
