"""Tests for repro.serve.shared (zero-copy index publication)."""

import pickle
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.persistence import read_index_arrays, save_ris_index
from repro.core.ris_da import RisDaConfig, RisDaIndex
from repro.exceptions import ServeError
from repro.geo.weights import DistanceDecay
from repro.network.generators import GeoSocialConfig, generate_geo_social_network
from repro.serve.shared import SharedIndexArrays, attach_index


@pytest.fixture(scope="module")
def net():
    return generate_geo_social_network(
        GeoSocialConfig(n=150, avg_out_degree=4.0, extent=100.0, city_std=8.0),
        seed=31,
    )


@pytest.fixture(scope="module")
def ris_path(net, tmp_path_factory):
    path = tmp_path_factory.mktemp("shared") / "ris.npz"
    cfg = RisDaConfig(
        k_max=5, n_pivots=6, epsilon_pivot=0.4, max_index_samples=8000, seed=2
    )
    save_ris_index(RisDaIndex(net, DistanceDecay(alpha=0.02), cfg), path)
    return path


class TestShmBacking:
    def test_arrays_match_the_file_bit_for_bit(self, ris_path):
        _, _, raw = read_index_arrays(ris_path)
        with SharedIndexArrays.create(ris_path) as shared:
            assert shared.manifest.kind == "ris"
            assert set(shared.arrays) == set(raw)
            for name, arr in raw.items():
                np.testing.assert_array_equal(shared.arrays[name], arr)

    def test_attach_sees_the_same_data_zero_copy(self, ris_path):
        shared = SharedIndexArrays.create(ris_path)
        try:
            attached = SharedIndexArrays.attach(shared.manifest)
            try:
                for name, arr in shared.arrays.items():
                    np.testing.assert_array_equal(attached.arrays[name], arr)
                    assert not attached.arrays[name].flags.writeable
            finally:
                attached.close()
        finally:
            shared.unlink()

    def test_manifest_is_picklable(self, ris_path):
        with SharedIndexArrays.create(ris_path) as shared:
            clone = pickle.loads(pickle.dumps(shared.manifest))
            assert clone == shared.manifest

    def test_views_are_read_only(self, ris_path):
        with SharedIndexArrays.create(ris_path) as shared:
            name = next(iter(shared.arrays))
            with pytest.raises(ValueError):
                shared.arrays[name][...] = 0

    def test_unlink_destroys_every_segment(self, ris_path):
        shared = SharedIndexArrays.create(ris_path)
        names = [s.shm_name for s in shared.manifest.specs]
        assert names and all(n is not None for n in names)
        shared.unlink()
        for seg_name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=seg_name)

    def test_only_owner_may_unlink(self, ris_path):
        shared = SharedIndexArrays.create(ris_path)
        try:
            attached = SharedIndexArrays.attach(shared.manifest)
            with pytest.raises(ServeError, match="unlink"):
                attached.unlink()
            attached.close()
        finally:
            shared.unlink()

    def test_bad_backing_rejected(self, ris_path):
        with pytest.raises(ServeError, match="backing"):
            SharedIndexArrays.create(ris_path, backing="carrier-pigeon")


class TestMmapBacking:
    def test_spill_files_exist_and_match(self, ris_path, tmp_path):
        _, _, raw = read_index_arrays(ris_path)
        shared = SharedIndexArrays.create(
            ris_path, backing="mmap", spill_dir=tmp_path / "spill"
        )
        try:
            for spec in shared.manifest.specs:
                assert spec.path is not None and spec.shm_name is None
            attached = SharedIndexArrays.attach(shared.manifest)
            try:
                for name, arr in raw.items():
                    np.testing.assert_array_equal(attached.arrays[name], arr)
                    assert not attached.arrays[name].flags.writeable
            finally:
                attached.close()
        finally:
            shared.unlink()

    def test_unlink_removes_spill_files(self, ris_path, tmp_path):
        spill = tmp_path / "spill"
        shared = SharedIndexArrays.create(
            ris_path, backing="mmap", spill_dir=spill
        )
        paths = [s.path for s in shared.manifest.specs]
        shared.unlink()
        assert not any(
            __import__("pathlib").Path(p).exists() for p in paths
        )
        assert not spill.exists()


class TestAttachIndex:
    def test_assembled_index_answers_like_the_loaded_one(self, net, ris_path):
        from repro.core.persistence import load_index

        _, direct = load_index(ris_path, net)
        with SharedIndexArrays.create(ris_path) as shared:
            handle, index = attach_index(shared.manifest, net)
            try:
                expected = direct.query((50.0, 50.0), 4)
                got = index.query((50.0, 50.0), 4)
                assert got.seeds == expected.seeds
                assert got.estimate == pytest.approx(expected.estimate)
            finally:
                handle.close()

    def test_index_reads_straight_from_shared_pages(self, net, ris_path):
        # The corpus must hold *views* over the shm buffers, not copies:
        # its flat arrays and the shared arrays must share memory.
        with SharedIndexArrays.create(ris_path) as shared:
            handle, index = attach_index(shared.manifest, net)
            try:
                flat, _ = index.corpus.flat()
                assert np.shares_memory(flat, handle.arrays["corpus_flat"])
            finally:
                handle.close()
