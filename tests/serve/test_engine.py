"""Tests for repro.serve.engine (caching, batches, timeout fallback)."""

import time

import pytest

from repro.core.mia_da import MiaDaConfig, MiaDaIndex
from repro.core.persistence import save_mia_index, save_ris_index
from repro.core.query import DaimQuery
from repro.core.ris_da import RisDaConfig, RisDaIndex
from repro.exceptions import ServeError
from repro.geo.weights import DistanceDecay
from repro.network.generators import GeoSocialConfig, generate_geo_social_network
from repro.serve.cache import IndexCache
from repro.serve.engine import QueryEngine, ServeConfig
from repro.serve.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def net():
    return generate_geo_social_network(
        GeoSocialConfig(n=150, avg_out_degree=4.0, extent=100.0, city_std=8.0),
        seed=29,
    )


@pytest.fixture(scope="module")
def decay():
    return DistanceDecay(alpha=0.02)


@pytest.fixture(scope="module")
def ris_index(net, decay):
    cfg = RisDaConfig(
        k_max=6, n_pivots=8, epsilon_pivot=0.4, max_index_samples=10_000,
        seed=3,
    )
    return RisDaIndex(net, decay, cfg)


@pytest.fixture(scope="module")
def mia_index(net, decay):
    return MiaDaIndex(net, decay, MiaDaConfig(n_anchors=10, tau=24, seed=3))


class TestServeConfig:
    def test_validation(self):
        with pytest.raises(ServeError):
            ServeConfig(n_threads=0)
        with pytest.raises(ServeError):
            ServeConfig(timeout=0.0)
        with pytest.raises(ServeError):
            ServeConfig(result_cache_size=-1)
        with pytest.raises(ServeError):
            ServeConfig(cache_cells=0)
        with pytest.raises(ServeError):
            ServeConfig(fallback="coin-flip")


class TestSingleQuery:
    def test_matches_direct_index_query(self, ris_index):
        engine = QueryEngine(ris_index)
        q = (50.0, 50.0)
        served = engine.query(q, k=4)
        direct = ris_index.query(q, 4)
        assert served.ok and not served.cached and not served.fallback
        assert served.result.seeds == direct.seeds
        assert served.result.estimate == pytest.approx(direct.estimate)

    def test_mia_index_served_identically(self, mia_index):
        engine = QueryEngine(mia_index)
        served = engine.query((40.0, 60.0), k=3)
        direct = mia_index.query((40.0, 60.0), 3)
        assert served.ok
        assert served.result.seeds == direct.seeds

    def test_bare_location_requires_k(self, ris_index):
        with pytest.raises(ServeError):
            QueryEngine(ris_index).query((1.0, 2.0))

    def test_query_error_becomes_error_result(self, ris_index):
        metrics = MetricsRegistry()
        engine = QueryEngine(ris_index, metrics=metrics)
        served = engine.query((50.0, 50.0), k=999)  # k > k_max
        assert not served.ok
        assert served.result is None
        assert "k must be" in served.error
        assert metrics.counter("errors").value == 1


class TestResultCache:
    def test_repeat_query_hits_cache(self, ris_index):
        metrics = MetricsRegistry()
        engine = QueryEngine(ris_index, metrics=metrics)
        first = engine.query((50.0, 50.0), k=4)
        second = engine.query((50.0, 50.0), k=4)
        assert not first.cached and second.cached
        assert second.result is first.result
        assert metrics.counter("result_cache.hits").value == 1
        assert metrics.counter("result_cache.misses").value == 1

    def test_nearby_queries_share_a_cell(self, ris_index):
        engine = QueryEngine(ris_index)
        first = engine.query((50.0, 50.0), k=4)
        # Well inside the same grid cell (extent 100, 4096 cells -> ~1.6
        # units per cell side; 1e-4 is far below that).
        second = engine.query((50.0001, 50.0001), k=4)
        assert second.cached
        assert second.result is first.result

    def test_different_k_is_a_different_key(self, ris_index):
        engine = QueryEngine(ris_index)
        engine.query((50.0, 50.0), k=4)
        other = engine.query((50.0, 50.0), k=5)
        assert not other.cached

    def test_cache_disabled(self, ris_index):
        metrics = MetricsRegistry()
        engine = QueryEngine(
            ris_index, config=ServeConfig(result_cache_size=0),
            metrics=metrics,
        )
        engine.query((50.0, 50.0), k=4)
        second = engine.query((50.0, 50.0), k=4)
        assert not second.cached
        assert metrics.counter("result_cache.hits").value == 0

    def test_latency_and_samples_metrics_recorded(self, ris_index):
        metrics = MetricsRegistry()
        engine = QueryEngine(ris_index, metrics=metrics)
        engine.query((50.0, 50.0), k=4)
        assert metrics.histogram("latency_ms").count == 1
        assert metrics.histogram("samples_used").count == 1
        assert metrics.counter("queries_total").value == 1

    def test_stage_timings_exported_per_query(self, ris_index):
        """Each uncached query feeds its per-stage breakdown into
        stage_*_ms histograms; cache hits add nothing."""
        metrics = MetricsRegistry()
        engine = QueryEngine(ris_index, metrics=metrics)
        engine.query((50.0, 50.0), k=4)
        engine.query((10.0, 80.0), k=4)
        engine.query((50.0, 50.0), k=4)  # cache hit: no new stage samples
        for stage in (
            "weight_eval", "score_build", "selection", "bound", "total"
        ):
            h = metrics.histogram(f"stage_{stage}_ms")
            assert h.count == 2, f"stage_{stage}_ms missing observations"
            assert h.min >= 0.0
        dump = metrics.dump()
        assert "stage_selection_ms" in dump["histograms"]
        assert "stage_selection_ms" in metrics.report()


class TestServeBatch:
    def test_batch_matches_looped_queries(self, ris_index):
        engine = QueryEngine(
            ris_index, config=ServeConfig(n_threads=4, result_cache_size=0)
        )
        locations = [(20.0, 20.0), (50.0, 50.0), (80.0, 30.0)]
        batch = engine.serve_batch(locations, k=4)
        assert len(batch) == 3
        for loc, served in zip(locations, batch):
            direct = ris_index.query(loc, 4)
            assert served.ok
            assert served.result.seeds == direct.seeds

    def test_empty_batch(self, ris_index):
        assert QueryEngine(ris_index).serve_batch([]) == []

    def test_serial_path_when_single_thread(self, ris_index):
        engine = QueryEngine(ris_index, config=ServeConfig(n_threads=1))
        batch = engine.serve_batch([(10.0, 10.0), (90.0, 90.0)], k=3)
        assert all(s.ok for s in batch)

    def test_error_does_not_poison_batch(self, ris_index):
        engine = QueryEngine(ris_index, config=ServeConfig(result_cache_size=0))
        batch = engine.serve_batch(
            [DaimQuery((50.0, 50.0), 4), DaimQuery((20.0, 20.0), 999)]
        )
        assert batch[0].ok
        assert not batch[1].ok and batch[1].result is None

    def test_warm_batch_is_all_hits(self, ris_index):
        metrics = MetricsRegistry()
        engine = QueryEngine(ris_index, metrics=metrics)
        locations = [(float(x), 50.0) for x in range(0, 100, 10)]
        engine.serve_batch(locations, k=4)
        hits_before = metrics.counter("result_cache.hits").value
        warm = engine.serve_batch(locations, k=4)
        assert all(s.cached for s in warm)
        assert (
            metrics.counter("result_cache.hits").value
            == hits_before + len(locations)
        )


class TestTimeoutFallback:
    def _slow_engine(self, ris_index, monkeypatch, **cfg_kwargs):
        metrics = MetricsRegistry()
        engine = QueryEngine(
            ris_index,
            config=ServeConfig(
                n_threads=2, timeout=0.05, result_cache_size=0, **cfg_kwargs
            ),
            metrics=metrics,
        )
        real_query = ris_index.query

        def slow_query(q, k=None, **kwargs):
            time.sleep(0.3)
            return real_query(q, k, **kwargs)

        monkeypatch.setattr(ris_index, "query", slow_query)
        return engine, metrics

    def test_timeout_answers_with_degree_discount(
        self, ris_index, monkeypatch
    ):
        engine, metrics = self._slow_engine(ris_index, monkeypatch)
        batch = engine.serve_batch([(50.0, 50.0), (20.0, 80.0)], k=4)
        assert all(s.ok for s in batch)
        assert all(s.fallback_reason == "timeout" for s in batch)
        assert all(s.result.method == "DegreeDiscount" for s in batch)
        assert all(len(s.result.seeds) == 4 for s in batch)
        assert metrics.counter("timeouts").value == 2
        assert metrics.counter("fallbacks").value == 2
        assert metrics.histogram("fallback_latency_ms").count == 2

    def test_fallback_none_surfaces_error(self, ris_index, monkeypatch):
        engine, _ = self._slow_engine(
            ris_index, monkeypatch, fallback="none"
        )
        batch = engine.serve_batch([(50.0, 50.0)], k=4)
        assert not batch[0].ok
        assert "timed out" in batch[0].error

    def test_fast_queries_beat_the_deadline(self, ris_index):
        engine = QueryEngine(
            ris_index, config=ServeConfig(n_threads=2, timeout=30.0)
        )
        batch = engine.serve_batch([(50.0, 50.0)], k=4)
        assert batch[0].ok and not batch[0].fallback


class TestObservability:
    def test_every_query_carries_a_trace_id(self, ris_index):
        engine = QueryEngine(ris_index)
        served = engine.query((50.0, 50.0), k=4)
        assert served.trace_id and len(served.trace_id) == 32
        cached = engine.query((50.0, 50.0), k=4)
        assert cached.cached
        assert cached.trace_id and cached.trace_id != served.trace_id

    def test_error_results_carry_a_trace_id(self, ris_index):
        engine = QueryEngine(ris_index)
        served = engine.query((50.0, 50.0), k=999)
        assert not served.ok
        assert served.trace_id

    def test_span_tree_includes_selection_stages(self, ris_index):
        from repro.obs.trace import Tracer, span_tree

        tracer = Tracer()
        engine = QueryEngine(
            ris_index, config=ServeConfig(result_cache_size=0),
            tracer=tracer,
        )
        served = engine.query((50.0, 50.0), k=4)
        spans = tracer.spans_for_trace(served.trace_id)
        (root,) = span_tree(spans)
        assert root["name"] == "serve.query"
        (index_query,) = root["children"]
        assert index_query["name"] == "index.query"
        stage_names = {c["name"] for c in index_query["children"]}
        assert {"stage.weight_eval", "stage.selection"} <= stage_names
        assert "stage.total" not in stage_names

    def test_mia_span_tree_has_bound_setup_stage(self, mia_index):
        from repro.obs.trace import Tracer, span_tree

        tracer = Tracer()
        engine = QueryEngine(
            mia_index, config=ServeConfig(result_cache_size=0),
            tracer=tracer,
        )
        served = engine.query((40.0, 60.0), k=3)
        (root,) = span_tree(tracer.spans_for_trace(served.trace_id))
        (index_query,) = root["children"]
        stage_names = {c["name"] for c in index_query["children"]}
        assert {"stage.bound_setup", "stage.selection"} <= stage_names

    def test_query_events_logged(self, ris_index):
        import io
        import json as json_mod

        from repro.obs.log import JsonLogger

        stream = io.StringIO()
        engine = QueryEngine(ris_index, logger=JsonLogger(stream))
        served = engine.query((51.0, 51.0), k=4)
        events = [
            json_mod.loads(line) for line in stream.getvalue().splitlines()
        ]
        names = [e["event"] for e in events]
        assert names[0] == "query_start"
        assert "query_end" in names
        end = next(e for e in events if e["event"] == "query_end")
        assert end["trace_id"] == served.trace_id

    def test_slow_log_captures_span_tree_and_diagnostics(
        self, ris_index, tmp_path
    ):
        import json as json_mod

        from repro.obs.slowlog import SlowQueryLog

        path = tmp_path / "slow.jsonl"
        metrics = MetricsRegistry()
        engine = QueryEngine(
            ris_index, config=ServeConfig(result_cache_size=0),
            metrics=metrics, slow_log=SlowQueryLog(path, 0.0),
        )
        # Attaching a slow log auto-upgrades the tracer so rows have trees.
        assert engine.tracer.enabled
        served = engine.query((50.0, 50.0), k=4)
        (line,) = path.read_text().splitlines()
        row = json_mod.loads(line)
        assert row["trace_id"] == served.trace_id
        assert row["diagnostics"]["samples_used"] >= 1
        (tree_root,) = row["span_tree"]
        assert tree_root["name"] == "serve.query"
        assert metrics.counter("slow_queries_total").value == 1

    def test_high_threshold_records_nothing(self, ris_index, tmp_path):
        from repro.obs.slowlog import SlowQueryLog

        path = tmp_path / "slow.jsonl"
        slow_log = SlowQueryLog(path, 60_000.0)
        engine = QueryEngine(
            ris_index, config=ServeConfig(result_cache_size=0),
            slow_log=slow_log,
        )
        engine.query((50.0, 50.0), k=4)
        assert slow_log.recorded == 0
        assert not path.exists()


class TestFallbackTagging:
    def _slow_engine(self, ris_index, monkeypatch):
        metrics = MetricsRegistry()
        engine = QueryEngine(
            ris_index,
            config=ServeConfig(
                n_threads=2, timeout=0.05, result_cache_size=0
            ),
            metrics=metrics,
        )
        real_query = ris_index.query

        def slow_query(q, k=None, **kwargs):
            time.sleep(0.3)
            return real_query(q, k, **kwargs)

        monkeypatch.setattr(ris_index, "query", slow_query)
        return engine, metrics

    def test_fallback_results_are_distinguishable(
        self, ris_index, monkeypatch
    ):
        engine, metrics = self._slow_engine(ris_index, monkeypatch)
        (served,) = engine.serve_batch([(50.0, 50.0)], k=4)
        assert served.fallback is True
        assert served.fallback_reason == "timeout"
        assert served.result.method == "DegreeDiscount"
        assert served.trace_id
        assert metrics.counter("serve_fallback_total").value == 1
        # The legacy counter still moves too.
        assert metrics.counter("fallbacks").value == 1
    def test_ris_file_round_trip(self, net, decay, ris_index, tmp_path):
        path = tmp_path / "ris.npz"
        save_ris_index(ris_index, path)
        engine = QueryEngine.from_path(path, net, kind="ris")
        served = engine.query((50.0, 50.0), k=4)
        assert served.ok
        assert served.result.seeds == ris_index.query((50.0, 50.0), 4).seeds
        assert engine.fingerprint == IndexCache.fingerprint(path)

    def test_kind_mismatch_is_a_serve_error(
        self, net, decay, mia_index, tmp_path
    ):
        path = tmp_path / "mia.npz"
        save_mia_index(mia_index, path)
        with pytest.raises(ServeError, match="MIA-DA"):
            QueryEngine.from_path(path, net, kind="ris")

    def test_auto_kind_serves_mia(self, net, mia_index, tmp_path):
        path = tmp_path / "mia.npz"
        save_mia_index(mia_index, path)
        engine = QueryEngine.from_path(path, net)
        assert engine.query((40.0, 60.0), k=3).ok

    def test_shared_cache_loads_once(self, net, ris_index, tmp_path):
        path = tmp_path / "ris.npz"
        save_ris_index(ris_index, path)
        metrics = MetricsRegistry()
        cache = IndexCache(metrics=metrics)
        e1 = QueryEngine.from_path(path, net, cache=cache, metrics=metrics)
        e2 = QueryEngine.from_path(path, net, cache=cache, metrics=metrics)
        assert e1.index is e2.index
        assert metrics.counter("index_cache.misses").value == 1
        assert metrics.counter("index_cache.hits").value == 1
        # Same file, same fingerprint: the engines share result-cache keys.
        assert e1.fingerprint == e2.fingerprint


class TestDeadlineAnchoring:
    """Regressions for the batch-timeout drift and abandonment fixes."""

    def _delayed_engine(self, ris_index, monkeypatch, delays, **cfg_kwargs):
        """An engine whose index sleeps ``delays[k]`` seconds per query."""
        metrics = MetricsRegistry()
        engine = QueryEngine(
            ris_index,
            config=ServeConfig(n_threads=2, **cfg_kwargs),
            metrics=metrics,
        )
        real_query = ris_index.query

        def slow_query(q, k=None, **kwargs):
            time.sleep(delays.get(k, 0.0))
            return real_query(q, k, **kwargs)

        monkeypatch.setattr(ris_index, "query", slow_query)
        return engine, metrics

    def test_deadline_anchored_at_submission_not_collection(
        self, ris_index, monkeypatch
    ):
        # The collector used to grant each query a *fresh* timeout when
        # it reached it: with timeout=0.25s, waiting 0.25s on a 0.6s
        # first query stretched the second query's effective deadline to
        # ~0.5s, so a 0.4s query wrongly met its SLO.  Anchored at
        # submission, both must time out.
        engine, metrics = self._delayed_engine(
            ris_index, monkeypatch, {4: 0.6, 5: 0.4},
            timeout=0.25, result_cache_size=0,
        )
        batch = engine.serve_batch(
            [DaimQuery((50.0, 50.0), 4), DaimQuery((20.0, 80.0), 5)]
        )
        assert batch[0].fallback_reason == "timeout"
        assert batch[1].fallback_reason == "timeout"
        assert metrics.counter("timeouts").value == 2

    def test_abandoned_run_stays_out_of_metrics_and_cache(
        self, ris_index, monkeypatch
    ):
        engine, metrics = self._delayed_engine(
            ris_index, monkeypatch, {4: 0.3},
            timeout=0.05, result_cache_size=64,
        )
        batch = engine.serve_batch([(50.0, 50.0)], k=4)
        assert batch[0].fallback_reason == "timeout"
        # The worker thread is still computing the discarded answer;
        # wait for it to notice its cancellation token.
        deadline = time.monotonic() + 5.0
        while (
            metrics.counter("abandoned_queries_total").value < 1
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)
        assert metrics.counter("abandoned_queries_total").value == 1
        # The abandoned completion must not have recorded a latency (its
        # caller already got the fallback) nor cached its result.
        assert metrics.histogram("latency_ms").count == 0
        served = engine.query((50.0, 50.0), k=4)
        assert not served.cached

    def test_queued_query_never_runs_after_cancellation(
        self, ris_index, monkeypatch
    ):
        # Three slow queries, two threads: the third is still queued
        # when its deadline passes, so it is cancelled outright and must
        # never reach the index; the two in-flight runs are abandoned.
        metrics = MetricsRegistry()
        engine = QueryEngine(
            ris_index,
            config=ServeConfig(n_threads=2, timeout=0.1, result_cache_size=0),
            metrics=metrics,
        )
        real_query = ris_index.query
        calls = []

        def slow_query(q, k=None, **kwargs):
            calls.append(q)
            time.sleep(0.4)
            return real_query(q, k, **kwargs)

        monkeypatch.setattr(ris_index, "query", slow_query)
        batch = engine.serve_batch(
            [(50.0, 50.0), (20.0, 80.0), (70.0, 30.0)], k=4
        )
        assert all(s.fallback_reason == "timeout" for s in batch)
        deadline = time.monotonic() + 5.0
        while (
            metrics.counter("abandoned_queries_total").value < 2
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)
        assert metrics.counter("abandoned_queries_total").value == 2
        assert len(calls) == 2  # the queued third query never started


class TestCacheKeyNormalisation:
    def test_daim_query_and_bare_location_share_cache_entry(self, ris_index):
        engine = QueryEngine(ris_index, config=ServeConfig(n_threads=1))
        first = engine.query(DaimQuery((50.0, 50.0), 4))
        assert not first.cached
        # The same point as a bare tuple of ints must normalise to the
        # same quantized cache key as the DaimQuery form.
        second = engine.query((50, 50), k=4)
        assert second.cached
        assert second.result.seeds == first.result.seeds
