"""Tests for repro.serve.metrics (counters, histograms, report format)."""

import threading

import pytest

from repro.serve.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        m = MetricsRegistry()
        c = m.counter("queries_total")
        assert c.value == 0
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_same_name_same_instrument(self):
        m = MetricsRegistry()
        m.inc("hits")
        m.inc("hits")
        assert m.counter("hits").value == 2


class TestHistogram:
    def test_bucket_assignment(self):
        m = MetricsRegistry()
        h = m.histogram("latency_ms", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 1.0, 5.0, 50.0, 500.0):
            h.observe(v)
        # <=1: {0.5, 1.0}; <=10: {5.0}; <=100: {50.0}; +inf: {500.0}
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.min == 0.5 and h.max == 500.0
        assert h.mean == pytest.approx((0.5 + 1 + 5 + 50 + 500) / 5)

    def test_default_buckets_by_name(self):
        m = MetricsRegistry()
        assert m.histogram("latency_ms").buckets == LATENCY_BUCKETS_MS
        assert m.histogram("samples_used").buckets == COUNT_BUCKETS

    def test_quantiles_bracket_observations(self):
        m = MetricsRegistry()
        h = m.histogram("x_ms", buckets=(1.0, 2.0, 4.0, 8.0))
        for v in (0.5, 1.5, 3.0, 6.0):
            h.observe(v)
        assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0)
        assert h.quantile(1.0) == pytest.approx(6.0)

    def test_empty_quantile_is_zero(self):
        m = MetricsRegistry()
        assert m.histogram("empty_ms").quantile(0.5) == 0.0

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", (), threading.Lock())
        with pytest.raises(ValueError):
            Histogram("h", (2.0, 1.0), threading.Lock())

    def test_bad_quantile_rejected(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError):
            m.histogram("x_ms").quantile(1.5)


class TestHistogramEdgeCases:
    def test_empty_histogram_all_quantiles_zero(self):
        m = MetricsRegistry()
        h = m.histogram("empty_ms")
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert h.quantile(q) == 0.0
        assert h.count == 0
        assert h.mean == 0.0

    def test_single_observation(self):
        m = MetricsRegistry()
        h = m.histogram("one_ms", buckets=(1.0, 10.0))
        h.observe(3.0)
        assert h.count == 1
        assert h.min == h.max == 3.0
        assert h.mean == pytest.approx(3.0)
        # Every quantile of a single sample brackets that sample's bucket.
        for q in (0.0, 0.5, 1.0):
            assert 1.0 <= h.quantile(q) <= 10.0

    def test_overflow_bucket_observations(self):
        m = MetricsRegistry()
        h = m.histogram("over_ms", buckets=(1.0, 2.0))
        h.observe(1e9)
        h.observe(2e9)
        # Both land in +inf; counts has one slot per finite bucket + 1.
        assert h.counts == [0, 0, 2]
        assert h.max == 2e9
        # Quantiles from the overflow bucket stay finite (interpolation
        # is clamped by the observed max, not the infinite edge).
        for q in (0.5, 0.99, 1.0):
            value = h.quantile(q)
            assert value == value and value != float("inf")
        assert h.quantile(1.0) == pytest.approx(2e9)

    def test_dump_prometheus_round_trip(self):
        from repro.obs.prom import parse_prometheus, render_prometheus

        m = MetricsRegistry()
        m.inc("queries_total", 2)
        for v in (0.5, 5.0, 500.0):
            m.observe("latency_ms", v)
        dump = m.dump()
        parsed = parse_prometheus(render_prometheus(m))
        # The counter and histogram aggregates survive the text format.
        assert parsed.value("repro_queries_total") == dump["counters"][
            "queries_total"
        ]
        hist = dump["histograms"]["latency_ms"]
        assert parsed.value("repro_latency_ms_count") == hist["count"]
        assert parsed.value("repro_latency_ms_sum") == pytest.approx(
            hist["sum"]
        )
        assert parsed.value("repro_latency_ms_min") == hist["min"]
        assert parsed.value("repro_latency_ms_max") == hist["max"]
        # Cumulative bucket counts match the per-bucket dump, accumulated.
        cumulative = 0
        for bucket in hist["buckets"]:
            cumulative += bucket["count"]
            le = "+Inf" if bucket["le"] == float("inf") else (
                str(int(bucket["le"]))
                if bucket["le"] == int(bucket["le"])
                else repr(bucket["le"])
            )
            assert parsed.value("repro_latency_ms_bucket", le=le) == (
                cumulative
            )


class TestDumpAndReport:
    def test_dump_structure(self):
        m = MetricsRegistry()
        m.inc("queries_total", 3)
        m.observe("latency_ms", 2.0)
        snap = m.dump()
        assert snap["counters"] == {"queries_total": 3}
        hist = snap["histograms"]["latency_ms"]
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(2.0)
        assert sum(b["count"] for b in hist["buckets"]) == 1
        assert hist["buckets"][-1]["le"] == float("inf")

    def test_report_shows_everything(self):
        m = MetricsRegistry()
        m.inc("result_cache.hits", 5)
        m.inc("result_cache.misses", 2)
        for v in (0.3, 1.1, 4.2, 40.0):
            m.observe("latency_ms", v)
        text = m.report()
        assert "result_cache.hits" in text and "5" in text
        assert "result_cache.misses" in text
        assert "latency_ms" in text
        assert "count=4" in text
        assert "p95=" in text
        assert "#" in text  # histogram bars

    def test_empty_histogram_reported(self):
        m = MetricsRegistry()
        m.histogram("never_ms")
        assert "never_ms: count=0" in m.report()


class TestThreadSafety:
    def test_concurrent_updates_are_lossless(self):
        m = MetricsRegistry()
        rounds = 200

        def work():
            for _ in range(rounds):
                m.inc("n")
                m.observe("v_ms", 1.0)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.counter("n").value == 8 * rounds
        assert m.histogram("v_ms").count == 8 * rounds


class TestMergeDump:
    def test_counters_add_and_histograms_combine(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("queries_total", 3)
        a.observe("latency_ms", 2.0)
        b.inc("queries_total", 2)
        b.inc("fallbacks")
        b.observe("latency_ms", 40.0)
        b.observe("latency_ms", 1.0)
        a.merge_dump(b.dump())
        assert a.counter("queries_total").value == 5
        assert a.counter("fallbacks").value == 1
        h = a.histogram("latency_ms")
        assert h.count == 3
        assert h.min == 1.0 and h.max == 40.0
        assert abs(h.total - 43.0) < 1e-9
        assert sum(h.counts) == 3

    def test_prefix_keeps_sources_apart(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.inc("queries_total", 10)
        worker.inc("queries_total", 4)
        worker.observe("latency_ms", 3.0)
        parent.merge_dump(worker.dump(), prefix="worker.")
        assert parent.counter("queries_total").value == 10
        assert parent.counter("worker.queries_total").value == 4
        assert parent.histogram("worker.latency_ms").count == 1

    def test_repeated_merge_accumulates(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        worker.inc("queries_total", 2)
        parent.merge_dump(worker.dump())
        parent.merge_dump(worker.dump())
        assert parent.counter("queries_total").value == 4

    def test_mismatched_buckets_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("x", buckets=[1.0, 2.0])
        b.observe("x", 0.5, buckets=[5.0])
        with pytest.raises(ValueError, match="bucket bounds"):
            a.merge_dump(b.dump())
